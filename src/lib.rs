//! # resilim — Modeling Application Resilience in Large-scale Parallel Execution
//!
//! Umbrella crate for the `resilim` workspace, a from-scratch Rust
//! reproduction of Wu et al., *Modeling Application Resilience in
//! Large-scale Parallel Execution* (ICPP 2018).
//!
//! The workspace implements the paper's full pipeline:
//!
//! * [`inject`] — tracked-scalar fault injection with shadow-execution
//!   taint tracking (the F-SEFI substitute);
//! * [`simmpi`] — an in-process MPI runtime whose messages carry taint, so
//!   cross-rank error propagation is observable;
//! * [`apps`] — ports of the paper's six workloads (NPB CG/FT/MG/LU,
//!   MiniFE, PENNANT) running serial or at any power-of-two scale on the
//!   same strong-scaling problem;
//! * [`core`] — the paper's resilience model (Equations 1–9, propagation
//!   grouping, cosine similarity, sparse sampling, α fine-tuning, RMSE);
//! * [`harness`] — campaign driver and per-table/per-figure experiment
//!   pipelines.
//!
//! See `README.md` for a tour and `examples/quickstart.rs` for the fastest
//! end-to-end path.

pub use resilim_apps as apps;
pub use resilim_core as core;
pub use resilim_harness as harness;
pub use resilim_inject as inject;
pub use resilim_simmpi as simmpi;
