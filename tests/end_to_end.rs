//! Cross-crate integration tests: the full paper pipeline at reduced
//! scales and test counts, exercising every layer together (inject →
//! simmpi → apps → campaign → model).

use resilim::apps::App;
use resilim::core::{cosine_similarity, OutcomeKind, PaperEq8, SamplePoints};
use resilim::harness::experiments::{build_inputs, ExperimentConfig};
use resilim::harness::{CampaignRunner, CampaignSpec, ErrorSpec};

fn cfg(tests: usize) -> ExperimentConfig {
    ExperimentConfig {
        tests,
        seed: 777,
        ..Default::default()
    }
}

#[test]
fn every_app_survives_a_small_campaign() {
    let runner = CampaignRunner::new();
    for app in App::ALL {
        let result = runner.run(&CampaignSpec::new(
            app.default_spec(),
            4,
            ErrorSpec::OneParallel,
            12,
            777,
        ));
        assert_eq!(result.fi.total(), 12, "{app}");
        // Single-bit FP flips must not kill every run of any app.
        assert!(result.fi.success_rate() > 0.0, "{app}: {:?}", result.fi);
        // Each test fired exactly one fault.
        assert!(
            result.outcomes.iter().all(|o| o.injections_fired == 1),
            "{app}"
        );
    }
}

#[test]
fn rates_always_partition() {
    let runner = CampaignRunner::new();
    let result = runner.run(&CampaignSpec::new(
        App::Pennant.default_spec(),
        2,
        ErrorSpec::OneParallel,
        20,
        1,
    ));
    let rates = result.fi.rates();
    assert!((rates.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    assert_eq!(
        result.prop.total(),
        result.fi.total(),
        "every test lands in exactly one propagation bin"
    );
}

#[test]
fn prediction_pipeline_end_to_end() {
    // Predict p = 8 from s = 2 for one cheap app and check the prediction
    // is a sane probability triple near the measured value.
    let runner = CampaignRunner::new();
    let cfg = cfg(40);
    let inputs = build_inputs(&runner, &cfg, App::Lu, 8, 2, SamplePoints::BucketUpper);
    let pred = PaperEq8::new(inputs).predict();
    let measured = runner.run(&CampaignSpec::new(
        App::Lu.default_spec(),
        8,
        ErrorSpec::OneParallel,
        cfg.tests,
        cfg.seed,
    ));
    let m = measured.fi.success_rate();
    assert!((0.0..=1.0).contains(&pred.success()));
    let total: f64 = pred.rates.iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
    // With 40 tests the tolerance is generous; the point is wiring, not
    // statistical accuracy.
    assert!(
        (m - pred.success()).abs() < 0.45,
        "measured {m} vs predicted {}",
        pred.success()
    );
}

#[test]
fn grouped_propagation_matches_small_scale() {
    // Observation 3 at reduced scale: 2-rank profile vs grouped 8-rank
    // profile for the wavefront app.
    let runner = CampaignRunner::new();
    let campaign = |procs| {
        runner.run(&CampaignSpec::new(
            App::Lu.default_spec(),
            procs,
            ErrorSpec::OneParallel,
            60,
            5,
        ))
    };
    let small = campaign(2);
    let large = campaign(8);
    let sim = cosine_similarity(&small.prop.r_vec(), &large.prop.group(2));
    assert!(sim > 0.8, "similarity {sim}");
}

#[test]
fn serial_multi_error_monotonicity() {
    // More injected errors -> no higher success rate (within noise), and
    // many errors eventually dominate a small problem.
    let runner = CampaignRunner::new();
    let success_at = |x: usize| {
        runner
            .run(&CampaignSpec::new(
                App::Cg.default_spec(),
                1,
                ErrorSpec::SerialErrors(x),
                60,
                9,
            ))
            .fi
            .success_rate()
    };
    let s1 = success_at(1);
    let s16 = success_at(16);
    let s64 = success_at(64);
    assert!(s1 >= s16 - 0.1, "s1 {s1} vs s16 {s16}");
    assert!(s16 >= s64 - 0.1, "s16 {s16} vs s64 {s64}");
    assert!(s64 < s1, "64 errors should beat the checker more often");
}

#[test]
fn masked_tests_are_bitwise_identical_successes() {
    let runner = CampaignRunner::new();
    let result = runner.run(&CampaignSpec::new(
        App::Mg.default_spec(),
        1,
        ErrorSpec::SerialErrors(1),
        50,
        3,
    ));
    // Masked count is bounded by the success count.
    assert!(result.fi.masked <= result.fi.counts[OutcomeKind::Success.index()]);
    // Low mantissa bits get absorbed often: some tests must be masked.
    assert!(result.fi.masked > 0);
}

#[test]
fn campaign_results_identical_across_runners() {
    // Same seeds, fresh runner: bitwise identical statistics.
    let spec = CampaignSpec::new(App::Ft.default_spec(), 4, ErrorSpec::OneParallel, 15, 123);
    let a = CampaignRunner::new().run_uncached(&spec);
    let b = CampaignRunner::new().run_uncached(&spec);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.prop.counts, b.prop.counts);
}

#[test]
fn taint_threshold_affects_contamination_not_outcomes() {
    // A tighter (0 = bitwise) threshold can only see *more* contamination;
    // outcome classification (digest-based) is unchanged.
    let mk = |theta: f64| {
        let mut spec = CampaignSpec::new(
            App::MiniFe.default_spec(),
            4,
            ErrorSpec::OneParallel,
            25,
            11,
        );
        spec.taint_threshold = theta;
        CampaignRunner::new().run_uncached(&spec)
    };
    let bitwise = mk(0.0);
    let thresholded = mk(1e-9);
    assert_eq!(bitwise.fi.rates(), thresholded.fi.rates());
    for (a, b) in bitwise.outcomes.iter().zip(thresholded.outcomes.iter()) {
        assert!(a.contaminated_ranks >= b.contaminated_ranks);
        assert_eq!(a.kind, b.kind);
    }
}
