//! Failure-injection tests: drive the crash and hang classification paths
//! end-to-end through the campaign layer.

use resilim::apps::pennant::PennantProblem;
use resilim::apps::ProblemSpec;
use resilim::core::OutcomeKind;
use resilim::harness::{CampaignRunner, CampaignSpec, ErrorSpec};
use resilim::inject::{ctx, InjectionPlan, Operand, RankCtx, Region, Target, Tf64};
use resilim::simmpi::{PanicKind, World, WorldConfig};
use std::time::Duration;

/// PENNANT's mesh-inversion guard: corrupting a point coordinate hard
/// enough produces a non-positive zone volume, which aborts the run like
/// the original's "zone volume went negative" error. The campaign layer
/// must classify that as a Failure (crash), not SDC.
#[test]
fn pennant_crash_is_classified_as_failure() {
    let runner = CampaignRunner::new();
    // Sweep seeds until a crash shows up; exponent-bit flips in position
    // updates invert zones readily, so a few hundred tests suffice.
    let result = runner.run(&CampaignSpec::new(
        ProblemSpec::Pennant(PennantProblem::default()),
        2,
        ErrorSpec::OneParallel,
        250,
        0xFA11,
    ));
    let failures = result.fi.counts[OutcomeKind::Failure.index()];
    assert!(
        failures > 0,
        "expected at least one crash from 250 PENNANT injections: {:?}",
        result.fi
    );
    // Every failure outcome carries its failure kind.
    for o in &result.outcomes {
        if o.kind == OutcomeKind::Failure {
            assert!(o.failure.is_some());
        }
    }
    // And successes + SDC + failures partition the tests.
    assert_eq!(result.fi.total(), 250);
}

/// A deterministic crash: flip the sign bit of a coordinate early in the
/// run and check the world reports the primary panic, with secondary
/// fabric deaths distinguished.
#[test]
fn primary_crash_vs_secondary_fabric_death() {
    let world = World::with_config(
        4,
        WorldConfig {
            recv_timeout: Duration::from_secs(5),
        },
    );
    let prob = PennantProblem::default();
    let results = world.run_with_ctx(
        |rank| {
            let plan = if rank == 1 {
                // Sign-flip an early multiplication result: coordinates go
                // negative, the shoelace area guard trips.
                InjectionPlan::single(Target {
                    region: Region::Common,
                    op_index: 5,
                    bit: 63,
                    operand: Operand::Result,
                })
            } else {
                InjectionPlan::none()
            };
            Some(RankCtx::new(rank, plan))
        },
        move |comm| resilim::apps::pennant::run(&prob, comm),
    );
    let kinds: Vec<Option<PanicKind>> = results
        .iter()
        .map(|r| r.result.as_ref().err().map(|p| p.kind))
        .collect();
    // The corruption crosses the rank boundary through the point-sum
    // exchange, so either the injected rank or its neighbour may hit the
    // volume guard first; at least one rank must die of the *primary*
    // crash, and the others of crash/secondary causes.
    assert!(
        kinds.contains(&Some(PanicKind::Crash)),
        "no primary crash observed: {kinds:?}"
    );
    for (rank, kind) in kinds.iter().enumerate() {
        assert!(
            matches!(
                kind,
                Some(PanicKind::FabricDead) | Some(PanicKind::RecvTimeout) | Some(PanicKind::Crash)
            ),
            "rank {rank}: {kind:?}"
        );
    }
}

/// The hang guard converts a runaway loop into a classified hang.
#[test]
fn hang_guard_end_to_end() {
    let world = World::new(2);
    let results = world.run_with_ctx(
        |rank| Some(RankCtx::profiling(rank).with_op_cap(500)),
        |comm| {
            // A "convergence" loop whose corrupted predicate never fires.
            let mut acc = Tf64::new(1.0);
            while acc > 0.0 {
                acc += 1.0;
            }
            comm.barrier();
        },
    );
    for r in results {
        let err = r.result.unwrap_err();
        assert_eq!(err.kind, PanicKind::HangGuard);
    }
    ctx::take();
}

/// Injection into an operand that later feeds a division can produce
/// non-finite values; those must classify as SDC (failed checker), never
/// as silent success.
#[test]
fn non_finite_output_is_never_success() {
    let runner = CampaignRunner::new();
    let result = runner.run(&CampaignSpec::new(
        resilim::apps::App::Cg.default_spec(),
        1,
        ErrorSpec::SerialErrors(8),
        150,
        0xBAD,
    ));
    // Reconstruct: any outcome that was a success must have come from a
    // finite digest (passes_checker rejects non-finite); nothing to
    // assert per-test here beyond the partition, but the rates must be
    // consistent and the campaign must have observed real SDC.
    assert!(result.fi.sdc_rate() > 0.0);
    let sum: f64 = result.fi.rates().iter().sum();
    assert!((sum - 1.0).abs() < 1e-12);
}
