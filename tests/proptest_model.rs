//! Property-based tests on the model layer: invariants of the predictor,
//! propagation grouping, and sampling, over randomized measurement data.

use proptest::prelude::*;
use resilim::core::{
    bucket_of, cosine_similarity, rmse, sample_cases, sample_for, FiResult, ModelInputs, PaperEq8,
    PropagationProfile, SamplePoints, TestOutcome,
};
use std::collections::BTreeMap;

const ALL_STRATEGIES: [SamplePoints; 3] = [
    SamplePoints::BucketUpper,
    SamplePoints::PaperEq8,
    SamplePoints::BucketMid,
];

fn arbitrary_fi() -> impl Strategy<Value = FiResult> {
    (0u64..200, 0u64..200, 0u64..50).prop_map(|(s, d, f)| {
        let mut fi = FiResult::new();
        for _ in 0..s.max(1) {
            fi.record(&TestOutcome::success(false, 1, 1));
        }
        for _ in 0..d {
            fi.record(&TestOutcome::sdc(1, 1));
        }
        for _ in 0..f {
            fi.record(&TestOutcome::failure(
                resilim::core::FailureKind::Crash,
                1,
                1,
            ));
        }
        fi
    })
}

/// (p, s) pairs with s | p, both powers of two.
fn scales() -> impl Strategy<Value = (usize, usize)> {
    (1u32..6, 0u32..4).prop_map(|(lp, ds)| {
        let p = 1usize << (lp + ds);
        let s = 1usize << ds.min(lp + ds);
        (p, s.min(p))
    })
}

/// Like [`scales`] but also generates the s = p degenerate pairs
/// (one-wide buckets), which the sampling layer must handle.
fn sampling_scales() -> impl Strategy<Value = (usize, usize)> {
    (0u32..7, 0u32..7).prop_map(|(ls, extra)| {
        let s = 1usize << ls;
        let p = s << extra.min(7 - ls);
        (p, s)
    })
}

proptest! {
    /// The predictor output is always a probability distribution when its
    /// inputs are.
    #[test]
    fn prediction_is_a_distribution(
        (p, s) in scales(),
        fis in prop::collection::vec(arbitrary_fi(), 40),
        hist in prop::collection::vec(1u64..100, 40),
        unique_share in 0.0f64..0.3,
    ) {
        let cases = sample_cases(p, s, SamplePoints::BucketUpper);
        let mut serial = BTreeMap::new();
        let mut it = fis.iter();
        for &x in &cases {
            serial.insert(x, *it.next().unwrap());
        }
        for x in 1..=s {
            serial.entry(x).or_insert_with(|| *it.next().unwrap());
        }
        let mut small_prop = PropagationProfile::new(s);
        for (i, h) in hist.iter().take(s).enumerate() {
            small_prop.counts[i] = *h;
        }
        let small_by_contam = (0..s).map(|_| it.next().copied()).collect();
        let inputs = ModelInputs {
            p,
            s,
            strategy: SamplePoints::BucketUpper,
            serial,
            small_prop,
            small_by_contam,
            unique_share,
            fi_unique: Some(*it.next().unwrap()),
            alpha_threshold: 0.20,
        };
        let pred = PaperEq8::new(inputs).predict();
        let total: f64 = pred.rates.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "rates sum to {total}");
        for r in pred.rates {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&r));
        }
        prop_assert_eq!(pred.per_bucket.len(), s);
    }

    /// The prediction is a convex combination: it never leaves the hull of
    /// its bucket values and the unique term.
    #[test]
    fn prediction_within_input_hull(
        fis in prop::collection::vec(arbitrary_fi(), 10),
        hist in prop::collection::vec(1u64..50, 4),
    ) {
        let (p, s) = (64usize, 4usize);
        let mut serial = BTreeMap::new();
        let mut it = fis.iter();
        for &x in &sample_cases(p, s, SamplePoints::BucketUpper) {
            serial.insert(x, *it.next().unwrap());
        }
        for x in 1..=s {
            serial.entry(x).or_insert_with(|| *it.next().unwrap());
        }
        let mut small_prop = PropagationProfile::new(s);
        small_prop.counts.copy_from_slice(&hist);
        let inputs = ModelInputs {
            p, s,
            strategy: SamplePoints::BucketUpper,
            serial: serial.clone(),
            small_prop,
            small_by_contam: vec![None; s],
            unique_share: 0.0,
            fi_unique: None,
            alpha_threshold: 0.20,
        };
        let pred = PaperEq8::new(inputs).predict();
        let lo = serial.values().map(|f| f.success_rate()).fold(1.0, f64::min);
        let hi = serial.values().map(|f| f.success_rate()).fold(0.0, f64::max);
        prop_assert!(pred.success() >= lo - 1e-12 && pred.success() <= hi + 1e-12);
    }

    /// Grouping conserves probability mass and never exceeds 1 per bucket.
    #[test]
    fn grouping_conserves_mass(
        counts in prop::collection::vec(0u64..1000, 64),
        log_groups in 0u32..7,
    ) {
        let mut prof = PropagationProfile::new(64);
        prof.counts.copy_from_slice(&counts);
        prop_assume!(prof.total() > 0);
        let groups = 1usize << log_groups;
        let g = prof.group(groups);
        let mass: f64 = g.iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        prop_assert!(g.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
    }

    /// Every x lands in exactly the bucket whose sample case represents it,
    /// and bucket indices are monotone in x.
    #[test]
    fn bucket_map_is_total_and_monotone((p, s) in sampling_scales()) {
        let mut prev = 1;
        for x in 1..=p {
            let b = bucket_of(x, p, s);
            prop_assert!((1..=s).contains(&b));
            prop_assert!(b >= prev);
            prev = b;
        }
        // Each bucket gets exactly p/s values of x.
        for j in 1..=s {
            let n = (1..=p).filter(|&x| bucket_of(x, p, s) == j).count();
            prop_assert_eq!(n, p / s);
        }
    }

    /// `sample_cases` returns strictly increasing, in-range points that
    /// cover every bucket exactly once, for all s | p power-of-two pairs
    /// and all strategies.
    #[test]
    fn sample_cases_cover_every_bucket_once((p, s) in sampling_scales()) {
        for strategy in ALL_STRATEGIES {
            let cases = sample_cases(p, s, strategy);
            prop_assert_eq!(cases.len(), s, "{:?} p={} s={}", strategy, p, s);
            prop_assert!(
                cases.windows(2).all(|w| w[0] < w[1]),
                "{:?} not strictly increasing: {:?}", strategy, cases
            );
            prop_assert!(
                cases.iter().all(|&c| (1..=p).contains(&c)),
                "{:?} out of range: {:?}", strategy, cases
            );
            // Bucket coverage: each of the s buckets is hit exactly once.
            // The anchor at x = 1 always sits in bucket 1; Eq. 7/8 list
            // their remaining points in bucket order, so the j-th case
            // must land in (or, for the upper-edge anchor conventions,
            // on the boundary of) bucket j. The strict form we require:
            // the multiset {bucket_of(case)} = {1, …, s} — except
            // PaperEq8's interior points j·p/s, which are the *lower*
            // edge of bucket j+1's predecessor (⌈(j·p/s)·s/p⌉ = j), so
            // they land in bucket j while standing for bucket j+1 in the
            // paper's own Eq. 8 indexing. We therefore check coverage of
            // the sorted bucket list against the identity for the two
            // bucket-anchored strategies and a "no bucket hit twice by a
            // non-adjacent index" relaxation for PaperEq8.
            let buckets: Vec<usize> =
                cases.iter().map(|&c| bucket_of(c, p, s)).collect();
            match strategy {
                SamplePoints::BucketUpper | SamplePoints::BucketMid => {
                    let expect: Vec<usize> = (1..=s).collect();
                    prop_assert_eq!(
                        &buckets, &expect,
                        "{:?} p={} s={} cases={:?}", strategy, p, s, cases
                    );
                }
                SamplePoints::PaperEq8 => {
                    // j-th case (1-based) represents bucket j; it lands
                    // in bucket j or j−1 (lower-edge convention).
                    for (i, &b) in buckets.iter().enumerate() {
                        let j = i + 1;
                        prop_assert!(
                            b == j || b + 1 == j,
                            "PaperEq8 p={} s={} case {} in bucket {}", p, s, j, b
                        );
                    }
                    // Last point is p → bucket s, so the curve's tail is
                    // anchored and every bucket has a representative.
                    prop_assert_eq!(*buckets.last().unwrap(), s);
                }
            }
        }
    }

    /// `sample_for(x)` returns a member of `sample_cases` that represents
    /// x's bucket: for the bucket-anchored strategies the sample lies in
    /// the same bucket as x (or is the x = 1 anchor of bucket 1).
    #[test]
    fn sample_for_stays_in_bucket((p, s) in sampling_scales()) {
        for strategy in ALL_STRATEGIES {
            let cases = sample_cases(p, s, strategy);
            for x in 1..=p {
                let sx = sample_for(x, p, s, strategy);
                prop_assert!(cases.contains(&sx));
                let bx = bucket_of(x, p, s);
                let bs = bucket_of(sx, p, s);
                match strategy {
                    SamplePoints::BucketUpper | SamplePoints::BucketMid => {
                        prop_assert_eq!(
                            bs, bx,
                            "{:?} p={} s={} x={} -> sample {}", strategy, p, s, x, sx
                        );
                    }
                    SamplePoints::PaperEq8 => {
                        // Lower-edge convention: bucket j's stand-in may
                        // sit on bucket j−1's upper boundary.
                        prop_assert!(
                            bs == bx || bs + 1 == bx,
                            "PaperEq8 p={} s={} x={} (bucket {}) -> sample {} (bucket {})",
                            p, s, x, bx, sx, bs
                        );
                    }
                }
            }
            // sample_for is monotone in x (bucket map is monotone and
            // cases are increasing).
            let mut prev = 0;
            for x in 1..=p {
                let sx = sample_for(x, p, s, strategy);
                prop_assert!(sx >= prev);
                prev = sx;
            }
        }
    }

    /// Regrouping a propagation profile commutes: grouping p→g₂ and then
    /// regrouping to a coarser g₁ equals grouping p→g₁ directly — the
    /// metamorphic form of "refining the profile never changes the mass a
    /// coarse bucket sees" behind the paper's cosine-similarity argument
    /// (Table 2).
    #[test]
    fn grouping_refinement_is_consistent(
        counts in prop::collection::vec(0u64..1000, 64),
        log_fine in 0u32..7,
        log_coarse in 0u32..7,
    ) {
        prop_assume!(log_coarse <= log_fine);
        let mut prof = PropagationProfile::new(64);
        prof.counts.copy_from_slice(&counts);
        prop_assume!(prof.total() > 0);
        let fine = 1usize << log_fine;
        let coarse = 1usize << log_coarse;
        let direct = prof.group(coarse);
        let via_fine = prof.group(fine);
        // Sum each run of fine/coarse consecutive fine buckets.
        let ratio = fine / coarse;
        for (j, &d) in direct.iter().enumerate() {
            let refolded: f64 = via_fine[j * ratio..(j + 1) * ratio].iter().sum();
            prop_assert!(
                (refolded - d).abs() < 1e-9,
                "bucket {}: direct {} vs refolded {}", j, d, refolded
            );
        }
        // And the coarse self-similarity of the refold is exact.
        let refolded: Vec<f64> = (0..coarse)
            .map(|j| via_fine[j * ratio..(j + 1) * ratio].iter().sum())
            .collect();
        prop_assert!((cosine_similarity(&direct, &refolded) - 1.0).abs() < 1e-9);
    }

    /// Cosine similarity is symmetric, bounded, and 1 on self.
    #[test]
    fn cosine_similarity_properties(
        a in prop::collection::vec(0.0f64..1.0, 8),
        b in prop::collection::vec(0.0f64..1.0, 8),
    ) {
        let ab = cosine_similarity(&a, &b);
        let ba = cosine_similarity(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
        if a.iter().any(|&x| x > 0.0) {
            prop_assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-9);
        }
    }

    /// RMSE is zero iff all pairs agree, and scales with uniform offset.
    #[test]
    fn rmse_properties(values in prop::collection::vec(0.0f64..1.0, 1..20), off in 0.01f64..0.5) {
        let exact: Vec<(f64, f64)> = values.iter().map(|&v| (v, v)).collect();
        prop_assert!(rmse(&exact) < 1e-12);
        let offset: Vec<(f64, f64)> = values.iter().map(|&v| (v, v + off)).collect();
        prop_assert!((rmse(&offset) - off).abs() < 1e-9);
    }
}
