//! Property-based tests on the model layer: invariants of the predictor,
//! propagation grouping, and sampling, over randomized measurement data.

use proptest::prelude::*;
use resilim::core::{
    bucket_of, cosine_similarity, rmse, sample_cases, FiResult, ModelInputs, Predictor,
    PropagationProfile, SamplePoints, TestOutcome,
};
use std::collections::BTreeMap;

fn arbitrary_fi() -> impl Strategy<Value = FiResult> {
    (0u64..200, 0u64..200, 0u64..50).prop_map(|(s, d, f)| {
        let mut fi = FiResult::new();
        for _ in 0..s.max(1) {
            fi.record(&TestOutcome::success(false, 1, 1));
        }
        for _ in 0..d {
            fi.record(&TestOutcome::sdc(1, 1));
        }
        for _ in 0..f {
            fi.record(&TestOutcome::failure(
                resilim::core::FailureKind::Crash,
                1,
                1,
            ));
        }
        fi
    })
}

/// (p, s) pairs with s | p, both powers of two.
fn scales() -> impl Strategy<Value = (usize, usize)> {
    (1u32..6, 0u32..4).prop_map(|(lp, ds)| {
        let p = 1usize << (lp + ds);
        let s = 1usize << ds.min(lp + ds);
        (p, s.min(p))
    })
}

proptest! {
    /// The predictor output is always a probability distribution when its
    /// inputs are.
    #[test]
    fn prediction_is_a_distribution(
        (p, s) in scales(),
        fis in prop::collection::vec(arbitrary_fi(), 40),
        hist in prop::collection::vec(1u64..100, 40),
        unique_share in 0.0f64..0.3,
    ) {
        let cases = sample_cases(p, s, SamplePoints::BucketUpper);
        let mut serial = BTreeMap::new();
        let mut it = fis.iter();
        for &x in &cases {
            serial.insert(x, *it.next().unwrap());
        }
        for x in 1..=s {
            serial.entry(x).or_insert_with(|| *it.next().unwrap());
        }
        let mut small_prop = PropagationProfile::new(s);
        for (i, h) in hist.iter().take(s).enumerate() {
            small_prop.counts[i] = *h;
        }
        let small_by_contam = (0..s).map(|_| it.next().copied()).collect();
        let inputs = ModelInputs {
            p,
            s,
            strategy: SamplePoints::BucketUpper,
            serial,
            small_prop,
            small_by_contam,
            unique_share,
            fi_unique: Some(*it.next().unwrap()),
            alpha_threshold: 0.20,
        };
        let pred = Predictor::new(inputs).predict();
        let total: f64 = pred.rates.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "rates sum to {total}");
        for r in pred.rates {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&r));
        }
        prop_assert_eq!(pred.per_bucket.len(), s);
    }

    /// The prediction is a convex combination: it never leaves the hull of
    /// its bucket values and the unique term.
    #[test]
    fn prediction_within_input_hull(
        fis in prop::collection::vec(arbitrary_fi(), 10),
        hist in prop::collection::vec(1u64..50, 4),
    ) {
        let (p, s) = (64usize, 4usize);
        let mut serial = BTreeMap::new();
        let mut it = fis.iter();
        for &x in &sample_cases(p, s, SamplePoints::BucketUpper) {
            serial.insert(x, *it.next().unwrap());
        }
        for x in 1..=s {
            serial.entry(x).or_insert_with(|| *it.next().unwrap());
        }
        let mut small_prop = PropagationProfile::new(s);
        small_prop.counts.copy_from_slice(&hist);
        let inputs = ModelInputs {
            p, s,
            strategy: SamplePoints::BucketUpper,
            serial: serial.clone(),
            small_prop,
            small_by_contam: vec![None; s],
            unique_share: 0.0,
            fi_unique: None,
            alpha_threshold: 0.20,
        };
        let pred = Predictor::new(inputs).predict();
        let lo = serial.values().map(|f| f.success_rate()).fold(1.0, f64::min);
        let hi = serial.values().map(|f| f.success_rate()).fold(0.0, f64::max);
        prop_assert!(pred.success() >= lo - 1e-12 && pred.success() <= hi + 1e-12);
    }

    /// Grouping conserves probability mass and never exceeds 1 per bucket.
    #[test]
    fn grouping_conserves_mass(
        counts in prop::collection::vec(0u64..1000, 64),
        log_groups in 0u32..7,
    ) {
        let mut prof = PropagationProfile::new(64);
        prof.counts.copy_from_slice(&counts);
        prop_assume!(prof.total() > 0);
        let groups = 1usize << log_groups;
        let g = prof.group(groups);
        let mass: f64 = g.iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        prop_assert!(g.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
    }

    /// Every x lands in exactly the bucket whose sample case represents it,
    /// and bucket indices are monotone in x.
    #[test]
    fn bucket_map_is_total_and_monotone((p, s) in scales()) {
        let mut prev = 1;
        for x in 1..=p {
            let b = bucket_of(x, p, s);
            prop_assert!((1..=s).contains(&b));
            prop_assert!(b >= prev);
            prev = b;
        }
        // Each bucket gets exactly p/s values of x.
        for j in 1..=s {
            let n = (1..=p).filter(|&x| bucket_of(x, p, s) == j).count();
            prop_assert_eq!(n, p / s);
        }
    }

    /// Cosine similarity is symmetric, bounded, and 1 on self.
    #[test]
    fn cosine_similarity_properties(
        a in prop::collection::vec(0.0f64..1.0, 8),
        b in prop::collection::vec(0.0f64..1.0, 8),
    ) {
        let ab = cosine_similarity(&a, &b);
        let ba = cosine_similarity(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
        if a.iter().any(|&x| x > 0.0) {
            prop_assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-9);
        }
    }

    /// RMSE is zero iff all pairs agree, and scales with uniform offset.
    #[test]
    fn rmse_properties(values in prop::collection::vec(0.0f64..1.0, 1..20), off in 0.01f64..0.5) {
        let exact: Vec<(f64, f64)> = values.iter().map(|&v| (v, v)).collect();
        prop_assert!(rmse(&exact) < 1e-12);
        let offset: Vec<(f64, f64)> = values.iter().map(|&v| (v, v + off)).collect();
        prop_assert!((rmse(&offset) - off).abs() < 1e-9);
    }
}
