//! Cross-crate tests pinning down injection semantics: region targeting,
//! plan serialization, significance classification, and golden-profile
//! consistency between planning and execution.

use resilim::apps::{ft, App};
use resilim::harness::GoldenRun;
use resilim::inject::ctx::significant_divergence;
use resilim::inject::{InjectionPlan, Operand, RankCtx, Region, Target};
use resilim::simmpi::World;

/// A plan targeting the parallel-unique region must fire inside FT's
/// four-step twiddle scaling, and only there.
#[test]
fn parallel_unique_targets_fire_in_the_right_region() {
    let prob = ft::FtProblem::default();
    let world = World::new(4);
    let plan = InjectionPlan::single(Target {
        region: Region::ParallelUnique,
        op_index: 3,
        bit: 54,
        operand: Operand::A,
    });
    let results = world.run_with_ctx(
        move |rank| {
            let p = if rank == 2 {
                plan.clone()
            } else {
                InjectionPlan::none()
            };
            Some(RankCtx::new(rank, p))
        },
        move |comm| ft::run(&prob, comm),
    );
    let report = results[2].ctx_report.as_ref().unwrap();
    assert_eq!(report.fired.len(), 1);
    assert_eq!(report.fired[0].target.region, Region::ParallelUnique);
    // FT has real parallel-unique work at every rank.
    assert!(report.profile.injectable(Region::ParallelUnique) > 0);
}

/// The golden profile predicts exactly how many injectable ops a rank
/// executes: a plan at index `count - 1` fires; at `count` it cannot.
#[test]
fn golden_profile_bounds_the_index_space() {
    let spec = App::Lu.default_spec();
    let golden = GoldenRun::measure(&spec, 2);
    let count = golden.profiles[1].injectable(Region::Common);
    assert!(count > 0);

    let run_with_index = |op_index: u64| -> usize {
        let spec = spec.clone();
        let world = World::new(2);
        let plan = InjectionPlan::single(Target {
            region: Region::Common,
            op_index,
            bit: 0, // low bit: cannot change control flow enough to matter
            operand: Operand::A,
        });
        let results = world.run_with_ctx(
            move |rank| {
                let p = if rank == 1 {
                    plan.clone()
                } else {
                    InjectionPlan::none()
                };
                Some(RankCtx::new(rank, p))
            },
            move |comm| spec.run_rank(comm),
        );
        results[1].ctx_report.as_ref().unwrap().fired.len()
    };
    assert_eq!(run_with_index(count - 1), 1, "last op must be reachable");
    assert_eq!(run_with_index(count), 0, "beyond the profile nothing fires");
}

/// Injection plans survive JSON round trips (stored campaigns replay
/// exactly).
#[test]
fn plans_serialize_roundtrip() {
    let plan = InjectionPlan::multi(vec![
        Target {
            region: Region::Common,
            op_index: 17,
            bit: 63,
            operand: Operand::Result,
        },
        Target {
            region: Region::ParallelUnique,
            op_index: 2,
            bit: 0,
            operand: Operand::B,
        },
    ]);
    let json = serde_json::to_string(&plan).unwrap();
    let back: InjectionPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(back, plan);
}

/// The significance predicate: relative thresholding with sane edge
/// behaviour on zeros, infinities and NaNs.
#[test]
fn significance_predicate_edges() {
    // Identical bits: never significant, at any threshold.
    assert!(!significant_divergence(1.0, 1.0, 0.0));
    assert!(!significant_divergence(f64::NAN, f64::NAN, 1e-9));
    // Bitwise mode flags even a one-ulp difference.
    let one_ulp_up = f64::from_bits(1.0f64.to_bits() + 1);
    assert!(significant_divergence(1.0, one_ulp_up, 0.0));
    // Relative mode tolerates sub-threshold noise...
    assert!(!significant_divergence(1.0, one_ulp_up, 1e-9));
    assert!(!significant_divergence(1.0, 1.0 + 1e-12, 1e-9));
    // ...but flags real divergence.
    assert!(significant_divergence(1.0, 1.1, 1e-9));
    // Scale invariance: the same relative error at any magnitude.
    assert!(!significant_divergence(1e20, 1e20 * (1.0 + 1e-12), 1e-9));
    assert!(significant_divergence(1e-20, 1.1e-20, 1e-9));
    // Non-finite disagreements are always significant.
    assert!(significant_divergence(f64::NAN, 1.0, 1e-3));
    assert!(significant_divergence(f64::INFINITY, 1.0, 1e-3));
    // Sign flips around zero.
    assert!(significant_divergence(-1.0, 1.0, 1e-9));
}

/// The same plan injected twice produces bitwise-identical corrupted
/// digests: the whole pipeline is deterministic under corruption too.
#[test]
fn corrupted_runs_are_reproducible() {
    let run_once = || -> Vec<u64> {
        let spec = App::Mg.default_spec();
        let world = World::new(4);
        let plan = InjectionPlan::single(Target {
            region: Region::Common,
            op_index: 1234,
            bit: 53,
            operand: Operand::B,
        });
        let results = world.run_with_ctx(
            move |rank| {
                let p = if rank == 3 {
                    plan.clone()
                } else {
                    InjectionPlan::none()
                };
                Some(RankCtx::new(rank, p))
            },
            move |comm| spec.run_rank(comm),
        );
        results[0]
            .result
            .as_ref()
            .unwrap()
            .digest
            .iter()
            .map(|d| d.to_bits())
            .collect()
    };
    assert_eq!(run_once(), run_once());
}
