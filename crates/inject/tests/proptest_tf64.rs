//! Property-based tests for the tracked-scalar algebra and injection plans.

use proptest::prelude::*;
use resilim_inject::{ctx, InjectionPlan, Operand, RankCtx, Region, Target, Tf64};

fn finite_f64() -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL | prop::num::f64::SUBNORMAL | prop::num::f64::ZERO
}

proptest! {
    /// Untainted inputs always produce untainted outputs whose value
    /// matches plain f64 arithmetic exactly.
    #[test]
    fn clean_arithmetic_is_transparent(a in finite_f64(), b in finite_f64()) {
        let ta = Tf64::new(a);
        let tb = Tf64::new(b);
        for (t, p) in [
            (ta + tb, a + b),
            (ta - tb, a - b),
            (ta * tb, a * b),
            (ta / tb, a / b),
            (ta.min(tb), a.min(b)),
            (ta.max(tb), a.max(b)),
        ] {
            prop_assert_eq!(t.value().to_bits(), p.to_bits());
            prop_assert!(!t.is_tainted());
        }
    }

    /// The shadow world always equals the arithmetic on shadows, and the
    /// corrupted world always equals the arithmetic on values — the two
    /// never cross-contaminate.
    #[test]
    fn worlds_stay_separate(
        av in finite_f64(), ash in finite_f64(),
        bv in finite_f64(), bsh in finite_f64(),
    ) {
        let a = Tf64::from_parts(av, ash);
        let b = Tf64::from_parts(bv, bsh);
        let s = a * b + a;
        prop_assert_eq!(s.value().to_bits(), (av * bv + av).to_bits());
        prop_assert_eq!(s.shadow().to_bits(), (ash * bsh + ash).to_bits());
    }

    /// Taint is exactly "bits differ": deciding taintedness after any op
    /// chain is equivalent to comparing the two worlds.
    #[test]
    fn taint_iff_bits_differ(v in finite_f64(), sh in finite_f64()) {
        let t = Tf64::from_parts(v, sh);
        prop_assert_eq!(t.is_tainted(), v.to_bits() != sh.to_bits());
    }

    /// A double application of the same target restores the value.
    #[test]
    fn flip_is_involutive(x in finite_f64(), bit in 0u8..64) {
        let t = Target { region: Region::Common, op_index: 0, bit, operand: Operand::A };
        prop_assert_eq!(t.apply(t.apply(x)).to_bits(), x.to_bits());
        prop_assert_ne!(t.apply(x).to_bits(), x.to_bits());
    }

    /// Multi-target plans keep all targets and sort them by
    /// (region, op_index).
    #[test]
    fn plan_sorting(indices in prop::collection::vec(0u64..1000, 0..20)) {
        let targets: Vec<Target> = indices.iter().map(|&i| Target {
            region: if i % 3 == 0 { Region::ParallelUnique } else { Region::Common },
            op_index: i,
            bit: (i % 64) as u8,
            operand: Operand::A,
        }).collect();
        let plan = InjectionPlan::multi(targets.clone());
        prop_assert_eq!(plan.len(), targets.len());
        let sorted = plan.targets();
        for w in sorted.windows(2) {
            prop_assert!((w[0].region, w[0].op_index) <= (w[1].region, w[1].op_index));
        }
    }

    /// For any chain of clean ops with a single injected bit-flip, the
    /// shadow equals the completely uninstrumented computation.
    #[test]
    fn shadow_equals_fault_free_run(
        xs in prop::collection::vec(-1e3f64..1e3, 3..40),
        target_idx in 0u64..20,
        bit in 0u8..64,
    ) {
        // Fault-free reference.
        let mut reference = 1.0f64;
        for &x in &xs {
            reference = reference * 0.5 + x;
        }

        let plan = InjectionPlan::single(Target {
            region: Region::Common,
            op_index: target_idx,
            bit,
            operand: Operand::B,
        });
        ctx::install(RankCtx::new(0, plan));
        let mut acc = Tf64::new(1.0);
        for &x in &xs {
            acc = acc * 0.5 + x;
        }
        let report = ctx::take().unwrap().into_report();
        prop_assert_eq!(acc.shadow().to_bits(), reference.to_bits());
        // If the fault fired and the result is tainted, the rank must be
        // contaminated.
        if acc.is_tainted() {
            prop_assert!(report.contaminated);
            prop_assert_eq!(report.fired.len(), 1);
        }
    }

    /// Op counting is independent of injection: a plan never changes how
    /// many dynamic ops are counted.
    #[test]
    fn counting_independent_of_plan(n in 1usize..50, target_idx in 0u64..100) {
        let run = |plan: InjectionPlan| {
            ctx::install(RankCtx::new(0, plan));
            let mut acc = Tf64::new(0.0);
            for i in 0..n {
                acc += i as f64;
            }
            ctx::take().unwrap().into_report()
        };
        let clean = run(InjectionPlan::none());
        let injected = run(InjectionPlan::single(Target {
            region: Region::Common,
            op_index: target_idx,
            bit: 12,
            operand: Operand::A,
        }));
        prop_assert_eq!(clean.profile.injectable(Region::Common), n as u64);
        prop_assert_eq!(
            injected.profile.injectable(Region::Common),
            clean.profile.injectable(Region::Common)
        );
    }
}
