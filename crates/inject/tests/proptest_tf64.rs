//! Property-based tests for the tracked-scalar algebra and injection plans.

use proptest::prelude::*;
use resilim_inject::{ctx, InjectionPlan, OpKind, OpMask, Operand, RankCtx, Region, Target, Tf64};
use std::collections::VecDeque;

fn finite_f64() -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL | prop::num::f64::SUBNORMAL | prop::num::f64::ZERO
}

/// One step of the differential programs below: `acc = acc <op> const`,
/// executed inside `region`.
#[derive(Debug, Clone, Copy)]
struct Step {
    op: u8,
    c: f64,
    region: Region,
}

fn step_kind(op: u8) -> OpKind {
    match op % 6 {
        0 => OpKind::Add,
        1 => OpKind::Sub,
        2 => OpKind::Mul,
        3 => OpKind::Div,
        _ => OpKind::Other, // min / max
    }
}

fn step_apply(op: u8, a: f64, b: f64) -> f64 {
    match op % 6 {
        0 => a + b,
        1 => a - b,
        2 => a * b,
        3 => a / b,
        4 => a.min(b),
        _ => a.max(b),
    }
}

fn step_tf64(op: u8, a: Tf64, b: Tf64) -> Tf64 {
    match op % 6 {
        0 => a + b,
        1 => a - b,
        2 => a * b,
        3 => a / b,
        4 => a.min(b),
        _ => a.max(b),
    }
}

/// Execution-order list of injectable (region, op_index) slots for a
/// program under the default mask, plus which slots sit right after a
/// region switch.
fn injectable_slots(steps: &[Step]) -> (Vec<(Region, u64)>, Vec<usize>) {
    let mut slots = Vec::new();
    let mut boundary_slots = Vec::new();
    let mut inj = [0u64; 2];
    let mut pending_boundary = false;
    let mut prev_region = None;
    for s in steps {
        if prev_region.is_some() && prev_region != Some(s.region) {
            pending_boundary = true;
        }
        prev_region = Some(s.region);
        if OpMask::FP_ARITH.contains(step_kind(s.op)) {
            let r = s.region.index();
            slots.push((s.region, inj[r]));
            inj[r] += 1;
            if pending_boundary {
                boundary_slots.push(slots.len() - 1);
                pending_boundary = false;
            }
        }
    }
    (slots, boundary_slots)
}

/// Reference ("slow-path") interpreter: the same semantics as the hook
/// machinery, written as straight-line code over plain `(value, shadow)`
/// pairs with no thread-locals, no `Cell`s, and no outlined fire path.
/// Returns (value bits, shadow bits, fired, contaminated, injectable
/// counts per region).
#[allow(clippy::type_complexity)]
fn reference_run(
    init: f64,
    steps: &[Step],
    targets: &[Target],
) -> (u64, u64, Vec<(Target, u64, u64, bool)>, bool, [u64; 2]) {
    // Same canonical ordering the plan gives the real run.
    let sorted = InjectionPlan::multi(targets.to_vec());
    let mut queues: [VecDeque<Target>; 2] = [VecDeque::new(), VecDeque::new()];
    for &t in sorted.targets() {
        queues[t.region.index()].push_back(t);
    }
    let (mut v, mut sh) = (init, init);
    let mut inj = [0u64; 2];
    let mut fired = Vec::new();
    let mut contaminated = false;
    for s in steps {
        let r = s.region.index();
        let kind = step_kind(s.op);
        let (mut av, ash) = (v, sh);
        let (mut bv, bsh) = (s.c, s.c);
        let mut recs: Vec<(Target, f64, f64)> = Vec::new();
        if OpMask::FP_ARITH.contains(kind) {
            let idx = inj[r];
            inj[r] += 1;
            while queues[r].front().is_some_and(|t| t.op_index == idx) {
                let t = queues[r].pop_front().unwrap();
                match t.operand {
                    Operand::A => {
                        let before = av;
                        av = t.apply(av);
                        recs.push((t, before, av));
                    }
                    Operand::B => {
                        let before = bv;
                        bv = t.apply(bv);
                        recs.push((t, before, bv));
                    }
                    Operand::Result => recs.push((t, 0.0, 0.0)),
                }
            }
        }
        let mut nv = step_apply(s.op, av, bv);
        let nsh = step_apply(s.op, ash, bsh);
        for rec in recs.iter_mut() {
            if matches!(rec.0.operand, Operand::Result) {
                rec.1 = nv;
                nv = rec.0.apply(nv);
                rec.2 = nv;
            }
        }
        if !recs.is_empty() {
            let masked = nv.to_bits() == nsh.to_bits();
            for (t, before, after) in recs {
                fired.push((t, before.to_bits(), after.to_bits(), masked));
            }
            contaminated = true;
        }
        if nv.to_bits() != nsh.to_bits() {
            contaminated = true;
        }
        v = nv;
        sh = nsh;
    }
    (v.to_bits(), sh.to_bits(), fired, contaminated, inj)
}

/// Strategy for a short program with region switches scattered through it.
fn program() -> impl Strategy<Value = (f64, Vec<Step>)> {
    let step =
        (0u8..6, 0.1f64..3.0, any::<bool>(), any::<bool>()).prop_map(|(op, mag, neg, parallel)| {
            Step {
                op,
                c: if neg { -mag } else { mag },
                region: if parallel {
                    Region::ParallelUnique
                } else {
                    Region::Common
                },
            }
        });
    (-2.0f64..2.0, prop::collection::vec(step, 4..40))
}

proptest! {
    /// Untainted inputs always produce untainted outputs whose value
    /// matches plain f64 arithmetic exactly.
    #[test]
    fn clean_arithmetic_is_transparent(a in finite_f64(), b in finite_f64()) {
        let ta = Tf64::new(a);
        let tb = Tf64::new(b);
        for (t, p) in [
            (ta + tb, a + b),
            (ta - tb, a - b),
            (ta * tb, a * b),
            (ta / tb, a / b),
            (ta.min(tb), a.min(b)),
            (ta.max(tb), a.max(b)),
        ] {
            prop_assert_eq!(t.value().to_bits(), p.to_bits());
            prop_assert!(!t.is_tainted());
        }
    }

    /// The shadow world always equals the arithmetic on shadows, and the
    /// corrupted world always equals the arithmetic on values — the two
    /// never cross-contaminate.
    #[test]
    fn worlds_stay_separate(
        av in finite_f64(), ash in finite_f64(),
        bv in finite_f64(), bsh in finite_f64(),
    ) {
        let a = Tf64::from_parts(av, ash);
        let b = Tf64::from_parts(bv, bsh);
        let s = a * b + a;
        prop_assert_eq!(s.value().to_bits(), (av * bv + av).to_bits());
        prop_assert_eq!(s.shadow().to_bits(), (ash * bsh + ash).to_bits());
    }

    /// Taint is exactly "bits differ": deciding taintedness after any op
    /// chain is equivalent to comparing the two worlds.
    #[test]
    fn taint_iff_bits_differ(v in finite_f64(), sh in finite_f64()) {
        let t = Tf64::from_parts(v, sh);
        prop_assert_eq!(t.is_tainted(), v.to_bits() != sh.to_bits());
    }

    /// A double application of the same target restores the value.
    #[test]
    fn flip_is_involutive(x in finite_f64(), bit in 0u8..64) {
        let t = Target { region: Region::Common, op_index: 0, bit, operand: Operand::A };
        prop_assert_eq!(t.apply(t.apply(x)).to_bits(), x.to_bits());
        prop_assert_ne!(t.apply(x).to_bits(), x.to_bits());
    }

    /// Multi-target plans keep all targets and sort them by
    /// (region, op_index).
    #[test]
    fn plan_sorting(indices in prop::collection::vec(0u64..1000, 0..20)) {
        let targets: Vec<Target> = indices.iter().map(|&i| Target {
            region: if i % 3 == 0 { Region::ParallelUnique } else { Region::Common },
            op_index: i,
            bit: (i % 64) as u8,
            operand: Operand::A,
        }).collect();
        let plan = InjectionPlan::multi(targets.clone());
        prop_assert_eq!(plan.len(), targets.len());
        let sorted = plan.targets();
        for w in sorted.windows(2) {
            prop_assert!((w[0].region, w[0].op_index) <= (w[1].region, w[1].op_index));
        }
    }

    /// For any chain of clean ops with a single injected bit-flip, the
    /// shadow equals the completely uninstrumented computation.
    #[test]
    fn shadow_equals_fault_free_run(
        xs in prop::collection::vec(-1e3f64..1e3, 3..40),
        target_idx in 0u64..20,
        bit in 0u8..64,
    ) {
        // Fault-free reference.
        let mut reference = 1.0f64;
        for &x in &xs {
            reference = reference * 0.5 + x;
        }

        let plan = InjectionPlan::single(Target {
            region: Region::Common,
            op_index: target_idx,
            bit,
            operand: Operand::B,
        });
        ctx::install(RankCtx::new(0, plan));
        let mut acc = Tf64::new(1.0);
        for &x in &xs {
            acc = acc * 0.5 + x;
        }
        let report = ctx::take().unwrap().into_report();
        prop_assert_eq!(acc.shadow().to_bits(), reference.to_bits());
        // If the fault fired and the result is tainted, the rank must be
        // contaminated.
        if acc.is_tainted() {
            prop_assert!(report.contaminated);
            prop_assert_eq!(report.fired.len(), 1);
        }
    }

    /// Differential identity between the optimized hook machinery (the
    /// "fast path": exploded thread-local cells, precomputed next-pending
    /// compare, outlined `#[cold]` fire functions) and a straight-line
    /// reference interpreter with none of those tricks. Final value and
    /// shadow bits, fired records (order, before/after bits, masked
    /// flags), contamination, and injectable counts must all match for
    /// programs with region switches and injection windows placed at
    /// region boundaries, the first op, the last op, and arbitrary slots.
    #[test]
    fn fast_path_matches_reference(
        (init, steps) in program(),
        flips in prop::collection::vec(
            (0usize..4096, 0u8..64, 0u8..3, any::<bool>()),
            0..4,
        ),
    ) {
        let (slots, boundary_slots) = injectable_slots(&steps);
        // The adversarial windows: first injectable op, last one, and the
        // first injectable op after every region switch.
        let mut windows: Vec<usize> = Vec::new();
        if !slots.is_empty() {
            windows.push(0);
            windows.push(slots.len() - 1);
            windows.extend(boundary_slots.iter().copied());
        }
        let mut targets = Vec::new();
        for (which, bit, operand, special) in flips {
            if slots.is_empty() {
                break;
            }
            let slot = if special && !windows.is_empty() {
                windows[which % windows.len()]
            } else {
                which % slots.len()
            };
            let (region, op_index) = slots[slot];
            targets.push(Target {
                region,
                op_index,
                bit,
                operand: match operand {
                    0 => Operand::A,
                    1 => Operand::B,
                    _ => Operand::Result,
                },
            });
        }

        let (want_v, want_sh, want_fired, want_cont, want_inj) =
            reference_run(init, &steps, &targets);

        ctx::install(RankCtx::new(0, InjectionPlan::multi(targets.clone())));
        let mut acc = Tf64::new(init);
        for s in &steps {
            let _g = ctx::enter_region(s.region);
            acc = step_tf64(s.op, acc, Tf64::new(s.c));
        }
        let report = ctx::take().unwrap().into_report();

        prop_assert_eq!(acc.value().to_bits(), want_v);
        prop_assert_eq!(acc.shadow().to_bits(), want_sh);
        prop_assert_eq!(report.contaminated, want_cont);
        prop_assert_eq!(report.profile.injectable(Region::Common), want_inj[0]);
        prop_assert_eq!(report.profile.injectable(Region::ParallelUnique), want_inj[1]);
        prop_assert_eq!(report.planned, targets.len());
        prop_assert_eq!(report.fired.len(), want_fired.len());
        for (got, want) in report.fired.iter().zip(&want_fired) {
            prop_assert_eq!(got.target, want.0);
            prop_assert_eq!(got.before.to_bits(), want.1);
            prop_assert_eq!(got.after.to_bits(), want.2);
            prop_assert_eq!(got.masked_at_site, want.3);
        }
    }

    /// Op counting is independent of injection: a plan never changes how
    /// many dynamic ops are counted.
    #[test]
    fn counting_independent_of_plan(n in 1usize..50, target_idx in 0u64..100) {
        let run = |plan: InjectionPlan| {
            ctx::install(RankCtx::new(0, plan));
            let mut acc = Tf64::new(0.0);
            for i in 0..n {
                acc += i as f64;
            }
            ctx::take().unwrap().into_report()
        };
        let clean = run(InjectionPlan::none());
        let injected = run(InjectionPlan::single(Target {
            region: Region::Common,
            op_index: target_idx,
            bit: 12,
            operand: Operand::A,
        }));
        prop_assert_eq!(clean.profile.injectable(Region::Common), n as u64);
        prop_assert_eq!(
            injected.profile.injectable(Region::Common),
            clean.profile.injectable(Region::Common)
        );
    }
}
