//! Injectable-operation masks: which kinds of tracked operations are
//! fault-injection targets.
//!
//! The paper always injects into floating-point add/multiply but states
//! the methodology "does not make any assumption on which specific
//! instruction type should be considered" (§2). [`OpMask`] makes the
//! target set a campaign parameter: the default reproduces the paper
//! (add/sub/mul); `OpMask::ALL` extends to divisions and the transcendental
//! /selection operations, and custom masks isolate single kinds.

use crate::profile::OpKind;
use serde::{Deserialize, Serialize};

/// A set of [`OpKind`]s eligible for fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpMask(u8);

impl OpMask {
    /// The paper's target set: floating-point add, sub, mul.
    #[allow(clippy::unusual_byte_groupings)]
    pub const FP_ARITH: OpMask = OpMask(0b0_0111);
    /// Divisions only.
    #[allow(clippy::unusual_byte_groupings)]
    pub const DIV: OpMask = OpMask(0b0_1000);
    /// Everything the tracker sees (including sqrt/exp/min/max "other").
    #[allow(clippy::unusual_byte_groupings)]
    pub const ALL: OpMask = OpMask(0b1_1111);

    /// Empty mask (profiling-only contexts).
    pub const fn empty() -> OpMask {
        OpMask(0)
    }

    /// Mask containing exactly the given kinds.
    pub fn of(kinds: &[OpKind]) -> OpMask {
        let mut bits = 0u8;
        for k in kinds {
            bits |= 1 << k.index();
        }
        OpMask(bits)
    }

    /// Whether `kind` is an injection target under this mask.
    #[inline]
    pub const fn contains(self, kind: OpKind) -> bool {
        self.0 & (1 << kind.index()) != 0
    }

    /// Union of two masks.
    pub const fn union(self, other: OpMask) -> OpMask {
        OpMask(self.0 | other.0)
    }

    /// The raw bit pattern (stable across processes; cache keys hash it).
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// The kinds in this mask.
    pub fn kinds(self) -> Vec<OpKind> {
        OpKind::ALL
            .into_iter()
            .filter(|k| self.contains(*k))
            .collect()
    }
}

impl Default for OpMask {
    /// The paper's default: FP add/sub/mul.
    fn default() -> Self {
        OpMask::FP_ARITH
    }
}

impl std::fmt::Display for OpMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == OpMask::FP_ARITH {
            return write!(f, "fp-arith");
        }
        if *self == OpMask::ALL {
            return write!(f, "all");
        }
        let names: Vec<&str> = self
            .kinds()
            .into_iter()
            .map(|k| match k {
                OpKind::Add => "add",
                OpKind::Sub => "sub",
                OpKind::Mul => "mul",
                OpKind::Div => "div",
                OpKind::Other => "other",
            })
            .collect();
        write!(f, "{}", names.join("+"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let m = OpMask::default();
        assert!(m.contains(OpKind::Add));
        assert!(m.contains(OpKind::Sub));
        assert!(m.contains(OpKind::Mul));
        assert!(!m.contains(OpKind::Div));
        assert!(!m.contains(OpKind::Other));
    }

    #[test]
    fn of_and_kinds_roundtrip() {
        let m = OpMask::of(&[OpKind::Div, OpKind::Mul]);
        assert_eq!(m.kinds(), vec![OpKind::Mul, OpKind::Div]);
        assert!(!m.contains(OpKind::Add));
    }

    #[test]
    fn union_combines() {
        let m = OpMask::FP_ARITH.union(OpMask::DIV);
        assert!(m.contains(OpKind::Div));
        assert!(m.contains(OpKind::Add));
        assert!(!m.contains(OpKind::Other));
    }

    #[test]
    fn all_contains_everything() {
        for k in OpKind::ALL {
            assert!(OpMask::ALL.contains(k));
        }
        for k in OpKind::ALL {
            assert!(!OpMask::empty().contains(k));
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(OpMask::FP_ARITH.to_string(), "fp-arith");
        assert_eq!(OpMask::ALL.to_string(), "all");
        assert_eq!(OpMask::DIV.to_string(), "div");
        assert_eq!(
            OpMask::of(&[OpKind::Add, OpKind::Other]).to_string(),
            "add+other"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let m = OpMask::of(&[OpKind::Div]);
        let s = serde_json::to_string(&m).unwrap();
        let back: OpMask = serde_json::from_str(&s).unwrap();
        assert_eq!(back, m);
    }
}
