//! Fault-injection test outcomes (paper §2).
//!
//! Every fault-injection test ends in exactly one of three outcomes:
//!
//! * **Success** — the output is bitwise identical to the fault-free run,
//!   *or* differs but passes the application's checker;
//! * **SDC** (silent data corruption) — the output differs from the
//!   fault-free run and fails the checker;
//! * **Failure** — the application crashed or hung.

use serde::{Deserialize, Serialize};

/// Why a test counted as a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// A rank panicked (models an application crash/abort).
    Crash,
    /// The hang guard tripped: the run executed far more FP ops than the
    /// fault-free run, or a receive timed out.
    Hang,
    /// A detected-uncorrectable error killed a rank (`--fault-model due`):
    /// the hardware flagged the corruption and halted the rank instead of
    /// letting it continue with a wrong value.
    Due,
}

/// The three paper-defined outcome classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OutcomeKind {
    /// Output valid (identical to fault-free, or passes the checker).
    Success,
    /// Output differs from fault-free and fails the checker.
    Sdc,
    /// Crash or hang.
    Failure,
}

impl OutcomeKind {
    /// All outcome kinds, index-aligned with [`OutcomeKind::index`].
    pub const ALL: [OutcomeKind; 3] =
        [OutcomeKind::Success, OutcomeKind::Sdc, OutcomeKind::Failure];

    /// Stable array index.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            OutcomeKind::Success => 0,
            OutcomeKind::Sdc => 1,
            OutcomeKind::Failure => 2,
        }
    }
}

impl std::fmt::Display for OutcomeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutcomeKind::Success => write!(f, "success"),
            OutcomeKind::Sdc => write!(f, "SDC"),
            OutcomeKind::Failure => write!(f, "failure"),
        }
    }
}

/// Full record of one fault-injection test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestOutcome {
    /// Outcome class.
    pub kind: OutcomeKind,
    /// Failure detail when `kind == Failure`.
    pub failure: Option<FailureKind>,
    /// Whether the output was bitwise identical to the fault-free run
    /// (error fully masked end-to-end).
    pub masked: bool,
    /// Number of MPI ranks contaminated by the end of the run (≥ 1 for any
    /// test whose injection fired; the paper's Figures 1/2 histogram this).
    pub contaminated_ranks: usize,
    /// Number of planned faults that actually fired.
    pub injections_fired: usize,
    /// Whether the corruption was *detected* during the run — by the DUE
    /// machinery (the kill is the detection) or by a replica payload
    /// comparison under `--replicate`. Always `false` for undetectable
    /// silent corruption without a detector deployed.
    pub detected: bool,
}

impl TestOutcome {
    /// A successful, fully masked test with `contaminated` contaminated ranks.
    pub fn success(masked: bool, contaminated: usize, fired: usize) -> Self {
        TestOutcome {
            kind: OutcomeKind::Success,
            failure: None,
            masked,
            contaminated_ranks: contaminated,
            injections_fired: fired,
            detected: false,
        }
    }

    /// An SDC test.
    pub fn sdc(contaminated: usize, fired: usize) -> Self {
        TestOutcome {
            kind: OutcomeKind::Sdc,
            failure: None,
            masked: false,
            contaminated_ranks: contaminated,
            injections_fired: fired,
            detected: false,
        }
    }

    /// A failed (crashed/hung) test.
    pub fn failure(kind: FailureKind, contaminated: usize, fired: usize) -> Self {
        TestOutcome {
            kind: OutcomeKind::Failure,
            failure: Some(kind),
            masked: false,
            contaminated_ranks: contaminated,
            injections_fired: fired,
            detected: false,
        }
    }

    /// Mark whether the corruption was detected (DUE kill or replica
    /// payload comparison).
    pub fn with_detected(mut self, detected: bool) -> Self {
        self.detected = detected;
        self
    }

    /// Causality invariant every recorded outcome must satisfy: a test
    /// whose planned faults never fired cannot have contaminated any
    /// rank, and a `Failure` kind carries a failure detail (and only a
    /// `Failure` does). The distribution oracle of `resilim check`
    /// asserts this over every measured trial.
    pub fn is_causally_consistent(&self) -> bool {
        let fired_implies_taint = self.injections_fired > 0 || self.contaminated_ranks == 0;
        let failure_detail_matches = (self.kind == OutcomeKind::Failure) == self.failure.is_some();
        // Detection is an observation of a real corruption: it cannot
        // happen in a trial where nothing fired. And a DUE kill *is* a
        // detection, so a Due failure must carry `detected`.
        let detected_implies_fired = !self.detected || self.injections_fired > 0;
        let due_implies_detected = self.failure != Some(FailureKind::Due) || self.detected;
        fired_implies_taint
            && failure_detail_matches
            && detected_implies_fired
            && due_implies_detected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_align() {
        for (i, k) in OutcomeKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn constructors() {
        let s = TestOutcome::success(true, 1, 1);
        assert_eq!(s.kind, OutcomeKind::Success);
        assert!(s.masked);
        let d = TestOutcome::sdc(3, 1);
        assert_eq!(d.kind, OutcomeKind::Sdc);
        assert_eq!(d.contaminated_ranks, 3);
        let f = TestOutcome::failure(FailureKind::Hang, 2, 1);
        assert_eq!(f.kind, OutcomeKind::Failure);
        assert_eq!(f.failure, Some(FailureKind::Hang));
    }

    #[test]
    fn display() {
        assert_eq!(OutcomeKind::Success.to_string(), "success");
        assert_eq!(OutcomeKind::Sdc.to_string(), "SDC");
        assert_eq!(OutcomeKind::Failure.to_string(), "failure");
    }

    #[test]
    fn causal_consistency() {
        assert!(TestOutcome::success(true, 0, 0).is_causally_consistent());
        assert!(TestOutcome::success(false, 2, 1).is_causally_consistent());
        assert!(TestOutcome::failure(FailureKind::Crash, 1, 1).is_causally_consistent());
        // Contamination without a fired injection is impossible.
        assert!(!TestOutcome::success(false, 1, 0).is_causally_consistent());
        // Failure detail must accompany exactly the Failure kind.
        let mut broken = TestOutcome::sdc(1, 1);
        broken.failure = Some(FailureKind::Hang);
        assert!(!broken.is_causally_consistent());
        let mut missing = TestOutcome::failure(FailureKind::Hang, 1, 1);
        missing.failure = None;
        assert!(!missing.is_causally_consistent());
    }

    #[test]
    fn detection_causality() {
        // A DUE kill is itself a detection event.
        let due = TestOutcome::failure(FailureKind::Due, 1, 1);
        assert!(!due.is_causally_consistent());
        assert!(due.with_detected(true).is_causally_consistent());
        // Replica detection on a fired trial is fine; detection with no
        // fired injection is impossible.
        assert!(TestOutcome::sdc(2, 1)
            .with_detected(true)
            .is_causally_consistent());
        assert!(!TestOutcome::success(true, 0, 0)
            .with_detected(true)
            .is_causally_consistent());
    }

    #[test]
    fn serde_roundtrip() {
        let o = TestOutcome::failure(FailureKind::Crash, 4, 2);
        let s = serde_json::to_string(&o).unwrap();
        let back: TestOutcome = serde_json::from_str(&s).unwrap();
        assert_eq!(back, o);
    }
}
