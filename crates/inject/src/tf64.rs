//! [`Tf64`]: a tracked IEEE-754 binary64 scalar.
//!
//! A `Tf64` carries two worlds:
//!
//! * **value** — what the (possibly corrupted) execution actually computes;
//! * **shadow** — what the fault-free execution would have computed along
//!   the *same control path*.
//!
//! A value is *tainted* exactly when the two differ bitwise. This gives
//! physically faithful error propagation: a flipped low mantissa bit that
//! is rounded away, multiplied by zero, or discarded by a `min`/`max`
//! selection stops being tainted, while an error that survives arithmetic
//! keeps its taint through arbitrarily long dataflow — including message
//! payloads between simulated MPI ranks.
//!
//! Comparisons (`PartialOrd`/`PartialEq`) are decided by the corrupted
//! world, because that is the execution that actually runs; the shadow
//! world follows along the corrupted control path (the same approximation
//! made by trace-based injectors).

use crate::ctx::{hook_binop, hook_unop};
use crate::profile::OpKind;
use std::cmp::Ordering;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A tracked `f64` (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Tf64 {
    v: f64,
    sh: f64,
}

impl Tf64 {
    /// An untainted zero.
    pub const ZERO: Tf64 = Tf64 { v: 0.0, sh: 0.0 };
    /// An untainted one.
    pub const ONE: Tf64 = Tf64 { v: 1.0, sh: 1.0 };

    /// An untainted tracked scalar.
    #[inline]
    pub const fn new(x: f64) -> Tf64 {
        Tf64 { v: x, sh: x }
    }

    /// Assemble from explicit corrupted/shadow values (used by the
    /// injection hook and by message deserialization).
    #[inline]
    pub const fn from_parts(value: f64, shadow: f64) -> Tf64 {
        Tf64 {
            v: value,
            sh: shadow,
        }
    }

    /// The corrupted-world value (what the run actually computes).
    #[inline]
    pub const fn value(self) -> f64 {
        self.v
    }

    /// The fault-free shadow value.
    #[inline]
    pub const fn shadow(self) -> f64 {
        self.sh
    }

    /// True when corrupted and shadow worlds differ bitwise.
    ///
    /// Two NaNs with identical bit patterns compare untainted: bitwise
    /// comparison deliberately side-steps `NaN != NaN`.
    #[inline]
    pub fn is_tainted(self) -> bool {
        self.v.to_bits() != self.sh.to_bits()
    }

    /// Whether the corrupted value is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.v.is_finite()
    }

    /// Whether the corrupted value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.v.is_nan()
    }

    /// Square root (tracked, not injectable).
    #[inline]
    pub fn sqrt(self) -> Tf64 {
        hook_unop(OpKind::Other, self, f64::sqrt)
    }

    /// Absolute value (tracked, not injectable).
    #[inline]
    pub fn abs(self) -> Tf64 {
        hook_unop(OpKind::Other, self, f64::abs)
    }

    /// Natural exponential (tracked, not injectable).
    #[inline]
    pub fn exp(self) -> Tf64 {
        hook_unop(OpKind::Other, self, f64::exp)
    }

    /// Natural logarithm (tracked, not injectable).
    #[inline]
    pub fn ln(self) -> Tf64 {
        hook_unop(OpKind::Other, self, f64::ln)
    }

    /// Sine (tracked, not injectable).
    #[inline]
    pub fn sin(self) -> Tf64 {
        hook_unop(OpKind::Other, self, f64::sin)
    }

    /// Cosine (tracked, not injectable).
    #[inline]
    pub fn cos(self) -> Tf64 {
        hook_unop(OpKind::Other, self, f64::cos)
    }

    /// Selection minimum: each world selects independently, so an error in
    /// a non-selected candidate is masked (as on real hardware).
    #[inline]
    pub fn min(self, other: Tf64) -> Tf64 {
        hook_binop(OpKind::Other, self, other, f64::min)
    }

    /// Selection maximum (see [`Tf64::min`]).
    #[inline]
    pub fn max(self, other: Tf64) -> Tf64 {
        hook_binop(OpKind::Other, self, other, f64::max)
    }

    /// Integer power via tracked multiplications.
    pub fn powi(self, n: i32) -> Tf64 {
        hook_binop(OpKind::Other, self, Tf64::new(n as f64), |a, b| {
            a.powi(b as i32)
        })
    }

    /// Reciprocal (tracked division).
    #[inline]
    pub fn recip(self) -> Tf64 {
        Tf64::ONE / self
    }

    /// Strip taint: both worlds become the corrupted value.
    ///
    /// Used to model operations that round-trip values through a channel
    /// the tracker cannot see (e.g. text output re-parsed as input).
    #[inline]
    pub fn launder(self) -> Tf64 {
        Tf64::new(self.v)
    }
}

impl From<f64> for Tf64 {
    #[inline]
    fn from(x: f64) -> Tf64 {
        Tf64::new(x)
    }
}

impl From<i32> for Tf64 {
    #[inline]
    fn from(x: i32) -> Tf64 {
        Tf64::new(x as f64)
    }
}

macro_rules! binop_impl {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $kind:expr, $f:expr) => {
        impl $trait for Tf64 {
            type Output = Tf64;
            #[inline]
            fn $method(self, rhs: Tf64) -> Tf64 {
                hook_binop($kind, self, rhs, $f)
            }
        }
        impl $trait<f64> for Tf64 {
            type Output = Tf64;
            #[inline]
            fn $method(self, rhs: f64) -> Tf64 {
                hook_binop($kind, self, Tf64::new(rhs), $f)
            }
        }
        impl $trait<Tf64> for f64 {
            type Output = Tf64;
            #[inline]
            fn $method(self, rhs: Tf64) -> Tf64 {
                hook_binop($kind, Tf64::new(self), rhs, $f)
            }
        }
        impl $assign_trait for Tf64 {
            #[inline]
            fn $assign_method(&mut self, rhs: Tf64) {
                *self = hook_binop($kind, *self, rhs, $f);
            }
        }
        impl $assign_trait<f64> for Tf64 {
            #[inline]
            fn $assign_method(&mut self, rhs: f64) {
                *self = hook_binop($kind, *self, Tf64::new(rhs), $f);
            }
        }
    };
}

binop_impl!(Add, add, AddAssign, add_assign, OpKind::Add, |a, b| a + b);
binop_impl!(Sub, sub, SubAssign, sub_assign, OpKind::Sub, |a, b| a - b);
binop_impl!(Mul, mul, MulAssign, mul_assign, OpKind::Mul, |a, b| a * b);
binop_impl!(Div, div, DivAssign, div_assign, OpKind::Div, |a, b| a / b);

impl Neg for Tf64 {
    type Output = Tf64;
    /// Negation is untracked (sign flip cannot absorb or create taint and
    /// is not an FP ALU op in the paper's injectable set).
    #[inline]
    fn neg(self) -> Tf64 {
        Tf64::from_parts(-self.v, -self.sh)
    }
}

impl PartialEq for Tf64 {
    /// Decided by the corrupted world (the execution that actually runs).
    #[inline]
    fn eq(&self, other: &Tf64) -> bool {
        self.v == other.v
    }
}

impl PartialEq<f64> for Tf64 {
    #[inline]
    fn eq(&self, other: &f64) -> bool {
        self.v == *other
    }
}

impl PartialOrd for Tf64 {
    /// Decided by the corrupted world.
    #[inline]
    fn partial_cmp(&self, other: &Tf64) -> Option<Ordering> {
        self.v.partial_cmp(&other.v)
    }
}

impl PartialOrd<f64> for Tf64 {
    #[inline]
    fn partial_cmp(&self, other: &f64) -> Option<Ordering> {
        self.v.partial_cmp(other)
    }
}

impl std::fmt::Display for Tf64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_tainted() {
            write!(f, "{}~(sh {})", self.v, self.sh)
        } else {
            write!(f, "{}", self.v)
        }
    }
}

/// Sum of a slice with a fixed left-to-right order (deterministic across
/// runs, which golden-output comparison relies on).
pub fn sum(xs: &[Tf64]) -> Tf64 {
    let mut acc = Tf64::ZERO;
    for &x in xs {
        acc += x;
    }
    acc
}

/// Dot product with fixed order.
pub fn dot(a: &[Tf64], b: &[Tf64]) -> Tf64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut acc = Tf64::ZERO;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// Euclidean norm with fixed order.
pub fn norm2(xs: &[Tf64]) -> Tf64 {
    dot(xs, xs).sqrt()
}

/// Whether any element of a slice is tainted.
pub fn any_tainted(xs: &[Tf64]) -> bool {
    xs.iter().any(|x| x.is_tainted())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_matches_f64() {
        let a = Tf64::new(3.5);
        let b = Tf64::new(-1.25);
        assert_eq!((a + b).value(), 3.5 + -1.25);
        assert_eq!((a - b).value(), 3.5 - -1.25);
        assert_eq!((a * b).value(), 3.5 * -1.25);
        assert_eq!((a / b).value(), 3.5 / -1.25);
        assert_eq!((-a).value(), -3.5);
        assert_eq!(a.sqrt().value(), 3.5f64.sqrt());
        assert_eq!(a.abs().value(), 3.5);
        assert_eq!(b.abs().value(), 1.25);
    }

    #[test]
    fn mixed_f64_ops() {
        let a = Tf64::new(2.0);
        assert_eq!((a + 1.0).value(), 3.0);
        assert_eq!((1.0 + a).value(), 3.0);
        assert_eq!((a * 4.0).value(), 8.0);
        assert_eq!((8.0 / a).value(), 4.0);
        let mut m = a;
        m += 1.0;
        m *= 2.0;
        assert_eq!(m.value(), 6.0);
    }

    #[test]
    fn taint_propagates_through_arithmetic() {
        let t = Tf64::from_parts(1.0 + 1e-9, 1.0);
        assert!(t.is_tainted());
        let clean = Tf64::new(2.0);
        assert!((t + clean).is_tainted());
        assert!((t * clean).is_tainted());
        assert!((clean / t).is_tainted());
        assert!(t.sqrt().is_tainted());
    }

    #[test]
    fn taint_absorbed_by_zero_multiplication() {
        let t = Tf64::from_parts(1.0 + 1e-9, 1.0);
        let z = Tf64::ZERO;
        let out = t * z;
        assert!(!out.is_tainted());
        assert_eq!(out.value(), 0.0);
    }

    #[test]
    fn taint_absorbed_by_rounding() {
        // 1e20 + tiny == 1e20 in binary64.
        let t = Tf64::from_parts(1e-9, 2e-9);
        assert!(t.is_tainted());
        let big = Tf64::new(1e20);
        let out = big + t;
        assert!(!out.is_tainted());
    }

    #[test]
    fn taint_masked_by_min_selection() {
        let corrupt_large = Tf64::from_parts(99.0, 5.0);
        let small = Tf64::new(1.0);
        // Both worlds select 1.0 -> untainted.
        assert!(!corrupt_large.min(small).is_tainted());
        // max selects 99.0 in corrupted world, 5.0 in shadow -> tainted.
        assert!(corrupt_large.max(small).is_tainted());
    }

    #[test]
    fn comparisons_follow_corrupted_world() {
        let t = Tf64::from_parts(10.0, 1.0);
        assert!(t > 5.0);
        assert!(t > Tf64::new(5.0));
        assert!(t == 10.0);
    }

    #[test]
    fn nan_same_bits_is_untainted() {
        let n = f64::NAN;
        let t = Tf64::from_parts(n, n);
        assert!(!t.is_tainted());
        assert!(t.is_nan());
    }

    #[test]
    fn launder_strips_taint() {
        let t = Tf64::from_parts(2.0, 1.0);
        assert!(t.is_tainted());
        let l = t.launder();
        assert!(!l.is_tainted());
        assert_eq!(l.value(), 2.0);
    }

    #[test]
    fn slice_helpers() {
        let xs = [Tf64::new(1.0), Tf64::new(2.0), Tf64::new(3.0)];
        assert_eq!(sum(&xs).value(), 6.0);
        assert_eq!(dot(&xs, &xs).value(), 14.0);
        assert_eq!(norm2(&xs).value(), 14.0f64.sqrt());
        assert!(!any_tainted(&xs));
        let ys = [Tf64::new(1.0), Tf64::from_parts(2.0, 2.5)];
        assert!(any_tainted(&ys));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Tf64::new(1.5).to_string(), "1.5");
        assert_eq!(Tf64::from_parts(1.5, 2.0).to_string(), "1.5~(sh 2)");
    }

    #[test]
    fn neg_preserves_taint_state() {
        let t = Tf64::from_parts(1.0, 2.0);
        assert!((-t).is_tainted());
        let c = Tf64::new(1.0);
        assert!(!(-c).is_tainted());
    }

    #[test]
    fn powi_and_recip() {
        let a = Tf64::new(2.0);
        assert_eq!(a.powi(10).value(), 1024.0);
        assert_eq!(a.recip().value(), 0.5);
    }
}
