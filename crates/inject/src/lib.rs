#![warn(missing_docs)]
//! # resilim-inject
//!
//! The fault-injection substrate of the `resilim` workspace: a
//! tracked-scalar replacement for the binary-level F-SEFI injector used by
//! the paper *Modeling Application Resilience in Large-scale Parallel
//! Execution* (ICPP 2018).
//!
//! ## How it works
//!
//! Applications do their floating-point arithmetic on [`Tf64`] instead of
//! `f64`. Every injectable operation (add, sub, mul by default) routes
//! through a per-thread [`RankCtx`] hook that
//!
//! 1. **counts** the dynamic operation index, per [`Region`] (common vs
//!    parallel-unique computation, Observation 1/2 of the paper),
//! 2. **injects** a bit flip into a chosen operand when the dynamic index
//!    matches a [`Target`] of the installed [`InjectionPlan`], and
//! 3. **tracks contamination** via *shadow execution*: every [`Tf64`]
//!    carries both the corrupted value and the value the fault-free
//!    execution would have produced. A value is *tainted* exactly when the
//!    two differ bitwise, so rounding absorption, multiplication by zero,
//!    and min/max selection mask errors just like they do on real hardware.
//!
//! The shadow world follows the corrupted world's control flow (comparisons
//! are decided by corrupted values), mirroring how trace-based injectors
//! such as F-SEFI observe a single — corrupted — execution.
//!
//! ## Example
//!
//! ```
//! use resilim_inject::{Tf64, RankCtx, InjectionPlan, Target, Region, Operand, ctx};
//!
//! // Build a plan that flips bit 52 of operand A of the 2nd dynamic FP op.
//! let plan = InjectionPlan::single(Target {
//!     region: Region::Common,
//!     op_index: 1,
//!     bit: 52,
//!     operand: Operand::A,
//! });
//! ctx::install(RankCtx::new(0, plan));
//!
//! let a = Tf64::new(1.0);
//! let b = Tf64::new(2.0);
//! let s = a + b;          // op 0: clean
//! let t = s * b;          // op 1: operand A (= s) gets bit 52 flipped
//! assert!(t.is_tainted());
//! assert_eq!(t.shadow(), 6.0);
//!
//! let report = ctx::take().unwrap().into_report();
//! assert_eq!(report.fired.len(), 1);
//! assert!(report.contaminated);
//! ```

pub mod ctx;
pub mod fault;
pub mod mask;
pub mod outcome;
pub mod plan;
pub mod profile;
pub mod region;
mod smallbuf;
pub mod tf64;

pub use ctx::{CtxReport, FiredRecord, RankCtx};
pub use fault::{FaultModel, FaultModelSpec};
pub use mask::OpMask;
pub use outcome::{FailureKind, OutcomeKind, TestOutcome};
pub use plan::{FaultPattern, InjectionPlan, Operand, Target};
pub use profile::{OpKind, OpProfile, RegionCounts};
pub use region::{Region, RegionGuard};
pub use tf64::Tf64;
