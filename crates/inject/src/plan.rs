//! Injection plans: *where* and *how* faults are injected.
//!
//! A fault injection *test* (paper §2) randomly selects a dynamic
//! floating-point instruction and flips a random bit in one of its
//! operands. In this crate that selection is precomputed into an
//! [`InjectionPlan`] — a set of [`Target`]s — so a test is fully
//! deterministic and reproducible from its seed.
//!
//! Plans with multiple targets express the paper's *serial multi-error*
//! deployments (`FI_ser_x`: a serial run with `x` errors injected into the
//! common computation, §3.3/§4).

use crate::region::Region;
use serde::{Deserialize, Serialize};

/// Which operand of a binary FP operation receives the bit flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operand {
    /// Left-hand operand.
    A,
    /// Right-hand operand.
    B,
    /// The operation's result (an "output operand" in the paper's terms).
    Result,
}

/// The fault pattern of a deployment (paper §2, "fault injection
/// configuration").
///
/// The paper evaluates single-bit flips but explicitly keeps the model
/// agnostic of the pattern; multi-bit flips are provided as the natural
/// extension and exercised by the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultPattern {
    /// Flip exactly one bit of the selected operand.
    SingleBit,
    /// Flip `k` distinct bits of the selected operand.
    MultiBit(u8),
}

impl FaultPattern {
    /// Number of bits this pattern flips.
    pub fn bits_flipped(self) -> u8 {
        match self {
            FaultPattern::SingleBit => 1,
            FaultPattern::MultiBit(k) => k,
        }
    }
}

/// One planned fault: flip `bit` of `operand` of the `op_index`-th dynamic
/// injectable FP operation executed in `region` (per-region counting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Target {
    /// Region whose dynamic-op counter the index refers to.
    pub region: Region,
    /// Zero-based dynamic index among injectable ops in `region`.
    pub op_index: u64,
    /// Bit position to flip, `0..=63` over the IEEE-754 binary64 pattern.
    pub bit: u8,
    /// Which operand is corrupted.
    pub operand: Operand,
}

impl Target {
    /// Flip this target's bit(s) in a raw `f64`.
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        f64::from_bits(x.to_bits() ^ (1u64 << (self.bit & 63)))
    }
}

/// A full plan for one fault-injection test: all faults to inject into one
/// rank's execution.
///
/// Targets are stored sorted by `(region, op_index)`; duplicate
/// `(region, op_index)` pairs are allowed (two flips on the same dynamic
/// op) and fire in order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionPlan {
    targets: Vec<Target>,
}

impl InjectionPlan {
    /// The empty plan: count ops, inject nothing (profiling mode).
    pub fn none() -> Self {
        InjectionPlan::default()
    }

    /// Plan with a single target.
    pub fn single(t: Target) -> Self {
        InjectionPlan { targets: vec![t] }
    }

    /// Plan with arbitrarily many targets (serial multi-error deployments).
    pub fn multi(mut targets: Vec<Target>) -> Self {
        targets.sort_by_key(|t| (t.region, t.op_index));
        InjectionPlan { targets }
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when this plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Targets in firing order.
    pub fn targets(&self) -> &[Target] {
        &self.targets
    }

    /// Split the plan into per-region firing queues (ascending `op_index`).
    pub(crate) fn into_queues(self) -> [std::collections::VecDeque<Target>; 2] {
        let mut queues: [std::collections::VecDeque<Target>; 2] = Default::default();
        for t in self.targets {
            queues[t.region.index()].push_back(t);
        }
        queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_flips_exactly_one_bit() {
        let t = Target {
            region: Region::Common,
            op_index: 0,
            bit: 7,
            operand: Operand::A,
        };
        let x = 3.25_f64;
        let y = t.apply(x);
        assert_eq!(x.to_bits() ^ y.to_bits(), 1 << 7);
        // Applying twice restores the original value.
        assert_eq!(t.apply(y).to_bits(), x.to_bits());
    }

    #[test]
    fn apply_masks_bit_index() {
        let t = Target {
            region: Region::Common,
            op_index: 0,
            bit: 64 + 3, // masked to 3
            operand: Operand::B,
        };
        let x = 1.0_f64;
        assert_eq!(t.apply(x).to_bits(), x.to_bits() ^ (1 << 3));
    }

    #[test]
    fn sign_bit_flip_negates() {
        let t = Target {
            region: Region::Common,
            op_index: 0,
            bit: 63,
            operand: Operand::A,
        };
        assert_eq!(t.apply(2.5), -2.5);
    }

    #[test]
    fn multi_plan_sorts_targets() {
        let mk = |region, op_index| Target {
            region,
            op_index,
            bit: 0,
            operand: Operand::A,
        };
        let plan = InjectionPlan::multi(vec![
            mk(Region::ParallelUnique, 5),
            mk(Region::Common, 9),
            mk(Region::Common, 2),
        ]);
        let idx: Vec<_> = plan
            .targets()
            .iter()
            .map(|t| (t.region, t.op_index))
            .collect();
        assert_eq!(
            idx,
            vec![
                (Region::Common, 2),
                (Region::Common, 9),
                (Region::ParallelUnique, 5)
            ]
        );
    }

    #[test]
    fn queues_split_by_region() {
        let mk = |region, op_index| Target {
            region,
            op_index,
            bit: 1,
            operand: Operand::B,
        };
        let plan = InjectionPlan::multi(vec![
            mk(Region::Common, 3),
            mk(Region::ParallelUnique, 1),
            mk(Region::Common, 7),
        ]);
        let queues = plan.into_queues();
        assert_eq!(queues[Region::Common.index()].len(), 2);
        assert_eq!(queues[Region::ParallelUnique.index()].len(), 1);
    }

    #[test]
    fn fault_pattern_bits() {
        assert_eq!(FaultPattern::SingleBit.bits_flipped(), 1);
        assert_eq!(FaultPattern::MultiBit(3).bits_flipped(), 3);
    }

    #[test]
    fn empty_plan() {
        assert!(InjectionPlan::none().is_empty());
        assert_eq!(InjectionPlan::none().len(), 0);
    }
}
