//! Per-rank injection context and the thread-local hook machinery.
//!
//! Every simulated MPI rank runs on its own thread with a [`RankCtx`]
//! installed. The [`Tf64`] arithmetic operators call into the
//! context through [`hook_binop`]/[`hook_unop`]; when no context is
//! installed the hooks degrade to plain shadow-tracked arithmetic (useful
//! in unit tests and examples).
//!
//! ## Hot path
//!
//! The hooks run on *every* tracked floating-point operation, so their
//! common case is the throughput floor of the whole campaign engine. The
//! installed context lives exploded into thread-local cells (`HotCtx`):
//! plain `Cell`s for everything the per-op path reads or bumps (region,
//! counters, mask bits, pending-injection indices, contamination flag)
//! and a `RefCell` only for the cold state (target queues, fired records,
//! rank id). The per-op path therefore never borrows a `RefCell`, never
//! allocates, and never calls through a function pointer: it is a handful
//! of `Cell` loads/stores plus one compare against the precomputed
//! next-pending op index. Firing an injection, tripping the hang guard,
//! and first-contamination marking are outlined `#[cold]` functions.
//! [`install`]/[`take`] convert between the packed [`RankCtx`] and the
//! exploded form at rank boundaries — two points per trial, off the hot
//! path.

use crate::mask::OpMask;
use crate::plan::{InjectionPlan, Operand, Target};
use crate::profile::{OpKind, OpProfile};
use crate::region::{Region, RegionGuard};
use crate::smallbuf::InlineVec;
use crate::tf64::Tf64;
#[cfg(feature = "obs")]
use resilim_obs as obs;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

/// Trace name for a region (`"common"` / `"parallel_unique"`).
#[cfg(feature = "obs")]
fn region_trace_name(r: Region) -> &'static str {
    match r {
        Region::Common => "common",
        Region::ParallelUnique => "parallel_unique",
    }
}

/// A fault that actually fired during execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiredRecord {
    /// The planned target that fired.
    pub target: Target,
    /// Operation kind at the firing site.
    pub kind: OpKind,
    /// Operand value before the flip (corrupted-world value).
    pub before: f64,
    /// Operand value after the flip.
    pub after: f64,
    /// Whether the flip was *instantly masked*: the operation result was
    /// bitwise identical to the shadow result despite the flip.
    pub masked_at_site: bool,
}

/// Summary extracted from a [`RankCtx`] after a rank finishes.
#[derive(Debug, Clone, Default)]
pub struct CtxReport {
    /// Rank id the context belonged to.
    pub rank: usize,
    /// Dynamic-op counts observed.
    pub profile: OpProfile,
    /// Faults that fired (may be fewer than planned if corruption shortened
    /// the execution before later targets were reached).
    pub fired: Vec<FiredRecord>,
    /// Number of faults that were planned.
    pub planned: usize,
    /// Whether this rank was ever contaminated (held a tainted value,
    /// produced one, or received one in a message).
    pub contaminated: bool,
    /// Whether the hang guard tripped (op budget exceeded).
    pub hang_guard_tripped: bool,
    /// Whether the corruption was detected on this rank — by a DUE kill or
    /// a replica payload comparison (see [`note_msg_send`]).
    pub detected: bool,
    /// Wire (message-payload) faults fired while this rank was sending.
    pub wire_fired: u64,
    /// Numeric messages this rank received through the fabric.
    pub msgs_recvd: u64,
    /// Taint crossings: received numeric messages whose payload carried at
    /// least one significantly divergent element (the feature pipeline's
    /// per-message fabric stamp).
    pub tainted_msgs_recvd: u64,
    /// Tracked-op index at which this rank first became contaminated
    /// (`None` when it never was).
    pub first_contam_op: Option<u64>,
    /// Messages sent by this rank when it first became contaminated.
    pub msgs_sent_at_contam: u64,
    /// Numeric messages received by this rank when it first became
    /// contaminated.
    pub msgs_recvd_at_contam: u64,
}

/// Panic payload message used by the hang guard; the runtime recognises it
/// to classify the outcome as a hang rather than a crash.
pub const HANG_GUARD_MSG: &str = "resilim: hang guard tripped (op budget exceeded)";

/// Panic payload message used by a DUE (detected-uncorrectable error) rank
/// kill; the runtime recognises it to classify the outcome as a Due
/// failure rather than a crash.
pub const DUE_MSG: &str = "resilim: detected uncorrectable error (rank killed)";

/// Per-rank fault-injection context.
pub struct RankCtx {
    rank: usize,
    region: Region,
    /// Injectable-op counters per region (the target index space).
    injectable: [u64; 2],
    /// Per-region, per-kind op counters.
    per_kind: [[u64; 5]; 2],
    /// Pending targets per region, ascending op_index.
    queues: [VecDeque<Target>; 2],
    /// Op-index of the front pending target per region (`u64::MAX` when
    /// the queue is empty). The per-op hot path is a single compare
    /// against this; the queue is only touched when an injection is due.
    next_pending: [u64; 2],
    fired: Vec<FiredRecord>,
    planned: usize,
    contaminated: bool,
    /// Relative significance threshold for *contamination marking*: a rank
    /// counts as contaminated only when it holds a value whose corrupted
    /// and shadow worlds differ by more than this relative amount. Zero
    /// (the default) means any bitwise difference contaminates. Value
    /// taint itself stays bit-exact regardless.
    taint_threshold: f64,
    /// Which operation kinds are injection targets (and counted in the
    /// per-region `injectable` index space).
    op_mask: OpMask,
    /// Abort (panic) when total tracked ops exceed this budget.
    /// `u64::MAX` means uncapped (a budget of 2^64 ops could never trip
    /// within a process lifetime anyway).
    op_cap: u64,
    total_ops: u64,
    hang_guard_tripped: bool,
    /// DUE semantics: panic (with [`DUE_MSG`]) at the firing op instead of
    /// continuing with the corrupted value.
    kill_on_fire: bool,
    /// Replica-compare detection (TeaMPI-style): the shadow world doubles
    /// as the clean replica, and every message payload is compared between
    /// worlds at the send/receive points.
    replicate: bool,
    detected: bool,
    /// Numeric messages this rank sent through the fabric.
    msgs_sent: u64,
    /// Wire faults fired on this rank's outgoing messages.
    wire_fired: u64,
    /// Numeric messages this rank received through the fabric.
    msgs_recvd: u64,
    /// Received messages carrying significant taint (crossings).
    tainted_msgs_recvd: u64,
    /// Tracked-op index at first contamination (`u64::MAX` = never): the
    /// snapshot behind the feature pipeline's spread trajectory. Written
    /// only inside the already-cold first-contamination paths.
    first_contam_op: u64,
    /// Messages sent when first contaminated.
    msgs_sent_at_contam: u64,
    /// Messages received when first contaminated.
    msgs_recvd_at_contam: u64,
}

/// Whether a (corrupted, shadow) pair differs *significantly* at relative
/// threshold `theta`: `|v − sh| > θ·max(|v|, |sh|)`, with any bitwise
/// difference significant at `theta == 0` and non-finite disagreements
/// always significant.
#[inline]
pub fn significant_divergence(v: f64, sh: f64, theta: f64) -> bool {
    if v.to_bits() == sh.to_bits() {
        return false;
    }
    if theta <= 0.0 {
        return true;
    }
    if !v.is_finite() || !sh.is_finite() {
        return true;
    }
    (v - sh).abs() > theta * v.abs().max(sh.abs())
}

impl RankCtx {
    /// New context for `rank` with an injection plan.
    pub fn new(rank: usize, plan: InjectionPlan) -> Self {
        let planned = plan.len();
        let queues = plan.into_queues();
        let next_pending = [
            queues[0].front().map_or(u64::MAX, |t| t.op_index),
            queues[1].front().map_or(u64::MAX, |t| t.op_index),
        ];
        RankCtx {
            rank,
            region: Region::Common,
            injectable: [0; 2],
            per_kind: [[0; 5]; 2],
            queues,
            next_pending,
            fired: Vec::new(),
            planned,
            contaminated: false,
            taint_threshold: 0.0,
            op_mask: OpMask::FP_ARITH,
            op_cap: u64::MAX,
            total_ops: 0,
            hang_guard_tripped: false,
            kill_on_fire: false,
            replicate: false,
            detected: false,
            msgs_sent: 0,
            wire_fired: 0,
            msgs_recvd: 0,
            tainted_msgs_recvd: 0,
            first_contam_op: u64::MAX,
            msgs_sent_at_contam: 0,
            msgs_recvd_at_contam: 0,
        }
    }

    /// Profiling context: counts ops, injects nothing.
    pub fn profiling(rank: usize) -> Self {
        RankCtx::new(rank, InjectionPlan::none())
    }

    /// Set the hang-guard budget: the context panics (with
    /// [`HANG_GUARD_MSG`]) once more than `cap` tracked ops execute.
    pub fn with_op_cap(mut self, cap: u64) -> Self {
        self.op_cap = cap;
        self
    }

    /// Set the relative significance threshold for contamination marking
    /// (see [`significant_divergence`]). Zero means bitwise.
    pub fn with_taint_threshold(mut self, theta: f64) -> Self {
        self.taint_threshold = theta;
        self
    }

    /// The contamination significance threshold.
    pub fn taint_threshold(&self) -> f64 {
        self.taint_threshold
    }

    /// Set which operation kinds are injection targets. The default is
    /// the paper's floating-point add/sub/mul; the index space of plan
    /// targets is counted over exactly this set, so plans and profiles
    /// must use the same mask.
    pub fn with_op_mask(mut self, mask: OpMask) -> Self {
        self.op_mask = mask;
        self
    }

    /// The injectable-operation mask.
    pub fn op_mask(&self) -> OpMask {
        self.op_mask
    }

    /// Arm DUE semantics: a fired fault kills the rank (panic with
    /// [`DUE_MSG`]) instead of silently continuing. The fault is recorded
    /// and the rank marked contaminated before the kill.
    pub fn with_kill_on_fire(mut self, kill: bool) -> Self {
        self.kill_on_fire = kill;
        self
    }

    /// Enable replica payload comparison: every message payload this rank
    /// sends or receives is compared against the shadow (replica) world,
    /// and the first significant divergence sets the `detected` flag.
    pub fn with_replication(mut self, replicate: bool) -> Self {
        self.replicate = replicate;
        self
    }

    /// Mark the rank contaminated if the value pair diverges significantly.
    #[inline]
    pub fn observe(&mut self, value: Tf64) {
        if significant_divergence(value.value(), value.shadow(), self.taint_threshold) {
            self.mark_contaminated();
        }
    }

    /// Rank id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Extract the final report.
    pub fn into_report(self) -> CtxReport {
        let profile = self.profile();
        // Ops are aggregated by the per-region counters and flushed once
        // per rank here — never evented per-op.
        #[cfg(feature = "obs")]
        if obs::enabled() {
            obs::count(
                obs::Counter::OpsCommon,
                profile.region(Region::Common).total(),
            );
            obs::count(
                obs::Counter::OpsParallelUnique,
                profile.region(Region::ParallelUnique).total(),
            );
            obs::observe(obs::Hist::OpsPerRank, profile.total());
        }
        CtxReport {
            rank: self.rank,
            profile,
            fired: self.fired,
            planned: self.planned,
            contaminated: self.contaminated,
            hang_guard_tripped: self.hang_guard_tripped,
            detected: self.detected,
            wire_fired: self.wire_fired,
            msgs_recvd: self.msgs_recvd,
            tainted_msgs_recvd: self.tainted_msgs_recvd,
            first_contam_op: (self.first_contam_op != u64::MAX).then_some(self.first_contam_op),
            msgs_sent_at_contam: self.msgs_sent_at_contam,
            msgs_recvd_at_contam: self.msgs_recvd_at_contam,
        }
    }

    /// Current op profile snapshot.
    pub fn profile(&self) -> OpProfile {
        let mut p = OpProfile::default();
        for r in Region::ALL {
            let i = r.index();
            p.regions[i].injectable = self.injectable[i];
            p.regions[i].per_kind = self.per_kind[i];
        }
        p.msgs_sent = self.msgs_sent;
        p
    }

    /// Whether the rank has been contaminated so far.
    pub fn is_contaminated(&self) -> bool {
        self.contaminated
    }

    /// Mark the rank contaminated (called on tainted values and tainted
    /// incoming messages).
    #[inline]
    pub fn mark_contaminated(&mut self) {
        if !self.contaminated {
            self.contaminated = true;
            if self.first_contam_op == u64::MAX {
                self.first_contam_op = self.total_ops;
                self.msgs_sent_at_contam = self.msgs_sent;
                self.msgs_recvd_at_contam = self.msgs_recvd;
            }
            #[cfg(feature = "obs")]
            if obs::enabled() {
                obs::count(obs::Counter::TaintBorn, 1);
                obs::emit(&obs::Event::TaintBorn { rank: self.rank });
            }
        }
    }
}

/// Cold half of the active context: everything the per-op fast path never
/// touches. Behind the thread-local's only `RefCell`, borrowed exclusively
/// from `#[cold]` outlined paths and at install/take boundaries.
#[derive(Default)]
struct ColdCtx {
    rank: usize,
    /// Pending targets per region, ascending op_index.
    queues: [VecDeque<Target>; 2],
    fired: Vec<FiredRecord>,
    planned: usize,
    hang_guard_tripped: bool,
    /// DUE semantics: kill the rank at the firing op. Only read on the
    /// already-cold fire paths.
    kill_on_fire: bool,
}

/// The installed context in exploded form (see module docs): `Cell`s for
/// the per-op fast path. Contains no `Drop` types, so the `thread_local!`
/// const-init fast path applies: accessing it is a direct TLS load with no
/// lazy-initialization or destructor-registration branch. The cold half
/// lives in the separate `COLD` thread-local.
struct HotCtx {
    installed: Cell<bool>,
    region: Cell<Region>,
    mask: Cell<OpMask>,
    contaminated: Cell<bool>,
    taint_threshold: Cell<f64>,
    total_ops: Cell<u64>,
    /// `u64::MAX` = uncapped, so the hot path is one unconditional compare.
    op_cap: Cell<u64>,
    injectable: [Cell<u64>; 2],
    next_pending: [Cell<u64>; 2],
    per_kind: [[Cell<u64>; 5]; 2],
    /// Replica-compare detection state. Touched per *message*, never per
    /// op — the hook fast path does not read these.
    replicate: Cell<bool>,
    detected: Cell<bool>,
    msgs_sent: Cell<u64>,
    wire_fired: Cell<u64>,
    /// Feature counters (see [`CtxReport`]). Touched per message or inside
    /// the already-`#[cold]` first-contamination paths — never per op.
    msgs_recvd: Cell<u64>,
    tainted_msgs_recvd: Cell<u64>,
    first_contam_op: Cell<u64>,
    msgs_sent_at_contam: Cell<u64>,
    msgs_recvd_at_contam: Cell<u64>,
}

impl HotCtx {
    /// Snapshot the first-contamination feature counters (idempotent; part
    /// of every first-contamination path).
    fn snapshot_first_contam(&self) {
        if self.first_contam_op.get() == u64::MAX {
            self.first_contam_op.set(self.total_ops.get());
            self.msgs_sent_at_contam.set(self.msgs_sent.get());
            self.msgs_recvd_at_contam.set(self.msgs_recvd.get());
        }
    }
    /// Explode a packed context into the cells. Caller must have cleared
    /// any previously installed context.
    fn set(&self, ctx: RankCtx) {
        self.installed.set(true);
        self.region.set(ctx.region);
        self.mask.set(ctx.op_mask);
        self.contaminated.set(ctx.contaminated);
        self.taint_threshold.set(ctx.taint_threshold);
        self.total_ops.set(ctx.total_ops);
        self.op_cap.set(ctx.op_cap);
        for i in 0..2 {
            self.injectable[i].set(ctx.injectable[i]);
            self.next_pending[i].set(ctx.next_pending[i]);
            for k in 0..5 {
                self.per_kind[i][k].set(ctx.per_kind[i][k]);
            }
        }
        self.replicate.set(ctx.replicate);
        self.detected.set(ctx.detected);
        self.msgs_sent.set(ctx.msgs_sent);
        self.wire_fired.set(ctx.wire_fired);
        self.msgs_recvd.set(ctx.msgs_recvd);
        self.tainted_msgs_recvd.set(ctx.tainted_msgs_recvd);
        self.first_contam_op.set(ctx.first_contam_op);
        self.msgs_sent_at_contam.set(ctx.msgs_sent_at_contam);
        self.msgs_recvd_at_contam.set(ctx.msgs_recvd_at_contam);
        COLD.with(|c| {
            *c.borrow_mut() = ColdCtx {
                rank: ctx.rank,
                queues: ctx.queues,
                fired: ctx.fired,
                planned: ctx.planned,
                hang_guard_tripped: ctx.hang_guard_tripped,
                kill_on_fire: ctx.kill_on_fire,
            }
        });
    }

    /// Re-pack the cells into a context, clearing the installed flag.
    fn clear(&self) -> Option<RankCtx> {
        if !self.installed.get() {
            return None;
        }
        self.installed.set(false);
        let cold = COLD.with(|c| std::mem::take(&mut *c.borrow_mut()));
        Some(RankCtx {
            rank: cold.rank,
            region: self.region.get(),
            injectable: [self.injectable[0].get(), self.injectable[1].get()],
            per_kind: [
                [
                    self.per_kind[0][0].get(),
                    self.per_kind[0][1].get(),
                    self.per_kind[0][2].get(),
                    self.per_kind[0][3].get(),
                    self.per_kind[0][4].get(),
                ],
                [
                    self.per_kind[1][0].get(),
                    self.per_kind[1][1].get(),
                    self.per_kind[1][2].get(),
                    self.per_kind[1][3].get(),
                    self.per_kind[1][4].get(),
                ],
            ],
            queues: cold.queues,
            next_pending: [self.next_pending[0].get(), self.next_pending[1].get()],
            fired: cold.fired,
            planned: cold.planned,
            contaminated: self.contaminated.get(),
            taint_threshold: self.taint_threshold.get(),
            op_mask: self.mask.get(),
            op_cap: self.op_cap.get(),
            total_ops: self.total_ops.get(),
            hang_guard_tripped: cold.hang_guard_tripped,
            kill_on_fire: cold.kill_on_fire,
            replicate: self.replicate.get(),
            detected: self.detected.get(),
            msgs_sent: self.msgs_sent.get(),
            wire_fired: self.wire_fired.get(),
            msgs_recvd: self.msgs_recvd.get(),
            tainted_msgs_recvd: self.tainted_msgs_recvd.get(),
            first_contam_op: self.first_contam_op.get(),
            msgs_sent_at_contam: self.msgs_sent_at_contam.get(),
            msgs_recvd_at_contam: self.msgs_recvd_at_contam.get(),
        })
    }
}

thread_local! {
    /// Hot half: every field is a `Cell` of a `Copy` type (no destructor),
    /// so `ACTIVE.with` compiles down to direct thread-local loads/stores.
    static ACTIVE: HotCtx = const {
        HotCtx {
            installed: Cell::new(false),
            region: Cell::new(Region::Common),
            mask: Cell::new(OpMask::empty()),
            contaminated: Cell::new(false),
            taint_threshold: Cell::new(0.0),
            total_ops: Cell::new(0),
            op_cap: Cell::new(u64::MAX),
            injectable: [Cell::new(0), Cell::new(0)],
            next_pending: [Cell::new(u64::MAX), Cell::new(u64::MAX)],
            per_kind: [
                [Cell::new(0), Cell::new(0), Cell::new(0), Cell::new(0), Cell::new(0)],
                [Cell::new(0), Cell::new(0), Cell::new(0), Cell::new(0), Cell::new(0)],
            ],
            replicate: Cell::new(false),
            detected: Cell::new(false),
            msgs_sent: Cell::new(0),
            wire_fired: Cell::new(0),
            msgs_recvd: Cell::new(0),
            tainted_msgs_recvd: Cell::new(0),
            first_contam_op: Cell::new(u64::MAX),
            msgs_sent_at_contam: Cell::new(0),
            msgs_recvd_at_contam: Cell::new(0),
        }
    };

    /// Cold half: target queues, fired records, rank id. Only touched by
    /// `#[cold]` outlined paths and at install/take boundaries.
    static COLD: RefCell<ColdCtx> = const {
        RefCell::new(ColdCtx {
            rank: 0,
            queues: [VecDeque::new(), VecDeque::new()],
            fired: Vec::new(),
            planned: 0,
            hang_guard_tripped: false,
            kill_on_fire: false,
        })
    };
}

/// Install a context on the current thread, returning the previous one.
pub fn install(ctx: RankCtx) -> Option<RankCtx> {
    ACTIVE.with(|h| {
        let prev = h.clear();
        h.set(ctx);
        prev
    })
}

/// Remove and return the current thread's context.
pub fn take() -> Option<RankCtx> {
    ACTIVE.with(|h| h.clear())
}

/// Whether a context is installed on this thread.
pub fn is_installed() -> bool {
    ACTIVE.with(|h| h.installed.get())
}

/// Run `f` with mutable access to the installed context (if any).
///
/// The context is re-packed for the duration of `f`; tracked arithmetic
/// performed *inside* `f` runs context-free.
pub fn with<R>(f: impl FnOnce(&mut RankCtx) -> R) -> Option<R> {
    let mut ctx = take()?;
    let r = f(&mut ctx);
    install(ctx);
    Some(r)
}

/// Enter a computation region; restored when the guard drops.
pub fn enter_region(r: Region) -> RegionGuard {
    let prev = ACTIVE.with(|h| {
        if h.installed.get() {
            let prev = h.region.get();
            h.region.set(r);
            Some(prev)
        } else {
            None
        }
    });
    RegionGuard { prev }
}

pub(crate) fn set_region(r: Region) {
    ACTIVE.with(|h| {
        if h.installed.get() {
            h.region.set(r);
        }
    });
}

/// Report externally observed taint (e.g. a received message containing
/// tainted elements) to the current rank's context, unconditionally.
pub fn note_taint(tainted: bool) {
    if tainted {
        ACTIVE.with(|h| {
            if h.installed.get() {
                contaminate(h);
            }
        });
    }
}

/// Report received values to the current rank's context: the rank is
/// marked contaminated when any element diverges beyond the context's
/// significance threshold (how the runtime accounts message-borne
/// contamination).
pub fn note_values(values: &[Tf64]) {
    ACTIVE.with(|h| {
        if !h.installed.get() {
            return;
        }
        h.msgs_recvd.set(h.msgs_recvd.get() + 1);
        // Three consumers of the same scan: contamination marking (latches
        // on the first divergent value held), replica-compare detection
        // (receive-side compare point under `--replicate`, latches), and
        // the per-message taint-crossing stamp (counts every message). The
        // scan breaks at the first divergent element; on the zero-injection
        // path nothing is tainted, so the per-element check is the same
        // bits compare it always was.
        let theta = h.taint_threshold.get();
        let mut crossed = false;
        for &v in values {
            if v.is_tainted() && significant_divergence(v.value(), v.shadow(), theta) {
                crossed = true;
                break;
            }
        }
        if crossed {
            h.tainted_msgs_recvd.set(h.tainted_msgs_recvd.get() + 1);
            if !h.contaminated.get() {
                contaminate(h);
            }
            if h.replicate.get() && !h.detected.get() {
                replica_detect(h);
            }
        }
    });
}

/// Note an outgoing numeric message on the current rank's context: counts
/// it into the per-rank send profile (the sample space of the
/// message-corruption fault model) and, under replication, compares the
/// payload against the shadow replica (send-side compare point). Returns
/// the zero-based index of this message among the rank's sends, or `None`
/// when no context is installed.
///
/// The fabric calls this *before* applying any wire corruption: the
/// replica compare sees what the application handed to the network, and
/// corruption on the wire is only observable at the receiver.
pub fn note_msg_send(values: &[Tf64]) -> Option<u64> {
    ACTIVE.with(|h| {
        if !h.installed.get() {
            return None;
        }
        let idx = h.msgs_sent.get();
        h.msgs_sent.set(idx + 1);
        if h.replicate.get() && !h.detected.get() {
            let theta = h.taint_threshold.get();
            for &v in values {
                if v.is_tainted() && significant_divergence(v.value(), v.shadow(), theta) {
                    replica_detect(h);
                    break;
                }
            }
        }
        Some(idx)
    })
}

/// Record a wire (message-payload) fault fired on one of this rank's
/// outgoing messages. Called by the fabric after corrupting the payload.
pub fn note_wire_fired(msg_index: u64, bit: u8) {
    ACTIVE.with(|h| {
        if !h.installed.get() {
            return;
        }
        h.wire_fired.set(h.wire_fired.get() + 1);
        #[cfg(feature = "obs")]
        if obs::enabled() {
            obs::count(obs::Counter::MsgFaultsFired, 1);
            obs::emit(&obs::Event::WireFaultFired {
                rank: COLD.with(|c| c.borrow().rank),
                msg_index,
                bit,
            });
        }
        #[cfg(not(feature = "obs"))]
        let _ = (msg_index, bit);
    });
}

/// First replica-compare detection (idempotent). Must not be called while
/// the cold half is borrowed.
#[cold]
#[inline(never)]
fn replica_detect(h: &HotCtx) {
    if h.detected.get() {
        return;
    }
    h.detected.set(true);
    #[cfg(feature = "obs")]
    if obs::enabled() {
        obs::count(obs::Counter::ReplicaDetections, 1);
        obs::emit(&obs::Event::ReplicaDetection {
            rank: COLD.with(|c| c.borrow().rank),
        });
    }
}

/// First-contamination marking (idempotent). Must not be called while the
/// cold half is borrowed — fire paths use [`contaminate_cold`] instead.
#[cold]
#[inline(never)]
fn contaminate(h: &HotCtx) {
    if h.contaminated.get() {
        return;
    }
    h.contaminated.set(true);
    h.snapshot_first_contam();
    #[cfg(feature = "obs")]
    if obs::enabled() {
        obs::count(obs::Counter::TaintBorn, 1);
        obs::emit(&obs::Event::TaintBorn {
            rank: COLD.with(|c| c.borrow().rank),
        });
    }
}

/// [`contaminate`] for callers already holding the cold borrow.
fn contaminate_cold(h: &HotCtx, cold: &ColdCtx) {
    if h.contaminated.get() {
        return;
    }
    h.contaminated.set(true);
    h.snapshot_first_contam();
    #[cfg(feature = "obs")]
    if obs::enabled() {
        obs::count(obs::Counter::TaintBorn, 1);
        obs::emit(&obs::Event::TaintBorn { rank: cold.rank });
    }
    #[cfg(not(feature = "obs"))]
    let _ = cold;
}

/// Record a fired fault and its observability event (cold borrow held).
fn record_fired(cold: &mut ColdCtx, rec: FiredRecord) {
    #[cfg(feature = "obs")]
    if obs::enabled() {
        obs::count(obs::Counter::InjectionsFired, 1);
        obs::emit(&obs::Event::InjectionFired {
            rank: cold.rank,
            region: region_trace_name(rec.target.region),
            op_index: rec.target.op_index,
            bit: rec.target.bit,
        });
    }
    cold.fired.push(rec);
}

/// Hang-guard trip: record it, then panic with the recognisable payload.
#[cold]
#[inline(never)]
fn hang_trip(_h: &HotCtx) -> ! {
    COLD.with(|c| {
        let mut cold = c.borrow_mut();
        cold.hang_guard_tripped = true;
        #[cfg(feature = "obs")]
        if obs::enabled() {
            obs::count(obs::Counter::HangGuardTrips, 1);
            obs::emit(&obs::Event::HangGuardTrip { rank: cold.rank });
        }
    });
    panic!("{HANG_GUARD_MSG}");
}

/// DUE rank kill: the hardware detected the corruption and halted the
/// rank. The firing was already recorded and contamination marked; all
/// cold borrows are released before the panic so harvest sees a
/// consistent context.
#[cold]
#[inline(never)]
fn due_trip(h: &HotCtx) -> ! {
    // The kill is itself a detection event.
    h.detected.set(true);
    #[cfg(feature = "obs")]
    if obs::enabled() {
        obs::count(obs::Counter::DueKills, 1);
        obs::emit(&obs::Event::DueKill {
            rank: COLD.with(|c| c.borrow().rank),
        });
    }
    panic!("{DUE_MSG}");
}

/// Divergent-result observation: mark contamination when the divergence is
/// significant at the installed threshold. Callers pre-check the cheap
/// conditions (bits differ, not yet contaminated) so the fast path only
/// pays a compare.
#[cold]
#[inline(never)]
fn observe_divergent(h: &HotCtx, v: f64, sh: f64) {
    if significant_divergence(v, sh, h.taint_threshold.get()) {
        contaminate(h);
    }
}

/// Pointer to this thread's hot cells.
///
/// `ACTIVE` is const-initialized and `HotCtx` has no destructor, so the
/// access is a direct thread-local load — but `LocalKey::with` around the
/// whole hook body defeats inlining (the closure is too large), leaving an
/// outlined call plus closure-environment spills on every tracked op. A
/// pointer-returning `with` is small enough to always inline, and the hook
/// body then runs with no closure at all.
///
/// Safety: the pointer is only dereferenced immediately, on the same
/// thread, within the extent of the hook call that obtained it.
#[inline(always)]
fn hot() -> *const HotCtx {
    ACTIVE.with(|h| h as *const HotCtx)
}

/// Count the op on the fast path: per-kind counter, total-op counter, hang
/// guard. Returns the region index.
#[inline(always)]
fn bump(h: &HotCtx, kind: OpKind) -> usize {
    let r = h.region.get().index();
    let pk = &h.per_kind[r][kind.index()];
    pk.set(pk.get() + 1);
    let total = h.total_ops.get() + 1;
    h.total_ops.set(total);
    if total > h.op_cap.get() {
        hang_trip(h);
    }
    r
}

/// The binary-operation hook: counts the op, possibly injects, computes
/// both the corrupted-world and shadow-world results, and records
/// contamination.
///
/// `f` must be a pure function of its operands (it is invoked twice, once
/// per world).
#[inline(always)]
pub fn hook_binop(kind: OpKind, a: Tf64, b: Tf64, f: impl Fn(f64, f64) -> f64) -> Tf64 {
    // Safety: see `hot` — same-thread, immediate use.
    let h = unsafe { &*hot() };
    if !h.installed.get() {
        return Tf64::from_parts(f(a.value(), b.value()), f(a.shadow(), b.shadow()));
    }
    let r = bump(h, kind);
    if h.mask.get().contains(kind) {
        let idx = h.injectable[r].get();
        h.injectable[r].set(idx + 1);
        if idx == h.next_pending[r].get() {
            return fire_binop(h, r, idx, kind, a, b, &f);
        }
    }
    let v = f(a.value(), b.value());
    let sh = f(a.shadow(), b.shadow());
    if v.to_bits() != sh.to_bits() && !h.contaminated.get() {
        observe_divergent(h, v, sh);
    }
    Tf64::from_parts(v, sh)
}

/// Fire path of [`hook_binop`]: pop every target due at dynamic op `idx`,
/// apply input flips before and result flips after computing `f`, record
/// the firings, and mark contamination. Stack-buffered — no heap traffic
/// for plans with up to 8 flips on one op.
#[cold]
#[inline(never)]
fn fire_binop(
    h: &HotCtx,
    r: usize,
    idx: u64,
    kind: OpKind,
    mut a: Tf64,
    mut b: Tf64,
    f: &impl Fn(f64, f64) -> f64,
) -> Tf64 {
    let mut recs: InlineVec<(Target, f64, f64), 8> = InlineVec::new();
    let mut kill = false;
    COLD.with(|c| {
        let mut cold = c.borrow_mut();
        kill = cold.kill_on_fire;
        while matches!(cold.queues[r].front(), Some(t) if t.op_index == idx) {
            let t = cold.queues[r].pop_front().expect("front just matched");
            // Apply input-operand flips to the corrupted world only;
            // result-operand flips are applied after computing f.
            let (before, after) = match t.operand {
                Operand::A => {
                    let before = a.value();
                    let after = t.apply(before);
                    a = Tf64::from_parts(after, a.shadow());
                    (before, after)
                }
                Operand::B => {
                    let before = b.value();
                    let after = t.apply(before);
                    b = Tf64::from_parts(after, b.shadow());
                    (before, after)
                }
                Operand::Result => (0.0, 0.0), // sentinel; patched below
            };
            recs.push((t, before, after));
        }
        let next = cold.queues[r].front().map_or(u64::MAX, |t| t.op_index);
        h.next_pending[r].set(next);
    });

    let mut v = f(a.value(), b.value());
    let sh = f(a.shadow(), b.shadow());

    if !recs.is_empty() {
        for (t, before, after) in recs.iter_mut() {
            if matches!(t.operand, Operand::Result) {
                *before = v;
                v = t.apply(v);
                *after = v;
            }
        }
        let masked = v.to_bits() == sh.to_bits();
        COLD.with(|c| {
            let mut cold = c.borrow_mut();
            for &(t, before, after) in recs.iter() {
                record_fired(
                    &mut cold,
                    FiredRecord {
                        target: t,
                        kind,
                        before,
                        after,
                        masked_at_site: masked,
                    },
                );
            }
            contaminate_cold(h, &cold);
        });
        if kill {
            due_trip(h);
        }
    }

    if v.to_bits() != sh.to_bits() && !h.contaminated.get() {
        observe_divergent(h, v, sh);
    }
    Tf64::from_parts(v, sh)
}

/// The unary-operation hook (sqrt, abs, exp, …): counted as
/// [`OpKind::Other`] (or the given kind). Not a target under the default
/// mask, but extended masks (e.g. [`OpMask::ALL`]) may fire here: input
/// flips corrupt the operand, result flips corrupt the output.
#[inline(always)]
pub fn hook_unop(kind: OpKind, a: Tf64, f: impl Fn(f64) -> f64) -> Tf64 {
    // Safety: see `hot` — same-thread, immediate use.
    let h = unsafe { &*hot() };
    if !h.installed.get() {
        return Tf64::from_parts(f(a.value()), f(a.shadow()));
    }
    let r = bump(h, kind);
    if h.mask.get().contains(kind) {
        let idx = h.injectable[r].get();
        h.injectable[r].set(idx + 1);
        if idx == h.next_pending[r].get() {
            return fire_unop(h, r, idx, kind, a, &f);
        }
    }
    let v = f(a.value());
    let sh = f(a.shadow());
    if v.to_bits() != sh.to_bits() && !h.contaminated.get() {
        observe_divergent(h, v, sh);
    }
    Tf64::from_parts(v, sh)
}

/// Fire path of [`hook_unop`]: input flips are recorded before computing
/// `f` (they are never masked-at-site by construction), result flips after.
#[cold]
#[inline(never)]
fn fire_unop(
    h: &HotCtx,
    r: usize,
    idx: u64,
    kind: OpKind,
    mut a: Tf64,
    f: &impl Fn(f64) -> f64,
) -> Tf64 {
    let mut due: InlineVec<Target, 8> = InlineVec::new();
    let mut kill = false;
    COLD.with(|c| {
        let mut cold = c.borrow_mut();
        kill = cold.kill_on_fire;
        while matches!(cold.queues[r].front(), Some(t) if t.op_index == idx) {
            due.push(cold.queues[r].pop_front().expect("front just matched"));
        }
        let next = cold.queues[r].front().map_or(u64::MAX, |t| t.op_index);
        h.next_pending[r].set(next);
    });

    let mut input_recs: InlineVec<(Target, f64, f64), 8> = InlineVec::new();
    let mut result_flips: InlineVec<Target, 8> = InlineVec::new();
    for &t in due.iter() {
        match t.operand {
            Operand::A | Operand::B => {
                let before = a.value();
                let after = t.apply(before);
                a = Tf64::from_parts(after, a.shadow());
                input_recs.push((t, before, after));
            }
            Operand::Result => result_flips.push(t),
        }
    }
    if !input_recs.is_empty() {
        COLD.with(|c| {
            let mut cold = c.borrow_mut();
            for &(t, before, after) in input_recs.iter() {
                record_fired(
                    &mut cold,
                    FiredRecord {
                        target: t,
                        kind,
                        before,
                        after,
                        masked_at_site: false,
                    },
                );
            }
            contaminate_cold(h, &cold);
        });
    }

    let mut v = f(a.value());
    let sh = f(a.shadow());
    if !result_flips.is_empty() {
        let mut recs: InlineVec<(Target, f64, f64), 8> = InlineVec::new();
        for &t in result_flips.iter() {
            let before = v;
            v = t.apply(v);
            recs.push((t, before, v));
        }
        let masked = v.to_bits() == sh.to_bits();
        COLD.with(|c| {
            let mut cold = c.borrow_mut();
            for &(t, before, after) in recs.iter() {
                record_fired(
                    &mut cold,
                    FiredRecord {
                        target: t,
                        kind,
                        before,
                        after,
                        masked_at_site: masked,
                    },
                );
            }
            contaminate_cold(h, &cold);
        });
    }

    if kill && !due.is_empty() {
        due_trip(h);
    }

    if v.to_bits() != sh.to_bits() && !h.contaminated.get() {
        observe_divergent(h, v, sh);
    }
    Tf64::from_parts(v, sh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{InjectionPlan, Operand};

    fn target(region: Region, op_index: u64, bit: u8, operand: Operand) -> Target {
        Target {
            region,
            op_index,
            bit,
            operand,
        }
    }

    /// Serialize context-using tests: contexts are thread-local, and the
    /// test harness may run tests on the same thread pool.
    fn with_clean_ctx<R>(ctx: RankCtx, f: impl FnOnce() -> R) -> (R, CtxReport) {
        let prev = install(ctx);
        assert!(prev.is_none(), "leaked context from another test");
        let r = f();
        let report = take().unwrap().into_report();
        (r, report)
    }

    #[test]
    fn counting_without_plan() {
        let (_, report) = with_clean_ctx(RankCtx::profiling(3), || {
            let a = Tf64::new(1.5);
            let b = Tf64::new(2.5);
            let _ = a + b;
            let _ = a * b;
            let _ = a / b;
        });
        assert_eq!(report.rank, 3);
        assert_eq!(report.profile.injectable(Region::Common), 2);
        assert_eq!(report.profile.total(), 3);
        assert!(!report.contaminated);
        assert!(report.fired.is_empty());
    }

    #[test]
    fn single_injection_fires_at_exact_index() {
        // Bit 55 (an exponent bit) guarantees the flip is not rounded away.
        let plan = InjectionPlan::single(target(Region::Common, 2, 55, Operand::B));
        let (_, report) = with_clean_ctx(RankCtx::new(0, plan), || {
            let a = Tf64::new(1.0);
            let b = Tf64::new(2.0);
            let c = a + b; // idx 0
            let d = c * b; // idx 1
            let e = d + a; // idx 2  <- fires on operand B (= a)
            assert!(e.is_tainted());
            assert!(!d.is_tainted());
        });
        assert_eq!(report.fired.len(), 1);
        assert_eq!(report.fired[0].target.op_index, 2);
        assert!(report.contaminated);
    }

    #[test]
    fn result_operand_flip() {
        let plan = InjectionPlan::single(target(Region::Common, 0, 52, Operand::Result));
        let (_, report) = with_clean_ctx(RankCtx::new(0, plan), || {
            let a = Tf64::new(1.0);
            let b = Tf64::new(2.0);
            let c = a + b;
            assert!(c.is_tainted());
            assert_eq!(c.shadow(), 3.0);
            assert_ne!(c.value(), 3.0);
        });
        assert_eq!(report.fired.len(), 1);
        assert_eq!(report.fired[0].before, 3.0);
    }

    #[test]
    fn injection_in_masked_position_is_detected() {
        // Flip a low mantissa bit of an operand that is then multiplied by
        // zero: result identical in both worlds -> masked at site.
        let plan = InjectionPlan::single(target(Region::Common, 0, 0, Operand::A));
        let (_, report) = with_clean_ctx(RankCtx::new(0, plan), || {
            let a = Tf64::new(1.0);
            let zero = Tf64::new(0.0);
            let c = a * zero;
            assert!(!c.is_tainted());
            assert_eq!(c.value(), 0.0);
        });
        assert_eq!(report.fired.len(), 1);
        assert!(report.fired[0].masked_at_site);
        // The rank still counts as contaminated: the flipped operand existed.
        assert!(report.contaminated);
    }

    #[test]
    fn region_counters_are_separate() {
        let plan = InjectionPlan::single(target(Region::ParallelUnique, 0, 3, Operand::A));
        let (_, report) = with_clean_ctx(RankCtx::new(0, plan), || {
            let a = Tf64::new(1.0);
            let b = Tf64::new(2.0);
            let _ = a + b; // common idx 0: must NOT fire
            let g = enter_region(Region::ParallelUnique);
            let c = a + b; // parallel-unique idx 0: fires
            assert!(c.is_tainted());
            drop(g);
            let d = a + b; // common idx 1
            assert!(!d.is_tainted());
        });
        assert_eq!(report.profile.injectable(Region::Common), 2);
        assert_eq!(report.profile.injectable(Region::ParallelUnique), 1);
        assert_eq!(report.fired.len(), 1);
    }

    #[test]
    fn region_guard_restores_on_drop() {
        let (_, report) = with_clean_ctx(RankCtx::profiling(0), || {
            let a = Tf64::new(1.0);
            {
                let _g = enter_region(Region::ParallelUnique);
                let _ = a + a;
                {
                    let _g2 = enter_region(Region::Common);
                    let _ = a + a;
                }
                let _ = a + a;
            }
            let _ = a + a;
        });
        assert_eq!(report.profile.injectable(Region::ParallelUnique), 2);
        assert_eq!(report.profile.injectable(Region::Common), 2);
    }

    #[test]
    fn multi_error_plan_fires_all() {
        let plan = InjectionPlan::multi(vec![
            target(Region::Common, 1, 5, Operand::A),
            target(Region::Common, 3, 6, Operand::B),
            target(Region::Common, 0, 7, Operand::A),
        ]);
        let (_, report) = with_clean_ctx(RankCtx::new(0, plan), || {
            let a = Tf64::new(1.0);
            let mut acc = Tf64::new(0.0);
            for _ in 0..5 {
                acc += a;
            }
            acc
        });
        assert_eq!(report.planned, 3);
        assert_eq!(report.fired.len(), 3);
        let idx: Vec<u64> = report.fired.iter().map(|f| f.target.op_index).collect();
        assert_eq!(idx, vec![0, 1, 3]);
    }

    #[test]
    fn multiple_flips_on_one_op_all_fire() {
        // Multi-bit pattern: three distinct bits of the same operand of
        // the same dynamic op must all flip (their XOR composes).
        let plan = InjectionPlan::multi(vec![
            target(Region::Common, 1, 3, Operand::A),
            target(Region::Common, 1, 7, Operand::A),
            target(Region::Common, 1, 55, Operand::A),
        ]);
        let (value, report) = with_clean_ctx(RankCtx::new(0, plan), || {
            let a = Tf64::new(1.5);
            let b = a + 0.0; // op 0
            let c = b + 0.0; // op 1: three flips on operand A (= b)
            c
        });
        assert_eq!(report.fired.len(), 3);
        let expect = f64::from_bits(1.5f64.to_bits() ^ (1 << 3) ^ (1 << 7) ^ (1 << 55));
        assert_eq!(value.value(), expect + 0.0);
        assert!(value.is_tainted());
    }

    #[test]
    fn extended_mask_targets_divisions() {
        use crate::mask::OpMask;
        // Under OpMask::DIV, only divisions advance the index space.
        let plan = InjectionPlan::single(target(Region::Common, 0, 55, Operand::B));
        let (_, report) = with_clean_ctx(RankCtx::new(0, plan).with_op_mask(OpMask::DIV), || {
            let a = Tf64::new(6.0);
            let b = Tf64::new(2.0);
            let c = a + b; // add: not a target under DIV mask
            assert!(!c.is_tainted());
            let d = a / b; // div idx 0: fires on operand B
            assert!(d.is_tainted());
        });
        assert_eq!(report.fired.len(), 1);
        assert_eq!(report.fired[0].kind, OpKind::Div);
        // The injectable index space counted only the division.
        assert_eq!(report.profile.injectable(Region::Common), 1);
    }

    #[test]
    fn extended_mask_fires_on_unary_ops() {
        use crate::mask::OpMask;
        let plan = InjectionPlan::single(target(Region::Common, 0, 52, Operand::Result));
        let (_, report) = with_clean_ctx(
            RankCtx::new(0, plan).with_op_mask(OpMask::of(&[OpKind::Other])),
            || {
                let a = Tf64::new(4.0);
                let r = a.sqrt(); // Other idx 0: result flip
                assert!(r.is_tainted());
                assert_eq!(r.shadow(), 2.0);
                assert_ne!(r.value(), 2.0);
            },
        );
        assert_eq!(report.fired.len(), 1);
        assert_eq!(report.fired[0].kind, OpKind::Other);
        assert!(report.contaminated);
    }

    #[test]
    fn unfired_targets_are_reported() {
        let plan = InjectionPlan::single(target(Region::Common, 100, 5, Operand::A));
        let (_, report) = with_clean_ctx(RankCtx::new(0, plan), || {
            let a = Tf64::new(1.0);
            let _ = a + a; // only 1 op; target at 100 never fires
        });
        assert_eq!(report.planned, 1);
        assert!(report.fired.is_empty());
        assert!(!report.contaminated);
    }

    #[test]
    fn hang_guard_panics_past_budget() {
        let prev = install(RankCtx::profiling(0).with_op_cap(10));
        assert!(prev.is_none());
        let result = std::panic::catch_unwind(|| {
            let a = Tf64::new(1.0);
            let mut acc = Tf64::new(0.0);
            for _ in 0..100 {
                acc += a;
            }
            acc
        });
        assert!(result.is_err());
        let msg = result
            .unwrap_err()
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("hang guard"));
        let report = take().unwrap().into_report();
        assert!(report.hang_guard_tripped);
    }

    #[test]
    fn due_kill_panics_at_firing_op_with_recognisable_payload() {
        let plan = InjectionPlan::single(target(Region::Common, 1, 55, Operand::A));
        let prev = install(RankCtx::new(0, plan).with_kill_on_fire(true));
        assert!(prev.is_none());
        let result = std::panic::catch_unwind(|| {
            let a = Tf64::new(1.0);
            let b = a + a; // idx 0: clean
            let c = b + a; // idx 1: fires -> rank killed
            c
        });
        assert!(result.is_err());
        let msg = result
            .unwrap_err()
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, DUE_MSG);
        let report = take().unwrap().into_report();
        // The firing was recorded and contamination marked before the kill,
        // and the kill counts as a detection.
        assert_eq!(report.fired.len(), 1);
        assert!(report.contaminated);
        assert!(report.detected);
    }

    #[test]
    fn due_kill_is_inert_when_nothing_fires() {
        let plan = InjectionPlan::single(target(Region::Common, 100, 5, Operand::A));
        let (_, report) = with_clean_ctx(RankCtx::new(0, plan).with_kill_on_fire(true), || {
            let a = Tf64::new(1.0);
            let _ = a + a; // target at 100 never reached
        });
        assert!(report.fired.is_empty());
        assert!(!report.detected);
    }

    #[test]
    fn note_msg_send_counts_messages() {
        let (idx, report) = with_clean_ctx(RankCtx::profiling(0), || {
            let vals = [Tf64::new(1.0), Tf64::new(2.0)];
            assert_eq!(note_msg_send(&vals), Some(0));
            assert_eq!(note_msg_send(&vals), Some(1));
            note_msg_send(&vals)
        });
        assert_eq!(idx, Some(2));
        assert_eq!(report.profile.msgs_sent, 3);
        assert!(!report.detected);
        // Without a context the fabric gets no index back.
        assert_eq!(note_msg_send(&[Tf64::new(1.0)]), None);
    }

    #[test]
    fn replication_detects_divergent_payloads_at_both_compare_points() {
        // Send side: a tainted value in an outgoing payload is caught.
        let (_, report) = with_clean_ctx(RankCtx::profiling(0).with_replication(true), || {
            note_msg_send(&[Tf64::new(1.0), Tf64::from_parts(2.5, 2.0)]);
        });
        assert!(report.detected);

        // Receive side: note_values catches it too, alongside the usual
        // contamination marking.
        let (_, report) = with_clean_ctx(RankCtx::profiling(1).with_replication(true), || {
            note_values(&[Tf64::from_parts(3.5, 3.0)]);
        });
        assert!(report.detected);
        assert!(report.contaminated);

        // Without replication the same payloads contaminate but never detect.
        let (_, report) = with_clean_ctx(RankCtx::profiling(2), || {
            note_msg_send(&[Tf64::from_parts(2.5, 2.0)]);
            note_values(&[Tf64::from_parts(3.5, 3.0)]);
        });
        assert!(!report.detected);
        assert!(report.contaminated);
    }

    #[test]
    fn wire_fired_is_counted_and_survives_roundtrip() {
        let (_, report) = with_clean_ctx(RankCtx::profiling(0), || {
            note_wire_fired(4, 17);
            let mid = take().unwrap();
            install(mid); // explode/re-pack must preserve the counter
            note_wire_fired(9, 3);
        });
        assert_eq!(report.wire_fired, 2);
    }

    #[test]
    fn feature_counters_snapshot_first_contamination() {
        let (_, report) = with_clean_ctx(RankCtx::profiling(0), || {
            let a = Tf64::new(1.0);
            let _ = a + a; // op 0
            let _ = a + a; // op 1
            note_msg_send(&[a]); // send 0
            note_values(&[a]); // recv 0: clean, no crossing
            note_values(&[Tf64::from_parts(2.5, 2.0)]); // recv 1: crossing -> contam
            let _ = a + a; // op 2, after contamination
            note_values(&[Tf64::from_parts(3.5, 3.0)]); // recv 2: still counted
        });
        assert_eq!(report.msgs_recvd, 3);
        assert_eq!(report.tainted_msgs_recvd, 2);
        assert_eq!(report.first_contam_op, Some(2));
        assert_eq!(report.msgs_sent_at_contam, 1);
        // The contaminating message is itself counted as received.
        assert_eq!(report.msgs_recvd_at_contam, 2);
        assert!(report.contaminated);

        // Never-contaminated ranks report no snapshot.
        let (_, report) = with_clean_ctx(RankCtx::profiling(1), || {
            let a = Tf64::new(1.0);
            let _ = a + a;
            note_values(&[a]);
        });
        assert_eq!(report.first_contam_op, None);
        assert_eq!(report.msgs_recvd, 1);
        assert_eq!(report.tainted_msgs_recvd, 0);
    }

    #[test]
    fn feature_counters_survive_roundtrip() {
        let (_, report) = with_clean_ctx(RankCtx::profiling(0), || {
            note_values(&[Tf64::from_parts(2.5, 2.0)]);
            let mid = take().unwrap();
            install(mid); // explode/re-pack must preserve the counters
            note_values(&[Tf64::new(1.0)]);
        });
        assert_eq!(report.msgs_recvd, 2);
        assert_eq!(report.tainted_msgs_recvd, 1);
        assert_eq!(report.first_contam_op, Some(0));
    }

    #[test]
    fn note_taint_marks_contamination() {
        let (_, report) = with_clean_ctx(RankCtx::profiling(0), || {
            note_taint(false);
            assert!(!with(|c| c.is_contaminated()).unwrap());
            note_taint(true);
        });
        assert!(report.contaminated);
    }

    #[test]
    fn tainted_operand_contaminates_rank() {
        let (_, report) = with_clean_ctx(RankCtx::profiling(0), || {
            // Value born tainted (e.g. received from a contaminated rank).
            let t = Tf64::from_parts(1.5, 1.0);
            let clean = Tf64::new(2.0);
            let out = t + clean;
            assert!(out.is_tainted());
        });
        assert!(report.contaminated);
    }

    #[test]
    fn hooks_work_without_context() {
        assert!(!is_installed());
        let a = Tf64::new(2.0);
        let b = Tf64::new(3.0);
        assert_eq!((a * b).value(), 6.0);
        assert!(!(a * b).is_tainted());
    }

    #[test]
    fn install_take_roundtrip_preserves_state() {
        // Partially advance a context, take it off the thread, reinstall,
        // and confirm counters/queues survive the explode/re-pack cycle.
        let plan = InjectionPlan::multi(vec![
            target(Region::Common, 2, 5, Operand::A),
            target(Region::Common, 10, 6, Operand::B),
        ]);
        let prev = install(RankCtx::new(7, plan).with_taint_threshold(0.25));
        assert!(prev.is_none());
        let a = Tf64::new(1.0);
        let _ = a + a; // common idx 0
        let _ = a * a; // common idx 1
        let mid = take().unwrap();
        assert_eq!(mid.rank(), 7);
        assert_eq!(mid.taint_threshold(), 0.25);
        assert!(!is_installed());
        install(mid);
        let f = a + a; // common idx 2: fires
        assert!(f.is_tainted());
        let report = take().unwrap().into_report();
        assert_eq!(report.profile.injectable(Region::Common), 3);
        assert_eq!(report.fired.len(), 1);
        assert_eq!(report.planned, 2);
        assert!(report.contaminated);
    }
}
