//! Per-rank injection context and the thread-local hook machinery.
//!
//! Every simulated MPI rank runs on its own thread with a [`RankCtx`]
//! installed. The [`Tf64`] arithmetic operators call into the
//! context through [`hook_binop`]/[`hook_unop`]; when no context is
//! installed the hooks degrade to plain shadow-tracked arithmetic (useful
//! in unit tests and examples).

use crate::mask::OpMask;
use crate::plan::{InjectionPlan, Operand, Target};
use crate::profile::{OpKind, OpProfile};
use crate::region::{Region, RegionGuard};
use crate::tf64::Tf64;
#[cfg(feature = "obs")]
use resilim_obs as obs;
use std::cell::RefCell;
use std::collections::VecDeque;

/// Trace name for a region (`"common"` / `"parallel_unique"`).
#[cfg(feature = "obs")]
fn region_trace_name(r: Region) -> &'static str {
    match r {
        Region::Common => "common",
        Region::ParallelUnique => "parallel_unique",
    }
}

/// A fault that actually fired during execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiredRecord {
    /// The planned target that fired.
    pub target: Target,
    /// Operation kind at the firing site.
    pub kind: OpKind,
    /// Operand value before the flip (corrupted-world value).
    pub before: f64,
    /// Operand value after the flip.
    pub after: f64,
    /// Whether the flip was *instantly masked*: the operation result was
    /// bitwise identical to the shadow result despite the flip.
    pub masked_at_site: bool,
}

/// Summary extracted from a [`RankCtx`] after a rank finishes.
#[derive(Debug, Clone, Default)]
pub struct CtxReport {
    /// Rank id the context belonged to.
    pub rank: usize,
    /// Dynamic-op counts observed.
    pub profile: OpProfile,
    /// Faults that fired (may be fewer than planned if corruption shortened
    /// the execution before later targets were reached).
    pub fired: Vec<FiredRecord>,
    /// Number of faults that were planned.
    pub planned: usize,
    /// Whether this rank was ever contaminated (held a tainted value,
    /// produced one, or received one in a message).
    pub contaminated: bool,
    /// Whether the hang guard tripped (op budget exceeded).
    pub hang_guard_tripped: bool,
}

/// Panic payload message used by the hang guard; the runtime recognises it
/// to classify the outcome as a hang rather than a crash.
pub const HANG_GUARD_MSG: &str = "resilim: hang guard tripped (op budget exceeded)";

/// Per-rank fault-injection context.
pub struct RankCtx {
    rank: usize,
    region: Region,
    /// Injectable-op counters per region (the target index space).
    injectable: [u64; 2],
    /// Per-region, per-kind op counters.
    per_kind: [[u64; 5]; 2],
    /// Pending targets per region, ascending op_index.
    queues: [VecDeque<Target>; 2],
    /// Op-index of the front pending target per region (`u64::MAX` when
    /// the queue is empty). The per-op hot path is a single compare
    /// against this; the queue is only touched when an injection is due.
    next_pending: [u64; 2],
    fired: Vec<FiredRecord>,
    planned: usize,
    contaminated: bool,
    /// Relative significance threshold for *contamination marking*: a rank
    /// counts as contaminated only when it holds a value whose corrupted
    /// and shadow worlds differ by more than this relative amount. Zero
    /// (the default) means any bitwise difference contaminates. Value
    /// taint itself stays bit-exact regardless.
    taint_threshold: f64,
    /// Which operation kinds are injection targets (and counted in the
    /// per-region `injectable` index space).
    op_mask: OpMask,
    /// Abort (panic) when total tracked ops exceed this budget.
    op_cap: Option<u64>,
    total_ops: u64,
    hang_guard_tripped: bool,
}

/// Whether a (corrupted, shadow) pair differs *significantly* at relative
/// threshold `theta`: `|v − sh| > θ·max(|v|, |sh|)`, with any bitwise
/// difference significant at `theta == 0` and non-finite disagreements
/// always significant.
#[inline]
pub fn significant_divergence(v: f64, sh: f64, theta: f64) -> bool {
    if v.to_bits() == sh.to_bits() {
        return false;
    }
    if theta <= 0.0 {
        return true;
    }
    if !v.is_finite() || !sh.is_finite() {
        return true;
    }
    (v - sh).abs() > theta * v.abs().max(sh.abs())
}

impl RankCtx {
    /// New context for `rank` with an injection plan.
    pub fn new(rank: usize, plan: InjectionPlan) -> Self {
        let planned = plan.len();
        let queues = plan.into_queues();
        let next_pending = [
            queues[0].front().map_or(u64::MAX, |t| t.op_index),
            queues[1].front().map_or(u64::MAX, |t| t.op_index),
        ];
        RankCtx {
            rank,
            region: Region::Common,
            injectable: [0; 2],
            per_kind: [[0; 5]; 2],
            queues,
            next_pending,
            fired: Vec::new(),
            planned,
            contaminated: false,
            taint_threshold: 0.0,
            op_mask: OpMask::FP_ARITH,
            op_cap: None,
            total_ops: 0,
            hang_guard_tripped: false,
        }
    }

    /// Profiling context: counts ops, injects nothing.
    pub fn profiling(rank: usize) -> Self {
        RankCtx::new(rank, InjectionPlan::none())
    }

    /// Set the hang-guard budget: the context panics (with
    /// [`HANG_GUARD_MSG`]) once more than `cap` tracked ops execute.
    pub fn with_op_cap(mut self, cap: u64) -> Self {
        self.op_cap = Some(cap);
        self
    }

    /// Set the relative significance threshold for contamination marking
    /// (see [`significant_divergence`]). Zero means bitwise.
    pub fn with_taint_threshold(mut self, theta: f64) -> Self {
        self.taint_threshold = theta;
        self
    }

    /// The contamination significance threshold.
    pub fn taint_threshold(&self) -> f64 {
        self.taint_threshold
    }

    /// Set which operation kinds are injection targets. The default is
    /// the paper's floating-point add/sub/mul; the index space of plan
    /// targets is counted over exactly this set, so plans and profiles
    /// must use the same mask.
    pub fn with_op_mask(mut self, mask: OpMask) -> Self {
        self.op_mask = mask;
        self
    }

    /// The injectable-operation mask.
    pub fn op_mask(&self) -> OpMask {
        self.op_mask
    }

    /// Mark the rank contaminated if the value pair diverges significantly.
    #[inline]
    pub fn observe(&mut self, value: Tf64) {
        if significant_divergence(value.value(), value.shadow(), self.taint_threshold) {
            self.mark_contaminated();
        }
    }

    /// Rank id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Extract the final report.
    pub fn into_report(self) -> CtxReport {
        let profile = self.profile();
        // Ops are aggregated by the per-region counters and flushed once
        // per rank here — never evented per-op.
        #[cfg(feature = "obs")]
        if obs::enabled() {
            obs::count(
                obs::Counter::OpsCommon,
                profile.region(Region::Common).total(),
            );
            obs::count(
                obs::Counter::OpsParallelUnique,
                profile.region(Region::ParallelUnique).total(),
            );
            obs::observe(obs::Hist::OpsPerRank, profile.total());
        }
        CtxReport {
            rank: self.rank,
            profile,
            fired: self.fired,
            planned: self.planned,
            contaminated: self.contaminated,
            hang_guard_tripped: self.hang_guard_tripped,
        }
    }

    /// Current op profile snapshot.
    pub fn profile(&self) -> OpProfile {
        let mut p = OpProfile::default();
        for r in Region::ALL {
            let i = r.index();
            p.regions[i].injectable = self.injectable[i];
            p.regions[i].per_kind = self.per_kind[i];
        }
        p
    }

    /// Whether the rank has been contaminated so far.
    pub fn is_contaminated(&self) -> bool {
        self.contaminated
    }

    /// Mark the rank contaminated (called on tainted values and tainted
    /// incoming messages).
    #[inline]
    pub fn mark_contaminated(&mut self) {
        if !self.contaminated {
            self.contaminated = true;
            #[cfg(feature = "obs")]
            if obs::enabled() {
                obs::count(obs::Counter::TaintBorn, 1);
                obs::emit(&obs::Event::TaintBorn { rank: self.rank });
            }
        }
    }

    /// Record a fired fault and its observability event.
    fn record_fired(&mut self, rec: FiredRecord) {
        #[cfg(feature = "obs")]
        if obs::enabled() {
            obs::count(obs::Counter::InjectionsFired, 1);
            obs::emit(&obs::Event::InjectionFired {
                rank: self.rank,
                region: region_trace_name(rec.target.region),
                op_index: rec.target.op_index,
                bit: rec.target.bit,
            });
        }
        self.fired.push(rec);
    }

    #[inline]
    fn bump(&mut self, kind: OpKind) {
        let i = self.region.index();
        self.per_kind[i][kind.index()] += 1;
        self.total_ops += 1;
        if let Some(cap) = self.op_cap {
            if self.total_ops > cap {
                self.hang_guard_tripped = true;
                #[cfg(feature = "obs")]
                if obs::enabled() {
                    obs::count(obs::Counter::HangGuardTrips, 1);
                    obs::emit(&obs::Event::HangGuardTrip { rank: self.rank });
                }
                panic!("{HANG_GUARD_MSG}");
            }
        }
    }

    /// Count an injectable op; fire *every* target whose index matches
    /// (multi-bit patterns plan several flips on the same dynamic op).
    ///
    /// Hot path: when no injection is due at this index — the
    /// overwhelmingly common case in profiling runs and in the long tail
    /// of injection trials — this is one counter increment plus one
    /// compare against the precomputed front-of-queue index; the queue
    /// itself is untouched and nothing allocates (`Vec::new` is free).
    #[inline]
    fn advance_injectable(&mut self) -> Vec<Target> {
        let i = self.region.index();
        let idx = self.injectable[i];
        self.injectable[i] += 1;
        if idx != self.next_pending[i] {
            return Vec::new();
        }
        self.pop_due(i, idx)
    }

    /// Slow path of [`RankCtx::advance_injectable`]: pop every target
    /// planned for dynamic op `idx` and recompute the next pending index.
    /// Queues are sorted ascending by op_index (see
    /// [`InjectionPlan::into_queues`]), so the front is always the
    /// minimum.
    #[cold]
    fn pop_due(&mut self, i: usize, idx: u64) -> Vec<Target> {
        let mut fired = Vec::new();
        while matches!(self.queues[i].front(), Some(t) if t.op_index == idx) {
            fired.push(self.queues[i].pop_front().expect("front just matched"));
        }
        self.next_pending[i] = self.queues[i].front().map_or(u64::MAX, |t| t.op_index);
        fired
    }
}

thread_local! {
    static CTX: RefCell<Option<RankCtx>> = const { RefCell::new(None) };
}

/// Install a context on the current thread, returning the previous one.
pub fn install(ctx: RankCtx) -> Option<RankCtx> {
    CTX.with(|c| c.borrow_mut().replace(ctx))
}

/// Remove and return the current thread's context.
pub fn take() -> Option<RankCtx> {
    CTX.with(|c| c.borrow_mut().take())
}

/// Whether a context is installed on this thread.
pub fn is_installed() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Run `f` with mutable access to the installed context (if any).
pub fn with<R>(f: impl FnOnce(&mut RankCtx) -> R) -> Option<R> {
    CTX.with(|c| c.borrow_mut().as_mut().map(f))
}

/// Enter a computation region; restored when the guard drops.
pub fn enter_region(r: Region) -> RegionGuard {
    let prev = CTX.with(|c| {
        c.borrow_mut().as_mut().map(|ctx| {
            let prev = ctx.region;
            ctx.region = r;
            prev
        })
    });
    RegionGuard { prev }
}

pub(crate) fn set_region(r: Region) {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            ctx.region = r;
        }
    });
}

/// Report externally observed taint (e.g. a received message containing
/// tainted elements) to the current rank's context, unconditionally.
pub fn note_taint(tainted: bool) {
    if tainted {
        CTX.with(|c| {
            if let Some(ctx) = c.borrow_mut().as_mut() {
                ctx.mark_contaminated();
            }
        });
    }
}

/// Report received values to the current rank's context: the rank is
/// marked contaminated when any element diverges beyond the context's
/// significance threshold (how the runtime accounts message-borne
/// contamination).
pub fn note_values(values: &[Tf64]) {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            for &v in values {
                if v.is_tainted() {
                    ctx.observe(v);
                    if ctx.is_contaminated() {
                        break;
                    }
                }
            }
        }
    });
}

/// The binary-operation hook: counts the op, possibly injects, computes
/// both the corrupted-world and shadow-world results, and records
/// contamination.
///
/// `f` must be a pure function of its operands (it is invoked twice, once
/// per world).
#[inline]
pub fn hook_binop(kind: OpKind, mut a: Tf64, mut b: Tf64, f: fn(f64, f64) -> f64) -> Tf64 {
    let fired: Vec<(Target, f64, f64)> = CTX.with(|c| {
        let mut borrow = c.borrow_mut();
        let Some(ctx) = borrow.as_mut() else {
            return Vec::new();
        };
        ctx.bump(kind);
        if !ctx.op_mask.contains(kind) {
            return Vec::new();
        }
        // Apply input-operand flips to the corrupted world only;
        // result-operand flips are applied after computing f.
        ctx.advance_injectable()
            .into_iter()
            .map(|t| {
                let (before, after) = match t.operand {
                    Operand::A => {
                        let before = a.value();
                        let after = t.apply(before);
                        a = Tf64::from_parts(after, a.shadow());
                        (before, after)
                    }
                    Operand::B => {
                        let before = b.value();
                        let after = t.apply(before);
                        b = Tf64::from_parts(after, b.shadow());
                        (before, after)
                    }
                    Operand::Result => (0.0, 0.0), // sentinel; patched below
                };
                (t, before, after)
            })
            .collect()
    });

    let mut v = f(a.value(), b.value());
    let sh = f(a.shadow(), b.shadow());

    if !fired.is_empty() {
        let mut records = Vec::with_capacity(fired.len());
        for (t, mut before, mut after) in fired {
            if matches!(t.operand, Operand::Result) {
                before = v;
                v = t.apply(v);
                after = v;
            }
            records.push((t, before, after));
        }
        let masked = v.to_bits() == sh.to_bits();
        CTX.with(|c| {
            if let Some(ctx) = c.borrow_mut().as_mut() {
                for (t, before, after) in records {
                    ctx.record_fired(FiredRecord {
                        target: t,
                        kind,
                        before,
                        after,
                        masked_at_site: masked,
                    });
                }
                ctx.mark_contaminated();
            }
        });
    }

    let out = Tf64::from_parts(v, sh);
    if out.is_tainted() {
        CTX.with(|c| {
            if let Some(ctx) = c.borrow_mut().as_mut() {
                ctx.observe(out);
            }
        });
    }
    out
}

/// The unary-operation hook (sqrt, abs, exp, …): counted as
/// [`OpKind::Other`] (or the given kind). Not a target under the default
/// mask, but extended masks (e.g. [`OpMask::ALL`]) may fire here: input
/// flips corrupt the operand, result flips corrupt the output.
#[inline]
pub fn hook_unop(kind: OpKind, mut a: Tf64, f: fn(f64) -> f64) -> Tf64 {
    let fired: Vec<Target> = CTX.with(|c| {
        let mut borrow = c.borrow_mut();
        let Some(ctx) = borrow.as_mut() else {
            return Vec::new();
        };
        ctx.bump(kind);
        if !ctx.op_mask.contains(kind) {
            return Vec::new();
        }
        ctx.advance_injectable()
    });
    let mut result_flips = Vec::new();
    if !fired.is_empty() {
        let mut records = Vec::new();
        for t in fired {
            match t.operand {
                Operand::A | Operand::B => {
                    let before = a.value();
                    let after = t.apply(before);
                    a = Tf64::from_parts(after, a.shadow());
                    records.push((t, before, after));
                }
                Operand::Result => result_flips.push(t),
            }
        }
        CTX.with(|c| {
            if let Some(ctx) = c.borrow_mut().as_mut() {
                for (t, before, after) in records {
                    ctx.record_fired(FiredRecord {
                        target: t,
                        kind,
                        before,
                        after,
                        masked_at_site: false,
                    });
                }
                ctx.mark_contaminated();
            }
        });
    }
    let mut v = f(a.value());
    let sh = f(a.shadow());
    if !result_flips.is_empty() {
        let mut records = Vec::new();
        for t in result_flips {
            let before = v;
            v = t.apply(v);
            records.push((t, before, v));
        }
        let masked = v.to_bits() == sh.to_bits();
        CTX.with(|c| {
            if let Some(ctx) = c.borrow_mut().as_mut() {
                for (t, before, after) in records {
                    ctx.record_fired(FiredRecord {
                        target: t,
                        kind,
                        before,
                        after,
                        masked_at_site: masked,
                    });
                }
                ctx.mark_contaminated();
            }
        });
    }
    let out = Tf64::from_parts(v, sh);
    if out.is_tainted() {
        CTX.with(|c| {
            if let Some(ctx) = c.borrow_mut().as_mut() {
                ctx.observe(out);
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{InjectionPlan, Operand};

    fn target(region: Region, op_index: u64, bit: u8, operand: Operand) -> Target {
        Target {
            region,
            op_index,
            bit,
            operand,
        }
    }

    /// Serialize context-using tests: contexts are thread-local, and the
    /// test harness may run tests on the same thread pool.
    fn with_clean_ctx<R>(ctx: RankCtx, f: impl FnOnce() -> R) -> (R, CtxReport) {
        let prev = install(ctx);
        assert!(prev.is_none(), "leaked context from another test");
        let r = f();
        let report = take().unwrap().into_report();
        (r, report)
    }

    #[test]
    fn counting_without_plan() {
        let (_, report) = with_clean_ctx(RankCtx::profiling(3), || {
            let a = Tf64::new(1.5);
            let b = Tf64::new(2.5);
            let _ = a + b;
            let _ = a * b;
            let _ = a / b;
        });
        assert_eq!(report.rank, 3);
        assert_eq!(report.profile.injectable(Region::Common), 2);
        assert_eq!(report.profile.total(), 3);
        assert!(!report.contaminated);
        assert!(report.fired.is_empty());
    }

    #[test]
    fn single_injection_fires_at_exact_index() {
        // Bit 55 (an exponent bit) guarantees the flip is not rounded away.
        let plan = InjectionPlan::single(target(Region::Common, 2, 55, Operand::B));
        let (_, report) = with_clean_ctx(RankCtx::new(0, plan), || {
            let a = Tf64::new(1.0);
            let b = Tf64::new(2.0);
            let c = a + b; // idx 0
            let d = c * b; // idx 1
            let e = d + a; // idx 2  <- fires on operand B (= a)
            assert!(e.is_tainted());
            assert!(!d.is_tainted());
        });
        assert_eq!(report.fired.len(), 1);
        assert_eq!(report.fired[0].target.op_index, 2);
        assert!(report.contaminated);
    }

    #[test]
    fn result_operand_flip() {
        let plan = InjectionPlan::single(target(Region::Common, 0, 52, Operand::Result));
        let (_, report) = with_clean_ctx(RankCtx::new(0, plan), || {
            let a = Tf64::new(1.0);
            let b = Tf64::new(2.0);
            let c = a + b;
            assert!(c.is_tainted());
            assert_eq!(c.shadow(), 3.0);
            assert_ne!(c.value(), 3.0);
        });
        assert_eq!(report.fired.len(), 1);
        assert_eq!(report.fired[0].before, 3.0);
    }

    #[test]
    fn injection_in_masked_position_is_detected() {
        // Flip a low mantissa bit of an operand that is then multiplied by
        // zero: result identical in both worlds -> masked at site.
        let plan = InjectionPlan::single(target(Region::Common, 0, 0, Operand::A));
        let (_, report) = with_clean_ctx(RankCtx::new(0, plan), || {
            let a = Tf64::new(1.0);
            let zero = Tf64::new(0.0);
            let c = a * zero;
            assert!(!c.is_tainted());
            assert_eq!(c.value(), 0.0);
        });
        assert_eq!(report.fired.len(), 1);
        assert!(report.fired[0].masked_at_site);
        // The rank still counts as contaminated: the flipped operand existed.
        assert!(report.contaminated);
    }

    #[test]
    fn region_counters_are_separate() {
        let plan = InjectionPlan::single(target(Region::ParallelUnique, 0, 3, Operand::A));
        let (_, report) = with_clean_ctx(RankCtx::new(0, plan), || {
            let a = Tf64::new(1.0);
            let b = Tf64::new(2.0);
            let _ = a + b; // common idx 0: must NOT fire
            let g = enter_region(Region::ParallelUnique);
            let c = a + b; // parallel-unique idx 0: fires
            assert!(c.is_tainted());
            drop(g);
            let d = a + b; // common idx 1
            assert!(!d.is_tainted());
        });
        assert_eq!(report.profile.injectable(Region::Common), 2);
        assert_eq!(report.profile.injectable(Region::ParallelUnique), 1);
        assert_eq!(report.fired.len(), 1);
    }

    #[test]
    fn region_guard_restores_on_drop() {
        let (_, report) = with_clean_ctx(RankCtx::profiling(0), || {
            let a = Tf64::new(1.0);
            {
                let _g = enter_region(Region::ParallelUnique);
                let _ = a + a;
                {
                    let _g2 = enter_region(Region::Common);
                    let _ = a + a;
                }
                let _ = a + a;
            }
            let _ = a + a;
        });
        assert_eq!(report.profile.injectable(Region::ParallelUnique), 2);
        assert_eq!(report.profile.injectable(Region::Common), 2);
    }

    #[test]
    fn multi_error_plan_fires_all() {
        let plan = InjectionPlan::multi(vec![
            target(Region::Common, 1, 5, Operand::A),
            target(Region::Common, 3, 6, Operand::B),
            target(Region::Common, 0, 7, Operand::A),
        ]);
        let (_, report) = with_clean_ctx(RankCtx::new(0, plan), || {
            let a = Tf64::new(1.0);
            let mut acc = Tf64::new(0.0);
            for _ in 0..5 {
                acc += a;
            }
            acc
        });
        assert_eq!(report.planned, 3);
        assert_eq!(report.fired.len(), 3);
        let idx: Vec<u64> = report.fired.iter().map(|f| f.target.op_index).collect();
        assert_eq!(idx, vec![0, 1, 3]);
    }

    #[test]
    fn multiple_flips_on_one_op_all_fire() {
        // Multi-bit pattern: three distinct bits of the same operand of
        // the same dynamic op must all flip (their XOR composes).
        let plan = InjectionPlan::multi(vec![
            target(Region::Common, 1, 3, Operand::A),
            target(Region::Common, 1, 7, Operand::A),
            target(Region::Common, 1, 55, Operand::A),
        ]);
        let (value, report) = with_clean_ctx(RankCtx::new(0, plan), || {
            let a = Tf64::new(1.5);
            let b = a + 0.0; // op 0
            let c = b + 0.0; // op 1: three flips on operand A (= b)
            c
        });
        assert_eq!(report.fired.len(), 3);
        let expect = f64::from_bits(1.5f64.to_bits() ^ (1 << 3) ^ (1 << 7) ^ (1 << 55));
        assert_eq!(value.value(), expect + 0.0);
        assert!(value.is_tainted());
    }

    #[test]
    fn extended_mask_targets_divisions() {
        use crate::mask::OpMask;
        // Under OpMask::DIV, only divisions advance the index space.
        let plan = InjectionPlan::single(target(Region::Common, 0, 55, Operand::B));
        let (_, report) = with_clean_ctx(RankCtx::new(0, plan).with_op_mask(OpMask::DIV), || {
            let a = Tf64::new(6.0);
            let b = Tf64::new(2.0);
            let c = a + b; // add: not a target under DIV mask
            assert!(!c.is_tainted());
            let d = a / b; // div idx 0: fires on operand B
            assert!(d.is_tainted());
        });
        assert_eq!(report.fired.len(), 1);
        assert_eq!(report.fired[0].kind, OpKind::Div);
        // The injectable index space counted only the division.
        assert_eq!(report.profile.injectable(Region::Common), 1);
    }

    #[test]
    fn extended_mask_fires_on_unary_ops() {
        use crate::mask::OpMask;
        let plan = InjectionPlan::single(target(Region::Common, 0, 52, Operand::Result));
        let (_, report) = with_clean_ctx(
            RankCtx::new(0, plan).with_op_mask(OpMask::of(&[OpKind::Other])),
            || {
                let a = Tf64::new(4.0);
                let r = a.sqrt(); // Other idx 0: result flip
                assert!(r.is_tainted());
                assert_eq!(r.shadow(), 2.0);
                assert_ne!(r.value(), 2.0);
            },
        );
        assert_eq!(report.fired.len(), 1);
        assert_eq!(report.fired[0].kind, OpKind::Other);
        assert!(report.contaminated);
    }

    #[test]
    fn unfired_targets_are_reported() {
        let plan = InjectionPlan::single(target(Region::Common, 100, 5, Operand::A));
        let (_, report) = with_clean_ctx(RankCtx::new(0, plan), || {
            let a = Tf64::new(1.0);
            let _ = a + a; // only 1 op; target at 100 never fires
        });
        assert_eq!(report.planned, 1);
        assert!(report.fired.is_empty());
        assert!(!report.contaminated);
    }

    #[test]
    fn hang_guard_panics_past_budget() {
        let prev = install(RankCtx::profiling(0).with_op_cap(10));
        assert!(prev.is_none());
        let result = std::panic::catch_unwind(|| {
            let a = Tf64::new(1.0);
            let mut acc = Tf64::new(0.0);
            for _ in 0..100 {
                acc += a;
            }
            acc
        });
        assert!(result.is_err());
        let msg = result
            .unwrap_err()
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("hang guard"));
        let report = take().unwrap().into_report();
        assert!(report.hang_guard_tripped);
    }

    #[test]
    fn note_taint_marks_contamination() {
        let (_, report) = with_clean_ctx(RankCtx::profiling(0), || {
            note_taint(false);
            assert!(!with(|c| c.is_contaminated()).unwrap());
            note_taint(true);
        });
        assert!(report.contaminated);
    }

    #[test]
    fn tainted_operand_contaminates_rank() {
        let (_, report) = with_clean_ctx(RankCtx::profiling(0), || {
            // Value born tainted (e.g. received from a contaminated rank).
            let t = Tf64::from_parts(1.5, 1.0);
            let clean = Tf64::new(2.0);
            let out = t + clean;
            assert!(out.is_tainted());
        });
        assert!(report.contaminated);
    }

    #[test]
    fn hooks_work_without_context() {
        assert!(!is_installed());
        let a = Tf64::new(2.0);
        let b = Tf64::new(3.0);
        assert_eq!((a * b).value(), 6.0);
        assert!(!(a * b).is_tainted());
    }
}
