//! Computation regions: common vs parallel-unique code.
//!
//! Observation 1 of the paper splits parallel execution into *common
//! computation* (also executed by the serial run) and *parallel-unique
//! computation* (boundary preparation, transpose packing, …). Applications
//! mark parallel-unique stretches with a [`RegionGuard`]; the injection
//! context counts dynamic FP operations per region so that
//!
//! * Table 1 (parallel-unique share) can be measured, and
//! * injections can be targeted at a specific region (the
//!   `FI_par_unique` term of Equation 1).

use serde::{Deserialize, Serialize};

/// Which part of the computation a dynamic FP operation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Region {
    /// Computation executed by serial and parallel runs alike.
    Common,
    /// Computation that only exists in parallel execution (halo packing,
    /// transpose staging, partial-result preparation, …).
    ParallelUnique,
}

impl Region {
    /// All regions, in a fixed order usable for array indexing.
    pub const ALL: [Region; 2] = [Region::Common, Region::ParallelUnique];

    /// Stable index of the region (for compact per-region arrays).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Region::Common => 0,
            Region::ParallelUnique => 1,
        }
    }

    /// Inverse of [`Region::index`].
    pub fn from_index(i: usize) -> Option<Region> {
        Region::ALL.get(i).copied()
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Region::Common => write!(f, "common"),
            Region::ParallelUnique => write!(f, "parallel-unique"),
        }
    }
}

/// RAII guard that switches the current thread's injection context into a
/// region and restores the previous region on drop.
///
/// Created via [`crate::ctx::enter_region`]. A guard taken while no context
/// is installed is a no-op.
#[must_use = "the region is only active while the guard is alive"]
pub struct RegionGuard {
    pub(crate) prev: Option<Region>,
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev {
            crate::ctx::set_region(prev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_index_roundtrip() {
        for r in Region::ALL {
            assert_eq!(Region::from_index(r.index()), Some(r));
        }
        assert_eq!(Region::from_index(2), None);
    }

    #[test]
    fn region_display() {
        assert_eq!(Region::Common.to_string(), "common");
        assert_eq!(Region::ParallelUnique.to_string(), "parallel-unique");
    }

    #[test]
    fn region_serde_roundtrip() {
        for r in Region::ALL {
            let s = serde_json::to_string(&r).unwrap();
            let back: Region = serde_json::from_str(&s).unwrap();
            assert_eq!(back, r);
        }
    }
}
