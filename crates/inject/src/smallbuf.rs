//! A tiny fixed-capacity buffer that spills to the heap only past `N`
//! elements.
//!
//! The injection fire path collects the targets due at one dynamic op;
//! that is almost always one target (multi-bit patterns plan a handful).
//! Collecting them into a `Vec` put a heap allocation on every fire, and
//! — worse — forced the *non*-firing path to materialize `Vec::new()`
//! return values. `InlineVec` keeps the common case entirely on the
//! stack while staying correct for adversarial plans that stack many
//! flips on a single op.

/// Fixed-capacity stack buffer with heap spill (cold paths only).
pub(crate) struct InlineVec<T: Copy, const N: usize> {
    buf: [Option<T>; N],
    len: usize,
    spill: Vec<T>,
}

impl<T: Copy, const N: usize> InlineVec<T, N> {
    /// An empty buffer. Does not allocate.
    pub fn new() -> Self {
        InlineVec {
            buf: [None; N],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Append an element, spilling to the heap past `N`.
    pub fn push(&mut self, t: T) {
        if self.len < N {
            self.buf[self.len] = Some(t);
            self.len += 1;
        } else {
            self.spill.push(t);
        }
    }

    /// Whether no element has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Elements in push order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[..self.len]
            .iter()
            .map(|slot| slot.as_ref().expect("inline slot within len"))
            .chain(self.spill.iter())
    }

    /// Mutable elements in push order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.buf[..self.len]
            .iter_mut()
            .map(|slot| slot.as_mut().expect("inline slot within len"))
            .chain(self.spill.iter_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_within_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert!(!v.is_empty());
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert!(v.spill.is_empty());
    }

    #[test]
    fn spills_past_capacity_preserving_order() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(v.spill.len(), 3);
    }

    #[test]
    fn iter_mut_updates_in_place() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..3 {
            v.push(i);
        }
        for x in v.iter_mut() {
            *x += 10;
        }
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![10, 11, 12]);
    }
}
