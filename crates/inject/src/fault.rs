//! Pluggable fault models.
//!
//! The paper's baseline model is a *single-bit flip in an operand of one
//! floating-point operation*. This module makes the model a first-class,
//! selectable dimension of a campaign: a [`FaultModelSpec`] names the
//! model (and is folded into ledger/cache keys so resume and dedup stay
//! correct), and a [`FaultModel`] turns the harness's uniformly-drawn
//! injection *site* into the concrete [`Target`]s to corrupt.
//!
//! Four models ship:
//!
//! * [`FaultModelSpec::BitFlip`] — the baseline. Its draw sequence is
//!   bit-for-bit identical to the pre-trait code (proven by the
//!   `bitflip_matches_legacy_draw_sequence` test), so default
//!   campaigns reproduce historical results exactly.
//! * [`FaultModelSpec::Burst`] — `width` *consecutive* bits of one
//!   operand flip together (a spatial burst, as wide datapath upsets
//!   produce), unlike the independent random bits of `par:xK`.
//! * [`FaultModelSpec::Due`] — detected-uncorrectable error: the same
//!   single-bit draw, but the afflicted rank is killed at the firing op
//!   (hardware detected the corruption and halted) instead of silently
//!   continuing. Surfaces as [`FailureKind::Due`](crate::FailureKind).
//! * [`FaultModelSpec::Msg`] — the corruption happens *on the wire*: a
//!   bit of one element of one numeric message payload, applied by the
//!   simmpi fabric rather than at an FP op. The harness draws the
//!   message site from golden per-rank send counts; no op target exists.
//!
//! Model dispatch happens once per **trial** (plan time), never per op:
//! the per-op hot path is untouched and stays zero-cost for every model.

use crate::plan::{FaultPattern, Operand, Target};
use crate::region::Region;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Burst width used when `--fault-model burst` is given without `:K`.
pub const DEFAULT_BURST_WIDTH: u8 = 3;

/// The selectable fault model of a campaign.
///
/// `Copy`, orderable into a stable CLI spelling ([`cli_name`]) that
/// doubles as the ledger-key fragment, and serde-serializable (unit and
/// tuple variants only, per the vendored serde facade).
///
/// [`cli_name`]: FaultModelSpec::cli_name
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultModelSpec {
    /// Single-bit operand flip at one FP op (the paper's model).
    #[default]
    BitFlip,
    /// A burst of consecutive bit flips (width 2–8) in one operand.
    Burst(u8),
    /// Detected-uncorrectable error: single-bit flip + rank kill.
    Due,
    /// Message-payload corruption applied at the communication fabric.
    Msg,
}

impl FaultModelSpec {
    /// Every model, with the default burst width (CI matrices and the
    /// check fuzzer sweep this list).
    pub const ALL: [FaultModelSpec; 4] = [
        FaultModelSpec::BitFlip,
        FaultModelSpec::Burst(DEFAULT_BURST_WIDTH),
        FaultModelSpec::Due,
        FaultModelSpec::Msg,
    ];

    /// Parse a CLI spelling: `bitflip`, `burst` (width
    /// [`DEFAULT_BURST_WIDTH`]), `burst:K` (K in 2..=8), `due`, `msg`.
    pub fn parse(s: &str) -> Result<FaultModelSpec, String> {
        match s {
            "bitflip" => Ok(FaultModelSpec::BitFlip),
            "burst" => Ok(FaultModelSpec::Burst(DEFAULT_BURST_WIDTH)),
            "due" => Ok(FaultModelSpec::Due),
            "msg" => Ok(FaultModelSpec::Msg),
            _ => {
                if let Some(k) = s.strip_prefix("burst:") {
                    let k: u8 = k.parse().map_err(|_| format!("bad burst width in '{s}'"))?;
                    if !(2..=8).contains(&k) {
                        return Err(format!("burst width must be 2..=8, got {k}"));
                    }
                    Ok(FaultModelSpec::Burst(k))
                } else {
                    Err(format!(
                        "unknown fault model '{s}' (expected bitflip, burst[:K], due, or msg)"
                    ))
                }
            }
        }
    }

    /// The stable CLI spelling; also the ledger/cache-key fragment and
    /// the store file-name suffix for non-default models.
    pub fn cli_name(&self) -> String {
        match self {
            FaultModelSpec::BitFlip => "bitflip".to_string(),
            FaultModelSpec::Burst(k) => format!("burst:{k}"),
            FaultModelSpec::Due => "due".to_string(),
            FaultModelSpec::Msg => "msg".to_string(),
        }
    }

    /// Whether this is the default (paper baseline) model. Default-model
    /// campaigns must keep pre-trait ledger keys and outputs bitwise.
    pub fn is_default(&self) -> bool {
        *self == FaultModelSpec::BitFlip
    }

    /// Whether the model corrupts message payloads at the fabric instead
    /// of FP operands (no op targets are drawn).
    pub fn targets_messages(&self) -> bool {
        matches!(self, FaultModelSpec::Msg)
    }

    /// Whether a fired fault kills its rank (DUE semantics).
    pub fn kills_on_fire(&self) -> bool {
        matches!(self, FaultModelSpec::Due)
    }

    /// Instantiate the model behind the trait.
    pub fn model(&self) -> Box<dyn FaultModel> {
        match self {
            FaultModelSpec::BitFlip => Box::new(SingleBitFlip),
            FaultModelSpec::Burst(k) => Box::new(BurstFlip { width: *k }),
            FaultModelSpec::Due => Box::new(DueKill),
            FaultModelSpec::Msg => Box::new(MsgCorrupt),
        }
    }
}

/// One fault model: given the uniformly-drawn injection site (region +
/// dynamic op index), decide the applied corruption.
///
/// Implementations draw from `rng` in a fixed, documented order — the
/// draws are part of a campaign's deterministic identity.
pub trait FaultModel: Send + Sync {
    /// The spec this model was instantiated from.
    fn spec(&self) -> FaultModelSpec;

    /// The operand-level targets for one drawn op site. `pattern` is the
    /// campaign's error pattern (`par` → [`FaultPattern::SingleBit`],
    /// `par:xK` → [`FaultPattern::MultiBit`]); models that define their
    /// own bit geometry (burst) ignore it and are restricted to `par`.
    fn op_targets(
        &self,
        rng: &mut SmallRng,
        pattern: FaultPattern,
        region: Region,
        op_index: u64,
    ) -> Vec<Target>;
}

/// Draw the afflicted operand — shared by every op-targeting model, in
/// the pre-trait order (operand before bits).
fn draw_operand(rng: &mut SmallRng) -> Operand {
    if rng.gen_bool(0.5) {
        Operand::A
    } else {
        Operand::B
    }
}

/// The baseline single-bit (or `par:xK` multi-bit) operand flip.
///
/// Draw order is the pre-trait `draw_targets` exactly: operand first,
/// then the bit(s) — single `gen_range(0..64)`, or a `BTreeSet` filled
/// by rejection for `MultiBit(k)`.
pub struct SingleBitFlip;

impl FaultModel for SingleBitFlip {
    fn spec(&self) -> FaultModelSpec {
        FaultModelSpec::BitFlip
    }

    fn op_targets(
        &self,
        rng: &mut SmallRng,
        pattern: FaultPattern,
        region: Region,
        op_index: u64,
    ) -> Vec<Target> {
        let operand = draw_operand(rng);
        let bits: Vec<u8> = match pattern {
            FaultPattern::MultiBit(k) => {
                let mut set = std::collections::BTreeSet::new();
                while set.len() < k as usize {
                    set.insert(rng.gen_range(0..64u8));
                }
                set.into_iter().collect()
            }
            FaultPattern::SingleBit => vec![rng.gen_range(0..64)],
        };
        bits.into_iter()
            .map(|bit| Target {
                region,
                op_index,
                bit,
                operand,
            })
            .collect()
    }
}

/// `width` consecutive bits of one operand flip together. The start bit
/// is uniform over `0..=64-width`, so the burst never wraps.
pub struct BurstFlip {
    /// Number of consecutive bits flipped (2..=8).
    pub width: u8,
}

impl FaultModel for BurstFlip {
    fn spec(&self) -> FaultModelSpec {
        FaultModelSpec::Burst(self.width)
    }

    fn op_targets(
        &self,
        rng: &mut SmallRng,
        _pattern: FaultPattern,
        region: Region,
        op_index: u64,
    ) -> Vec<Target> {
        let operand = draw_operand(rng);
        let start: u8 = rng.gen_range(0..(65 - self.width));
        (start..start + self.width)
            .map(|bit| Target {
                region,
                op_index,
                bit,
                operand,
            })
            .collect()
    }
}

/// Detected-uncorrectable error: the corruption draw is the baseline
/// single-bit flip, but the executing context is armed with
/// kill-on-fire, so the rank panics (with
/// [`DUE_MSG`](crate::ctx::DUE_MSG)) at the firing op.
pub struct DueKill;

impl FaultModel for DueKill {
    fn spec(&self) -> FaultModelSpec {
        FaultModelSpec::Due
    }

    fn op_targets(
        &self,
        rng: &mut SmallRng,
        pattern: FaultPattern,
        region: Region,
        op_index: u64,
    ) -> Vec<Target> {
        SingleBitFlip.op_targets(rng, pattern, region, op_index)
    }
}

/// Message-payload corruption. The injection site is a message, not an
/// op: the harness draws `(sender, message index, element, bit)` from
/// golden per-rank send counts and arms the fabric with it, so this
/// model plans no op targets at all.
pub struct MsgCorrupt;

impl FaultModel for MsgCorrupt {
    fn spec(&self) -> FaultModelSpec {
        FaultModelSpec::Msg
    }

    fn op_targets(
        &self,
        _rng: &mut SmallRng,
        _pattern: FaultPattern,
        _region: Region,
        _op_index: u64,
    ) -> Vec<Target> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn parse_round_trips_every_spelling() {
        for spelling in ["bitflip", "burst:2", "burst:8", "due", "msg"] {
            let spec = FaultModelSpec::parse(spelling).unwrap();
            assert_eq!(spec.cli_name(), spelling);
        }
        assert_eq!(
            FaultModelSpec::parse("burst").unwrap(),
            FaultModelSpec::Burst(DEFAULT_BURST_WIDTH)
        );
        assert!(FaultModelSpec::parse("burst:1").is_err());
        assert!(FaultModelSpec::parse("burst:9").is_err());
        assert!(FaultModelSpec::parse("burst:x").is_err());
        assert!(FaultModelSpec::parse("gamma-ray").is_err());
    }

    #[test]
    fn default_is_the_paper_baseline() {
        assert_eq!(FaultModelSpec::default(), FaultModelSpec::BitFlip);
        assert!(FaultModelSpec::BitFlip.is_default());
        assert!(!FaultModelSpec::Due.is_default());
        assert!(FaultModelSpec::Msg.targets_messages());
        assert!(FaultModelSpec::Due.kills_on_fire());
        assert!(!FaultModelSpec::BitFlip.kills_on_fire());
    }

    #[test]
    fn serde_round_trip() {
        for spec in FaultModelSpec::ALL {
            let json = serde_json::to_string(&spec).unwrap();
            let back: FaultModelSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
    }

    /// The pre-trait target draw, copied verbatim from the harness's
    /// `draw_targets` (PR 7 state): the refactored default model must
    /// reproduce it bit for bit or historical campaigns change.
    fn legacy_draw_targets(
        rng: &mut SmallRng,
        multi_bit: Option<u8>,
        region: Region,
        op_index: u64,
    ) -> Vec<Target> {
        let operand = if rng.gen_bool(0.5) {
            Operand::A
        } else {
            Operand::B
        };
        let bits: Vec<u8> = match multi_bit {
            Some(k) => {
                let mut set = std::collections::BTreeSet::new();
                while set.len() < k as usize {
                    set.insert(rng.gen_range(0..64u8));
                }
                set.into_iter().collect()
            }
            None => vec![rng.gen_range(0..64)],
        };
        bits.into_iter()
            .map(|bit| Target {
                region,
                op_index,
                bit,
                operand,
            })
            .collect()
    }

    #[test]
    fn bitflip_matches_legacy_draw_sequence() {
        let model = FaultModelSpec::BitFlip.model();
        for seed in 0..200u64 {
            for (pattern, multi) in [
                (FaultPattern::SingleBit, None),
                (FaultPattern::MultiBit(2), Some(2)),
                (FaultPattern::MultiBit(5), Some(5)),
            ] {
                let mut a = SmallRng::seed_from_u64(seed);
                let mut b = SmallRng::seed_from_u64(seed);
                let ours = model.op_targets(&mut a, pattern, Region::Common, seed % 97);
                let legacy = legacy_draw_targets(&mut b, multi, Region::Common, seed % 97);
                assert_eq!(ours, legacy, "seed {seed} pattern {pattern:?}");
                // The RNGs must also be in the same state afterwards:
                // later draws in the same trial depend on it.
                assert_eq!(a.next_u64(), b.next_u64(), "rng state diverged");
            }
        }
    }

    #[test]
    fn burst_flips_consecutive_bits_of_one_operand() {
        for seed in 0..100u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let model = BurstFlip { width: 4 };
            let targets =
                model.op_targets(&mut rng, FaultPattern::SingleBit, Region::ParallelUnique, 7);
            assert_eq!(targets.len(), 4);
            let operand = targets[0].operand;
            for (i, t) in targets.iter().enumerate() {
                assert_eq!(t.operand, operand, "one operand per burst");
                assert_eq!(t.bit, targets[0].bit + i as u8, "consecutive bits");
                assert!(t.bit < 64);
                assert_eq!(t.op_index, 7);
                assert_eq!(t.region, Region::ParallelUnique);
            }
        }
    }

    #[test]
    fn due_draws_like_the_baseline() {
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        let due = DueKill.op_targets(&mut a, FaultPattern::SingleBit, Region::Common, 3);
        let base = SingleBitFlip.op_targets(&mut b, FaultPattern::SingleBit, Region::Common, 3);
        assert_eq!(due, base);
    }

    #[test]
    fn msg_model_plans_no_op_targets() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(MsgCorrupt
            .op_targets(&mut rng, FaultPattern::SingleBit, Region::Common, 0)
            .is_empty());
    }
}
