//! Dynamic operation profiles.
//!
//! A fault-free *profiling run* counts every tracked floating-point
//! operation, per [`Region`] and per [`OpKind`]. Profiles serve three
//! purposes:
//!
//! * they define the sample space for random injection (a target op index
//!   is drawn uniformly from `0..injectable(region)`),
//! * they measure the parallel-unique share of computation (Table 1 of the
//!   paper; `prob_1`/`prob_2` of Equation 1), and
//! * they provide the hang-guard budget (a corrupted run executing far more
//!   ops than the fault-free run is classified as a hang).

use crate::region::Region;
use serde::{Deserialize, Serialize};

/// Kinds of tracked floating-point operations.
///
/// `Add`, `Sub` and `Mul` are *injectable* (the paper injects into floating
/// point addition and multiplication); the remaining kinds are counted for
/// completeness and participate in taint propagation but are not injection
/// targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Floating-point addition.
    Add,
    /// Floating-point subtraction.
    Sub,
    /// Floating-point multiplication.
    Mul,
    /// Floating-point division (tracked, not injectable).
    Div,
    /// Everything else routed through the hook (sqrt, abs, min/max, exp, …).
    Other,
}

impl OpKind {
    /// All kinds, index-aligned with [`OpKind::index`].
    pub const ALL: [OpKind; 5] = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Div,
        OpKind::Other,
    ];

    /// Stable array index.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            OpKind::Add => 0,
            OpKind::Sub => 1,
            OpKind::Mul => 2,
            OpKind::Div => 3,
            OpKind::Other => 4,
        }
    }

    /// Whether faults may be injected into this kind of operation.
    #[inline]
    pub const fn injectable(self) -> bool {
        matches!(self, OpKind::Add | OpKind::Sub | OpKind::Mul)
    }
}

/// Operation counts for one region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionCounts {
    /// Count of injectable ops (add/sub/mul) — the injection sample space.
    pub injectable: u64,
    /// Per-kind counts, indexed by [`OpKind::index`].
    pub per_kind: [u64; 5],
}

impl RegionCounts {
    /// Total tracked ops in this region.
    pub fn total(&self) -> u64 {
        self.per_kind.iter().sum()
    }

    /// Ops in this region matching an arbitrary mask (derived from the
    /// per-kind counts, independent of the mask the run was counted with).
    pub fn injectable_for(&self, mask: crate::mask::OpMask) -> u64 {
        OpKind::ALL
            .into_iter()
            .filter(|k| mask.contains(*k))
            .map(|k| self.per_kind[k.index()])
            .sum()
    }
}

/// The dynamic-op profile of one rank's execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpProfile {
    /// Counts per region, indexed by [`Region::index`].
    pub regions: [RegionCounts; 2],
    /// Numeric (F64-payload) messages this rank sent through the fabric.
    /// The message-corruption fault model draws its injection site
    /// uniformly from `0..msgs_sent` across ranks, exactly as op faults
    /// draw from `0..injectable`.
    pub msgs_sent: u64,
}

impl OpProfile {
    /// Counts for a region.
    #[inline]
    pub fn region(&self, r: Region) -> &RegionCounts {
        &self.regions[r.index()]
    }

    /// Injectable ops in a region (the sample space for targets there).
    pub fn injectable(&self, r: Region) -> u64 {
        self.region(r).injectable
    }

    /// Total injectable ops across regions.
    pub fn injectable_total(&self) -> u64 {
        self.regions.iter().map(|c| c.injectable).sum()
    }

    /// Total tracked ops across regions and kinds.
    pub fn total(&self) -> u64 {
        self.regions.iter().map(|c| c.total()).sum()
    }

    /// Fraction of injectable ops that are parallel-unique.
    ///
    /// This is the repo's operational stand-in for the paper's Table 1
    /// "percentage of parallel-unique computation" (the paper measures
    /// execution-time share; under uniform-over-ops injection the op share
    /// is exactly the probability `prob_2` of Equation 1).
    pub fn parallel_unique_share(&self) -> f64 {
        let total = self.injectable_total();
        if total == 0 {
            return 0.0;
        }
        self.injectable(Region::ParallelUnique) as f64 / total as f64
    }

    /// Merge another profile into this one (summing all counters).
    pub fn merge(&mut self, other: &OpProfile) {
        for (mine, theirs) in self.regions.iter_mut().zip(other.regions.iter()) {
            mine.injectable += theirs.injectable;
            for (m, t) in mine.per_kind.iter_mut().zip(theirs.per_kind.iter()) {
                *m += *t;
            }
        }
        self.msgs_sent += other.msgs_sent;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opkind_indices_align() {
        for (i, k) in OpKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn injectable_kinds() {
        assert!(OpKind::Add.injectable());
        assert!(OpKind::Sub.injectable());
        assert!(OpKind::Mul.injectable());
        assert!(!OpKind::Div.injectable());
        assert!(!OpKind::Other.injectable());
    }

    fn sample_profile() -> OpProfile {
        let mut p = OpProfile::default();
        p.regions[Region::Common.index()] = RegionCounts {
            injectable: 90,
            per_kind: [40, 20, 30, 5, 5],
        };
        p.regions[Region::ParallelUnique.index()] = RegionCounts {
            injectable: 10,
            per_kind: [4, 3, 3, 0, 1],
        };
        p
    }

    #[test]
    fn share_and_totals() {
        let p = sample_profile();
        assert_eq!(p.injectable_total(), 100);
        assert_eq!(p.total(), 111);
        assert!((p.parallel_unique_share() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_share_is_zero() {
        assert_eq!(OpProfile::default().parallel_unique_share(), 0.0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = sample_profile();
        a.msgs_sent = 5;
        let mut b = sample_profile();
        b.msgs_sent = 7;
        a.merge(&b);
        assert_eq!(a.injectable_total(), 200);
        assert_eq!(a.total(), 222);
        assert_eq!(a.msgs_sent, 12);
        assert!((a.parallel_unique_share() - 0.10).abs() < 1e-12);
    }
}
