//! Durable-ledger contracts: a killed-and-resumed campaign, a sharded
//! campaign merged from its ledgers, and a ledger with a corrupted tail
//! must all reproduce the uninterrupted single-process run *bitwise* —
//! same outcomes vector, same statistics. Trials are fully determined by
//! `(spec, seed, trial index)`, so any partition of "who ran what when"
//! may not leak into the results.

use resilim_apps::App;
use resilim_harness::{CampaignRunner, CampaignSpec, ErrorSpec, Shard, TrialLedger};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("resilim-ledres-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(tests: usize) -> CampaignSpec {
    CampaignSpec::new(App::Lu.default_spec(), 2, ErrorSpec::OneParallel, tests, 11)
}

/// The ledger file a single-process run of `key` appended in this test
/// process (tests run in-process, so the pid suffix is ours).
fn own_ledger_file(dir: &std::path::Path, key: &str) -> PathBuf {
    dir.join(TrialLedger::file_name(key))
}

#[test]
fn kill_and_resume_is_bitwise_identical() {
    let dir = temp_dir("resume");
    let spec = spec(14);
    let fresh = CampaignRunner::new().run_uncached(&spec);

    // "Interrupted" run: execute everything, then cut the ledger off
    // after 6 records — exactly what a kill at trial 6 leaves behind
    // (append-only file, flushed per record).
    CampaignRunner::new()
        .with_ledger_dir(&dir)
        .run_uncached(&spec);
    let file = own_ledger_file(&dir, &spec.ledger_key());
    let raw = std::fs::read_to_string(&file).unwrap();
    let kept: String = raw.lines().take(6).map(|l| format!("{l}\n")).collect();
    std::fs::write(&file, kept).unwrap();
    assert_eq!(
        TrialLedger::load(&dir, &spec.ledger_key(), spec.seed).len(),
        6
    );

    // Resume at jobs=1 and at jobs=4: both must re-run exactly the
    // missing 8 trials and reproduce the uninterrupted result bitwise.
    for runner in [
        CampaignRunner::new(),
        CampaignRunner::new().with_test_parallelism(4),
    ] {
        let resumed = runner
            .with_ledger_dir(&dir)
            .with_resume(true)
            .run_uncached(&spec);
        assert_eq!(resumed.outcomes, fresh.outcomes);
        assert_eq!(resumed.fi, fresh.fi);
        assert_eq!(resumed.prop.counts, fresh.prop.counts);
        assert_eq!(resumed.by_contam, fresh.by_contam);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_after_corruption_equals_fresh_run() {
    let dir = temp_dir("corrupt");
    let spec = spec(10);
    let fresh = CampaignRunner::new().run_uncached(&spec);

    CampaignRunner::new()
        .with_ledger_dir(&dir)
        .run_uncached(&spec);
    let file = own_ledger_file(&dir, &spec.ledger_key());
    let raw = std::fs::read_to_string(&file).unwrap();
    let lines: Vec<&str> = raw.lines().collect();
    assert_eq!(lines.len(), 10);
    // Rebuild the file with: interleaved garbage, a stale-version record
    // claiming trial 3 crashed (must be ignored — v != LEDGER_VERSION),
    // a record for a *different* campaign key, and a truncated tail.
    let stale = lines[3].replacen("{\"v\":1,", "{\"v\":999,", 1);
    assert_ne!(stale, lines[3], "fixture relies on the v:1 prefix");
    let foreign = lines[4].replacen(&spec.ledger_key(), "some-other-campaign", 1);
    let mut mangled = String::new();
    for l in &lines[..6] {
        mangled.push_str(l);
        mangled.push('\n');
    }
    mangled.push_str("}}} not a record {{{\n");
    mangled.push_str(&stale);
    mangled.push('\n');
    mangled.push_str(&foreign);
    mangled.push('\n');
    // lines[6..] lost; last surviving line cut mid-record.
    mangled.push_str(&lines[6][..lines[6].len() / 2]);
    std::fs::write(&file, mangled).unwrap();

    let loaded = TrialLedger::load(&dir, &spec.ledger_key(), spec.seed);
    assert_eq!(loaded.len(), 6, "only the 6 intact records survive");

    let resumed = CampaignRunner::new()
        .with_ledger_dir(&dir)
        .with_resume(true)
        .run_uncached(&spec);
    assert_eq!(resumed.outcomes, fresh.outcomes);
    assert_eq!(resumed.fi, fresh.fi);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shard_ledgers_merge_into_the_single_process_result() {
    let dir = temp_dir("shards");
    let spec = spec(13);
    let fresh = CampaignRunner::new().run_uncached(&spec);

    // jobs=1 shards and jobs=auto shards must both reassemble bitwise.
    for auto in [false, true] {
        let _ = std::fs::remove_dir_all(&dir);
        let mut ran = 0usize;
        for index in 0..3 {
            let mut runner = CampaignRunner::new()
                .with_ledger_dir(&dir)
                .with_shard(Shard { index, count: 3 });
            if auto {
                runner = runner.with_auto_parallelism();
            }
            let partial = runner.run_uncached(&spec);
            ran += partial.outcomes.len();
        }
        assert_eq!(ran, spec.tests, "shards partition the trial space");

        let merged = CampaignRunner::new()
            .with_ledger_dir(&dir)
            .merged_from_ledger(&spec)
            .unwrap();
        assert_eq!(merged.outcomes, fresh.outcomes, "auto={auto}");
        assert_eq!(merged.fi, fresh.fi);
        assert_eq!(merged.prop.counts, fresh.prop.counts);
        assert_eq!(merged.by_contam, fresh.by_contam);
        assert_eq!(merged.uncontaminated, fresh.uncontaminated);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn merge_reports_missing_trials() {
    let dir = temp_dir("missing");
    let spec = spec(9);
    // Only shard 0/3 ran: merge must name the gap, not fabricate data.
    CampaignRunner::new()
        .with_ledger_dir(&dir)
        .with_shard(Shard { index: 0, count: 3 })
        .run_uncached(&spec);
    let err = CampaignRunner::new()
        .with_ledger_dir(&dir)
        .merged_from_ledger(&spec)
        .unwrap_err();
    assert!(err.contains("6/9 trials missing"), "{err}");
    // No ledger dir at all is a distinct, earlier error.
    let err = CampaignRunner::new().merged_from_ledger(&spec).unwrap_err();
    assert!(err.contains("ledger directory"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn campaigns_sharing_a_ledger_dir_stay_isolated() {
    let dir = temp_dir("isolation");
    let a = spec(8);
    let mut b = spec(8);
    b.seed = 12; // same deployment, different campaign seed

    CampaignRunner::new().with_ledger_dir(&dir).run_uncached(&a);
    assert_eq!(TrialLedger::load(&dir, &a.ledger_key(), a.seed).len(), 8);
    // B's key/seed sees none of A's records...
    assert!(TrialLedger::load(&dir, &b.ledger_key(), b.seed).is_empty());

    // ...so resuming B in the shared directory re-runs everything and
    // still equals a fresh, ledger-free run of B.
    let fresh_b = CampaignRunner::new().run_uncached(&b);
    let resumed_b = CampaignRunner::new()
        .with_ledger_dir(&dir)
        .with_resume(true)
        .run_uncached(&b);
    assert_eq!(resumed_b.outcomes, fresh_b.outcomes);
    assert_eq!(resumed_b.fi, fresh_b.fi);
    std::fs::remove_dir_all(&dir).unwrap();
}
