//! Persistent golden-run cache: a second "invocation" (fresh runner on
//! the same store directory) must skip re-profiling entirely, and
//! corrupted or stale-version cache files must fall back to re-measuring
//! instead of erroring.
//!
//! Single test function: the obs recorder is process-global, so the
//! counter-delta assertions must not run concurrently with other golden
//! measurements in this binary.

use resilim_apps::App;
use resilim_harness::{golden_cache_file_name, CampaignRunner, CampaignSpec, ErrorSpec};
use resilim_inject::OpMask;
use resilim_obs as obs;

#[test]
fn disk_cache_skips_reprofiling_and_tolerates_corruption() {
    let dir = std::env::temp_dir().join(format!("resilim-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let app_spec = App::Lu.default_spec();
    let spec = CampaignSpec::new(app_spec.clone(), 2, ErrorSpec::OneParallel, 8, 5);
    let file = dir.join(golden_cache_file_name(&app_spec, 2, OpMask::FP_ARITH));

    // First invocation: measures the golden run and persists it.
    let first = CampaignRunner::new()
        .with_golden_dir(&dir)
        .run_uncached(&spec);
    assert!(file.is_file(), "golden record persisted at {file:?}");

    // Second invocation (fresh runner = fresh process's memory cache):
    // must hit the disk cache and re-profile nothing.
    obs::set_enabled(true);
    let before = obs::MetricsSnapshot::capture();
    let second = CampaignRunner::new()
        .with_golden_dir(&dir)
        .run_uncached(&spec);
    let delta = obs::MetricsSnapshot::capture().delta(&before);
    obs::set_enabled(false);
    assert_eq!(
        delta.counter(obs::Counter::GoldenCacheMisses),
        0,
        "warm disk cache must not re-profile"
    );
    assert!(delta.counter(obs::Counter::GoldenCacheHits) >= 1);
    assert_eq!(first.outcomes, second.outcomes);
    assert_eq!(first.fi, second.fi);

    // Corrupted record: fall back to re-measuring, then re-persist.
    std::fs::write(&file, "definitely { not json").unwrap();
    let after_corruption = CampaignRunner::new()
        .with_golden_dir(&dir)
        .run_uncached(&spec);
    assert_eq!(first.outcomes, after_corruption.outcomes);
    let rewritten = std::fs::read_to_string(&file).unwrap();
    assert!(
        rewritten.contains("\"version\""),
        "re-measured record rewritten over the corrupt one"
    );

    // Stale version: a syntactically valid record from a different cache
    // generation is ignored, not trusted and not fatal.
    let v = resilim_harness::GOLDEN_CACHE_VERSION;
    let mut stale = rewritten.replacen(&format!("\"version\":{v}"), "\"version\":999999", 1);
    if stale == rewritten {
        stale = rewritten.replacen(&format!("\"version\": {v}"), "\"version\": 999999", 1);
    }
    assert_ne!(stale, rewritten, "version field located in the record");
    std::fs::write(&file, stale).unwrap();
    let after_stale = CampaignRunner::new()
        .with_golden_dir(&dir)
        .run_uncached(&spec);
    assert_eq!(first.outcomes, after_stale.outcomes);

    let _ = std::fs::remove_dir_all(&dir);
}
