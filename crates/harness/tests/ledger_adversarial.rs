//! Adversarial merge contracts: `resilim merge` (the
//! `merged_from_ledger` path) must fail *loudly* on ledger directories
//! that lenient resume would shrug off — a duplicated trial record
//! (overlapping shards, or one shard run twice into a shared store) and
//! a record whose deployment identity is inconsistent (key matches, seed
//! field does not). Silently deduping or adopting either would let a
//! misconfigured shard matrix double-count or cross-pollinate campaigns.

use resilim_apps::App;
use resilim_harness::{CampaignRunner, CampaignSpec, ErrorSpec, Shard, TrialLedger};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("resilim-ledadv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(tests: usize) -> CampaignSpec {
    CampaignSpec::new(App::Lu.default_spec(), 2, ErrorSpec::OneParallel, tests, 11)
}

/// Run all 3 shards of `spec` into `dir` and return one intact record
/// line from shard 0's ledger file.
fn run_shards(dir: &std::path::Path, spec: &CampaignSpec) -> String {
    for index in 0..3 {
        CampaignRunner::new()
            .with_ledger_dir(dir)
            .with_shard(Shard { index, count: 3 })
            .run_uncached(spec);
    }
    let file = dir.join(TrialLedger::file_name(&spec.ledger_key()));
    std::fs::read_to_string(&file)
        .unwrap()
        .lines()
        .next()
        .unwrap()
        .to_string()
}

#[test]
fn merge_rejects_duplicated_trial_record() {
    let dir = temp_dir("dup");
    let spec = spec(12);
    let line = run_shards(&dir, &spec);

    // Sanity: the untampered directory merges.
    CampaignRunner::new()
        .with_ledger_dir(&dir)
        .merged_from_ledger(&spec)
        .unwrap();

    // Drop a copy of an existing record into a second ledger file — the
    // on-disk shape of "the same shard ran twice into this store".
    std::fs::write(dir.join("trials-zzz-dup.jsonl"), format!("{line}\n")).unwrap();
    let err = CampaignRunner::new()
        .with_ledger_dir(&dir)
        .merged_from_ledger(&spec)
        .unwrap_err();
    assert!(err.contains("duplicate record"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn merge_rejects_identity_mismatched_record() {
    let dir = temp_dir("identity");
    let spec = spec(12);
    let line = run_shards(&dir, &spec);

    // Forge a record wearing this campaign's key but a different seed
    // field, for a trial index the shards never ledgered — adopting it
    // would silently splice a foreign deployment's outcome in.
    let forged = line
        .replace("\"seed\":11", "\"seed\":12")
        .replace("\"trial\":0", "\"trial\":999");
    assert_ne!(forged, line, "fixture relies on seed/trial spellings");
    std::fs::write(dir.join("trials-zzz-forged.jsonl"), format!("{forged}\n")).unwrap();
    let err = CampaignRunner::new()
        .with_ledger_dir(&dir)
        .merged_from_ledger(&spec)
        .unwrap_err();
    assert!(err.contains("identity"), "{err}");

    // Lenient resume still treats the forged record as foreign and
    // reproduces the fresh run — strictness is a merge-only contract.
    let fresh = CampaignRunner::new().run_uncached(&spec);
    let resumed = CampaignRunner::new()
        .with_ledger_dir(&dir)
        .with_resume(true)
        .run_uncached(&spec);
    assert_eq!(resumed.outcomes, fresh.outcomes);
    std::fs::remove_dir_all(&dir).unwrap();
}
