//! The observability layer must be a pure observer: enabling tracing may
//! not change any campaign statistic, and the trace must reconcile with
//! the statistics it narrates.
//!
//! Single `#[test]` on purpose: the recorder and sink registry are
//! process-global, so concurrent tests would see each other's events.

use resilim_apps::App;
use resilim_harness::{CampaignRunner, CampaignSpec, ErrorSpec};
use resilim_obs as obs;
use std::sync::Arc;

#[test]
fn tracing_is_deterministic_and_reconciles() {
    let spec = CampaignSpec::new(App::Lu.default_spec(), 2, ErrorSpec::OneParallel, 12, 4242);

    // Baseline: recorder off.
    obs::set_enabled(false);
    let baseline = CampaignRunner::new().run_uncached(&spec);

    // Same deployment with tracing on, into a memory sink.
    let sink = Arc::new(obs::MemorySink::new());
    obs::clear_sinks();
    obs::add_sink(sink.clone());
    obs::set_enabled(true);
    let traced = CampaignRunner::new().run_uncached(&spec);
    obs::set_enabled(false);
    obs::clear_sinks();

    // Determinism: every statistic is bitwise identical.
    assert_eq!(baseline.outcomes, traced.outcomes);
    assert_eq!(baseline.fi, traced.fi);
    assert_eq!(baseline.prop.counts, traced.prop.counts);
    assert_eq!(baseline.by_contam, traced.by_contam);
    assert_eq!(baseline.uncontaminated, traced.uncontaminated);

    // The baseline run observed nothing.
    assert_eq!(
        baseline.metrics.counter(obs::Counter::TrialsRun),
        0,
        "disabled recorder must stay silent"
    );

    // Reconciliation: the trace retells exactly the campaign that ran.
    let events = sink.events();
    let campaign_id = events
        .iter()
        .find_map(|e| match e {
            obs::Event::CampaignStart {
                campaign,
                app,
                procs,
                tests,
                ..
            } => {
                assert_eq!(app, "lu");
                assert_eq!(*procs, spec.procs);
                assert_eq!(*tests, spec.tests);
                Some(*campaign)
            }
            _ => None,
        })
        .expect("exactly one campaign started while tracing");

    let mut trials = 0usize;
    let mut fired_in_trials = 0usize;
    let mut contaminated_in_trials = 0usize;
    let mut injection_events = 0usize;
    let mut taint_events = 0usize;
    let mut ended = false;
    for e in &events {
        match e {
            obs::Event::Trial {
                campaign,
                fired,
                contaminated,
                ..
            } => {
                assert_eq!(*campaign, campaign_id);
                trials += 1;
                fired_in_trials += fired;
                contaminated_in_trials += contaminated;
            }
            obs::Event::InjectionFired { .. } => injection_events += 1,
            obs::Event::TaintBorn { .. } => taint_events += 1,
            obs::Event::CampaignEnd {
                campaign, trials, ..
            } => {
                assert_eq!(*campaign, campaign_id);
                assert_eq!(*trials, spec.tests);
                ended = true;
            }
            _ => {}
        }
    }
    assert!(ended, "campaign_end event missing");
    assert_eq!(trials, spec.tests, "one trial event per test");

    let fired_in_outcomes: usize = traced.outcomes.iter().map(|o| o.injections_fired).sum();
    let contam_in_outcomes: usize = traced.outcomes.iter().map(|o| o.contaminated_ranks).sum();
    assert_eq!(fired_in_trials, fired_in_outcomes);
    assert_eq!(
        injection_events, fired_in_outcomes,
        "one event per fired fault"
    );
    assert_eq!(contaminated_in_trials, contam_in_outcomes);
    // Each rank transitions to contaminated at most once per trial, so
    // taint-born events equal the summed contaminated-rank counts.
    assert_eq!(taint_events, contam_in_outcomes);

    // The campaign's metrics delta tells the same story as the events.
    assert_eq!(
        traced.metrics.counter(obs::Counter::TrialsRun),
        spec.tests as u64
    );
    assert_eq!(
        traced.metrics.counter(obs::Counter::InjectionsFired),
        fired_in_outcomes as u64
    );
    assert_eq!(
        traced.metrics.counter(obs::Counter::TaintBorn),
        contam_in_outcomes as u64
    );
    assert_eq!(
        traced.metrics.hist_total(obs::Hist::TrialLatencyUs),
        spec.tests as u64
    );
    assert!(traced.metrics.counter(obs::Counter::MsgsSent) > 0);
    assert_eq!(
        traced.metrics.counter(obs::Counter::MsgsSent),
        traced.metrics.counter(obs::Counter::MsgsRecvd),
        "every sent message was received (clean fabric)"
    );

    // Worker utilization: busy time is the per-trial sum, wall is the
    // worker region × worker count — busy can never exceed wall beyond
    // clock granularity (busy and wall come from independent Instant
    // reads, one pair per trial; see obs::CLOCK_EPSILON_NS), and a
    // sequential run keeps both meaningful (workers = 1).
    let busy = traced.metrics.counter(obs::Counter::WorkerBusyNanos);
    let wall = traced.metrics.counter(obs::Counter::WorkerWallNanos);
    assert!(busy > 0, "sequential run records worker busy time");
    assert!(
        obs::busy_within_wall(busy, wall, spec.tests as u64),
        "utilization must be ≤ 100% (busy {busy} vs wall {wall})"
    );

    // Same invariants under parallel workers, which must also stay
    // bitwise deterministic with the recorder on (no sinks attached).
    obs::set_enabled(true);
    let parallel = CampaignRunner::new()
        .with_test_parallelism(3)
        .run_uncached(&spec);
    obs::set_enabled(false);
    assert_eq!(baseline.outcomes, parallel.outcomes);
    let busy = parallel.metrics.counter(obs::Counter::WorkerBusyNanos);
    let wall = parallel.metrics.counter(obs::Counter::WorkerWallNanos);
    assert!(busy > 0);
    assert!(
        obs::busy_within_wall(busy, wall, spec.tests as u64),
        "parallel utilization must be ≤ 100% (busy {busy} vs wall {wall})"
    );
}
