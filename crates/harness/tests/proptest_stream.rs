//! Property tests for the streaming trial pipeline.
//!
//! The reorder buffer promises that consumers observe trial records in
//! owned-index order no matter what order workers complete them in, so a
//! [`CampaignAccumulator`] fed through the pipeline must be bitwise
//! identical to batch aggregation over the same outcomes — for *any*
//! completion permutation.

use proptest::prelude::*;
use resilim_core::{FiResult, StopRule, TestOutcome};
use resilim_harness::{
    aggregate_outcomes, CampaignAccumulator, TrialConsumer, TrialPipeline, TrialRecord,
};

const PROCS: usize = 4;

fn outcome() -> impl Strategy<Value = TestOutcome> {
    prop_oneof![
        Just(TestOutcome::success(true, 0, 0)),
        (1..=PROCS, 1..3usize).prop_map(|(c, f)| TestOutcome::success(false, c, f)),
        (1..=2 * PROCS, 1..3usize).prop_map(|(c, f)| TestOutcome::sdc(c, f)),
        (1..=PROCS, 1..3usize).prop_map(|(c, f)| TestOutcome::failure(
            resilim_core::FailureKind::Crash,
            c,
            f
        )),
        (1..=PROCS, 1..3usize).prop_map(|(c, f)| TestOutcome::failure(
            resilim_core::FailureKind::Hang,
            c,
            f
        )),
    ]
}

/// A deterministic pseudo-shuffle: index `i` completes at position
/// `(i * stride + phase) % n` for odd `stride`, which is a permutation.
fn completion_order(n: usize, stride: usize, phase: usize) -> Vec<usize> {
    let stride = 2 * (stride % n.max(1)) + 1;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (i * stride + phase) % n.max(1));
    order
}

proptest! {
    #[test]
    fn any_completion_order_matches_batch_aggregation(
        outcomes in proptest::collection::vec(outcome(), 0..60),
        stride in 0..32usize,
        phase in 0..32usize,
    ) {
        let n = outcomes.len();
        let owned: Vec<usize> = (0..n).collect();
        let mut acc = CampaignAccumulator::new(PROCS, None);
        {
            let consumers: Vec<&mut dyn TrialConsumer> = vec![&mut acc];
            let mut pipeline = TrialPipeline::new(owned, consumers);
            for &i in &completion_order(n, stride, phase) {
                pipeline.push(TrialRecord {
                    index: i,
                    outcome: outcomes[i],
                    attempts: 1,
                    resumed: false,
                    latency_us: 0,
                    features: None,
                });
            }
            pipeline.finish();
            prop_assert!(pipeline.is_drained());
        }
        let (streamed_outcomes, _features, fi, prop, by_contam, unc) = acc.into_parts();
        prop_assert_eq!(&streamed_outcomes[..], &outcomes[..]);
        let (bfi, bprop, bby, bunc) = aggregate_outcomes(PROCS, &outcomes);
        prop_assert_eq!(fi, bfi);
        prop_assert_eq!(prop, bprop);
        prop_assert_eq!(by_contam, bby);
        prop_assert_eq!(unc, bunc);
        prop_assert_eq!(FiResult::from_outcomes(outcomes.iter()), fi);
    }

    #[test]
    fn stop_position_is_independent_of_completion_order(
        outcomes in proptest::collection::vec(outcome(), 1..80),
        stride in 0..16usize,
        phase in 0..16usize,
    ) {
        let rule = StopRule::new(0.3).with_min_tests(5);
        let n = outcomes.len();
        let run = |order: &[usize]| {
            let mut acc = CampaignAccumulator::new(PROCS, Some(rule));
            let delivered;
            {
                let consumers: Vec<&mut dyn TrialConsumer> = vec![&mut acc];
                let mut pipeline = TrialPipeline::new((0..n).collect(), consumers);
                for &i in order {
                    pipeline.push(TrialRecord {
                        index: i,
                        outcome: outcomes[i],
                        attempts: 1,
                        resumed: false,
                        latency_us: 0,
                        features: None,
                    });
                }
                pipeline.finish();
                delivered = pipeline.delivered();
            }
            (delivered, acc.into_parts().2)
        };
        let sequential: Vec<usize> = (0..n).collect();
        let (d1, fi1) = run(&sequential);
        let (d2, fi2) = run(&completion_order(n, stride, phase));
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(fi1, fi2);
    }
}
