//! Determinism bar for the execution engine: campaign statistics must be
//! bitwise identical across `jobs=1`, fixed `jobs=k`, and `jobs=auto`,
//! for every `ErrorSpec` variant, and across warm vs cold golden caches.

use resilim_apps::App;
use resilim_harness::{CampaignRunner, CampaignSpec, ErrorSpec};

fn assert_identical(
    a: &resilim_harness::CampaignResult,
    b: &resilim_harness::CampaignResult,
    label: &str,
) {
    assert_eq!(a.outcomes, b.outcomes, "{label}: outcomes diverged");
    assert_eq!(a.fi, b.fi, "{label}: fi diverged");
    assert_eq!(a.prop.counts, b.prop.counts, "{label}: prop diverged");
    assert_eq!(a.by_contam, b.by_contam, "{label}: by_contam diverged");
    assert_eq!(
        a.uncontaminated, b.uncontaminated,
        "{label}: uncontaminated diverged"
    );
}

#[test]
fn auto_parallelism_matches_sequential_for_every_error_spec() {
    // (app, procs, pattern): one deployment per ErrorSpec variant.
    let deployments = [
        (App::Lu, 2, ErrorSpec::OneParallel),
        (App::Cg, 1, ErrorSpec::SerialErrors(3)),
        (App::Ft, 4, ErrorSpec::OneParallelUnique),
        (App::Lu, 2, ErrorSpec::OneParallelMultiBit(2)),
    ];
    for (app, procs, errors) in deployments {
        let spec = CampaignSpec::new(app.default_spec(), procs, errors, 14, 4242);
        let label = format!("{app:?} p={procs} {errors:?}");
        let sequential = CampaignRunner::new().run_uncached(&spec);
        let fixed = CampaignRunner::new()
            .with_test_parallelism(4)
            .run_uncached(&spec);
        let auto = CampaignRunner::new()
            .with_auto_parallelism()
            .run_uncached(&spec);
        assert_identical(&sequential, &fixed, &format!("{label} jobs=4"));
        assert_identical(&sequential, &auto, &format!("{label} jobs=auto"));
    }
}

#[test]
fn auto_parallelism_resolves_per_deployment() {
    let runner = CampaignRunner::new().with_auto_parallelism();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    assert_eq!(runner.effective_parallelism(1), cores);
    assert_eq!(runner.effective_parallelism(cores * 2), 1);
    let fixed = CampaignRunner::new().with_test_parallelism(3);
    assert_eq!(fixed.effective_parallelism(1), 3);
    assert_eq!(fixed.effective_parallelism(64), 3);
}

#[test]
fn warm_golden_cache_does_not_change_results() {
    let dir = std::env::temp_dir().join(format!("resilim-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = CampaignSpec::new(App::Cg.default_spec(), 2, ErrorSpec::OneParallel, 10, 77);

    let memory_only = CampaignRunner::new().run_uncached(&spec);
    // Cold disk cache: measures and persists.
    let cold = CampaignRunner::new()
        .with_golden_dir(&dir)
        .run_uncached(&spec);
    // Warm disk cache in a fresh runner: loads the persisted profile.
    let warm_runner = CampaignRunner::new().with_golden_dir(&dir);
    let warm = warm_runner.run_uncached(&spec);
    assert_identical(&memory_only, &cold, "cold golden disk cache");
    assert_identical(&memory_only, &warm, "warm golden disk cache");
    // The warm runner really did load from disk (one cached entry, no
    // second file written).
    assert_eq!(warm_runner.golden().len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_same_key_campaigns_share_one_run() {
    // Single-flight: hammer one key from several threads; all callers
    // must get the same Arc (one execution), matching the sequential run.
    let runner = CampaignRunner::new();
    let spec = CampaignSpec::new(App::Lu.default_spec(), 2, ErrorSpec::OneParallel, 8, 99);
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4).map(|_| scope.spawn(|| runner.run(&spec))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &results[1..] {
        assert!(
            std::sync::Arc::ptr_eq(&results[0], r),
            "concurrent callers must share one campaign execution"
        );
    }
    let oracle = CampaignRunner::new().run_uncached(&spec);
    assert_identical(&results[0], &oracle, "single-flight campaign");
}
