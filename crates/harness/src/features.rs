//! Durable per-trial feature store: the learned predictors' training
//! data, persisted next to the trial ledger.
//!
//! Every trial the harness executes yields a [`TrialFeatures`] record
//! (dynamic-op mix, taint-spread trajectory, comm-graph position — see
//! `resilim_core::features`). The store appends them as JSONL under
//! `--store DIR/features/`, keyed exactly like the ledger
//! (`CampaignSpec::ledger_key` + seed + trial index), so the same
//! machinery that shards, merges, and resumes trial outcomes applies to
//! features verbatim:
//!
//! * **Shard**: each shard's process appends to its own file; merging a
//!   store directory reassembles the full campaign's training set.
//! * **Resume**: a resumed trial is *not* re-extracted — its features
//!   were persisted by the run that executed it, and the lenient loader
//!   picks them up.
//! * **Determinism**: records are appended in reorder-buffer delivery
//!   order, so the file contents for a given `(spec, seed)` are
//!   byte-identical across worker counts, batch sizes, and one-shot vs
//!   daemon execution.
//!
//! Corruption tolerance mirrors [`crate::ledger::TrialLedger`]: every
//! line parses independently; a truncated tail, interleaved garbage, a
//! stale schema version, or a foreign-campaign record each degrade to
//! "that trial's features were never stored".

use parking_lot::Mutex;
use resilim_core::{TrialFeatures, FEATURE_SCHEMA_VERSION};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Records appended between fsyncs (same cadence as the ledger).
const SYNC_BATCH: usize = 64;

/// One durable feature record (one JSONL line).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FeatureRecord {
    /// Feature-schema version ([`FEATURE_SCHEMA_VERSION`]). Stale
    /// versions are skipped on load, never migrated.
    v: u32,
    /// The campaign's ledger key (same identity as the trial ledger).
    key: String,
    /// Campaign seed (folded into `key`; explicit for self-description).
    seed: u64,
    /// Trial index within the campaign.
    trial: usize,
    /// The trial's extracted features.
    features: TrialFeatures,
}

/// Append-only, crash-tolerant per-trial feature store for one campaign.
///
/// Each process appends to its own file
/// (`features-<fnv64(key)>-<pid>.jsonl`) so concurrent shards sharing a
/// store directory never interleave partial lines; loading scans every
/// `*.jsonl` file in the directory and filters by `(version, key, seed)`.
pub struct FeatureStore {
    key: String,
    seed: u64,
    writer: Mutex<Writer>,
}

struct Writer {
    file: BufWriter<File>,
    /// Appends since the last fsync.
    unsynced: usize,
}

impl FeatureStore {
    /// Open (creating the directory and this process's append file if
    /// needed) the feature store for one campaign key.
    pub fn open(dir: impl AsRef<Path>, key: &str, seed: u64) -> std::io::Result<FeatureStore> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(Self::file_name(key)))?;
        Ok(FeatureStore {
            key: key.to_string(),
            seed,
            writer: Mutex::new(Writer {
                file: BufWriter::new(file),
                unsynced: 0,
            }),
        })
    }

    /// This process's append-file name for `key`.
    pub fn file_name(key: &str) -> String {
        format!(
            "features-{:016x}-{}.jsonl",
            crate::golden::fnv64(&[key.as_bytes()]),
            std::process::id()
        )
    }

    /// Append a batch of trials' features with one writer lock, one
    /// `write`, and one flush. Same best-effort durability contract as
    /// the ledger: flushed to the OS immediately, fsynced every
    /// [`SYNC_BATCH`] records, IO errors swallowed (a full disk degrades
    /// the training set, it must not kill the campaign).
    pub fn append_batch(&self, records: &[(usize, TrialFeatures)]) {
        if records.is_empty() {
            return;
        }
        let mut lines = String::new();
        for &(trial, features) in records {
            let rec = FeatureRecord {
                v: FEATURE_SCHEMA_VERSION,
                key: self.key.clone(),
                seed: self.seed,
                trial,
                features,
            };
            let Ok(line) = serde_json::to_string(&rec) else {
                continue;
            };
            lines.push_str(&line);
            lines.push('\n');
        }
        let mut w = self.writer.lock();
        if w.file.write_all(lines.as_bytes()).is_err() {
            return;
        }
        let _ = w.file.flush();
        w.unsynced += records.len();
        if w.unsynced >= SYNC_BATCH {
            let _ = w.file.get_ref().sync_data();
            w.unsynced = 0;
        }
    }

    /// Flush and fsync any pending batch (also done on drop).
    pub fn sync(&self) {
        let mut w = self.writer.lock();
        let _ = w.file.flush();
        if w.unsynced > 0 {
            let _ = w.file.get_ref().sync_data();
            w.unsynced = 0;
        }
    }

    /// Load every valid record for `(key, seed)` from all feature files
    /// under `dir`: trial index → features. Tolerates a missing
    /// directory, unreadable files, truncated/corrupt lines, stale
    /// schema versions, and foreign-campaign records — each degrades to
    /// "not stored". Files scan in name order; later records win.
    pub fn load(dir: impl AsRef<Path>, key: &str, seed: u64) -> HashMap<usize, TrialFeatures> {
        let mut out = HashMap::new();
        for (rec, _) in Self::scan(dir) {
            if rec.key == key && rec.seed == seed {
                out.insert(rec.trial, rec.features);
            }
        }
        out
    }

    /// Load *every* campaign's records under `dir`, keyed by
    /// `(ledger key, seed, trial)` — the training-set loader for
    /// `resilim model`, which learns across all deployments a store
    /// holds. Same corruption tolerance as [`FeatureStore::load`].
    pub fn load_all(dir: impl AsRef<Path>) -> Vec<TrialFeatures> {
        let mut keyed: HashMap<(String, u64, usize), TrialFeatures> = HashMap::new();
        for (rec, _) in Self::scan(dir) {
            keyed.insert((rec.key, rec.seed, rec.trial), rec.features);
        }
        let mut entries: Vec<_> = keyed.into_iter().collect();
        // Deterministic training order regardless of hash-map iteration.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.into_iter().map(|(_, f)| f).collect()
    }

    /// Like [`FeatureStore::load`], but for *merging*: duplicate trial
    /// records and identity mismatches are hard errors, exactly as in
    /// [`crate::ledger::TrialLedger::load_strict`] (an overlapping-shard
    /// misconfiguration must not silently double-count training rows).
    pub fn load_strict(
        dir: impl AsRef<Path>,
        key: &str,
        seed: u64,
    ) -> Result<HashMap<usize, TrialFeatures>, String> {
        let mut out = HashMap::new();
        for (rec, path) in Self::scan(dir) {
            if rec.key != key {
                continue;
            }
            if rec.seed != seed {
                return Err(format!(
                    "feature store {}: record for trial {} matches campaign key \
                     but carries seed {} (expected {}) — deployment identity \
                     mismatch, refusing to merge",
                    path.display(),
                    rec.trial,
                    rec.seed,
                    seed,
                ));
            }
            if out.insert(rec.trial, rec.features).is_some() {
                return Err(format!(
                    "feature store {}: duplicate record for trial {} — the same \
                     shard ran twice into this store, or feature files from \
                     separate runs were mixed; refusing to merge",
                    path.display(),
                    rec.trial,
                ));
            }
        }
        Ok(out)
    }

    /// Every parseable current-version record under `dir`, with its
    /// source path, in file-name order. Unparseable lines and stale
    /// schema versions are skipped here so every loader shares one
    /// corruption-tolerance policy.
    fn scan(dir: impl AsRef<Path>) -> Vec<(FeatureRecord, PathBuf)> {
        let mut out = Vec::new();
        let Ok(entries) = std::fs::read_dir(dir.as_ref()) else {
            return out;
        };
        let mut paths: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
            .collect();
        paths.sort();
        for path in paths {
            let Ok(raw) = std::fs::read_to_string(&path) else {
                continue;
            };
            for line in raw.lines() {
                let Ok(rec) = serde_json::from_str::<FeatureRecord>(line) else {
                    continue; // truncated tail, garbage, or foreign format
                };
                if rec.v != FEATURE_SCHEMA_VERSION {
                    continue; // stale schema: skipped, never migrated
                }
                out.push((rec, path.clone()));
            }
        }
        out
    }
}

impl Drop for FeatureStore {
    fn drop(&mut self) {
        self.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilim_core::OutcomeKind;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("resilim-features-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn feat(label: OutcomeKind, total_ops: u64) -> TrialFeatures {
        TrialFeatures::quiet(label, 4, total_ops, [1.0, 0.0, 0.0, 0.0, 0.0])
    }

    #[test]
    fn appends_roundtrip_and_filter_by_key() {
        let dir = temp_dir("roundtrip");
        let store = FeatureStore::open(&dir, "k1", 7).unwrap();
        store.append_batch(&[(0, feat(OutcomeKind::Success, 10))]);
        store.append_batch(&[(2, feat(OutcomeKind::Sdc, 20))]);
        store.sync();
        let other = FeatureStore::open(&dir, "k2", 7).unwrap();
        other.append_batch(&[(0, feat(OutcomeKind::Failure, 30))]);
        other.sync();

        let k1 = FeatureStore::load(&dir, "k1", 7);
        assert_eq!(k1.len(), 2);
        assert_eq!(k1[&0], feat(OutcomeKind::Success, 10));
        assert_eq!(k1[&2], feat(OutcomeKind::Sdc, 20));
        assert_eq!(FeatureStore::load(&dir, "k2", 7).len(), 1);
        assert!(FeatureStore::load(&dir, "k1", 8).is_empty());
        // The cross-campaign training loader sees everything once.
        assert_eq!(FeatureStore::load_all(&dir).len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The satellite requirement: a run killed mid-append leaves a
    /// truncated final line; the loader must recover every complete
    /// record and treat the torn one as never stored.
    #[test]
    fn truncated_last_line_recovers_complete_records() {
        let dir = temp_dir("truncated");
        let store = FeatureStore::open(&dir, "k", 1).unwrap();
        store.append_batch(&[
            (0, feat(OutcomeKind::Success, 10)),
            (1, feat(OutcomeKind::Sdc, 20)),
            (2, feat(OutcomeKind::Failure, 30)),
        ]);
        drop(store);
        // Tear the file mid-way through the last record, as a crash or
        // power loss during the final append would.
        let path = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let raw = std::fs::read_to_string(&path).unwrap();
        let keep = raw.len() - raw.lines().last().unwrap().len() / 2;
        std::fs::write(&path, &raw[..keep]).unwrap();

        let map = FeatureStore::load(&dir, "k", 1);
        assert_eq!(map.len(), 2, "complete records survive: {map:?}");
        assert!(map.contains_key(&0));
        assert!(map.contains_key(&1));
        assert!(!map.contains_key(&2), "torn record degrades to missing");
        // Strict load tolerates the same corruption (it is not a
        // duplicate or an identity mismatch).
        assert_eq!(FeatureStore::load_strict(&dir, "k", 1).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_lines_and_stale_versions_are_skipped() {
        let dir = temp_dir("corrupt");
        let store = FeatureStore::open(&dir, "k", 1).unwrap();
        store.append_batch(&[(0, feat(OutcomeKind::Success, 10))]);
        drop(store);
        let good = serde_json::to_string(&FeatureRecord {
            v: 999,
            key: "k".into(),
            seed: 1,
            trial: 5,
            features: feat(OutcomeKind::Sdc, 50),
        })
        .unwrap();
        std::fs::write(
            dir.join("features-zzz.jsonl"),
            format!("not json at all\n{good}\n"),
        )
        .unwrap();
        let map = FeatureStore::load(&dir, "k", 1);
        assert_eq!(map.len(), 1, "{map:?}");
        assert!(!map.contains_key(&5), "stale-version record ignored");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_loads_empty() {
        let dir = temp_dir("missing");
        assert!(FeatureStore::load(&dir, "k", 0).is_empty());
        assert!(FeatureStore::load_all(&dir).is_empty());
        assert!(FeatureStore::load_strict(&dir, "k", 0).unwrap().is_empty());
    }

    #[test]
    fn strict_load_rejects_duplicates_and_forged_seeds() {
        let dir = temp_dir("strict");
        let store = FeatureStore::open(&dir, "k", 1).unwrap();
        store.append_batch(&[(0, feat(OutcomeKind::Success, 10))]);
        drop(store);
        let path = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let line = std::fs::read_to_string(&path).unwrap();
        // Duplicate trial in a second file → refuse to merge.
        std::fs::write(dir.join("features-zzy.jsonl"), &line).unwrap();
        let err = FeatureStore::load_strict(&dir, "k", 1).unwrap_err();
        assert!(err.contains("duplicate record for trial 0"), "{err}");
        // Forged seed wearing our key → identity mismatch.
        let forged = line
            .replace("\"seed\":1", "\"seed\":2")
            .replace("\"trial\":0", "\"trial\":7");
        std::fs::write(dir.join("features-zzy.jsonl"), forged).unwrap();
        let err = FeatureStore::load_strict(&dir, "k", 1).unwrap_err();
        assert!(err.contains("identity"), "{err}");
        // Lenient load skips the foreign-seed record entirely.
        assert_eq!(FeatureStore::load(&dir, "k", 1).len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
