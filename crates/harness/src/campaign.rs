//! Fault-injection campaigns: many randomized tests of one deployment.
//!
//! A *deployment* (paper §2) fixes the application, the scale, and the
//! fault pattern; a *campaign* runs `tests` randomized fault-injection
//! tests of that deployment and summarizes them as a
//! [`resilim_core::FiResult`] plus a [`resilim_core::PropagationProfile`].
//!
//! Every test is fully determined by `(spec, seed, test_index)`: the
//! random draws (dynamic op index, bit position, operand) happen up front
//! into an [`InjectionPlan`], so campaigns are reproducible and
//! individual tests can be replayed.

use crate::golden::{Flights, GoldenRun, GoldenStore};
use crate::ledger::{RetryPolicy, Shard, TrialLedger};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use resilim_apps::ProblemSpec;
use resilim_core::{FiResult, PropagationProfile};
use resilim_inject::{
    FailureKind, InjectionPlan, OpMask, Operand, OutcomeKind, RankCtx, Region, Target, TestOutcome,
};
use resilim_obs as obs;
use resilim_simmpi::{PanicKind, World};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What faults a campaign injects per test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorSpec {
    /// One single-bit error at a uniformly random injectable operation of
    /// the whole parallel execution (any rank, any region) — the paper's
    /// standard parallel deployment.
    OneParallel,
    /// `x` single-bit errors at distinct random operations of the *common*
    /// computation of a serial run (`FI_ser_x`; requires `procs == 1`).
    SerialErrors(usize),
    /// One single-bit error targeted into the *parallel-unique* region of
    /// a uniformly random rank (`FI_par_unique`'s measurement).
    OneParallelUnique,
    /// Like [`ErrorSpec::OneParallel`] but flipping `k` bits of the chosen
    /// operand (multi-bit extension; ablation benches).
    OneParallelMultiBit(u8),
}

/// Default contamination-significance threshold (relative): a rank counts
/// as contaminated when it holds a value diverging from the fault-free
/// shadow by more than this. Mirrors F-SEFI's application-level memory
/// comparison, which is tolerance-based rather than bitwise; see
/// DESIGN.md ("contamination significance").
pub const DEFAULT_TAINT_THRESHOLD: f64 = 1e-9;

/// A campaign specification.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// The workload.
    pub spec: ProblemSpec,
    /// Rank count.
    pub procs: usize,
    /// Fault pattern.
    pub errors: ErrorSpec,
    /// Number of fault-injection tests.
    pub tests: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Contamination-significance threshold (see
    /// [`DEFAULT_TAINT_THRESHOLD`]); 0 = bitwise.
    pub taint_threshold: f64,
    /// Which operation kinds are injection targets (the paper's default:
    /// floating-point add/sub/mul).
    pub op_mask: OpMask,
}

impl CampaignSpec {
    /// Spec with the default contamination threshold.
    pub fn new(
        spec: ProblemSpec,
        procs: usize,
        errors: ErrorSpec,
        tests: usize,
        seed: u64,
    ) -> CampaignSpec {
        CampaignSpec {
            spec,
            procs,
            errors,
            tests,
            seed,
            taint_threshold: DEFAULT_TAINT_THRESHOLD,
            op_mask: OpMask::FP_ARITH,
        }
    }

    fn cache_key(&self) -> String {
        format!(
            "{}|p={}|{:?}|n={}|seed={}|theta={}|mask={}",
            self.spec.cache_key(),
            self.procs,
            self.errors,
            self.tests,
            self.seed,
            self.taint_threshold,
            self.op_mask
        )
    }

    /// The durable-ledger identity of this deployment: everything that
    /// determines a trial's outcome *except* the trial count, so a
    /// shard, a resumed run, and a differently-sized campaign of the
    /// same deployment all share ledger records (trial `i` is fully
    /// determined by `(spec, seed, i)`, never by `tests`).
    pub fn ledger_key(&self) -> String {
        format!(
            "{}|p={}|{:?}|seed={}|theta={}|mask={}",
            self.spec.cache_key(),
            self.procs,
            self.errors,
            self.seed,
            self.taint_threshold,
            self.op_mask
        )
    }
}

/// A campaign's results.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Rank count of the deployment.
    pub procs: usize,
    /// Statistical summary over all tests.
    pub fi: FiResult,
    /// Contaminated-rank histogram over all tests.
    pub prop: PropagationProfile,
    /// Results conditioned on contamination count: `by_contam[x-1]`
    /// summarizes the tests that contaminated exactly `x ∈ [1, procs]`
    /// ranks.
    pub by_contam: Vec<FiResult>,
    /// Tests that contaminated *no* rank (a planned fault never reached
    /// its target op). Kept out of `by_contam` so the x=1 bucket is not
    /// polluted by tests where nothing happened.
    pub uncontaminated: FiResult,
    /// Raw per-test outcomes (test `i` used seed `hash(seed, i)`).
    pub outcomes: Vec<TestOutcome>,
    /// Wall-clock time of the whole campaign (the paper's "fault
    /// injection time").
    pub wall: Duration,
    /// The golden run the campaign classified against.
    pub golden: Arc<GoldenRun>,
    /// Observability counters/histograms accumulated while this campaign
    /// ran (all zeros unless the recorder was enabled). Snapshot deltas:
    /// exact when campaigns don't run concurrently in one process.
    pub metrics: obs::MetricsSnapshot,
}

impl CampaignResult {
    /// Small-scale conditional results as the model wants them:
    /// `None` where a contamination class was never observed.
    pub fn by_contam_optional(&self) -> Vec<Option<FiResult>> {
        self.by_contam
            .iter()
            .map(|fi| if fi.total() > 0 { Some(*fi) } else { None })
            .collect()
    }
}

/// How many fault-injection tests a runner executes concurrently.
#[derive(Debug, Clone, Copy)]
enum Parallelism {
    /// Exactly `k` worker threads (1 = sequential).
    Fixed(usize),
    /// `available_parallelism() / procs`, floored at 1, resolved per
    /// campaign (a p=64 deployment needs fewer test workers than p=1).
    Auto,
}

/// Runs campaigns, caching both golden runs and whole campaign results
/// (experiment pipelines share many deployments — e.g. every Figure 8
/// sweep reuses the serial sample campaigns it has in common).
pub struct CampaignRunner {
    golden: GoldenStore,
    cache: Mutex<HashMap<String, Arc<CampaignResult>>>,
    /// In-flight campaigns, single-flight per key (see
    /// [`GoldenStore::get_masked`] for the pattern).
    flights: Flights<String, CampaignResult>,
    parallelism: Parallelism,
    /// Durable per-trial ledger directory (`--store DIR/ledger`).
    ledger_dir: Option<PathBuf>,
    /// Skip trials already present in the ledger (`--resume`).
    resume: bool,
    /// Deterministic trial partition this runner executes (`--shard`).
    shard: Option<Shard>,
    /// Wall-clock watchdog per trial; `None` disables the watchdog.
    trial_deadline: Option<Duration>,
    /// Retry budget/backoff for watchdog-tripped trials.
    retry: RetryPolicy,
    /// Spawn fresh rank threads per trial instead of using the global
    /// [`resilim_simmpi::WorldPool`] (differential backend for
    /// `resilim check`'s replay-identity oracle).
    spawn_per_trial: bool,
}

impl Default for CampaignRunner {
    fn default() -> Self {
        CampaignRunner::new()
    }
}

impl CampaignRunner {
    /// Fresh runner with empty caches, running tests sequentially.
    pub fn new() -> CampaignRunner {
        CampaignRunner {
            golden: GoldenStore::new(),
            cache: Mutex::new(HashMap::new()),
            flights: Mutex::new(HashMap::new()),
            parallelism: Parallelism::Fixed(1),
            ledger_dir: None,
            resume: false,
            shard: None,
            trial_deadline: None,
            retry: RetryPolicy::default(),
            spawn_per_trial: false,
        }
    }

    /// Run up to `k` fault-injection tests concurrently (each test already
    /// runs `procs` rank threads, so a sensible `k` is
    /// `cores / procs`, floored at 1). Results are bitwise identical to a
    /// sequential run: every test's randomness is derived from its index.
    pub fn with_test_parallelism(mut self, k: usize) -> CampaignRunner {
        self.parallelism = Parallelism::Fixed(k.max(1));
        self
    }

    /// Scale test parallelism to the host automatically:
    /// `available_parallelism() / procs`, floored at 1, per campaign.
    /// Same bitwise-determinism guarantee as
    /// [`CampaignRunner::with_test_parallelism`].
    pub fn with_auto_parallelism(mut self) -> CampaignRunner {
        self.parallelism = Parallelism::Auto;
        self
    }

    /// Persist golden runs under `dir` so later processes skip
    /// re-profiling (the CLI wires `--store DIR` to `DIR/golden`).
    pub fn with_golden_dir(mut self, dir: impl Into<std::path::PathBuf>) -> CampaignRunner {
        self.golden = std::mem::take(&mut self.golden).with_disk_dir(dir);
        self
    }

    /// Record every completed trial durably under `dir` (the CLI wires
    /// `--store DIR` to `DIR/ledger`). See [`crate::ledger`].
    pub fn with_ledger_dir(mut self, dir: impl Into<PathBuf>) -> CampaignRunner {
        self.ledger_dir = Some(dir.into());
        self
    }

    /// Reload already-ledgered trials instead of re-running them.
    /// Results are bitwise identical to an uninterrupted run.
    pub fn with_resume(mut self, resume: bool) -> CampaignRunner {
        self.resume = resume;
        self
    }

    /// Run only the trials `shard` owns (`trial % N == i`). Shard
    /// results are *partial*: they cover the owned trials only and are
    /// never published in the whole-campaign cache; merge the shards'
    /// ledgers with [`CampaignRunner::merged_from_ledger`].
    pub fn with_shard(mut self, shard: Shard) -> CampaignRunner {
        self.shard = Some(shard);
        self
    }

    /// The shard this runner executes, when one is configured.
    pub fn shard(&self) -> Option<Shard> {
        self.shard
    }

    /// Arm the per-trial wall-clock watchdog: a trial still running
    /// after `deadline` has its fabric poisoned and is retried under
    /// the runner's [`RetryPolicy`]. Pick a deadline generously above
    /// the slowest legitimate trial — a trip on a healthy trial would
    /// (after retries) record a `Hang` a fresh run would not.
    pub fn with_trial_deadline(mut self, deadline: Duration) -> CampaignRunner {
        self.trial_deadline = Some(deadline);
        self
    }

    /// Replace the watchdog retry policy (budget + backoff).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> CampaignRunner {
        self.retry = retry;
        self
    }

    /// Execute each trial on freshly spawned rank threads
    /// ([`World::run_spawned`]) instead of the process-global
    /// [`resilim_simmpi::WorldPool`]. Semantically identical — both
    /// backends share the same per-rank execution path — and therefore
    /// bitwise identical in outcome, which is exactly what
    /// `resilim check`'s replay-identity oracle asserts. Incompatible
    /// with the trial watchdog (the spawned backend has no deadline
    /// plumbing); enabling both panics at trial time.
    pub fn with_spawn_per_trial(mut self) -> CampaignRunner {
        self.spawn_per_trial = true;
        self
    }

    /// The worker count a campaign at `procs` ranks would use.
    pub fn effective_parallelism(&self, procs: usize) -> usize {
        match self.parallelism {
            Parallelism::Fixed(k) => k,
            Parallelism::Auto => {
                let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
                (cores / procs.max(1)).max(1)
            }
        }
    }

    /// The golden-run store.
    pub fn golden(&self) -> &GoldenStore {
        &self.golden
    }

    /// Run (or fetch from cache) a campaign. Concurrent callers with the
    /// same spec are deduplicated: one runs the campaign, the rest wait
    /// for its result (fig8/table2 fan-out shares serial sub-campaigns).
    pub fn run(&self, spec: &CampaignSpec) -> Arc<CampaignResult> {
        if self.shard.is_some() {
            // A shard's result covers only its owned trials; publishing
            // it under the whole-campaign key would poison the cache.
            note_campaign_lookup(false);
            return Arc::new(self.run_uncached(spec));
        }
        let key = spec.cache_key();
        if let Some(hit) = self.cache.lock().get(&key) {
            note_campaign_lookup(true);
            return Arc::clone(hit);
        }
        let flight = Arc::clone(self.flights.lock().entry(key.clone()).or_default());
        let mut slot = flight.lock();
        if let Some(result) = slot.as_ref() {
            note_campaign_lookup(true);
            return Arc::clone(result);
        }
        if let Some(hit) = self.cache.lock().get(&key) {
            // Published between our cache miss and flight acquisition.
            note_campaign_lookup(true);
            return Arc::clone(hit);
        }
        note_campaign_lookup(false);
        let result = Arc::new(self.run_uncached(spec));
        self.cache.lock().insert(key.clone(), Arc::clone(&result));
        *slot = Some(Arc::clone(&result));
        drop(slot);
        self.flights.lock().remove(&key);
        result
    }

    /// Run a campaign without touching the campaign cache (golden runs are
    /// still cached). Used by benches that time campaign execution.
    pub fn run_uncached(&self, spec: &CampaignSpec) -> CampaignResult {
        if let ErrorSpec::SerialErrors(_) = spec.errors {
            assert_eq!(spec.procs, 1, "SerialErrors campaigns run serially");
        }
        let metrics_before = obs::MetricsSnapshot::capture();
        let campaign_id = obs::next_campaign_id();
        if obs::enabled() {
            obs::emit(&obs::Event::CampaignStart {
                campaign: campaign_id,
                app: spec.spec.app().name().to_string(),
                procs: spec.procs,
                tests: spec.tests,
                errors: format!("{:?}", spec.errors),
            });
        }
        let golden = self.golden.get_masked(&spec.spec, spec.procs, spec.op_mask);
        let op_cap = golden.op_cap();

        let start = Instant::now();
        // The trials this process executes: the shard's slice of the
        // index space (everything without a shard), minus whatever the
        // ledger already holds when resuming. Outcomes are keyed by
        // trial index throughout, so any partition/skip combination
        // reaggregates bitwise identically.
        let owned: Vec<usize> = (0..spec.tests)
            .filter(|&t| self.shard.is_none_or(|s| s.owns(t)))
            .collect();
        if self.shard.is_some() {
            obs::count(
                obs::Counter::ShardTrialsSkipped,
                (spec.tests - owned.len()) as u64,
            );
        }
        let ledger_key = spec.ledger_key();
        let ledger = self
            .ledger_dir
            .as_ref()
            .and_then(|dir| TrialLedger::open(dir, &ledger_key, spec.seed).ok());
        let mut resumed: HashMap<usize, TestOutcome> = match (&self.ledger_dir, self.resume) {
            (Some(dir), true) => TrialLedger::load(dir, &ledger_key, spec.seed),
            _ => HashMap::new(),
        };
        resumed.retain(|&t, _| t < spec.tests);
        let pending: Vec<usize> = owned
            .iter()
            .copied()
            .filter(|t| !resumed.contains_key(t))
            .collect();
        obs::count(
            obs::Counter::TrialsResumed,
            (owned.len() - pending.len()) as u64,
        );

        let workers = self
            .effective_parallelism(spec.procs)
            .min(pending.len().max(1));
        // Worker-region timer: spans exactly the trial-execution region
        // (not golden profiling, not aggregation below), so
        // `WorkerBusyNanos / WorkerWallNanos` is a true utilization.
        let worker_region = Instant::now();
        let executed: Vec<TestOutcome> = if workers <= 1 {
            pending
                .iter()
                .map(|&test| {
                    let busy = obs::timer();
                    let outcome = self.run_trial_durable(
                        spec,
                        &golden,
                        op_cap,
                        test,
                        campaign_id,
                        ledger.as_ref(),
                    );
                    note_worker_busy(busy);
                    outcome
                })
                .collect()
        } else {
            // Workers pull pending positions from a shared counter;
            // results are stored by position, so aggregation order (and
            // therefore every statistic) matches the sequential run
            // exactly.
            let next = std::sync::atomic::AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<TestOutcome>>> =
                (0..pending.len()).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let pos = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if pos >= pending.len() {
                            break;
                        }
                        let busy = obs::timer();
                        let outcome = self.run_trial_durable(
                            spec,
                            &golden,
                            op_cap,
                            pending[pos],
                            campaign_id,
                            ledger.as_ref(),
                        );
                        note_worker_busy(busy);
                        *slots[pos].lock() = Some(outcome);
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("every test ran"))
                .collect()
        };
        if let Some(ledger) = &ledger {
            ledger.sync();
        }
        let ran: HashMap<usize, TestOutcome> = pending.iter().copied().zip(executed).collect();
        let outcomes: Vec<TestOutcome> = owned
            .iter()
            .map(|t| {
                resumed
                    .get(t)
                    .or_else(|| ran.get(t))
                    .copied()
                    .expect("every owned trial resumed or ran")
            })
            .collect();
        if obs::enabled() {
            obs::count(
                obs::Counter::WorkerWallNanos,
                (worker_region.elapsed().as_nanos().min(u64::MAX as u128) as u64)
                    .saturating_mul(workers as u64),
            );
        }
        let wall = start.elapsed();

        if obs::enabled() {
            obs::emit(&obs::Event::CampaignEnd {
                campaign: campaign_id,
                wall_us: obs::as_micros(wall),
                trials: outcomes.len(),
            });
        }
        let (fi, prop, by_contam, uncontaminated) = aggregate(spec.procs, &outcomes);
        CampaignResult {
            procs: spec.procs,
            fi,
            prop,
            by_contam,
            uncontaminated,
            outcomes,
            wall,
            golden,
            metrics: obs::MetricsSnapshot::capture().delta(&metrics_before),
        }
    }

    /// Run one test durably: the trial span (latency histogram, trial
    /// counter, structured trial event), the watchdog retry loop, and
    /// the ledger append.
    ///
    /// Only *watchdog* trips are retried: a deterministic in-simulation
    /// crash or hang is the trial's real outcome and would reproduce
    /// identically, so it is recorded first try. A trial that keeps
    /// tripping the deadline after the retry budget is recorded as a
    /// [`FailureKind::Hang`] rather than wedging the campaign.
    fn run_trial_durable(
        &self,
        spec: &CampaignSpec,
        golden: &GoldenRun,
        op_cap: u64,
        test: usize,
        campaign_id: u64,
        ledger: Option<&TrialLedger>,
    ) -> TestOutcome {
        let t = obs::timer();
        let mut attempt: u32 = 0;
        let outcome = loop {
            let (outcome, tripped) = self.run_test(spec, golden, op_cap, test);
            if !tripped {
                break outcome;
            }
            obs::count(obs::Counter::TrialDeadlineTrips, 1);
            if attempt < self.retry.max_retries {
                attempt += 1;
                obs::count(obs::Counter::TrialRetries, 1);
                obs::emit(&obs::Event::TrialRetry {
                    campaign: campaign_id,
                    test,
                    attempt,
                });
                std::thread::sleep(self.retry.backoff(attempt - 1));
                continue;
            }
            // Retry budget exhausted: record the wedge as a hang so the
            // campaign terminates with a classified outcome.
            break TestOutcome::failure(
                FailureKind::Hang,
                outcome.contaminated_ranks,
                outcome.injections_fired,
            );
        };
        if let Some(ledger) = ledger {
            ledger.append(test, &outcome, attempt + 1);
        }
        obs::count(obs::Counter::TrialsRun, 1);
        if let Some(t) = t {
            let latency_us = obs::as_micros(t.elapsed());
            obs::observe(obs::Hist::TrialLatencyUs, latency_us);
            obs::emit(&obs::Event::Trial {
                campaign: campaign_id,
                test,
                kind: match outcome.kind {
                    OutcomeKind::Success => "success",
                    OutcomeKind::Sdc => "sdc",
                    OutcomeKind::Failure => "failure",
                },
                masked: outcome.masked,
                contaminated: outcome.contaminated_ranks,
                fired: outcome.injections_fired,
                latency_us,
            });
        }
        outcome
    }

    /// Plan and execute a single fault-injection test. The second return
    /// is whether the wall-clock watchdog tripped *and* the trial failed
    /// because of it — a trial that completes despite a late trip is
    /// classified normally.
    fn run_test(
        &self,
        spec: &CampaignSpec,
        golden: &GoldenRun,
        op_cap: u64,
        test: usize,
    ) -> (TestOutcome, bool) {
        let mut rng = SmallRng::seed_from_u64(
            spec.seed ^ resilim_apps::util::splitmix64(test as u64 + 0x1000),
        );
        let plans = plan_test(&mut rng, spec, golden);

        let world = World::new(spec.procs);
        let app = spec.spec.clone();
        let plans_ref = &plans;
        let mk_ctx = move |rank| {
            let plan = plans_ref
                .get(&rank)
                .cloned()
                .unwrap_or_else(InjectionPlan::none);
            Some(
                RankCtx::new(rank, plan)
                    .with_op_cap(op_cap)
                    .with_taint_threshold(spec.taint_threshold)
                    .with_op_mask(spec.op_mask),
            )
        };
        let body = move |comm: &resilim_simmpi::Comm| app.run_rank(comm);
        let (results, tripped) = if self.spawn_per_trial {
            assert!(
                self.trial_deadline.is_none(),
                "spawn-per-trial backend has no watchdog plumbing"
            );
            (world.run_spawned(mk_ctx, body), false)
        } else {
            world.run_with_ctx_deadline(mk_ctx, body, self.trial_deadline)
        };

        // Harvest: contamination, fired count, failures, rank-0 output.
        let mut contaminated = 0usize;
        let mut fired = 0usize;
        let mut failure: Option<FailureKind> = None;
        let mut output = None;
        for r in &results {
            let report = r.ctx_report.as_ref().expect("ctx always installed");
            if report.contaminated {
                contaminated += 1;
            }
            fired += report.fired.len();
            match &r.result {
                Ok(out) => {
                    if r.rank == 0 {
                        output = Some(out.clone());
                    }
                }
                Err(panic) => {
                    let kind = match panic.kind {
                        PanicKind::HangGuard | PanicKind::RecvTimeout => FailureKind::Hang,
                        PanicKind::Crash => FailureKind::Crash,
                        // Secondary death: keep looking for the primary
                        // cause; default to crash if none found.
                        PanicKind::FabricDead => FailureKind::Crash,
                    };
                    failure = Some(match (failure, panic.kind) {
                        // A real crash/hang overrides a secondary failure.
                        (Some(prev), PanicKind::FabricDead) => prev,
                        _ => kind,
                    });
                }
            }
        }
        // A watchdog trip only counts when it actually killed the trial:
        // a run that completed before the poison landed has a legitimate
        // outcome and must not be reclassified (or retried).
        let tripped = tripped && failure.is_some();
        // `contaminated` may legitimately be 0: a planned fault whose
        // target op was never reached fires nothing and taints nothing.
        // Such tests are aggregated into `uncontaminated`, not `by_contam`.
        if let Some(kind) = failure {
            return (TestOutcome::failure(kind, contaminated, fired), tripped);
        }
        let output = output.expect("rank 0 finished without failure");
        let outcome = if output.identical(&golden.output) {
            TestOutcome::success(true, contaminated, fired)
        } else if output.passes_checker(&golden.output, spec.spec.app().epsilon()) {
            TestOutcome::success(false, contaminated, fired)
        } else {
            TestOutcome::sdc(contaminated, fired)
        };
        (outcome, false)
    }

    /// Assemble a whole-campaign [`CampaignResult`] purely from the
    /// ledger — the `resilim merge` path after N shards each ran their
    /// partition into a shared (or artifact-collected) ledger directory.
    ///
    /// Fails if any trial index in `0..spec.tests` is missing; the
    /// aggregation over the recorded outcomes is the same code the live
    /// path uses, so a merged result is bitwise identical to a
    /// single-process run of the same deployment.
    pub fn merged_from_ledger(&self, spec: &CampaignSpec) -> Result<CampaignResult, String> {
        let dir = self
            .ledger_dir
            .as_ref()
            .ok_or("merge needs a ledger directory (--store DIR)")?;
        let metrics_before = obs::MetricsSnapshot::capture();
        let start = Instant::now();
        let mut records = TrialLedger::load_strict(dir, &spec.ledger_key(), spec.seed)?;
        records.retain(|&t, _| t < spec.tests);
        let missing: Vec<usize> = (0..spec.tests)
            .filter(|t| !records.contains_key(t))
            .collect();
        if !missing.is_empty() {
            return Err(format!(
                "ledger incomplete: {}/{} trials missing (e.g. trial {})",
                missing.len(),
                spec.tests,
                missing[0]
            ));
        }
        let golden = self.golden.get_masked(&spec.spec, spec.procs, spec.op_mask);
        let outcomes: Vec<TestOutcome> = (0..spec.tests).map(|t| records[&t]).collect();
        let (fi, prop, by_contam, uncontaminated) = aggregate(spec.procs, &outcomes);
        Ok(CampaignResult {
            procs: spec.procs,
            fi,
            prop,
            by_contam,
            uncontaminated,
            outcomes,
            wall: start.elapsed(),
            golden,
            metrics: obs::MetricsSnapshot::capture().delta(&metrics_before),
        })
    }
}

/// Record a campaign-cache lookup (hit = an Arc'd result was reused).
fn note_campaign_lookup(hit: bool) {
    obs::count(
        if hit {
            obs::Counter::CampaignCacheHits
        } else {
            obs::Counter::CampaignCacheMisses
        },
        1,
    );
    obs::emit(&obs::Event::CacheLookup {
        cache: "campaign",
        hit,
    });
}

/// Add one trial's execution time to `WorkerBusyNanos`.
fn note_worker_busy(busy: Option<Instant>) {
    if let Some(busy) = busy {
        obs::count(
            obs::Counter::WorkerBusyNanos,
            busy.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        );
    }
}

/// Aggregate per-test outcomes into the campaign statistics.
///
/// `by_contam[x-1]` summarizes the tests that contaminated exactly
/// `x ∈ [1, procs]` ranks (counts above `procs` clamp down). Tests with
/// `contaminated_ranks == 0` are returned separately: folding them into
/// the x=1 bucket (as this code once did via `clamp(1, procs)`) skews the
/// conditional success rate the model conditions on, because a test where
/// the fault never materialized is always a masked success.
fn aggregate(
    procs: usize,
    outcomes: &[TestOutcome],
) -> (FiResult, PropagationProfile, Vec<FiResult>, FiResult) {
    let mut fi = FiResult::new();
    let mut prop = PropagationProfile::new(procs);
    let mut by_contam = vec![FiResult::new(); procs];
    let mut uncontaminated = FiResult::new();
    for outcome in outcomes {
        fi.record(outcome);
        prop.record(outcome);
        match outcome.contaminated_ranks {
            0 => uncontaminated.record(outcome),
            x => by_contam[x.min(procs) - 1].record(outcome),
        }
    }
    (fi, prop, by_contam, uncontaminated)
}

/// Draw the injection plan(s) for one test: a map rank → plan.
fn plan_test(
    rng: &mut SmallRng,
    spec: &CampaignSpec,
    golden: &GoldenRun,
) -> HashMap<usize, InjectionPlan> {
    let mut plans = HashMap::new();
    match spec.errors {
        ErrorSpec::OneParallel | ErrorSpec::OneParallelMultiBit(_) => {
            // Uniform over every injectable op of the whole execution.
            let total = golden.injectable_total();
            assert!(total > 0, "no injectable ops profiled");
            let mut g = rng.gen_range(0..total);
            let mut chosen = None;
            'outer: for (rank, profile) in golden.profiles.iter().enumerate() {
                for region in Region::ALL {
                    let count = profile.injectable(region);
                    if g < count {
                        chosen = Some((rank, region, g));
                        break 'outer;
                    }
                    g -= count;
                }
            }
            let (rank, region, op_index) = chosen.expect("g < total");
            let targets = draw_targets(rng, spec.errors, region, op_index);
            plans.insert(rank, InjectionPlan::multi(targets));
        }
        ErrorSpec::OneParallelUnique => {
            // Uniform over the parallel-unique ops of the whole execution.
            let total = golden.injectable(Region::ParallelUnique);
            assert!(
                total > 0,
                "OneParallelUnique needs parallel-unique computation"
            );
            let mut g = rng.gen_range(0..total);
            let mut chosen = None;
            for (rank, profile) in golden.profiles.iter().enumerate() {
                let count = profile.injectable(Region::ParallelUnique);
                if g < count {
                    chosen = Some((rank, g));
                    break;
                }
                g -= count;
            }
            let (rank, op_index) = chosen.expect("g < total");
            plans.insert(
                rank,
                InjectionPlan::single(Target {
                    region: Region::ParallelUnique,
                    op_index,
                    bit: rng.gen_range(0..64),
                    operand: draw_operand(rng),
                }),
            );
        }
        ErrorSpec::SerialErrors(x) => {
            let total = golden.profiles[0].injectable(Region::Common);
            assert!(
                (x as u64) <= total,
                "cannot inject {x} distinct errors into {total} ops"
            );
            let mut indices = std::collections::BTreeSet::new();
            while indices.len() < x {
                indices.insert(rng.gen_range(0..total));
            }
            let targets = indices
                .into_iter()
                .map(|op_index| Target {
                    region: Region::Common,
                    op_index,
                    bit: rng.gen_range(0..64),
                    operand: draw_operand(rng),
                })
                .collect();
            plans.insert(0, InjectionPlan::multi(targets));
        }
    }
    plans
}

fn draw_operand(rng: &mut SmallRng) -> Operand {
    if rng.gen_bool(0.5) {
        Operand::A
    } else {
        Operand::B
    }
}

/// Targets for the one-error patterns (single- or multi-bit).
fn draw_targets(
    rng: &mut SmallRng,
    errors: ErrorSpec,
    region: Region,
    op_index: u64,
) -> Vec<Target> {
    let operand = draw_operand(rng);
    let bits: Vec<u8> = match errors {
        ErrorSpec::OneParallelMultiBit(k) => {
            let mut set = std::collections::BTreeSet::new();
            while set.len() < k as usize {
                set.insert(rng.gen_range(0..64u8));
            }
            set.into_iter().collect()
        }
        _ => vec![rng.gen_range(0..64)],
    };
    bits.into_iter()
        .map(|bit| Target {
            region,
            op_index,
            bit,
            operand,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilim_apps::App;
    use resilim_core::OutcomeKind;

    fn campaign(app: App, procs: usize, errors: ErrorSpec, tests: usize) -> CampaignSpec {
        CampaignSpec::new(app.default_spec(), procs, errors, tests, 42)
    }

    #[test]
    fn serial_campaign_basics() {
        let runner = CampaignRunner::new();
        let result = runner.run(&campaign(App::Cg, 1, ErrorSpec::SerialErrors(1), 30));
        assert_eq!(result.fi.total(), 30);
        assert_eq!(result.outcomes.len(), 30);
        // Every test fired exactly its planned single error.
        assert!(result.outcomes.iter().all(|o| o.injections_fired == 1));
        // Single-rank: everything contaminates exactly one rank.
        assert_eq!(result.prop.counts[0], 30);
        // Single-bit flips in FP ops should not kill every run.
        assert!(result.fi.success_rate() > 0.2, "{:?}", result.fi);
    }

    #[test]
    fn parallel_campaign_spreads_contamination() {
        let runner = CampaignRunner::new();
        let result = runner.run(&campaign(App::Cg, 4, ErrorSpec::OneParallel, 40));
        assert_eq!(result.fi.total(), 40);
        let total: u64 = result.prop.counts.iter().sum();
        assert_eq!(total, 40);
        // CG reductions spread surviving errors to every rank: expect both
        // single-rank (absorbed) and all-rank (propagated) cases.
        assert!(result.prop.counts[0] > 0, "{:?}", result.prop.counts);
        assert!(result.prop.counts[3] > 0, "{:?}", result.prop.counts);
    }

    #[test]
    fn campaigns_are_reproducible() {
        let runner = CampaignRunner::new();
        let spec = campaign(App::Lu, 2, ErrorSpec::OneParallel, 15);
        let a = runner.run_uncached(&spec);
        let b = runner.run_uncached(&spec);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.fi, b.fi);
    }

    #[test]
    fn campaign_cache_hits() {
        let runner = CampaignRunner::new();
        let spec = campaign(App::Lu, 2, ErrorSpec::OneParallel, 10);
        let a = runner.run(&spec);
        let b = runner.run(&spec);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn multi_error_serial_campaign() {
        let runner = CampaignRunner::new();
        let result = runner.run(&campaign(App::Cg, 1, ErrorSpec::SerialErrors(8), 20));
        // Later errors can land in skipped code after corruption, but most
        // tests should fire several of the 8 planned errors.
        assert!(result.outcomes.iter().all(|o| o.injections_fired >= 1));
        assert!(result.outcomes.iter().any(|o| o.injections_fired == 8));
        // More errors -> lower success rate than 1-error campaigns.
        let one = runner.run(&campaign(App::Cg, 1, ErrorSpec::SerialErrors(1), 20));
        assert!(result.fi.success_rate() <= one.fi.success_rate() + 0.2);
    }

    #[test]
    fn parallel_unique_campaign_targets_unique_region() {
        let runner = CampaignRunner::new();
        // FT's four-step twiddle scaling is the parallel-unique region.
        let result = runner.run(&campaign(App::Ft, 4, ErrorSpec::OneParallelUnique, 15));
        assert_eq!(result.fi.total(), 15);
        assert!(result.outcomes.iter().all(|o| o.injections_fired == 1));
    }

    #[test]
    fn spawn_per_trial_backend_matches_pooled() {
        let spec = campaign(App::Lu, 2, ErrorSpec::OneParallel, 12);
        let pooled = CampaignRunner::new().run_uncached(&spec);
        let spawned = CampaignRunner::new()
            .with_spawn_per_trial()
            .run_uncached(&spec);
        assert_eq!(pooled.outcomes, spawned.outcomes);
        assert_eq!(pooled.fi, spawned.fi);
        assert_eq!(pooled.prop.counts, spawned.prop.counts);
    }

    #[test]
    fn parallel_test_execution_matches_sequential() {
        let spec = campaign(App::Lu, 2, ErrorSpec::OneParallel, 24);
        let sequential = CampaignRunner::new().run_uncached(&spec);
        let parallel = CampaignRunner::new()
            .with_test_parallelism(4)
            .run_uncached(&spec);
        assert_eq!(sequential.outcomes, parallel.outcomes);
        assert_eq!(sequential.fi, parallel.fi);
        assert_eq!(sequential.prop.counts, parallel.prop.counts);
    }

    #[test]
    fn masked_campaign_targets_other_kinds() {
        use resilim_inject::OpMask;
        let runner = CampaignRunner::new();
        let mut spec = campaign(App::Cg, 1, ErrorSpec::SerialErrors(1), 15);
        spec.op_mask = OpMask::DIV;
        let result = runner.run(&spec);
        // Every test fired exactly one fault, in a division.
        assert!(result.outcomes.iter().all(|o| o.injections_fired == 1));
        assert_eq!(result.fi.total(), 15);
        // The golden profile used for the index space was mask-specific:
        // far fewer divisions than adds/muls in CG.
        let div_golden = runner
            .golden()
            .get_masked(&App::Cg.default_spec(), 1, OpMask::DIV);
        let default_golden = runner.golden().get(&App::Cg.default_spec(), 1);
        assert!(div_golden.injectable_total() * 10 < default_golden.injectable_total());
        assert!(div_golden.injectable_total() > 0);
    }

    #[test]
    fn by_contam_partitions_fi() {
        let runner = CampaignRunner::new();
        let result = runner.run(&campaign(App::Cg, 4, ErrorSpec::OneParallel, 30));
        let total: u64 = result.by_contam.iter().map(|fi| fi.total()).sum();
        assert_eq!(total + result.uncontaminated.total(), result.fi.total());
        let success: u64 = result
            .by_contam
            .iter()
            .chain(std::iter::once(&result.uncontaminated))
            .map(|fi| fi.counts[OutcomeKind::Success.index()])
            .sum();
        assert_eq!(success, result.fi.counts[OutcomeKind::Success.index()]);
    }

    #[test]
    fn uncontaminated_tests_stay_out_of_by_contam() {
        // Regression: contaminated_ranks == 0 used to be folded into the
        // x=1 bucket by `clamp(1, procs)`, skewing its conditional rates.
        let outcomes = vec![
            TestOutcome::success(true, 0, 0), // fault never fired
            TestOutcome::success(true, 1, 1), // absorbed on one rank
            TestOutcome::sdc(1, 1),           // corrupted one rank
            TestOutcome::sdc(4, 1),           // spread to all ranks
            TestOutcome::sdc(9, 1),           // over-count clamps to procs
        ];
        let (fi, prop, by_contam, uncontaminated) = aggregate(4, &outcomes);
        assert_eq!(fi.total(), 5);
        assert_eq!(uncontaminated.total(), 1);
        assert_eq!(uncontaminated.counts[OutcomeKind::Success.index()], 1);
        // x=1 bucket holds only the genuinely single-rank tests.
        assert_eq!(by_contam[0].total(), 2);
        assert_eq!(by_contam[3].total(), 2);
        assert_eq!(by_contam[1].total() + by_contam[2].total(), 0);
        // The propagation histogram keeps its historical 1..=p clamp.
        assert_eq!(prop.counts.iter().sum::<u64>(), 5);
    }
}
