//! Figure 8 — the accuracy/cost tradeoff of the small-scale size: RMSE of
//! the prediction across all benchmarks, and fault-injection execution
//! time, as the small scale grows from 4 to 32 ranks.

use crate::campaign::{CampaignRunner, ErrorSpec};
use crate::experiments::{prediction, ExperimentConfig, LARGE_SCALE};
use crate::report::{num, Table};
use resilim_apps::App;
use resilim_core::{rmse, SamplePoints};
use serde::{Deserialize, Serialize};

/// One sensitivity point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Point {
    /// Small-scale size.
    pub s: usize,
    /// RMSE of the success-rate prediction over all benchmarks (Eq. 9).
    pub rmse: f64,
    /// Average small-scale campaign wall time, normalized by the serial
    /// 1-error campaign wall time (the paper's "execution time normalized
    /// by that of serial execution").
    pub fi_time_normalized: f64,
}

/// The full sensitivity study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8 {
    /// Target scale all predictions aim at.
    pub p: usize,
    /// One point per small-scale size.
    pub points: Vec<Fig8Point>,
}

/// Regenerate Figure 8: predictions for `p = 64` using small scales
/// `scales` (paper: 4, 8, 16, 32), over all apps.
///
/// The scale points fan out onto scoped threads: the campaigns they need
/// are disjoint except for the shared serial sub-campaigns, which the
/// runner's single-flight cache runs exactly once. Points are collected
/// in input order, so the output is identical to the sequential sweep.
pub fn fig8(runner: &CampaignRunner, cfg: &ExperimentConfig, scales: &[usize]) -> Fig8 {
    let apps: Vec<App> = App::ALL.to_vec();
    let point_for = |s: usize| -> Fig8Point {
        let report = prediction(
            runner,
            cfg,
            &apps,
            LARGE_SCALE,
            s,
            SamplePoints::BucketUpper,
        );
        let pairs: Vec<(f64, f64)> = report
            .rows
            .iter()
            .map(|r| (r.measured[0], r.predicted[0]))
            .collect();

        // Fault-injection time: small-scale campaign wall, normalized by
        // the serial 1-error campaign wall, averaged over apps.
        let mut ratios = Vec::with_capacity(apps.len());
        for &app in &apps {
            let small = runner.run(&cfg.campaign(app.default_spec(), s, ErrorSpec::OneParallel));
            let serial =
                runner.run(&cfg.campaign(app.default_spec(), 1, ErrorSpec::SerialErrors(1)));
            let denom = serial.wall.as_secs_f64().max(1e-9);
            ratios.push(small.wall.as_secs_f64() / denom);
        }
        let fi_time_normalized = ratios.iter().sum::<f64>() / ratios.len() as f64;

        Fig8Point {
            s,
            rmse: rmse(&pairs),
            fi_time_normalized,
        }
    };
    let points: Vec<Fig8Point> = std::thread::scope(|scope| {
        let point_for = &point_for;
        let handles: Vec<_> = scales
            .iter()
            .map(|&s| scope.spawn(move || point_for(s)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fig8 scale-point worker"))
            .collect()
    });
    Fig8 {
        p: LARGE_SCALE,
        points,
    }
}

impl Fig8 {
    /// Render as text.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!(
                "Figure 8: accuracy vs fault-injection time (predicting {} ranks)",
                self.p
            ),
            &[
                "small scale",
                "RMSE (success rate)",
                "FI time (normalized to serial)",
            ],
        );
        for pt in &self.points {
            t.row(vec![
                pt.s.to_string(),
                num(pt.rmse),
                format!("{:.2}x", pt.fi_time_normalized),
            ]);
        }
        t.render()
    }
}

impl Fig8 {
    /// Render the RMSE and FI-time sweeps as stacked SVG line charts.
    pub fn to_svg(&self) -> String {
        use crate::plot::{stack_svgs, LineChart};
        let labels: Vec<String> = self.points.iter().map(|p| p.s.to_string()).collect();
        let rmse = LineChart {
            title: format!(
                "Figure 8a: prediction RMSE vs small scale (target {})",
                self.p
            ),
            y_label: "RMSE (success rate)".into(),
            x_labels: labels.clone(),
            series: vec![("RMSE".into(), self.points.iter().map(|p| p.rmse).collect())],
        };
        let time = LineChart {
            title: "Figure 8b: fault-injection time vs small scale".into(),
            y_label: "normalized to serial".into(),
            x_labels: labels,
            series: vec![(
                "FI time".into(),
                self.points.iter().map(|p| p.fi_time_normalized).collect(),
            )],
        };
        stack_svgs(&[rmse.to_svg(), time.to_svg()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_rendering() {
        resilim_core::verifies!(FIG8);
        let fig = Fig8 {
            p: 64,
            points: vec![
                Fig8Point {
                    s: 4,
                    rmse: 0.08,
                    fi_time_normalized: 1.5,
                },
                Fig8Point {
                    s: 8,
                    rmse: 0.05,
                    fi_time_normalized: 2.3,
                },
            ],
        };
        let text = fig.render();
        assert!(text.contains("small scale"));
        assert!(text.contains("2.30x"));
        let svg = fig.to_svg();
        assert!(svg.contains("Figure 8a") && svg.contains("Figure 8b"));
    }
}
