//! Table 2 — cosine similarity of error propagation between small and
//! large scales ("4V64", "8V64").

use crate::campaign::{CampaignRunner, ErrorSpec};
use crate::experiments::{ExperimentConfig, LARGE_SCALE};
use crate::report::{num, Table};
use resilim_apps::App;
use resilim_core::cosine_similarity;
use serde::{Deserialize, Serialize};

/// One Table 2 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Workload label.
    pub app: String,
    /// Small scale compared against the large scale.
    pub small: usize,
    /// Large scale.
    pub large: usize,
    /// Cosine similarity of the small-scale propagation vector and the
    /// grouped large-scale vector.
    pub similarity: f64,
}

/// The full Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// Rows: for each app, 4V64 then 8V64.
    pub rows: Vec<Table2Row>,
}

/// Regenerate Table 2 from 1-error campaigns at 4, 8 and 64 ranks.
///
/// The apps fan out onto scoped threads (their campaigns are disjoint);
/// rows are joined in `App::ALL` order, so the table is identical to the
/// sequential sweep.
pub fn table2(runner: &CampaignRunner, cfg: &ExperimentConfig) -> Table2 {
    let rows_for = |app: App| -> Vec<Table2Row> {
        let campaign_at = |procs: usize| {
            runner.run(&cfg.campaign(app.default_spec(), procs, ErrorSpec::OneParallel))
        };
        let large = campaign_at(LARGE_SCALE);
        let mut rows = Vec::with_capacity(2);
        for small_scale in [4usize, 8] {
            let small = campaign_at(small_scale);
            let similarity = cosine_similarity(&small.prop.r_vec(), &large.prop.group(small_scale));
            rows.push(Table2Row {
                app: app.name().to_string(),
                small: small_scale,
                large: LARGE_SCALE,
                similarity,
            });
        }
        rows
    };
    let rows: Vec<Table2Row> = std::thread::scope(|scope| {
        let rows_for = &rows_for;
        let handles: Vec<_> = App::ALL
            .into_iter()
            .map(|app| scope.spawn(move || rows_for(app)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("table2 app worker"))
            .collect()
    });
    Table2 { rows }
}

impl Table2 {
    /// Render as text.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 2: propagation similarity between small and large scales",
            &["benchmark", "comparison", "cosine similarity"],
        );
        for row in &self.rows {
            t.row(vec![
                row.app.clone(),
                format!("{}V{}", row.small, row.large),
                num(row.similarity),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_small_campaign_similarity() {
        resilim_core::verifies!(TABLE2, O3);
        // Full 64-rank campaigns are exercised by the bench/CLI path; unit
        // test the wiring at reduced scales with few tests.
        let runner = CampaignRunner::new();
        let cfg = ExperimentConfig {
            tests: 25,
            seed: 7,
            ..Default::default()
        };
        // Compare 2 vs 8 for a single cheap app.
        let app = App::Lu;
        let small = runner.run(&cfg.campaign(app.default_spec(), 2, ErrorSpec::OneParallel));
        let large = runner.run(&cfg.campaign(app.default_spec(), 8, ErrorSpec::OneParallel));
        let sim = cosine_similarity(&small.prop.r_vec(), &large.prop.group(2));
        assert!((0.0..=1.0).contains(&sim));
        // LU's wavefront propagation is strongly bimodal at both scales,
        // so even with few tests the grouped shapes correlate.
        assert!(sim > 0.5, "sim = {sim}");
    }
}
