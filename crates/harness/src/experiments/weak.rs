//! Weak-scaling extension study (beyond the paper, which considers strong
//! scaling only): grow the problem with the rank count and ask
//!
//! 1. how the measured resilience evolves with scale (bigger problem +
//!    more ranks = more exposure per run — the paper's §1 "ever-increasing
//!    threat" narrative, quantified), and
//! 2. whether the serial + small-scale prediction methodology still works
//!    when the serial runs use the (large) weak problem of the target
//!    scale.

use crate::campaign::{CampaignRunner, CampaignSpec, ErrorSpec};
use crate::experiments::{build_inputs_spec, ExperimentConfig};
use crate::report::{pct, Table};
use resilim_apps::App;
use resilim_core::{prediction_error, PaperEq8, SamplePoints};
use serde::{Deserialize, Serialize};

/// One app at one weak-scaled target.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeakRow {
    /// Workload label.
    pub app: String,
    /// Target scale (and problem-size multiplier).
    pub p: usize,
    /// Measured rates `[success, sdc, failure]` at the target.
    pub measured: [f64; 3],
    /// Predicted rates from serial + small-scale runs of the same weak
    /// problem.
    pub predicted: [f64; 3],
    /// Success-rate prediction error (percentage points).
    pub error: f64,
    /// Whether α fine-tuning was active.
    pub used_alpha: bool,
}

/// The study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeakScaling {
    /// Small scale used for every prediction.
    pub s: usize,
    /// Rows, grouped by app then ascending scale.
    pub rows: Vec<WeakRow>,
}

/// Run the weak-scaling study: for each app and target scale, measure the
/// weak-problem campaign and predict it from serial + `s`-rank inputs.
pub fn weak_scaling(
    runner: &CampaignRunner,
    cfg: &ExperimentConfig,
    apps: &[App],
    s: usize,
    targets: &[usize],
) -> WeakScaling {
    let mut rows = Vec::new();
    for &app in apps {
        for &p in targets {
            let problem = app.weak_spec(p);
            let measured = runner.run(&CampaignSpec::new(
                problem.clone(),
                p,
                ErrorSpec::OneParallel,
                cfg.tests,
                cfg.seed,
            ));
            let inputs = build_inputs_spec(runner, cfg, &problem, p, s, SamplePoints::default());
            let pred = PaperEq8::new(inputs).predict();
            let m = measured.fi.rates();
            rows.push(WeakRow {
                app: app.name().to_string(),
                p,
                measured: m,
                predicted: pred.rates,
                error: prediction_error(m[0], pred.rates[0]),
                used_alpha: pred.used_alpha,
            });
        }
    }
    WeakScaling { s, rows }
}

impl WeakScaling {
    /// Render as text.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!(
                "Weak scaling (extension): problem grows with ranks; predictions from serial + {} ranks",
                self.s
            ),
            &["benchmark", "ranks", "measured success", "predicted", "error", "measured SDC"],
        );
        for r in &self.rows {
            t.row(vec![
                r.app.clone(),
                r.p.to_string(),
                pct(r.measured[0]),
                pct(r.predicted[0]),
                format!("{:.1} pp", r.error * 100.0),
                pct(r.measured[1]),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_specs_decompose_and_run() {
        // Every app's weak problem at p = 4 must run fault-free at p = 4.
        let runner = CampaignRunner::new();
        for app in App::ALL {
            let golden = runner.golden().get(&app.weak_spec(4), 4);
            assert!(golden.injectable_total() > 0, "{app}");
        }
    }

    #[test]
    fn weak_study_wiring() {
        let runner = CampaignRunner::new();
        let cfg = ExperimentConfig {
            tests: 10,
            seed: 2,
            ..Default::default()
        };
        let study = weak_scaling(&runner, &cfg, &[App::Lu], 2, &[4]);
        assert_eq!(study.rows.len(), 1);
        let row = &study.rows[0];
        assert!((row.measured.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((row.predicted.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(study.render().contains("Weak scaling"));
    }
}
