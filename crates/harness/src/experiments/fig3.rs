//! Figure 3 — application-resilience difference between serial and
//! parallel executions: success rate of a serial run with `x` errors
//! injected vs a parallel (8-rank) run with `x` ranks contaminated.

use crate::campaign::{CampaignRunner, ErrorSpec};
use crate::experiments::ExperimentConfig;
use crate::report::Table;
use resilim_apps::App;
use serde::{Deserialize, Serialize};

/// Figure 3 panel for one application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3App {
    /// Workload label.
    pub app: String,
    /// Parallel scale (the paper uses 8).
    pub procs: usize,
    /// `serial[x-1]` = success rate of serial runs with `x` errors.
    pub serial: Vec<f64>,
    /// `parallel[x-1]` = success rate of parallel tests that contaminated
    /// exactly `x` ranks; `None` when that contamination count never
    /// occurred (the paper's "missing" bars).
    pub parallel: Vec<Option<f64>>,
}

/// The full figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3 {
    /// One panel per application.
    pub apps: Vec<Fig3App>,
}

/// Regenerate Figure 3 for the given apps at the given parallel scale.
pub fn fig3(runner: &CampaignRunner, cfg: &ExperimentConfig, apps: &[App], procs: usize) -> Fig3 {
    let mut panels = Vec::new();
    for &app in apps {
        // Serial multi-error campaigns, x = 1..=procs.
        let mut serial = Vec::with_capacity(procs);
        for x in 1..=procs {
            let result =
                runner.run(&cfg.campaign(app.default_spec(), 1, ErrorSpec::SerialErrors(x)));
            serial.push(result.fi.success_rate());
        }
        // One parallel campaign, conditioned on contamination count.
        let par = runner.run(&cfg.campaign(app.default_spec(), procs, ErrorSpec::OneParallel));
        let parallel = par
            .by_contam
            .iter()
            .map(|fi| {
                if fi.total() > 0 {
                    Some(fi.success_rate())
                } else {
                    None
                }
            })
            .collect();
        panels.push(Fig3App {
            app: app.name().to_string(),
            procs,
            serial,
            parallel,
        });
    }
    Fig3 { apps: panels }
}

impl Fig3 {
    /// Render as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for panel in &self.apps {
            let mut t = Table::new(
                format!(
                    "Figure 3 ({}): success rate, serial x errors vs {} ranks x contaminated",
                    panel.app, panel.procs
                ),
                &["x", "serial (x errors)", "parallel (x contaminated)"],
            );
            for x in 1..=panel.procs {
                let serial = format!("{:.1}%", panel.serial[x - 1] * 100.0);
                let parallel = match panel.parallel[x - 1] {
                    Some(rate) => format!("{:.1}%", rate * 100.0),
                    None => "(not observed)".to_string(),
                };
                t.row(vec![x.to_string(), serial, parallel]);
            }
            out.push_str(&t.render());
        }
        out
    }
}

impl Fig3 {
    /// Render each app's serial-vs-parallel panel as stacked SVG bars
    /// (missing parallel bars render as zero-height, like the paper's
    /// empty slots).
    pub fn to_svg(&self) -> String {
        use crate::plot::{stack_svgs, BarChart};
        let panels: Vec<String> = self
            .apps
            .iter()
            .map(|panel| {
                BarChart {
                    title: format!(
                        "Figure 3 ({}): serial x errors vs {} ranks x contaminated",
                        panel.app, panel.procs
                    ),
                    y_label: "success rate".into(),
                    categories: (1..=panel.procs).map(|x| x.to_string()).collect(),
                    series: vec![
                        ("serial".into(), panel.serial.clone()),
                        (
                            "parallel".into(),
                            panel.parallel.iter().map(|p| p.unwrap_or(0.0)).collect(),
                        ),
                    ],
                    y_max: 1.0,
                }
                .to_svg()
            })
            .collect();
        stack_svgs(&panels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_wiring_small() {
        resilim_core::verifies!(FIG3, O4);
        let runner = CampaignRunner::new();
        let cfg = ExperimentConfig {
            tests: 15,
            seed: 5,
            ..Default::default()
        };
        let fig = fig3(&runner, &cfg, &[App::Cg], 2);
        assert_eq!(fig.apps.len(), 1);
        let panel = &fig.apps[0];
        assert_eq!(panel.serial.len(), 2);
        assert_eq!(panel.parallel.len(), 2);
        assert!(panel.serial.iter().all(|r| (0.0..=1.0).contains(r)));
        let text = fig.render();
        assert!(text.contains("Figure 3 (cg)"));
        assert!(fig.to_svg().contains("serial"));
    }
}
