//! Figures 1 and 2 — error-propagation histograms at a small and a large
//! scale, plus the grouped large-scale histogram that Observation 3
//! compares against the small one.

use crate::campaign::{CampaignRunner, ErrorSpec};
use crate::experiments::ExperimentConfig;
use crate::report::{pct, Table};
use resilim_apps::App;
use resilim_core::{cosine_similarity, PropagationProfile};
use serde::{Deserialize, Serialize};

/// The data behind one propagation figure (Fig. 1 = CG, Fig. 2 = FT).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PropagationFigure {
    /// Workload label.
    pub app: String,
    /// Small-scale profile (sub-figure a).
    pub small: PropagationProfile,
    /// Large-scale profile (sub-figure b).
    pub large: PropagationProfile,
    /// Large-scale profile grouped into `small.p` buckets (sub-figure c).
    pub grouped: Vec<f64>,
    /// Cosine similarity of (a) and (c).
    pub similarity: f64,
}

/// Regenerate a propagation figure for `app`: 1-error campaigns at
/// `small_scale` and `large_scale`.
pub fn fig_propagation(
    runner: &CampaignRunner,
    cfg: &ExperimentConfig,
    app: App,
    small_scale: usize,
    large_scale: usize,
) -> PropagationFigure {
    let campaign_at =
        |procs: usize| runner.run(&cfg.campaign(app.default_spec(), procs, ErrorSpec::OneParallel));
    let small = campaign_at(small_scale).prop.clone();
    let large = campaign_at(large_scale).prop.clone();
    let grouped = large.group(small_scale);
    let similarity = cosine_similarity(&small.r_vec(), &grouped);
    PropagationFigure {
        app: app.name().to_string(),
        small,
        large,
        grouped,
        similarity,
    }
}

impl PropagationFigure {
    /// Render the three panels as text tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut a = Table::new(
            format!("(a) {} propagation, {} ranks", self.app, self.small.p),
            &["contaminated ranks", "fraction of tests"],
        );
        for (i, r) in self.small.r_vec().iter().enumerate() {
            a.row(vec![format!("{}", i + 1), pct(*r)]);
        }
        out.push_str(&a.render());

        let mut b = Table::new(
            format!(
                "(b) {} propagation, {} ranks (non-zero bins)",
                self.app, self.large.p
            ),
            &["contaminated ranks", "fraction of tests"],
        );
        for (i, r) in self.large.r_vec().iter().enumerate() {
            if *r > 0.0 {
                b.row(vec![format!("{}", i + 1), pct(*r)]);
            }
        }
        out.push_str(&b.render());

        let mut c = Table::new(
            format!(
                "(c) {}-rank cases grouped into {} groups (cosine sim {:.3})",
                self.large.p, self.small.p, self.similarity
            ),
            &["group", "fraction of tests"],
        );
        for (j, g) in self.grouped.iter().enumerate() {
            c.row(vec![format!("{}", j + 1), pct(*g)]);
        }
        out.push_str(&c.render());
        out
    }
}

impl PropagationFigure {
    /// Render the three panels as one stacked SVG document.
    pub fn to_svg(&self) -> String {
        use crate::plot::{stack_svgs, BarChart};
        let small = BarChart {
            title: format!("(a) {} propagation, {} ranks", self.app, self.small.p),
            y_label: "fraction of tests".into(),
            categories: (1..=self.small.p).map(|x| x.to_string()).collect(),
            series: vec![("contaminated".into(), self.small.r_vec())],
            y_max: 1.0,
        };
        // Panel (b) compressed into the same group axis for readability.
        let large_grouped = BarChart {
            title: format!(
                "(b) {} propagation, {} ranks (grouped by {})",
                self.app,
                self.large.p,
                self.large.p / self.small.p
            ),
            y_label: "fraction of tests".into(),
            categories: (1..=self.small.p).map(|g| format!("g{g}")).collect(),
            series: vec![("grouped".into(), self.grouped.clone())],
            y_max: 1.0,
        };
        let overlay = BarChart {
            title: format!("(c) overlay, cosine similarity {:.3}", self.similarity),
            y_label: "fraction of tests".into(),
            categories: (1..=self.small.p).map(|x| x.to_string()).collect(),
            series: vec![
                (format!("{} ranks", self.small.p), self.small.r_vec()),
                (
                    format!("{} ranks grouped", self.large.p),
                    self.grouped.clone(),
                ),
            ],
            y_max: 1.0,
        };
        stack_svgs(&[small.to_svg(), large_grouped.to_svg(), overlay.to_svg()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_wiring_small_scales() {
        let runner = CampaignRunner::new();
        let cfg = ExperimentConfig {
            tests: 20,
            seed: 3,
            ..Default::default()
        };
        let fig = fig_propagation(&runner, &cfg, App::Cg, 2, 8);
        assert_eq!(fig.small.p, 2);
        assert_eq!(fig.large.p, 8);
        assert_eq!(fig.grouped.len(), 2);
        let mass: f64 = fig.grouped.iter().sum();
        assert!((mass - 1.0).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&fig.similarity));
        let text = fig.render();
        assert!(text.contains("(a)") && text.contains("(b)") && text.contains("(c)"));
        let svg = fig.to_svg();
        assert!(svg.starts_with("<svg") && svg.contains("cosine similarity"));
    }
}
