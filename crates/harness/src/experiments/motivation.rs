//! The §1 motivation measurements: how much more work fault injection is
//! at scale. The paper reports that CG with four MPI processes executes
//! 74.5 % more instructions than serial execution and that F-SEFI's fault
//! injection time grows 58 % — here we measure the tracked-op and
//! campaign-wall-time growth of every app.

use crate::campaign::{CampaignRunner, ErrorSpec};
use crate::experiments::ExperimentConfig;
use crate::report::Table;
use resilim_apps::App;
use serde::{Deserialize, Serialize};

/// Scale-growth measurements for one app.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MotivationRow {
    /// Workload label.
    pub app: String,
    /// Total tracked ops, serial.
    pub serial_ops: u64,
    /// Total tracked ops across all ranks at the parallel scale.
    pub parallel_ops: u64,
    /// Relative op growth (`parallel/serial − 1`).
    pub op_growth: f64,
    /// Serial 1-error campaign wall seconds.
    pub serial_fi_secs: f64,
    /// Parallel 1-error campaign wall seconds.
    pub parallel_fi_secs: f64,
    /// Relative fault-injection time growth.
    pub fi_time_growth: f64,
}

/// The motivation study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Motivation {
    /// Parallel scale compared against serial.
    pub procs: usize,
    /// Per-app rows.
    pub rows: Vec<MotivationRow>,
}

/// Measure op-count and FI-time growth from serial to `procs` ranks.
pub fn motivation(runner: &CampaignRunner, cfg: &ExperimentConfig, procs: usize) -> Motivation {
    let mut rows = Vec::new();
    for app in App::ALL {
        let serial_golden = runner.golden().get(&app.default_spec(), 1);
        let par_golden = runner.golden().get(&app.default_spec(), procs);
        let serial_ops: u64 = serial_golden.profiles.iter().map(|p| p.total()).sum();
        let parallel_ops: u64 = par_golden.profiles.iter().map(|p| p.total()).sum();

        let serial_fi =
            runner.run(&cfg.campaign(app.default_spec(), 1, ErrorSpec::SerialErrors(1)));
        let par_fi = runner.run(&cfg.campaign(app.default_spec(), procs, ErrorSpec::OneParallel));
        let serial_fi_secs = serial_fi.wall.as_secs_f64();
        let parallel_fi_secs = par_fi.wall.as_secs_f64();
        rows.push(MotivationRow {
            app: app.name().to_string(),
            serial_ops,
            parallel_ops,
            op_growth: parallel_ops as f64 / serial_ops.max(1) as f64 - 1.0,
            serial_fi_secs,
            parallel_fi_secs,
            fi_time_growth: parallel_fi_secs / serial_fi_secs.max(1e-9) - 1.0,
        });
    }
    Motivation { procs, rows }
}

impl Motivation {
    /// Render as text.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!(
                "Motivation: cost growth from serial to {} ranks",
                self.procs
            ),
            &[
                "benchmark",
                "ops serial",
                "ops parallel",
                "op growth",
                "FI time growth",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.app.clone(),
                r.serial_ops.to_string(),
                r.parallel_ops.to_string(),
                format!("{:+.1}%", r.op_growth * 100.0),
                format!("{:+.1}%", r.fi_time_growth * 100.0),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motivation_measures_growth() {
        let runner = CampaignRunner::new();
        let cfg = ExperimentConfig {
            tests: 5,
            seed: 1,
            ..Default::default()
        };
        let m = motivation(&runner, &cfg, 2);
        assert_eq!(m.rows.len(), App::ALL.len());
        for row in &m.rows {
            assert!(row.serial_ops > 0);
            // Parallel executions do at least the serial work (common
            // computation plus possibly parallel-unique extra).
            assert!(
                row.parallel_ops >= row.serial_ops,
                "{}: {} vs {}",
                row.app,
                row.parallel_ops,
                row.serial_ops
            );
        }
        assert!(m.render().contains("op growth"));
    }
}
