//! Figures 5, 6 and 7 — the headline experiment: predict the
//! fault-injection result of a large-scale execution from serial and
//! small-scale measurements, and compare against the actually measured
//! large-scale result.

use crate::campaign::{CampaignRunner, ErrorSpec};
use crate::experiments::ExperimentConfig;
use crate::report::{pct, Table};
use resilim_apps::App;
use resilim_core::{prediction_error, sample_cases, FiResult, ModelInputs, PaperEq8, SamplePoints};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Parallel-unique shares below this are ignored (Observation 2: "the
/// chance to inject an error into it is small").
const UNIQUE_SHARE_CUTOFF: f64 = 0.005;

/// Measured-vs-predicted for one app at one `(p, s)` configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictionRow {
    /// Workload label.
    pub app: String,
    /// Target (large) scale.
    pub p: usize,
    /// Small scale used for the prediction.
    pub s: usize,
    /// Measured large-scale rates `[success, sdc, failure]`.
    pub measured: [f64; 3],
    /// Predicted rates `[success, sdc, failure]`.
    pub predicted: [f64; 3],
    /// `|measured − predicted|` on the success rate (percentage points).
    pub error: f64,
    /// Wilson 95 % interval of the measured success rate — the resolution
    /// limit any prediction can be judged against at this test count.
    pub measured_ci: (f64, f64),
    /// Whether α fine-tuning was active.
    pub used_alpha: bool,
    /// The parallel-unique share used as `prob₂`.
    pub unique_share: f64,
}

/// A full prediction experiment (one figure).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictionReport {
    /// Target scale.
    pub p: usize,
    /// Small scale.
    pub s: usize,
    /// Per-app rows.
    pub rows: Vec<PredictionRow>,
    /// Average success-rate prediction error.
    pub avg_error: f64,
    /// Maximum success-rate prediction error.
    pub max_error: f64,
}

/// Run the prediction pipeline for `apps`, predicting scale `p` from
/// serial runs plus an `s`-rank small-scale execution (Eq. 1 + Eq. 8),
/// then validate against a measured `p`-rank campaign.
pub fn prediction(
    runner: &CampaignRunner,
    cfg: &ExperimentConfig,
    apps: &[App],
    p: usize,
    s: usize,
    strategy: SamplePoints,
) -> PredictionReport {
    let mut rows = Vec::new();
    for &app in apps {
        assert!(
            p <= app.max_procs(),
            "{app} does not decompose to {p} ranks"
        );
        let inputs = build_inputs(runner, cfg, app, p, s, strategy);
        let pred = PaperEq8::new(inputs).predict();

        // Validation: the actually measured large-scale campaign.
        let measured = runner.run(&cfg.campaign(app.default_spec(), p, ErrorSpec::OneParallel));

        let m = measured.fi.rates();
        rows.push(PredictionRow {
            app: app.name().to_string(),
            p,
            s,
            measured: m,
            predicted: pred.rates,
            error: prediction_error(m[0], pred.rates[0]),
            measured_ci: measured
                .fi
                .wilson_ci(resilim_core::OutcomeKind::Success, 1.96),
            used_alpha: pred.used_alpha,
            unique_share: runner.golden().get(&app.default_spec(), p).unique_share(),
        });
    }
    let avg_error = rows.iter().map(|r| r.error).sum::<f64>() / rows.len().max(1) as f64;
    let max_error = rows.iter().map(|r| r.error).fold(0.0, f64::max);
    PredictionReport {
        p,
        s,
        rows,
        avg_error,
        max_error,
    }
}

/// Assemble the model inputs for one app's default problem (see
/// [`build_inputs_spec`]).
pub fn build_inputs(
    runner: &CampaignRunner,
    cfg: &ExperimentConfig,
    app: App,
    p: usize,
    s: usize,
    strategy: SamplePoints,
) -> ModelInputs {
    build_inputs_spec(runner, cfg, &app.default_spec(), p, s, strategy)
}

/// Assemble the model inputs for an arbitrary problem — **only** serial
/// and small-scale measurements (plus the target-scale op-share, which
/// the paper takes as given from an execution-time model).
pub fn build_inputs_spec(
    runner: &CampaignRunner,
    cfg: &ExperimentConfig,
    problem: &resilim_apps::ProblemSpec,
    p: usize,
    s: usize,
    strategy: SamplePoints,
) -> ModelInputs {
    let campaign =
        |procs: usize, errors: ErrorSpec| runner.run(&cfg.campaign(problem.clone(), procs, errors));
    // Serial multi-error campaigns at the S sample cases, plus FI_ser_x
    // for x = 1..=s so the α divergence check can compare against the
    // small-scale conditional results (paper §4.2).
    let mut serial = BTreeMap::new();
    for &x in &sample_cases(p, s, strategy) {
        serial.insert(x, campaign(1, ErrorSpec::SerialErrors(x)).fi);
    }
    for x in 1..=s {
        serial
            .entry(x)
            .or_insert_with(|| campaign(1, ErrorSpec::SerialErrors(x)).fi);
    }

    // Small-scale 1-error campaign: propagation profile + conditionals.
    let small = campaign(s, ErrorSpec::OneParallel);

    // Parallel-unique handling (Eq. 1): prob₂ from the target-scale op
    // profile (a fault-free profile — the paper takes this share as a
    // given input from an execution-time model), FI_par_unique from a
    // region-targeted small-scale campaign.
    let unique_share = runner.golden().get(problem, p).unique_share();
    let (unique_share, fi_unique): (f64, Option<FiResult>) = if unique_share > UNIQUE_SHARE_CUTOFF {
        (
            unique_share,
            Some(campaign(s, ErrorSpec::OneParallelUnique).fi),
        )
    } else {
        (0.0, None)
    };

    ModelInputs {
        p,
        s,
        strategy,
        serial,
        small_prop: small.prop.clone(),
        small_by_contam: small.by_contam_optional(),
        unique_share,
        fi_unique,
        alpha_threshold: 0.20,
    }
}

impl PredictionReport {
    /// Render as text.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!(
                "Prediction for {} ranks from serial + {}-rank small scale",
                self.p, self.s
            ),
            &[
                "benchmark",
                "measured success (95% CI)",
                "predicted success",
                "error",
                "alpha",
                "measured SDC",
                "predicted SDC",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.app.clone(),
                format!(
                    "{} ({}-{})",
                    pct(r.measured[0]),
                    pct(r.measured_ci.0),
                    pct(r.measured_ci.1)
                ),
                pct(r.predicted[0]),
                format!("{:.1} pp", r.error * 100.0),
                if r.used_alpha { "yes" } else { "no" }.to_string(),
                pct(r.measured[1]),
                pct(r.predicted[1]),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "average error {:.1} pp, max error {:.1} pp\n",
            self.avg_error * 100.0,
            self.max_error * 100.0
        ));
        out
    }
}

impl PredictionReport {
    /// Render measured-vs-predicted success rates as an SVG bar chart.
    pub fn to_svg(&self) -> String {
        crate::plot::BarChart {
            title: format!(
                "Prediction for {} ranks from serial + {}-rank small scale",
                self.p, self.s
            ),
            y_label: "success rate".into(),
            categories: self.rows.iter().map(|r| r.app.clone()).collect(),
            series: vec![
                (
                    "measured".into(),
                    self.rows.iter().map(|r| r.measured[0]).collect(),
                ),
                (
                    "predicted".into(),
                    self.rows.iter().map(|r| r.predicted[0]).collect(),
                ),
            ],
            y_max: 1.0,
        }
        .to_svg()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_pipeline_wiring() {
        // Reduced scales so the unit test stays fast: predict p = 4 from
        // s = 2 for one app.
        let runner = CampaignRunner::new();
        let cfg = ExperimentConfig {
            tests: 30,
            seed: 11,
            ..Default::default()
        };
        let report = prediction(&runner, &cfg, &[App::Lu], 4, 2, SamplePoints::BucketUpper);
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        for k in 0..3 {
            assert!((0.0..=1.0).contains(&row.measured[k]));
            assert!((0.0..=1.0).contains(&row.predicted[k]));
        }
        let psum: f64 = row.predicted.iter().sum();
        assert!((psum - 1.0).abs() < 1e-9, "predicted rates sum to {psum}");
        assert!(report.max_error >= report.avg_error);
        assert!(report.render().contains("Prediction for 4 ranks"));
        assert!(report.to_svg().contains("measured"));
    }

    #[test]
    fn ft_prediction_includes_unique_term() {
        let runner = CampaignRunner::new();
        let cfg = ExperimentConfig {
            tests: 20,
            seed: 11,
            ..Default::default()
        };
        let inputs = build_inputs(&runner, &cfg, App::Ft, 4, 2, SamplePoints::BucketUpper);
        assert!(inputs.unique_share > UNIQUE_SHARE_CUTOFF);
        assert!(inputs.fi_unique.is_some());
    }
}
