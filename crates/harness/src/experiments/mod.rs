//! One entry point per paper artifact.
//!
//! | Function | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — parallel-unique computation share |
//! | [`table2`] | Table 2 — propagation cosine similarity (4V64, 8V64) |
//! | [`fig_propagation`] | Figures 1–2 — propagation histograms + grouping |
//! | [`fig3`] | Figure 3 — serial multi-error vs parallel multi-contamination |
//! | [`prediction`] | Figures 5, 6, 7 — predicted vs measured at scale |
//! | [`fig8`] | Figure 8 — accuracy/cost sensitivity in the small scale |
//! | [`motivation`] | §1 — instruction-count and FI-time growth with scale |
//! | [`weak_scaling`] | extension (not in the paper): weak-scaled problems |
//!
//! Every experiment takes the shared
//! [`CampaignRunner`](crate::campaign::CampaignRunner) (so deployments
//! are cached across experiments) and an [`ExperimentConfig`].

mod fig3;
mod fig8;
mod motivation;
mod prediction;
mod propagation;
mod table1;
mod table2;
mod weak;

pub use fig3::{fig3, Fig3, Fig3App};
pub use fig8::{fig8, Fig8, Fig8Point};
pub use motivation::{motivation, Motivation, MotivationRow};
pub use prediction::{
    build_inputs, build_inputs_spec, prediction, PredictionReport, PredictionRow,
};
pub use propagation::{fig_propagation, PropagationFigure};
pub use table1::{table1, Table1, Table1Row};
pub use table2::{table2, Table2, Table2Row};
pub use weak::{weak_scaling, WeakRow, WeakScaling};

use serde::{Deserialize, Serialize};

/// Shared experiment knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Fault-injection tests per deployment. The paper uses 4000; the
    /// default here is sized for a single-core laptop run and can be
    /// raised with `--tests` (results stabilize per the Wilson intervals
    /// reported alongside).
    pub tests: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Contamination-significance threshold passed to every campaign
    /// (see [`crate::campaign::DEFAULT_TAINT_THRESHOLD`]).
    pub taint_threshold: f64,
    /// Optional adaptive stop rule applied to every campaign the
    /// experiment runs; `tests` becomes an upper bound when set.
    pub stop: Option<resilim_core::StopRule>,
}

impl ExperimentConfig {
    /// The campaign this config implies for one deployment. Experiment
    /// pipelines share `tests`/`seed`/`taint_threshold` across every
    /// campaign they run; only the workload, scale, and fault pattern
    /// vary per call site — keeping the spec construction here means a
    /// new knob (like the op mask) propagates to all of them at once.
    pub fn campaign(
        &self,
        spec: resilim_apps::ProblemSpec,
        procs: usize,
        errors: crate::campaign::ErrorSpec,
    ) -> crate::campaign::CampaignSpec {
        crate::campaign::CampaignSpec {
            spec,
            procs,
            errors,
            tests: self.tests,
            seed: self.seed,
            taint_threshold: self.taint_threshold,
            op_mask: Default::default(),
            fault_model: Default::default(),
            replicate: false,
            stop: self.stop,
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            tests: 200,
            seed: 2018,
            taint_threshold: crate::campaign::DEFAULT_TAINT_THRESHOLD,
            stop: None,
        }
    }
}

/// The standard large scale used by Figures 5/6/8.
pub const LARGE_SCALE: usize = 64;
/// The extended scale of Figure 7.
pub const XLARGE_SCALE: usize = 128;
