//! Table 1 — percentage of parallel-unique computation.
//!
//! The paper measures the execution-time share of parallel-unique code at
//! four MPI processes; this reproduction measures the dynamic
//! injectable-FP-op share (the exact weight `prob₂` that Eq. 1 needs —
//! see DESIGN.md on the substitution). Rows cover each app's default
//! problem plus the larger problem class where the paper lists one.

use crate::campaign::CampaignRunner;
use crate::report::Table;
use resilim_apps::App;
use serde::{Deserialize, Serialize};

/// One Table 1 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Workload label (app + problem class).
    pub label: String,
    /// Scale the profile was taken at.
    pub procs: usize,
    /// Parallel-unique share of injectable ops, in `[0, 1]`.
    pub share: f64,
}

/// The full Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// Rows in paper order.
    pub rows: Vec<Table1Row>,
}

/// Regenerate Table 1: profile fault-free runs at four ranks.
pub fn table1(runner: &CampaignRunner) -> Table1 {
    let procs = 4;
    let mut rows = Vec::new();
    for app in App::ALL {
        let golden = runner.golden().get(&app.default_spec(), procs);
        rows.push(Table1Row {
            label: format!("{app} (default)"),
            procs,
            share: golden.unique_share(),
        });
        if let Some(large) = app.large_spec() {
            let golden = runner.golden().get(&large, procs);
            rows.push(Table1Row {
                label: format!("{app} (large)"),
                procs,
                share: golden.unique_share(),
            });
        }
    }
    Table1 { rows }
}

impl Table1 {
    /// Render as text.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 1: parallel-unique computation share (4 ranks)",
            &["benchmark", "parallel-unique share"],
        );
        for row in &self.rows {
            let share = if row.share == 0.0 {
                "no parallel-unique comp".to_string()
            } else {
                format!("{:.2}%", row.share * 100.0)
            };
            t.row(vec![row.label.clone(), share]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper() {
        resilim_core::verifies!(TABLE1, O1, O2);
        let runner = CampaignRunner::new();
        let table = table1(&runner);
        // 6 default rows + 3 large rows (CG, FT, MiniFE).
        assert_eq!(table.rows.len(), 9);

        let share = |label: &str| {
            table
                .rows
                .iter()
                .find(|r| r.label.starts_with(label))
                .map(|r| r.share)
                .unwrap()
        };
        // FT's transpose twiddles dominate every other app's share.
        let ft = share("ft (default)");
        assert!(ft > 0.03, "ft share = {ft}");
        for other in ["cg (default)", "minife (default)"] {
            let s = share(other);
            assert!(s > 0.0 && s < ft, "{other} share = {s} vs ft {ft}");
        }
        // MG, LU, PENNANT: no parallel-unique computation at all.
        for none in ["mg (default)", "lu (default)", "pennant (default)"] {
            assert_eq!(share(none), 0.0, "{none}");
        }
        let rendered = table.render();
        assert!(rendered.contains("no parallel-unique comp"));
    }
}
