//! Minimal hand-rolled SVG charts for the paper's figures — no plotting
//! dependency, just enough to eyeball the reproduced series: grouped bar
//! charts (propagation histograms, measured-vs-predicted panels) and line
//! charts (the Figure 8 sweep).

/// A grouped bar chart: one bar per (category, series) pair.
///
/// ```
/// use resilim_harness::plot::BarChart;
/// let svg = BarChart {
///     title: "success rates".into(),
///     y_label: "rate".into(),
///     categories: vec!["cg".into(), "ft".into()],
///     series: vec![("measured".into(), vec![0.65, 0.76])],
///     y_max: 1.0,
/// }
/// .to_svg();
/// assert!(svg.starts_with("<svg"));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// Category labels along x.
    pub categories: Vec<String>,
    /// Series: `(legend label, one value per category)`.
    pub series: Vec<(String, Vec<f64>)>,
    /// Upper bound of the y axis (e.g. 1.0 for rates).
    pub y_max: f64,
}

/// A multi-series line chart over shared x positions.
#[derive(Debug, Clone)]
pub struct LineChart {
    /// Chart title.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// X tick labels.
    pub x_labels: Vec<String>,
    /// Series: `(legend label, one value per x position)`.
    pub series: Vec<(String, Vec<f64>)>,
}

const WIDTH: f64 = 520.0;
const HEIGHT: f64 = 300.0;
const MARGIN_L: f64 = 56.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 46.0;
const PALETTE: [&str; 4] = ["#4878a8", "#e49444", "#5ba053", "#b04f4f"];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn frame(title: &str, y_label: &str, body: &str) -> String {
    format!(
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="11">
<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>
<text x="{tx}" y="20" text-anchor="middle" font-size="13" font-weight="bold">{title}</text>
<text x="14" y="{ty}" text-anchor="middle" transform="rotate(-90 14 {ty})">{y}</text>
{body}
</svg>
"##,
        tx = WIDTH / 2.0,
        ty = (MARGIN_T + HEIGHT - MARGIN_B) / 2.0,
        title = esc(title),
        y = esc(y_label),
    )
}

fn axes(y_max: f64, fmt: impl Fn(f64) -> String) -> String {
    let x0 = MARGIN_L;
    let x1 = WIDTH - MARGIN_R;
    let y0 = HEIGHT - MARGIN_B;
    let y1 = MARGIN_T;
    let mut out = format!(
        r#"<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="black"/>
<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="black"/>
"#
    );
    for i in 0..=4 {
        let v = y_max * i as f64 / 4.0;
        let y = y0 - (y0 - y1) * i as f64 / 4.0;
        out.push_str(&format!(
            r#"<line x1="{}" y1="{y}" x2="{x0}" y2="{y}" stroke="black"/>
<text x="{}" y="{}" text-anchor="end">{}</text>
"#,
            x0 - 4.0,
            x0 - 7.0,
            y + 4.0,
            esc(&fmt(v)),
        ));
    }
    out
}

fn legend(series: &[(String, Vec<f64>)]) -> String {
    let mut out = String::new();
    for (i, (label, _)) in series.iter().enumerate() {
        let x = MARGIN_L + 10.0 + 130.0 * i as f64;
        let y = MARGIN_T - 8.0;
        out.push_str(&format!(
            r#"<rect x="{x}" y="{}" width="10" height="10" fill="{}"/>
<text x="{}" y="{}">{}</text>
"#,
            y - 9.0,
            PALETTE[i % PALETTE.len()],
            x + 14.0,
            y,
            esc(label),
        ));
    }
    out
}

impl BarChart {
    /// Render to an SVG document string.
    pub fn to_svg(&self) -> String {
        assert!(!self.categories.is_empty() && !self.series.is_empty());
        for (label, values) in &self.series {
            assert_eq!(
                values.len(),
                self.categories.len(),
                "series '{label}' length mismatch"
            );
        }
        let y_max = if self.y_max > 0.0 { self.y_max } else { 1.0 };
        let x0 = MARGIN_L;
        let y0 = HEIGHT - MARGIN_B;
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = y0 - MARGIN_T;
        let ncat = self.categories.len();
        let nser = self.series.len();
        let slot = plot_w / ncat as f64;
        let bar_w = (slot * 0.8) / nser as f64;

        let mut body = axes(y_max, |v| format!("{:.0}%", v * 100.0));
        body.push_str(&legend(&self.series));
        for (si, (_, values)) in self.series.iter().enumerate() {
            for (ci, &v) in values.iter().enumerate() {
                let h = (v.clamp(0.0, y_max) / y_max) * plot_h;
                let x = x0 + slot * ci as f64 + slot * 0.1 + bar_w * si as f64;
                body.push_str(&format!(
                    r#"<rect x="{x:.1}" y="{:.1}" width="{bar_w:.1}" height="{h:.1}" fill="{}"/>
"#,
                    y0 - h,
                    PALETTE[si % PALETTE.len()],
                ));
            }
        }
        for (ci, cat) in self.categories.iter().enumerate() {
            let x = x0 + slot * (ci as f64 + 0.5);
            body.push_str(&format!(
                r#"<text x="{x:.1}" y="{}" text-anchor="middle">{}</text>
"#,
                y0 + 16.0,
                esc(cat),
            ));
        }
        frame(&self.title, &self.y_label, &body)
    }
}

impl LineChart {
    /// Render to an SVG document string.
    pub fn to_svg(&self) -> String {
        assert!(!self.x_labels.is_empty() && !self.series.is_empty());
        let y_max = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(0.0f64, f64::max)
            .max(1e-12)
            * 1.1;
        let x0 = MARGIN_L;
        let y0 = HEIGHT - MARGIN_B;
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = y0 - MARGIN_T;
        let n = self.x_labels.len();
        let step = plot_w / (n.max(2) - 1) as f64;

        let mut body = axes(y_max, |v| format!("{v:.2}"));
        body.push_str(&legend(&self.series));
        for (si, (label, values)) in self.series.iter().enumerate() {
            assert_eq!(values.len(), n, "series '{label}' length mismatch");
            let pts: Vec<String> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    format!(
                        "{:.1},{:.1}",
                        x0 + step * i as f64,
                        y0 - (v.clamp(0.0, y_max) / y_max) * plot_h
                    )
                })
                .collect();
            body.push_str(&format!(
                r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="2"/>
"#,
                pts.join(" "),
                PALETTE[si % PALETTE.len()],
            ));
            for pt in &pts {
                let (x, y) = pt.split_once(',').expect("formatted above");
                body.push_str(&format!(
                    r#"<circle cx="{x}" cy="{y}" r="3" fill="{}"/>
"#,
                    PALETTE[si % PALETTE.len()],
                ));
            }
        }
        for (i, label) in self.x_labels.iter().enumerate() {
            body.push_str(&format!(
                r#"<text x="{:.1}" y="{}" text-anchor="middle">{}</text>
"#,
                x0 + step * i as f64,
                y0 + 16.0,
                esc(label),
            ));
        }
        frame(&self.title, &self.y_label, &body)
    }
}

/// Stack several SVG documents vertically into one document.
pub fn stack_svgs(svgs: &[String]) -> String {
    let total_h = HEIGHT * svgs.len() as f64;
    let mut out = format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{total_h}" viewBox="0 0 {WIDTH} {total_h}">
"#
    );
    for (i, svg) in svgs.iter().enumerate() {
        // Strip the outer <svg> wrapper and re-embed with an offset.
        let inner = svg
            .split_once('>')
            .map(|(_, rest)| {
                rest.rsplit_once("</svg>")
                    .map(|(body, _)| body)
                    .unwrap_or(rest)
            })
            .unwrap_or(svg);
        out.push_str(&format!(
            r#"<g transform="translate(0 {})">{inner}</g>
"#,
            HEIGHT * i as f64
        ));
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bar() -> BarChart {
        BarChart {
            title: "Demo <bars>".into(),
            y_label: "success rate".into(),
            categories: vec!["cg".into(), "ft".into()],
            series: vec![
                ("measured".into(), vec![0.65, 0.76]),
                ("predicted".into(), vec![0.60, 0.70]),
            ],
            y_max: 1.0,
        }
    }

    #[test]
    fn bar_chart_renders_valid_svg() {
        let svg = bar().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // 2 series x 2 categories = 4 bars (+1 legend swatch rect each +1 bg).
        assert_eq!(svg.matches("<rect").count(), 4 + 2 + 1);
        // Title is escaped.
        assert!(svg.contains("Demo &lt;bars&gt;"));
        assert!(svg.contains("measured"));
    }

    #[test]
    fn line_chart_renders_polylines() {
        let chart = LineChart {
            title: "fig8".into(),
            y_label: "RMSE".into(),
            x_labels: vec!["4".into(), "8".into(), "16".into(), "32".into()],
            series: vec![("rmse".into(), vec![0.066, 0.049, 0.045, 0.033])],
        };
        let svg = chart.to_svg();
        assert_eq!(svg.matches("<polyline").count(), 1);
        assert_eq!(svg.matches("<circle").count(), 4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bar_chart_rejects_ragged_series() {
        let mut chart = bar();
        chart.series[0].1.pop();
        chart.to_svg();
    }

    #[test]
    fn stacking_combines_documents() {
        let a = bar().to_svg();
        let b = bar().to_svg();
        let stacked = stack_svgs(&[a, b]);
        assert!(stacked.starts_with("<svg"));
        assert_eq!(stacked.matches("<g transform").count(), 2);
        // No nested outer <svg> wrappers survive.
        assert_eq!(stacked.matches("<svg").count(), 1);
    }
}
