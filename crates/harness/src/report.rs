//! Plain-text table rendering for experiment results.

/// A simple fixed-width text table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..ncols {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[c], width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a probability as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a float with four significant decimals.
pub fn num(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["app", "value"]);
        t.row(vec!["cg".into(), "1.5".into()]);
        t.row(vec!["pennant".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("app      value"));
        assert!(s.contains("pennant  22"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(num(1.0 / 3.0), "0.3333");
    }
}
