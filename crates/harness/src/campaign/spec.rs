//! Campaign vocabulary: what to run ([`CampaignSpec`], [`ErrorSpec`])
//! and what comes back ([`CampaignResult`]).

use crate::golden::GoldenRun;
use resilim_apps::ProblemSpec;
use resilim_core::{FiResult, PropagationProfile, StopRule, TrialFeatures};
use resilim_inject::{FailureKind, FaultModelSpec, OpMask, TestOutcome};
use resilim_obs as obs;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// What faults a campaign injects per test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorSpec {
    /// One single-bit error at a uniformly random injectable operation of
    /// the whole parallel execution (any rank, any region) — the paper's
    /// standard parallel deployment.
    OneParallel,
    /// `x` single-bit errors at distinct random operations of the *common*
    /// computation of a serial run (`FI_ser_x`; requires `procs == 1`).
    SerialErrors(usize),
    /// One single-bit error targeted into the *parallel-unique* region of
    /// a uniformly random rank (`FI_par_unique`'s measurement).
    OneParallelUnique,
    /// Like [`ErrorSpec::OneParallel`] but flipping `k` bits of the chosen
    /// operand (multi-bit extension; ablation benches).
    OneParallelMultiBit(u8),
}

impl ErrorSpec {
    /// Parse the CLI spelling: `par`, `ser:N`, `unique`, or `multi:K`.
    /// `procs` is the deployment's rank count, needed because `ser:N`
    /// campaigns are only defined serially.
    pub fn parse(spec: &str, procs: usize) -> Result<ErrorSpec, String> {
        if spec == "par" {
            return Ok(ErrorSpec::OneParallel);
        }
        if spec == "unique" {
            return Ok(ErrorSpec::OneParallelUnique);
        }
        if let Some(n) = spec.strip_prefix("ser:") {
            if procs != 1 {
                return Err("ser:N campaigns need --scale 1".into());
            }
            return Ok(ErrorSpec::SerialErrors(
                n.parse().map_err(|e| format!("ser:N: {e}"))?,
            ));
        }
        if let Some(k) = spec.strip_prefix("multi:") {
            return Ok(ErrorSpec::OneParallelMultiBit(
                k.parse().map_err(|e| format!("multi:K: {e}"))?,
            ));
        }
        Err(format!(
            "unknown --errors '{spec}' (par|ser:N|unique|multi:K)"
        ))
    }

    /// The CLI spelling [`ErrorSpec::parse`] accepts — the wire form
    /// service submissions carry, chosen over the serde encoding so that
    /// hand-written requests use the same vocabulary as the command line.
    pub fn cli_name(&self) -> String {
        match self {
            ErrorSpec::OneParallel => "par".to_string(),
            ErrorSpec::SerialErrors(x) => format!("ser:{x}"),
            ErrorSpec::OneParallelUnique => "unique".to_string(),
            ErrorSpec::OneParallelMultiBit(k) => format!("multi:{k}"),
        }
    }
}

/// Validate a fault-model choice against the deployment shape it will
/// run in. Shared by the CLI front end and the `resilim serve` wire
/// protocol so a bad combination is rejected identically everywhere:
/// burst defines its own bit geometry (no `multi:K`/`unique`/`ser:N`),
/// and a wire fault needs a communicating (`par`, multi-rank) world.
pub fn validate_fault_model(
    model: FaultModelSpec,
    errors: ErrorSpec,
    procs: usize,
) -> Result<(), String> {
    if matches!(model, FaultModelSpec::Burst(_)) && !matches!(errors, ErrorSpec::OneParallel) {
        return Err("fault model burst needs errors=par (the burst defines its own bits)".into());
    }
    if model.targets_messages() {
        if !matches!(errors, ErrorSpec::OneParallel) {
            return Err("fault model msg needs errors=par (the fault site is a message)".into());
        }
        if procs < 2 {
            return Err("fault model msg needs >= 2 ranks (a 1-rank world sends nothing)".into());
        }
    }
    Ok(())
}

/// Default contamination-significance threshold (relative): a rank counts
/// as contaminated when it holds a value diverging from the fault-free
/// shadow by more than this. Mirrors F-SEFI's application-level memory
/// comparison, which is tolerance-based rather than bitwise; see
/// DESIGN.md ("contamination significance").
pub const DEFAULT_TAINT_THRESHOLD: f64 = 1e-9;

/// A campaign specification.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// The workload.
    pub spec: ProblemSpec,
    /// Rank count.
    pub procs: usize,
    /// Fault pattern.
    pub errors: ErrorSpec,
    /// Number of fault-injection tests (an upper bound when `stop` is
    /// set: the campaign may stop earlier once the rule is satisfied).
    pub tests: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Contamination-significance threshold (see
    /// [`DEFAULT_TAINT_THRESHOLD`]); 0 = bitwise.
    pub taint_threshold: f64,
    /// Which operation kinds are injection targets (the paper's default:
    /// floating-point add/sub/mul).
    pub op_mask: OpMask,
    /// What each injected fault *is* (`--fault-model`): the paper's
    /// single-bit operand flip by default; burst, DUE, or wire (message)
    /// corruption otherwise. See [`FaultModelSpec`].
    pub fault_model: FaultModelSpec,
    /// TeaMPI-style replication mitigation (`--replicate`): replica pairs
    /// compare message payloads at communication points, and trials
    /// report whether the corruption was detected. Observation-only — it
    /// never changes any trial's outcome class.
    pub replicate: bool,
    /// Adaptive-stopping rule; `None` (the default) runs exactly
    /// `tests` trials. The rule is evaluated on the in-order trial
    /// prefix only, so a stopped campaign's result is deterministic for
    /// a fixed seed+config regardless of worker count.
    pub stop: Option<StopRule>,
}

impl CampaignSpec {
    /// Spec with the default contamination threshold.
    pub fn new(
        spec: ProblemSpec,
        procs: usize,
        errors: ErrorSpec,
        tests: usize,
        seed: u64,
    ) -> CampaignSpec {
        CampaignSpec {
            spec,
            procs,
            errors,
            tests,
            seed,
            taint_threshold: DEFAULT_TAINT_THRESHOLD,
            op_mask: OpMask::FP_ARITH,
            fault_model: FaultModelSpec::default(),
            replicate: false,
            stop: None,
        }
    }

    /// Stop adaptively under `rule` instead of always running `tests`
    /// trials (`tests` remains the hard ceiling).
    pub fn with_stop(mut self, rule: StopRule) -> CampaignSpec {
        self.stop = Some(rule);
        self
    }

    /// Inject faults under `model` instead of the default single-bit flip.
    pub fn with_fault_model(mut self, model: FaultModelSpec) -> CampaignSpec {
        self.fault_model = model;
        self
    }

    /// Enable TeaMPI-style replica payload comparison.
    pub fn with_replication(mut self, replicate: bool) -> CampaignSpec {
        self.replicate = replicate;
        self
    }

    /// Identity of the *aggregated result*: the ledger key plus
    /// everything that shapes aggregation without affecting any single
    /// trial (`tests`, the stop rule). The stop suffix is emitted only
    /// when a rule is set, so fixed-`tests` keys are unchanged.
    ///
    /// Public because result-level deduplication lives on it: the
    /// campaign cache here and the `resilim serve` daemon's idempotent
    /// submission both treat two specs with equal cache keys as the
    /// same campaign.
    pub fn cache_key(&self) -> String {
        let mut key = format!("{}|n={}", self.trial_key(), self.tests);
        if let Some(rule) = &self.stop {
            key.push_str(&format!(
                "|stop=ci{},min{},z{}",
                rule.ci_halfwidth, rule.min_tests, rule.z
            ));
        }
        key
    }

    /// The durable-ledger identity of this deployment: everything that
    /// determines a trial's outcome *except* the trial count, so a
    /// shard, a resumed run, and a differently-sized campaign of the
    /// same deployment all share ledger records (trial `i` is fully
    /// determined by `(spec, seed, i)`, never by `tests`).
    ///
    /// Audit of result-affecting fields (every one below feeds the
    /// private `exec` layer's planning or classification):
    /// * problem parameters — `spec.cache_key()` (the full `Debug` form
    ///   of [`ProblemSpec`], so any new problem knob joins automatically)
    /// * `procs` — the rank count trials execute at
    /// * `errors` — the fault pattern (includes the sample-point
    ///   strategy's error count for `SerialErrors(x)`)
    /// * `seed` — the root of every per-trial RNG
    /// * `taint_threshold` (θ) — contamination classification
    /// * `op_mask` — the injectable-op sample space
    /// * `fault_model` — what a fired fault does to its target (suffixed
    ///   only when non-default, so pre-existing ledgers keep matching)
    /// * `replicate` — replica comparison sets the `detected` flag on
    ///   recorded outcomes (suffixed only when enabled, same reason)
    ///
    /// Deliberately excluded: `tests` (see above) and `stop` — the stop
    /// rule decides *how many* trials aggregate, never how any trial
    /// runs, so adaptive and fixed campaigns of one deployment share
    /// ledger records too.
    pub fn ledger_key(&self) -> String {
        self.trial_key()
    }

    /// Everything that determines a single trial's outcome.
    fn trial_key(&self) -> String {
        let mut key = format!(
            "{}|p={}|{:?}|seed={}|theta={}|mask={}",
            self.spec.cache_key(),
            self.procs,
            self.errors,
            self.seed,
            self.taint_threshold,
            self.op_mask
        );
        // Appended only when non-default so that every key minted before
        // fault models existed still identifies the same trials.
        if !self.fault_model.is_default() {
            key.push_str(&format!("|fm={}", self.fault_model.cli_name()));
        }
        if self.replicate {
            key.push_str("|repl");
        }
        key
    }
}

/// A campaign's results.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Rank count of the deployment.
    pub procs: usize,
    /// Statistical summary over all tests.
    pub fi: FiResult,
    /// Contaminated-rank histogram over all tests.
    pub prop: PropagationProfile,
    /// Results conditioned on contamination count: `by_contam[x-1]`
    /// summarizes the tests that contaminated exactly `x ∈ [1, procs]`
    /// ranks.
    pub by_contam: Vec<FiResult>,
    /// Tests that contaminated *no* rank (a planned fault never reached
    /// its target op). Kept out of `by_contam` so the x=1 bucket is not
    /// polluted by tests where nothing happened.
    pub uncontaminated: FiResult,
    /// Raw per-test outcomes (test `i` used seed `hash(seed, i)`).
    pub outcomes: Vec<TestOutcome>,
    /// Per-trial feature records in delivery order — the learned
    /// predictors' training data. May be shorter than `outcomes` when
    /// resumed trials' features are not on disk (feature extraction
    /// postdates the ledger), and empty for merged results without a
    /// feature store.
    pub features: Vec<TrialFeatures>,
    /// Whether an adaptive [`StopRule`] ended the campaign before its
    /// `tests` ceiling (always `false` in fixed mode).
    pub stopped_early: bool,
    /// Wall-clock time of the whole campaign (the paper's "fault
    /// injection time").
    pub wall: Duration,
    /// The golden run the campaign classified against.
    pub golden: Arc<GoldenRun>,
    /// Observability counters/histograms accumulated while this campaign
    /// ran (all zeros unless the recorder was enabled). Snapshot deltas:
    /// exact when campaigns don't run concurrently in one process.
    pub metrics: obs::MetricsSnapshot,
}

impl CampaignResult {
    /// Small-scale conditional results as the model wants them:
    /// `None` where a contamination class was never observed.
    pub fn by_contam_optional(&self) -> Vec<Option<FiResult>> {
        self.by_contam
            .iter()
            .map(|fi| if fi.total() > 0 { Some(*fi) } else { None })
            .collect()
    }

    /// Trials a detected-uncorrectable error killed (`--fault-model due`).
    pub fn due_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.failure == Some(FailureKind::Due))
            .count()
    }

    /// Trials where the corruption was detected (DUE kill or replica
    /// payload comparison).
    pub fn detected_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.detected).count()
    }

    /// Detection coverage: `P(detected | at least one rank contaminated)`
    /// — the fraction of trials with observable corruption that a
    /// deployed detector (DUE machinery or `--replicate` comparison)
    /// actually flagged. `None` when no trial contaminated any rank, so
    /// coverage is undefined rather than misleadingly zero.
    pub fn detection_coverage(&self) -> Option<f64> {
        let contaminated: Vec<&TestOutcome> = self
            .outcomes
            .iter()
            .filter(|o| o.contaminated_ranks > 0)
            .collect();
        if contaminated.is_empty() {
            return None;
        }
        let detected = contaminated.iter().filter(|o| o.detected).count();
        Some(detected as f64 / contaminated.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilim_apps::App;
    use resilim_inject::OpMask;

    fn base() -> CampaignSpec {
        CampaignSpec::new(App::Cg.default_spec(), 4, ErrorSpec::OneParallel, 50, 7)
    }

    /// Regression for the ledger-key audit: every result-affecting
    /// field must produce a distinct ledger key, and the two
    /// aggregation-only fields (`tests`, `stop`) must change the cache
    /// key but *not* the ledger key.
    #[test]
    fn ledger_key_separates_every_result_affecting_field() {
        let a = base();
        let variants: Vec<(&str, CampaignSpec)> = vec![
            ("spec", {
                let mut s = base();
                s.spec = App::Ft.default_spec();
                s
            }),
            ("procs", {
                let mut s = base();
                s.procs = 8;
                s
            }),
            ("errors", {
                let mut s = base();
                s.errors = ErrorSpec::OneParallelUnique;
                s
            }),
            ("errors-x", {
                let mut s = base();
                s.procs = 1;
                s.errors = ErrorSpec::SerialErrors(3);
                s
            }),
            ("seed", {
                let mut s = base();
                s.seed = 8;
                s
            }),
            ("theta", {
                let mut s = base();
                s.taint_threshold = 1e-6;
                s
            }),
            ("mask", {
                let mut s = base();
                s.op_mask = OpMask::DIV;
                s
            }),
            ("fault-model", {
                base().with_fault_model(FaultModelSpec::Burst(3))
            }),
            ("replicate", base().with_replication(true)),
        ];
        for (field, v) in &variants {
            assert_ne!(
                a.ledger_key(),
                v.ledger_key(),
                "field {field} must be part of the ledger key"
            );
            assert_ne!(
                a.cache_key(),
                v.cache_key(),
                "field {field} must be part of the cache key"
            );
        }
    }

    #[test]
    fn tests_and_stop_affect_cache_key_only() {
        let a = base();
        let mut more_tests = base();
        more_tests.tests = 51;
        let adaptive = base().with_stop(StopRule::new(0.05));
        for (field, v) in [("tests", &more_tests), ("stop", &adaptive)] {
            assert_eq!(
                a.ledger_key(),
                v.ledger_key(),
                "{field} must not change the ledger key (trials are shared)"
            );
            assert_ne!(
                a.cache_key(),
                v.cache_key(),
                "{field} must change the cache key (results differ)"
            );
        }
        // Distinct stop rules are distinct results.
        let tighter = base().with_stop(StopRule::new(0.02));
        assert_ne!(adaptive.cache_key(), tighter.cache_key());
    }

    #[test]
    fn cli_spellings_round_trip_through_parse() {
        let specs = [
            (ErrorSpec::OneParallel, 4),
            (ErrorSpec::SerialErrors(3), 1),
            (ErrorSpec::OneParallelUnique, 4),
            (ErrorSpec::OneParallelMultiBit(2), 4),
        ];
        for (errors, procs) in specs {
            assert_eq!(ErrorSpec::parse(&errors.cli_name(), procs), Ok(errors));
        }
        assert!(ErrorSpec::parse("ser:2", 4).is_err(), "ser needs procs=1");
        assert!(ErrorSpec::parse("ser:x", 1).is_err());
        assert!(ErrorSpec::parse("multi:x", 4).is_err());
        assert!(ErrorSpec::parse("bogus", 4).is_err());
    }

    /// Keys minted before fault models existed must keep identifying the
    /// same trials: the default model and no replication add nothing.
    #[test]
    fn default_fault_model_leaves_keys_unchanged() {
        let key = base().ledger_key();
        assert!(!key.contains("|fm="), "default model must not tag keys");
        assert!(!key.contains("|repl"), "no replication must not tag keys");
        let tagged = base()
            .with_fault_model(FaultModelSpec::Due)
            .with_replication(true)
            .ledger_key();
        assert!(tagged.contains("|fm=due"));
        assert!(tagged.ends_with("|repl"));
    }

    #[test]
    fn detection_stats_count_due_and_detected_trials() {
        use resilim_core::FiAccumulator;
        let outcomes = vec![
            TestOutcome::success(true, 0, 0),
            TestOutcome::sdc(2, 1),
            TestOutcome::failure(FailureKind::Due, 1, 1).with_detected(true),
            TestOutcome::sdc(3, 1).with_detected(true),
        ];
        let mut acc = FiAccumulator::new(4);
        for o in &outcomes {
            acc.record(o);
        }
        let (fi, prop, by_contam, uncontaminated) = acc.into_parts();
        let result = CampaignResult {
            procs: 4,
            fi,
            prop,
            by_contam,
            uncontaminated,
            outcomes,
            features: Vec::new(),
            stopped_early: false,
            wall: Duration::ZERO,
            golden: Arc::new(GoldenRun::measure(&App::Cg.default_spec(), 1)),
            metrics: obs::MetricsSnapshot::default(),
        };
        assert_eq!(result.due_count(), 1);
        assert_eq!(result.detected_count(), 2);
        // 3 contaminated trials, 2 detected.
        assert_eq!(result.detection_coverage(), Some(2.0 / 3.0));
    }

    #[test]
    fn detection_coverage_is_undefined_without_contamination() {
        use resilim_core::FiAccumulator;
        let outcomes = vec![TestOutcome::success(true, 0, 0)];
        let mut acc = FiAccumulator::new(1);
        for o in &outcomes {
            acc.record(o);
        }
        let (fi, prop, by_contam, uncontaminated) = acc.into_parts();
        let result = CampaignResult {
            procs: 1,
            fi,
            prop,
            by_contam,
            uncontaminated,
            outcomes,
            features: Vec::new(),
            stopped_early: false,
            wall: Duration::ZERO,
            golden: Arc::new(GoldenRun::measure(&App::Cg.default_spec(), 1)),
            metrics: obs::MetricsSnapshot::default(),
        };
        assert_eq!(result.detection_coverage(), None);
    }

    #[test]
    fn fixed_mode_cache_key_has_no_stop_suffix() {
        assert!(!base().cache_key().contains("stop="));
        assert!(base()
            .with_stop(StopRule::new(0.05))
            .cache_key()
            .contains("stop="));
    }
}
