//! The streaming trial pipeline: completed trials flow as
//! [`TrialRecord`] events through a deterministic [`ReorderBuffer`]
//! into composable [`TrialConsumer`]s.
//!
//! ## Determinism argument
//!
//! Workers complete trials in a nondeterministic order (it depends on
//! worker count and scheduling), but every record carries its trial
//! index and the buffer releases records strictly in the campaign's
//! owned-index order. Consumers therefore observe *exactly* the
//! sequence a sequential run would produce — so any consumer that is a
//! pure fold of its input (the aggregator, the plot-series builders)
//! yields bitwise-identical state regardless of parallelism. Adaptive
//! stopping inherits the same property: a
//! [`StopRule`](resilim_core::StopRule) is evaluated only on the in-order
//! prefix, so the stop position — and with it the delivered prefix and
//! every statistic — is a pure function of `(spec, seed, config)`,
//! never of timing.

use resilim_core::TrialFeatures;
use resilim_inject::TestOutcome;
use std::collections::BTreeMap;

/// One completed (or resumed) trial, as an event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialRecord {
    /// Trial index within the campaign (`0..tests`).
    pub index: usize,
    /// The trial's classified outcome.
    pub outcome: TestOutcome,
    /// Execution attempts this outcome took (1 = first try; 0 for
    /// records resumed from a ledger, whose attempt count is not
    /// reloaded).
    pub attempts: u32,
    /// Whether the record was reloaded from a durable ledger instead of
    /// executed by this process.
    pub resumed: bool,
    /// Trial execution latency in microseconds (0 for resumed records
    /// or when observability is disabled).
    pub latency_us: u64,
    /// The trial's extracted feature record (`None` for resumed records
    /// — the run that executed the trial already persisted them).
    pub features: Option<TrialFeatures>,
}

/// A sink folding in-order trial records; implementations compose into
/// one [`TrialPipeline`] (aggregation, ledger persistence, obs events,
/// plot series, ...).
pub trait TrialConsumer: Send {
    /// Fold one record. Records arrive in strict owned-index order.
    /// Return `true` to request the campaign stop early; any consumer
    /// may request a stop and the pipeline stops at the first request.
    fn consume(&mut self, rec: &TrialRecord) -> bool;

    /// Called once when the pipeline is done delivering (drained or
    /// stopped).
    fn finish(&mut self) {}
}

/// Reorders out-of-order completions into owned-index order.
///
/// Constructed with the ascending list of trial indices this process
/// will deliver; [`ReorderBuffer::push`] parks a record until all its
/// predecessors have been popped.
#[derive(Debug)]
pub struct ReorderBuffer {
    /// Delivery order (ascending owned trial indices).
    expected: Vec<usize>,
    /// Position in `expected` of the next record to deliver.
    cursor: usize,
    /// Completed records waiting for their turn, keyed by trial index.
    parked: BTreeMap<usize, TrialRecord>,
}

impl ReorderBuffer {
    /// Buffer delivering `expected` (ascending trial indices) in order.
    pub fn new(expected: Vec<usize>) -> ReorderBuffer {
        debug_assert!(expected.windows(2).all(|w| w[0] < w[1]));
        ReorderBuffer {
            expected,
            cursor: 0,
            parked: BTreeMap::new(),
        }
    }

    /// Accept one completed record (any order).
    pub fn push(&mut self, rec: TrialRecord) {
        let prev = self.parked.insert(rec.index, rec);
        debug_assert!(prev.is_none(), "trial {} pushed twice", rec.index);
    }

    /// The next in-order record, if it has arrived.
    pub fn pop_ready(&mut self) -> Option<TrialRecord> {
        let next = *self.expected.get(self.cursor)?;
        let rec = self.parked.remove(&next)?;
        self.cursor += 1;
        Some(rec)
    }

    /// Records delivered so far.
    pub fn delivered(&self) -> usize {
        self.cursor
    }

    /// Whether every expected record has been delivered.
    pub fn is_drained(&self) -> bool {
        self.cursor == self.expected.len()
    }
}

/// A [`ReorderBuffer`] wired to a set of [`TrialConsumer`]s: `push` a
/// completed trial and every record that became in-order is delivered
/// to all consumers immediately (live streaming, not post-hoc).
pub struct TrialPipeline<'c> {
    buffer: ReorderBuffer,
    consumers: Vec<&'c mut dyn TrialConsumer>,
    stopped: bool,
}

impl<'c> TrialPipeline<'c> {
    /// Pipeline delivering `expected` (ascending trial indices) to
    /// `consumers`.
    pub fn new(
        expected: Vec<usize>,
        consumers: Vec<&'c mut dyn TrialConsumer>,
    ) -> TrialPipeline<'c> {
        TrialPipeline {
            buffer: ReorderBuffer::new(expected),
            consumers,
            stopped: false,
        }
    }

    /// Accept one completed record and deliver everything that became
    /// in-order. After a stop request, records are dropped undelivered
    /// — the delivered prefix is final.
    pub fn push(&mut self, rec: TrialRecord) {
        if self.stopped {
            return;
        }
        self.buffer.push(rec);
        self.drain_ready();
    }

    /// Accept a batch of completed records (any order) and deliver
    /// everything that became in-order, with one drain pass. Delivery
    /// order and stop position are identical to pushing the records one
    /// by one — the reorder buffer releases strictly by owned index
    /// either way — so batching is observationally invisible; it only
    /// amortizes the per-record bookkeeping (and, for callers holding a
    /// lock around the pipeline, the lock traffic).
    pub fn push_batch(&mut self, records: impl IntoIterator<Item = TrialRecord>) {
        if self.stopped {
            return;
        }
        for rec in records {
            self.buffer.push(rec);
        }
        self.drain_ready();
    }

    /// Deliver every parked record that is now in-order, stopping at
    /// the first consumer stop request.
    fn drain_ready(&mut self) {
        while !self.stopped {
            let Some(ready) = self.buffer.pop_ready() else {
                break;
            };
            for consumer in &mut self.consumers {
                if consumer.consume(&ready) {
                    self.stopped = true;
                }
            }
        }
    }

    /// Whether a consumer requested an early stop.
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    /// Records delivered to consumers so far.
    pub fn delivered(&self) -> usize {
        self.buffer.delivered()
    }

    /// Whether every expected record has been delivered.
    pub fn is_drained(&self) -> bool {
        self.buffer.is_drained()
    }

    /// Signal end-of-stream to every consumer.
    pub fn finish(&mut self) {
        for consumer in &mut self.consumers {
            consumer.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(index: usize) -> TrialRecord {
        TrialRecord {
            index,
            outcome: TestOutcome::success(true, 1, 1),
            attempts: 1,
            resumed: false,
            latency_us: 0,
            features: None,
        }
    }

    /// Consumer recording the delivery order it saw.
    #[derive(Default)]
    struct Recorder {
        seen: Vec<usize>,
        stop_at: Option<usize>,
        finished: bool,
    }

    impl TrialConsumer for Recorder {
        fn consume(&mut self, rec: &TrialRecord) -> bool {
            self.seen.push(rec.index);
            self.stop_at == Some(rec.index)
        }
        fn finish(&mut self) {
            self.finished = true;
        }
    }

    #[test]
    fn buffer_reorders_any_completion_order() {
        let mut buf = ReorderBuffer::new(vec![0, 2, 5]);
        buf.push(rec(5));
        assert!(buf.pop_ready().is_none());
        buf.push(rec(0));
        assert_eq!(buf.pop_ready().unwrap().index, 0);
        assert!(buf.pop_ready().is_none(), "2 still missing");
        buf.push(rec(2));
        assert_eq!(buf.pop_ready().unwrap().index, 2);
        assert_eq!(buf.pop_ready().unwrap().index, 5);
        assert!(buf.is_drained());
        assert_eq!(buf.delivered(), 3);
    }

    #[test]
    fn pipeline_delivers_in_order_to_all_consumers() {
        let mut a = Recorder::default();
        let mut b = Recorder::default();
        {
            let mut p = TrialPipeline::new(vec![1, 3, 4], vec![&mut a, &mut b]);
            p.push(rec(4));
            p.push(rec(3));
            assert_eq!(p.delivered(), 0, "1 gates everything");
            p.push(rec(1));
            assert!(p.is_drained());
            p.finish();
        }
        assert_eq!(a.seen, vec![1, 3, 4]);
        assert_eq!(b.seen, vec![1, 3, 4]);
        assert!(a.finished && b.finished);
    }

    #[test]
    fn stop_request_freezes_the_delivered_prefix() {
        let mut a = Recorder {
            stop_at: Some(1),
            ..Recorder::default()
        };
        {
            let mut p = TrialPipeline::new((0..5).collect(), vec![&mut a]);
            // 2 completes first but must not be delivered: the stop at 1
            // is decided before 2's turn.
            p.push(rec(2));
            p.push(rec(0));
            p.push(rec(1));
            assert!(p.stopped());
            assert_eq!(p.delivered(), 2);
            // Late completions after the stop are dropped.
            p.push(rec(3));
            assert_eq!(p.delivered(), 2);
        }
        assert_eq!(a.seen, vec![0, 1]);
    }
}
