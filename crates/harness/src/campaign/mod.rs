//! Fault-injection campaigns: many randomized tests of one deployment.
//!
//! A *deployment* (paper §2) fixes the application, the scale, and the
//! fault pattern; a *campaign* runs up to `tests` randomized
//! fault-injection tests of that deployment and summarizes them as a
//! [`resilim_core::FiResult`] plus a [`resilim_core::PropagationProfile`].
//!
//! Every test is fully determined by `(spec, seed, test_index)`: the
//! random draws (dynamic op index, bit position, operand) happen up front
//! into an [`resilim_inject::InjectionPlan`], so campaigns are
//! reproducible and individual tests can be replayed.
//!
//! The module is a pipeline of layers:
//!
//! * [`spec`] — the vocabulary: [`CampaignSpec`] (what to run, including
//!   the optional adaptive [`resilim_core::StopRule`]) and
//!   [`CampaignResult`].
//! * [`exec`](self) — one trial: plan → run on an
//!   [`resilim_simmpi::ExecBackend`] → classify (private).
//! * [`stream`] — completed trials flow as [`TrialRecord`] events
//!   through a deterministic reorder buffer into composable
//!   [`TrialConsumer`]s.
//! * [`aggregate`] — the built-in consumers: online aggregation with
//!   adaptive stopping, ledger persistence, obs trial events, and
//!   convergence plot series.
//! * [`runner`] — [`CampaignRunner`]: caching, parallelism, durability,
//!   and the wiring of all of the above.

pub mod aggregate;
mod exec;
pub mod runner;
pub mod spec;
pub mod stream;

pub use aggregate::{
    aggregate_outcomes, CampaignAccumulator, ConvergenceSeries, FeatureConsumer, LedgerConsumer,
    ObsTrialConsumer,
};
pub use runner::{auto_worker_count, CampaignRunner, TrialExecutor};
pub use spec::{
    validate_fault_model, CampaignResult, CampaignSpec, ErrorSpec, DEFAULT_TAINT_THRESHOLD,
};
pub use stream::{ReorderBuffer, TrialConsumer, TrialPipeline, TrialRecord};
