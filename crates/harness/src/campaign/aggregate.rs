//! Built-in [`TrialConsumer`]s: online aggregation (with adaptive
//! stopping), ledger persistence, obs trial events, and convergence
//! plot series — plus the batch fold (`aggregate_outcomes`) the merge
//! path and the check oracles re-derive results with.

use super::stream::{TrialConsumer, TrialRecord};
use crate::features::FeatureStore;
use crate::ledger::TrialLedger;
use resilim_core::{FiAccumulator, FiResult, PropagationProfile, StopRule, TrialFeatures};
use resilim_inject::{OutcomeKind, TestOutcome};
use resilim_obs as obs;

/// Aggregate per-test outcomes into the campaign statistics (batch
/// form; delegates to the same [`FiAccumulator`] the streaming path
/// folds with, so the two are identical by construction).
///
/// `by_contam[x-1]` summarizes the tests that contaminated exactly
/// `x ∈ [1, procs]` ranks (counts above `procs` clamp down). Tests with
/// `contaminated_ranks == 0` are returned separately: folding them into
/// the x=1 bucket (as this code once did via `clamp(1, procs)`) skews the
/// conditional success rate the model conditions on, because a test where
/// the fault never materialized is always a masked success.
pub fn aggregate_outcomes(
    procs: usize,
    outcomes: &[TestOutcome],
) -> (FiResult, PropagationProfile, Vec<FiResult>, FiResult) {
    let mut acc = FiAccumulator::new(procs);
    for outcome in outcomes {
        acc.record(outcome);
    }
    acc.into_parts()
}

/// The aggregation consumer: folds every delivered outcome into a
/// [`FiAccumulator`] and, when a [`StopRule`] is set, requests an early
/// stop at the first in-order trial where the rule is satisfied.
pub struct CampaignAccumulator {
    acc: FiAccumulator,
    outcomes: Vec<TestOutcome>,
    /// Feature records of freshly executed trials, in delivery order
    /// (resumed records carry none — theirs are in the feature store).
    features: Vec<TrialFeatures>,
    stop: Option<StopRule>,
    satisfied: bool,
}

impl CampaignAccumulator {
    /// Accumulator for a `procs`-rank deployment; `stop = None` never
    /// requests a stop (fixed-`tests` mode).
    pub fn new(procs: usize, stop: Option<StopRule>) -> CampaignAccumulator {
        CampaignAccumulator {
            acc: FiAccumulator::new(procs),
            outcomes: Vec::new(),
            features: Vec::new(),
            stop,
            satisfied: false,
        }
    }

    /// Whether the stop rule was satisfied.
    pub fn stopped(&self) -> bool {
        self.satisfied
    }

    /// Outcomes delivered so far, in trial-index order.
    pub fn outcomes(&self) -> &[TestOutcome] {
        &self.outcomes
    }

    /// Consume into `(outcomes, features, fi, prop, by_contam,
    /// uncontaminated)`.
    pub fn into_parts(
        self,
    ) -> (
        Vec<TestOutcome>,
        Vec<TrialFeatures>,
        FiResult,
        PropagationProfile,
        Vec<FiResult>,
        FiResult,
    ) {
        let (fi, prop, by_contam, uncontaminated) = self.acc.into_parts();
        (
            self.outcomes,
            self.features,
            fi,
            prop,
            by_contam,
            uncontaminated,
        )
    }
}

impl TrialConsumer for CampaignAccumulator {
    fn consume(&mut self, rec: &TrialRecord) -> bool {
        self.acc.record(&rec.outcome);
        self.outcomes.push(rec.outcome);
        if let Some(features) = rec.features {
            self.features.push(features);
        }
        if let Some(rule) = &self.stop {
            if !self.satisfied && rule.satisfied(self.acc.fi()) {
                self.satisfied = true;
                return true;
            }
        }
        false
    }
}

/// Ledger-persistence consumer: appends every freshly executed record
/// (resumed records are already in the ledger). Appends happen in
/// trial-index order, so a stopped campaign's ledger holds exactly the
/// delivered prefix plus whatever earlier runs recorded.
///
/// With a batch size above 1 ([`LedgerConsumer::with_batch`]) records
/// are buffered and written with one `write`+flush per batch — the
/// amortized form batched admission uses. The buffer is drained on
/// [`TrialConsumer::finish`], so a completed (or stopped) campaign's
/// ledger contents are identical at every batch size; only the
/// crash-durability lag grows (bounded by the batch).
pub struct LedgerConsumer<'a> {
    ledger: Option<&'a TrialLedger>,
    batch: usize,
    buffered: Vec<(usize, TestOutcome, u32)>,
}

impl<'a> LedgerConsumer<'a> {
    /// Consumer appending to `ledger` (no-op when `None`), one write
    /// per record.
    pub fn new(ledger: Option<&'a TrialLedger>) -> LedgerConsumer<'a> {
        LedgerConsumer {
            ledger,
            batch: 1,
            buffered: Vec::new(),
        }
    }

    /// Buffer up to `batch` records per ledger write (1 = unbuffered).
    pub fn with_batch(mut self, batch: usize) -> LedgerConsumer<'a> {
        self.batch = batch.max(1);
        self
    }

    fn flush(&mut self) {
        if let Some(ledger) = self.ledger {
            ledger.append_batch(&self.buffered);
        }
        self.buffered.clear();
    }
}

impl TrialConsumer for LedgerConsumer<'_> {
    fn consume(&mut self, rec: &TrialRecord) -> bool {
        if !rec.resumed && self.ledger.is_some() {
            self.buffered.push((rec.index, rec.outcome, rec.attempts));
            if self.buffered.len() >= self.batch {
                self.flush();
            }
        }
        false
    }

    fn finish(&mut self) {
        self.flush();
        if let Some(ledger) = self.ledger {
            ledger.sync();
        }
    }
}

/// Feature-store consumer: persists every freshly executed record's
/// [`TrialFeatures`] (resumed records carry none — the run that
/// executed them already persisted theirs). Appends happen in
/// trial-index delivery order, so the stored `features.jsonl` contents
/// for a given `(spec, seed)` are byte-identical across worker counts,
/// batch sizes, and one-shot vs daemon execution.
///
/// Batching mirrors [`LedgerConsumer`]: records buffer up to `batch`
/// per write and drain on [`TrialConsumer::finish`], so batch size
/// changes durability lag, never file contents.
pub struct FeatureConsumer<'a> {
    store: Option<&'a FeatureStore>,
    batch: usize,
    buffered: Vec<(usize, TrialFeatures)>,
}

impl<'a> FeatureConsumer<'a> {
    /// Consumer appending to `store` (no-op when `None`), one write per
    /// record.
    pub fn new(store: Option<&'a FeatureStore>) -> FeatureConsumer<'a> {
        FeatureConsumer {
            store,
            batch: 1,
            buffered: Vec::new(),
        }
    }

    /// Buffer up to `batch` records per store write (1 = unbuffered).
    pub fn with_batch(mut self, batch: usize) -> FeatureConsumer<'a> {
        self.batch = batch.max(1);
        self
    }

    fn flush(&mut self) {
        if let Some(store) = self.store {
            store.append_batch(&self.buffered);
        }
        self.buffered.clear();
    }
}

impl TrialConsumer for FeatureConsumer<'_> {
    fn consume(&mut self, rec: &TrialRecord) -> bool {
        if let (Some(features), false, Some(_)) = (rec.features, rec.resumed, self.store) {
            self.buffered.push((rec.index, features));
            if self.buffered.len() >= self.batch {
                self.flush();
            }
        }
        false
    }

    fn finish(&mut self) {
        self.flush();
        if let Some(store) = self.store {
            store.sync();
        }
    }
}

/// Obs consumer: emits one structured `trial` event per freshly
/// executed record, in trial-index order (resumed trials were someone
/// else's events).
pub struct ObsTrialConsumer {
    campaign: u64,
}

impl ObsTrialConsumer {
    /// Consumer emitting under campaign id `campaign`.
    pub fn new(campaign: u64) -> ObsTrialConsumer {
        ObsTrialConsumer { campaign }
    }
}

impl TrialConsumer for ObsTrialConsumer {
    fn consume(&mut self, rec: &TrialRecord) -> bool {
        if !rec.resumed && obs::enabled() {
            obs::emit(&obs::Event::Trial {
                campaign: self.campaign,
                test: rec.index,
                kind: match rec.outcome.kind {
                    OutcomeKind::Success => "success",
                    OutcomeKind::Sdc => "sdc",
                    OutcomeKind::Failure => "failure",
                },
                masked: rec.outcome.masked,
                contaminated: rec.outcome.contaminated_ranks,
                fired: rec.outcome.injections_fired,
                latency_us: rec.latency_us,
            });
        }
        false
    }
}

/// Plot-series consumer: the running Wilson half-width (widest outcome
/// class) after every delivered trial — the convergence curve the
/// adaptive bench and figure tooling plot, built live instead of by
/// re-folding a finished result.
pub struct ConvergenceSeries {
    rule: StopRule,
    acc: FiAccumulator,
    points: Vec<(u64, f64)>,
}

impl ConvergenceSeries {
    /// Series at 95 % confidence for a `procs`-rank deployment.
    pub fn new(procs: usize) -> ConvergenceSeries {
        ConvergenceSeries {
            rule: StopRule::new(0.0),
            acc: FiAccumulator::new(procs),
            points: Vec::new(),
        }
    }

    /// `(trials so far, widest Wilson half-width)` per delivered trial.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }
}

impl TrialConsumer for ConvergenceSeries {
    fn consume(&mut self, rec: &TrialRecord) -> bool {
        self.acc.record(&rec.outcome);
        self.points
            .push((self.acc.total(), self.rule.widest_halfwidth(self.acc.fi())));
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(index: usize, outcome: TestOutcome) -> TrialRecord {
        TrialRecord {
            index,
            outcome,
            attempts: 1,
            resumed: false,
            latency_us: 0,
            features: Some(TrialFeatures::quiet(
                outcome.kind,
                4,
                100,
                [1.0, 0.0, 0.0, 0.0, 0.0],
            )),
        }
    }

    #[test]
    fn accumulator_consumer_matches_batch_aggregate() {
        let outcomes = vec![
            TestOutcome::success(true, 0, 0),
            TestOutcome::success(false, 2, 1),
            TestOutcome::sdc(4, 1),
            TestOutcome::sdc(9, 1),
        ];
        let mut acc = CampaignAccumulator::new(4, None);
        for (i, o) in outcomes.iter().enumerate() {
            assert!(!acc.consume(&rec(i, *o)));
        }
        let (streamed, features, fi, prop, by_contam, uncontaminated) = acc.into_parts();
        let (bfi, bprop, bby, bunc) = aggregate_outcomes(4, &outcomes);
        assert_eq!(streamed, outcomes);
        assert_eq!(features.len(), outcomes.len());
        assert_eq!(fi, bfi);
        assert_eq!(prop.counts, bprop.counts);
        assert_eq!(by_contam, bby);
        assert_eq!(uncontaminated, bunc);
    }

    #[test]
    fn accumulator_requests_stop_when_rule_satisfied() {
        let rule = StopRule::new(0.45).with_min_tests(5);
        let mut acc = CampaignAccumulator::new(1, Some(rule));
        let mut stopped_at = None;
        for i in 0..100 {
            if acc.consume(&rec(i, TestOutcome::success(true, 1, 1))) {
                stopped_at = Some(i);
                break;
            }
        }
        let at = stopped_at.expect("a uniform stream converges");
        assert!(acc.stopped());
        assert!(at >= 4, "min_tests floor ignored (stopped at {at})");
        assert!(at < 99, "rule never satisfied");
        assert_eq!(acc.outcomes().len(), at + 1);
    }

    #[test]
    fn convergence_series_is_monotone_for_uniform_streams() {
        let mut series = ConvergenceSeries::new(1);
        for i in 0..50 {
            series.consume(&rec(i, TestOutcome::success(true, 1, 1)));
        }
        let points = series.points();
        assert_eq!(points.len(), 50);
        assert!(points.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-12));
        assert_eq!(points[49].0, 50);
    }
}
