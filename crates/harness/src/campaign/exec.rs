//! Single-trial execution: draw the injection plan, run the world on an
//! [`ExecBackend`], harvest and classify the outcome.

use super::spec::{CampaignSpec, ErrorSpec};
use crate::golden::GoldenRun;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use resilim_apps::AppOutput;
use resilim_inject::{FailureKind, InjectionPlan, Operand, RankCtx, Region, Target, TestOutcome};
use resilim_simmpi::{ExecBackend, PanicKind, World};
use std::collections::HashMap;

/// Plan and execute a single fault-injection test on `backend`. The
/// second return is whether the wall-clock watchdog tripped *and* the
/// trial failed because of it — a trial that completes despite a late
/// trip is classified normally.
pub(super) fn execute_trial(
    spec: &CampaignSpec,
    golden: &GoldenRun,
    op_cap: u64,
    test: usize,
    backend: &dyn ExecBackend<AppOutput>,
) -> (TestOutcome, bool) {
    let mut rng =
        SmallRng::seed_from_u64(spec.seed ^ resilim_apps::util::splitmix64(test as u64 + 0x1000));
    let plans = plan_test(&mut rng, spec, golden);

    let world = World::new(spec.procs);
    let app = spec.spec.clone();
    let plans_ref = &plans;
    let mk_ctx = move |rank: usize| {
        let plan = plans_ref
            .get(&rank)
            .cloned()
            .unwrap_or_else(InjectionPlan::none);
        Some(
            RankCtx::new(rank, plan)
                .with_op_cap(op_cap)
                .with_taint_threshold(spec.taint_threshold)
                .with_op_mask(spec.op_mask),
        )
    };
    let body = move |comm: &resilim_simmpi::Comm| app.run_rank(comm);
    let (results, tripped) = backend.run(&world, &mk_ctx, &body);

    // Harvest: contamination, fired count, failures, rank-0 output.
    let mut contaminated = 0usize;
    let mut fired = 0usize;
    let mut failure: Option<FailureKind> = None;
    let mut output = None;
    for r in &results {
        let report = r.ctx_report.as_ref().expect("ctx always installed");
        if report.contaminated {
            contaminated += 1;
        }
        fired += report.fired.len();
        match &r.result {
            Ok(out) => {
                if r.rank == 0 {
                    output = Some(out.clone());
                }
            }
            Err(panic) => {
                let kind = match panic.kind {
                    PanicKind::HangGuard | PanicKind::RecvTimeout => FailureKind::Hang,
                    PanicKind::Crash => FailureKind::Crash,
                    // Secondary death: keep looking for the primary
                    // cause; default to crash if none found.
                    PanicKind::FabricDead => FailureKind::Crash,
                };
                failure = Some(match (failure, panic.kind) {
                    // A real crash/hang overrides a secondary failure.
                    (Some(prev), PanicKind::FabricDead) => prev,
                    _ => kind,
                });
            }
        }
    }
    // A watchdog trip only counts when it actually killed the trial:
    // a run that completed before the poison landed has a legitimate
    // outcome and must not be reclassified (or retried).
    let tripped = tripped && failure.is_some();
    // `contaminated` may legitimately be 0: a planned fault whose
    // target op was never reached fires nothing and taints nothing.
    // Such tests are aggregated into `uncontaminated`, not `by_contam`.
    if let Some(kind) = failure {
        return (TestOutcome::failure(kind, contaminated, fired), tripped);
    }
    let output = output.expect("rank 0 finished without failure");
    let outcome = if output.identical(&golden.output) {
        TestOutcome::success(true, contaminated, fired)
    } else if output.passes_checker(&golden.output, spec.spec.app().epsilon()) {
        TestOutcome::success(false, contaminated, fired)
    } else {
        TestOutcome::sdc(contaminated, fired)
    };
    (outcome, false)
}

/// Draw the injection plan(s) for one test: a map rank → plan.
fn plan_test(
    rng: &mut SmallRng,
    spec: &CampaignSpec,
    golden: &GoldenRun,
) -> HashMap<usize, InjectionPlan> {
    let mut plans = HashMap::new();
    match spec.errors {
        ErrorSpec::OneParallel | ErrorSpec::OneParallelMultiBit(_) => {
            // Uniform over every injectable op of the whole execution.
            let total = golden.injectable_total();
            assert!(total > 0, "no injectable ops profiled");
            let mut g = rng.gen_range(0..total);
            let mut chosen = None;
            'outer: for (rank, profile) in golden.profiles.iter().enumerate() {
                for region in Region::ALL {
                    let count = profile.injectable(region);
                    if g < count {
                        chosen = Some((rank, region, g));
                        break 'outer;
                    }
                    g -= count;
                }
            }
            let (rank, region, op_index) = chosen.expect("g < total");
            let targets = draw_targets(rng, spec.errors, region, op_index);
            plans.insert(rank, InjectionPlan::multi(targets));
        }
        ErrorSpec::OneParallelUnique => {
            // Uniform over the parallel-unique ops of the whole execution.
            let total = golden.injectable(Region::ParallelUnique);
            assert!(
                total > 0,
                "OneParallelUnique needs parallel-unique computation"
            );
            let mut g = rng.gen_range(0..total);
            let mut chosen = None;
            for (rank, profile) in golden.profiles.iter().enumerate() {
                let count = profile.injectable(Region::ParallelUnique);
                if g < count {
                    chosen = Some((rank, g));
                    break;
                }
                g -= count;
            }
            let (rank, op_index) = chosen.expect("g < total");
            plans.insert(
                rank,
                InjectionPlan::single(Target {
                    region: Region::ParallelUnique,
                    op_index,
                    bit: rng.gen_range(0..64),
                    operand: draw_operand(rng),
                }),
            );
        }
        ErrorSpec::SerialErrors(x) => {
            let total = golden.profiles[0].injectable(Region::Common);
            assert!(
                (x as u64) <= total,
                "cannot inject {x} distinct errors into {total} ops"
            );
            let mut indices = std::collections::BTreeSet::new();
            while indices.len() < x {
                indices.insert(rng.gen_range(0..total));
            }
            let targets = indices
                .into_iter()
                .map(|op_index| Target {
                    region: Region::Common,
                    op_index,
                    bit: rng.gen_range(0..64),
                    operand: draw_operand(rng),
                })
                .collect();
            plans.insert(0, InjectionPlan::multi(targets));
        }
    }
    plans
}

fn draw_operand(rng: &mut SmallRng) -> Operand {
    if rng.gen_bool(0.5) {
        Operand::A
    } else {
        Operand::B
    }
}

/// Targets for the one-error patterns (single- or multi-bit).
fn draw_targets(
    rng: &mut SmallRng,
    errors: ErrorSpec,
    region: Region,
    op_index: u64,
) -> Vec<Target> {
    let operand = draw_operand(rng);
    let bits: Vec<u8> = match errors {
        ErrorSpec::OneParallelMultiBit(k) => {
            let mut set = std::collections::BTreeSet::new();
            while set.len() < k as usize {
                set.insert(rng.gen_range(0..64u8));
            }
            set.into_iter().collect()
        }
        _ => vec![rng.gen_range(0..64)],
    };
    bits.into_iter()
        .map(|bit| Target {
            region,
            op_index,
            bit,
            operand,
        })
        .collect()
}
