//! Single-trial execution: draw the injection plan, run the world on an
//! [`ExecBackend`], harvest and classify the outcome.

use super::spec::{CampaignSpec, ErrorSpec};
use crate::golden::GoldenRun;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use resilim_apps::AppOutput;
use resilim_core::{TrialFeatures, SPREAD_WINDOWS};
use resilim_inject::{
    FailureKind, FaultPattern, InjectionPlan, Operand, RankCtx, Region, Target, TestOutcome,
};
use resilim_simmpi::{ExecBackend, MsgFault, PanicKind, World};
use std::collections::HashMap;

/// Plan and execute a single fault-injection test on `backend`. The
/// second return is whether the wall-clock watchdog tripped *and* the
/// trial failed because of it — a trial that completes despite a late
/// trip is classified normally. The third is the trial's extracted
/// [`TrialFeatures`], harvested from the same per-rank context reports
/// the classification reads (no extra instrumentation pass).
pub(super) fn execute_trial(
    spec: &CampaignSpec,
    golden: &GoldenRun,
    op_cap: u64,
    test: usize,
    backend: &dyn ExecBackend<AppOutput>,
) -> (TestOutcome, bool, TrialFeatures) {
    let mut rng =
        SmallRng::seed_from_u64(spec.seed ^ resilim_apps::util::splitmix64(test as u64 + 0x1000));
    let (plans, msg_fault) = plan_test(&mut rng, spec, golden);

    // Comm-graph position of the injecting rank: its share of the
    // deployment's golden-run message sends. Every plan shape has at
    // most one injecting rank (op models key a single rank; message
    // models name the corrupted send's source).
    let inject_rank = if plans.len() == 1 {
        plans.keys().next().copied()
    } else {
        msg_fault.as_ref().map(|f| f.src)
    };
    let golden_sends: u64 = golden.profiles.iter().map(|p| p.msgs_sent).sum();
    let inject_rank_msg_share = match inject_rank {
        Some(rank) if golden_sends > 0 => {
            golden.profiles[rank].msgs_sent as f64 / golden_sends as f64
        }
        _ => 0.0,
    };

    let world = World::new(spec.procs).with_msg_fault(msg_fault);
    let app = spec.spec.clone();
    let plans_ref = &plans;
    let kill_on_fire = spec.fault_model.kills_on_fire();
    let mk_ctx = move |rank: usize| {
        let plan = plans_ref
            .get(&rank)
            .cloned()
            .unwrap_or_else(InjectionPlan::none);
        Some(
            RankCtx::new(rank, plan)
                .with_op_cap(op_cap)
                .with_taint_threshold(spec.taint_threshold)
                .with_op_mask(spec.op_mask)
                .with_kill_on_fire(kill_on_fire),
        )
    };
    let body = move |comm: &resilim_simmpi::Comm| app.run_rank(comm);
    let (results, tripped) = backend.run(&world, &mk_ctx, &body);

    // Harvest: contamination, fired count, detection, failures, rank-0
    // output.
    let mut contaminated = 0usize;
    let mut fired = 0usize;
    let mut detected = false;
    let mut failure: Option<FailureKind> = None;
    let mut output = None;
    // Feature accumulators, reduced from the same reports.
    let mut per_kind = [0u64; 5];
    let mut unique_ops = 0u64;
    let mut total_ops = 0u64;
    let mut max_rank_ops = 0u64;
    let mut taint_crossings = 0u64;
    // First-contamination op indices, plus the earliest-contaminated
    // rank's message counters at that moment (rank order breaks ties,
    // deterministically, because `results` is rank-ordered).
    let mut contam_ops: Vec<u64> = Vec::new();
    let mut earliest: Option<(u64, u64, u64)> = None;
    for r in &results {
        let report = r.ctx_report.as_ref().expect("ctx always installed");
        if report.contaminated {
            contaminated += 1;
        }
        let rank_ops = report.profile.total();
        total_ops += rank_ops;
        max_rank_ops = max_rank_ops.max(rank_ops);
        unique_ops += report.profile.region(Region::ParallelUnique).total();
        for region in &report.profile.regions {
            for (acc, n) in per_kind.iter_mut().zip(region.per_kind.iter()) {
                *acc += n;
            }
        }
        taint_crossings += report.tainted_msgs_recvd;
        if let Some(op) = report.first_contam_op {
            contam_ops.push(op);
            if earliest.is_none_or(|(e, _, _)| op < e) {
                earliest = Some((op, report.msgs_sent_at_contam, report.msgs_recvd_at_contam));
            }
        }
        // A wire corruption is a fired injection too: the fault reached
        // a live message even though no op-level target existed.
        fired += report.fired.len() + report.wire_fired as usize;
        detected |= report.detected;
        match &r.result {
            Ok(out) => {
                if r.rank == 0 {
                    output = Some(out.clone());
                }
            }
            Err(panic) => {
                let kind = match panic.kind {
                    PanicKind::HangGuard | PanicKind::RecvTimeout => FailureKind::Hang,
                    PanicKind::Crash => FailureKind::Crash,
                    PanicKind::Due => FailureKind::Due,
                    // Secondary death: keep looking for the primary
                    // cause; default to crash if none found.
                    PanicKind::FabricDead => FailureKind::Crash,
                };
                failure = Some(match (failure, panic.kind) {
                    // A DUE kill is the primary cause by construction
                    // (the one injected fault halted that rank; every
                    // other death is fallout), so it is never displaced.
                    (Some(FailureKind::Due), _) => FailureKind::Due,
                    // A real crash/hang overrides a secondary failure.
                    (Some(prev), PanicKind::FabricDead) => prev,
                    _ => kind,
                });
            }
        }
    }
    // A DUE kill *is* a detection event even if the killed rank's report
    // was the only witness.
    let detected = detected || failure == Some(FailureKind::Due);
    // A watchdog trip only counts when it actually killed the trial:
    // a run that completed before the poison landed has a legitimate
    // outcome and must not be reclassified (or retried).
    let tripped = tripped && failure.is_some();

    // Reduce the accumulators into the feature record. The label and
    // detection flag are stamped below once the outcome is classified.
    let mut spread_window = [0u32; SPREAD_WINDOWS];
    for &op in &contam_ops {
        let w = ((op as u128 * SPREAD_WINDOWS as u128) / max_rank_ops.max(1) as u128) as usize;
        spread_window[w.min(SPREAD_WINDOWS - 1)] += 1;
    }
    let spread_rate = match (contam_ops.iter().min(), contam_ops.iter().max()) {
        (Some(&lo), Some(&hi)) if contam_ops.len() >= 2 && hi > lo => {
            (contam_ops.len() - 1) as f64 / (hi - lo) as f64
        }
        _ => 0.0,
    };
    let (first_contam_op, msgs_sent_before, msgs_recvd_before) = match earliest {
        Some((op, sent, recvd)) => (op as i64, sent, recvd),
        None => (-1, 0, 0),
    };
    let mut features = TrialFeatures {
        label: 0,
        detected,
        procs: spec.procs as u32,
        contaminated_ranks: contaminated as u32,
        total_ops,
        op_mix: per_kind.map(|n| {
            if total_ops > 0 {
                n as f64 / total_ops as f64
            } else {
                0.0
            }
        }),
        unique_frac: if total_ops > 0 {
            unique_ops as f64 / total_ops as f64
        } else {
            0.0
        },
        first_contam_op,
        spread_window,
        spread_rate,
        inject_rank_msg_share,
        msgs_sent_before_contam: msgs_sent_before,
        msgs_recvd_before_contam: msgs_recvd_before,
        taint_crossings,
    };

    // `contaminated` may legitimately be 0: a planned fault whose
    // target op was never reached fires nothing and taints nothing.
    // Such tests are aggregated into `uncontaminated`, not `by_contam`.
    if let Some(kind) = failure {
        let outcome = TestOutcome::failure(kind, contaminated, fired).with_detected(detected);
        features.label = outcome.kind.index() as u8;
        return (outcome, tripped, features);
    }
    let output = output.expect("rank 0 finished without failure");
    let outcome = if output.identical(&golden.output) {
        TestOutcome::success(true, contaminated, fired)
    } else if output.passes_checker(&golden.output, spec.spec.app().epsilon()) {
        TestOutcome::success(false, contaminated, fired)
    } else {
        TestOutcome::sdc(contaminated, fired)
    };
    let outcome = outcome.with_detected(detected);
    features.label = outcome.kind.index() as u8;
    (outcome, false, features)
}

/// Draw the injection plan(s) for one test: a map rank → plan, plus the
/// armed wire fault for message-targeting models (`None` otherwise).
fn plan_test(
    rng: &mut SmallRng,
    spec: &CampaignSpec,
    golden: &GoldenRun,
) -> (HashMap<usize, InjectionPlan>, Option<MsgFault>) {
    let mut plans = HashMap::new();
    // Message-targeting models corrupt a payload on the wire instead of
    // an FP operand: the site is a message, drawn uniformly over every
    // numeric send of the golden execution, and no op plan exists.
    if spec.fault_model.targets_messages() {
        let total: u64 = golden.profiles.iter().map(|p| p.msgs_sent).sum();
        assert!(
            total > 0,
            "--fault-model msg needs a communicating deployment (no sends profiled)"
        );
        let mut g = rng.gen_range(0..total);
        let mut src = 0;
        for (rank, profile) in golden.profiles.iter().enumerate() {
            if g < profile.msgs_sent {
                src = rank;
                break;
            }
            g -= profile.msgs_sent;
        }
        let fault = MsgFault {
            src,
            msg_index: g,
            elem_sel: rng.next_u64(),
            bit: rng.gen_range(0..64),
        };
        return (plans, Some(fault));
    }
    match spec.errors {
        ErrorSpec::OneParallel | ErrorSpec::OneParallelMultiBit(_) => {
            // Uniform over every injectable op of the whole execution.
            let total = golden.injectable_total();
            assert!(total > 0, "no injectable ops profiled");
            let mut g = rng.gen_range(0..total);
            let mut chosen = None;
            'outer: for (rank, profile) in golden.profiles.iter().enumerate() {
                for region in Region::ALL {
                    let count = profile.injectable(region);
                    if g < count {
                        chosen = Some((rank, region, g));
                        break 'outer;
                    }
                    g -= count;
                }
            }
            let (rank, region, op_index) = chosen.expect("g < total");
            // The fault model decides what the fault *is* at the drawn
            // site. The default model's draws are proven bit-identical
            // to the pre-trait code, so historical campaigns reproduce.
            let pattern = match spec.errors {
                ErrorSpec::OneParallelMultiBit(k) => FaultPattern::MultiBit(k),
                _ => FaultPattern::SingleBit,
            };
            let targets = spec
                .fault_model
                .model()
                .op_targets(rng, pattern, region, op_index);
            plans.insert(rank, InjectionPlan::multi(targets));
        }
        ErrorSpec::OneParallelUnique => {
            // This arm's draw order predates the fault-model trait (bit
            // before operand) and is frozen for reproducibility; models
            // with their own bit geometry are restricted to `par` by
            // CLI validation, and DUE's draws equal the baseline's.
            assert!(
                !matches!(spec.fault_model, resilim_inject::FaultModelSpec::Burst(_)),
                "--fault-model burst is only defined for --errors par"
            );
            // Uniform over the parallel-unique ops of the whole execution.
            let total = golden.injectable(Region::ParallelUnique);
            assert!(
                total > 0,
                "OneParallelUnique needs parallel-unique computation"
            );
            let mut g = rng.gen_range(0..total);
            let mut chosen = None;
            for (rank, profile) in golden.profiles.iter().enumerate() {
                let count = profile.injectable(Region::ParallelUnique);
                if g < count {
                    chosen = Some((rank, g));
                    break;
                }
                g -= count;
            }
            let (rank, op_index) = chosen.expect("g < total");
            plans.insert(
                rank,
                InjectionPlan::single(Target {
                    region: Region::ParallelUnique,
                    op_index,
                    bit: rng.gen_range(0..64),
                    operand: draw_operand(rng),
                }),
            );
        }
        ErrorSpec::SerialErrors(x) => {
            assert!(
                !matches!(spec.fault_model, resilim_inject::FaultModelSpec::Burst(_)),
                "--fault-model burst is only defined for --errors par"
            );
            let total = golden.profiles[0].injectable(Region::Common);
            assert!(
                (x as u64) <= total,
                "cannot inject {x} distinct errors into {total} ops"
            );
            let mut indices = std::collections::BTreeSet::new();
            while indices.len() < x {
                indices.insert(rng.gen_range(0..total));
            }
            let targets = indices
                .into_iter()
                .map(|op_index| Target {
                    region: Region::Common,
                    op_index,
                    bit: rng.gen_range(0..64),
                    operand: draw_operand(rng),
                })
                .collect();
            plans.insert(0, InjectionPlan::multi(targets));
        }
    }
    (plans, None)
}

fn draw_operand(rng: &mut SmallRng) -> Operand {
    if rng.gen_bool(0.5) {
        Operand::A
    } else {
        Operand::B
    }
}
