//! The campaign runner: caching, parallel trial execution, durability
//! (ledger/resume/shard/watchdog), and the streaming pipeline that
//! turns completed trials into a [`CampaignResult`].

use super::aggregate::{
    aggregate_outcomes, CampaignAccumulator, FeatureConsumer, LedgerConsumer, ObsTrialConsumer,
};
use super::exec;
use super::spec::{CampaignResult, CampaignSpec, ErrorSpec};
use super::stream::{TrialConsumer, TrialPipeline, TrialRecord};
use crate::features::FeatureStore;
use crate::golden::{Flights, GoldenRun, GoldenStore};
use crate::ledger::{RetryPolicy, Shard, TrialLedger};
use parking_lot::Mutex;
use resilim_apps::AppOutput;
use resilim_inject::{FailureKind, TestOutcome};
use resilim_obs as obs;
use resilim_simmpi::{ExecBackend, PooledBackend, ReplicatedBackend, SpawnedBackend};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many fault-injection tests a runner executes concurrently.
#[derive(Debug, Clone, Copy)]
enum Parallelism {
    /// Exactly `k` worker threads (1 = sequential).
    Fixed(usize),
    /// [`auto_worker_count`] of the host's cores, resolved per campaign
    /// (a p=64 deployment needs fewer test workers than p=1).
    Auto,
}

/// The worker count `--jobs auto` resolves to on a host with `cores`
/// logical CPUs for a `procs`-rank deployment.
///
/// Each worker runs a whole world of `procs` rank threads, so the
/// useful fan-out is `cores / procs` — and when the host cannot fit
/// even one extra world (`cores <= procs`, e.g. the 1-core CI runner
/// driving a p=4 campaign) the answer is exactly 1 worker: the runner
/// must take its sequential path, paying no claim-counter or
/// pipeline-lock overhead for parallelism the host cannot deliver
/// (the `--jobs auto` pessimization recorded in BENCH_campaign.json).
pub fn auto_worker_count(cores: usize, procs: usize) -> usize {
    let procs = procs.max(1);
    if cores <= procs {
        1
    } else {
        cores / procs
    }
}

/// Runs campaigns, caching both golden runs and whole campaign results
/// (experiment pipelines share many deployments — e.g. every Figure 8
/// sweep reuses the serial sample campaigns it has in common).
pub struct CampaignRunner {
    golden: GoldenStore,
    cache: Mutex<HashMap<String, Arc<CampaignResult>>>,
    /// In-flight campaigns, single-flight per key (see
    /// [`GoldenStore::get_masked`] for the pattern).
    flights: Flights<String, CampaignResult>,
    parallelism: Parallelism,
    /// Durable per-trial ledger directory (`--store DIR/ledger`).
    ledger_dir: Option<PathBuf>,
    /// Durable per-trial feature-store directory
    /// (`--store DIR/features`).
    feature_dir: Option<PathBuf>,
    /// Skip trials already present in the ledger (`--resume`).
    resume: bool,
    /// Deterministic trial partition this runner executes (`--shard`).
    shard: Option<Shard>,
    /// Wall-clock watchdog per trial; `None` disables the watchdog.
    trial_deadline: Option<Duration>,
    /// Retry budget/backoff for watchdog-tripped trials.
    retry: RetryPolicy,
    /// Spawn fresh rank threads per trial instead of using the global
    /// [`resilim_simmpi::WorldPool`] (differential backend for
    /// `resilim check`'s replay-identity oracle).
    spawn_per_trial: bool,
    /// Trials admitted/committed per pipeline transaction (`--batch`).
    trial_batch: usize,
}

impl Default for CampaignRunner {
    fn default() -> Self {
        CampaignRunner::new()
    }
}

impl CampaignRunner {
    /// Fresh runner with empty caches, running tests sequentially.
    pub fn new() -> CampaignRunner {
        CampaignRunner {
            golden: GoldenStore::new(),
            cache: Mutex::new(HashMap::new()),
            flights: Mutex::new(HashMap::new()),
            parallelism: Parallelism::Fixed(1),
            ledger_dir: None,
            feature_dir: None,
            resume: false,
            shard: None,
            trial_deadline: None,
            retry: RetryPolicy::default(),
            spawn_per_trial: false,
            trial_batch: 1,
        }
    }

    /// Run up to `k` fault-injection tests concurrently (each test already
    /// runs `procs` rank threads, so a sensible `k` is
    /// `cores / procs`, floored at 1). Results are bitwise identical to a
    /// sequential run: every test's randomness is derived from its index.
    pub fn with_test_parallelism(mut self, k: usize) -> CampaignRunner {
        self.parallelism = Parallelism::Fixed(k.max(1));
        self
    }

    /// Scale test parallelism to the host automatically:
    /// `available_parallelism() / procs`, floored at 1, per campaign.
    /// Same bitwise-determinism guarantee as
    /// [`CampaignRunner::with_test_parallelism`].
    pub fn with_auto_parallelism(mut self) -> CampaignRunner {
        self.parallelism = Parallelism::Auto;
        self
    }

    /// Persist golden runs under `dir` so later processes skip
    /// re-profiling (the CLI wires `--store DIR` to `DIR/golden`).
    pub fn with_golden_dir(mut self, dir: impl Into<std::path::PathBuf>) -> CampaignRunner {
        self.golden = std::mem::take(&mut self.golden).with_disk_dir(dir);
        self
    }

    /// Record every completed trial durably under `dir` (the CLI wires
    /// `--store DIR` to `DIR/ledger`). See [`crate::ledger`].
    pub fn with_ledger_dir(mut self, dir: impl Into<PathBuf>) -> CampaignRunner {
        self.ledger_dir = Some(dir.into());
        self
    }

    /// Persist every freshly executed trial's [`TrialFeatures`] under
    /// `dir` (the CLI wires `--store DIR` to `DIR/features`) — the
    /// learned predictors' training data, keyed exactly like the
    /// ledger. See [`crate::features`].
    pub fn with_feature_dir(mut self, dir: impl Into<PathBuf>) -> CampaignRunner {
        self.feature_dir = Some(dir.into());
        self
    }

    /// Reload already-ledgered trials instead of re-running them.
    /// Results are bitwise identical to an uninterrupted run.
    pub fn with_resume(mut self, resume: bool) -> CampaignRunner {
        self.resume = resume;
        self
    }

    /// Run only the trials `shard` owns (`trial % N == i`). Shard
    /// results are *partial*: they cover the owned trials only and are
    /// never published in the whole-campaign cache; merge the shards'
    /// ledgers with [`CampaignRunner::merged_from_ledger`].
    pub fn with_shard(mut self, shard: Shard) -> CampaignRunner {
        self.shard = Some(shard);
        self
    }

    /// The shard this runner executes, when one is configured.
    pub fn shard(&self) -> Option<Shard> {
        self.shard
    }

    /// Arm the per-trial wall-clock watchdog: a trial still running
    /// after `deadline` has its fabric poisoned and is retried under
    /// the runner's [`RetryPolicy`]. Pick a deadline generously above
    /// the slowest legitimate trial — a trip on a healthy trial would
    /// (after retries) record a `Hang` a fresh run would not.
    pub fn with_trial_deadline(mut self, deadline: Duration) -> CampaignRunner {
        self.trial_deadline = Some(deadline);
        self
    }

    /// Replace the watchdog retry policy (budget + backoff).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> CampaignRunner {
        self.retry = retry;
        self
    }

    /// Execute each trial on freshly spawned rank threads
    /// ([`resilim_simmpi::SpawnedBackend`]) instead of the
    /// process-global pool ([`resilim_simmpi::PooledBackend`]).
    /// Semantically identical — both backends share the same per-rank
    /// execution path — and therefore bitwise identical in outcome,
    /// which is exactly what `resilim check`'s replay-identity oracle
    /// asserts. Incompatible with the trial watchdog (the spawned
    /// backend has no deadline plumbing); enabling both panics at
    /// campaign time.
    pub fn with_spawn_per_trial(mut self) -> CampaignRunner {
        self.spawn_per_trial = true;
        self
    }

    /// Admit and commit trials in batches of `batch` (default 1):
    /// workers claim `batch` contiguous pending positions per shared
    /// counter bump and push all their completions under one pipeline
    /// lock, and the ledger consumer buffers `batch` records per
    /// write+flush. Aggregates are bitwise identical at every batch
    /// size — the reorder buffer still delivers strictly in owned-index
    /// order and an adaptive stop still freezes the same prefix (a
    /// batch only means up to `batch - 1` extra trials may *execute*
    /// past the stop before it is noticed; their records are dropped
    /// undelivered, exactly like late completions under parallelism).
    pub fn with_trial_batch(mut self, batch: usize) -> CampaignRunner {
        self.trial_batch = batch.max(1);
        self
    }

    /// The configured admission batch size.
    pub fn trial_batch(&self) -> usize {
        self.trial_batch
    }

    /// The worker count a campaign at `procs` ranks would use.
    pub fn effective_parallelism(&self, procs: usize) -> usize {
        match self.parallelism {
            Parallelism::Fixed(k) => k,
            Parallelism::Auto => {
                let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
                auto_worker_count(cores, procs)
            }
        }
    }

    /// The golden-run store.
    pub fn golden(&self) -> &GoldenStore {
        &self.golden
    }

    /// The [`ExecBackend`] this runner's configuration selects, wrapped
    /// with TeaMPI-style replica payload comparison when the spec asks
    /// for it (`--replicate`).
    fn exec_backend(&self, replicate: bool) -> Box<dyn ExecBackend<AppOutput>> {
        let base: Box<dyn ExecBackend<AppOutput>> = if self.spawn_per_trial {
            assert!(
                self.trial_deadline.is_none(),
                "spawn-per-trial backend has no watchdog plumbing"
            );
            Box::new(SpawnedBackend)
        } else {
            Box::new(PooledBackend::with_deadline(self.trial_deadline))
        };
        if replicate {
            Box::new(ReplicatedBackend::new(base))
        } else {
            base
        }
    }

    /// Run (or fetch from cache) a campaign. Concurrent callers with the
    /// same spec are deduplicated: one runs the campaign, the rest wait
    /// for its result (fig8/table2 fan-out shares serial sub-campaigns).
    pub fn run(&self, spec: &CampaignSpec) -> Arc<CampaignResult> {
        if self.shard.is_some() {
            // A shard's result covers only its owned trials; publishing
            // it under the whole-campaign key would poison the cache.
            note_campaign_lookup(false);
            return Arc::new(self.run_uncached(spec));
        }
        let key = spec.cache_key();
        if let Some(hit) = self.cache.lock().get(&key) {
            note_campaign_lookup(true);
            return Arc::clone(hit);
        }
        let flight = Arc::clone(self.flights.lock().entry(key.clone()).or_default());
        let mut slot = flight.lock();
        if let Some(result) = slot.as_ref() {
            note_campaign_lookup(true);
            return Arc::clone(result);
        }
        if let Some(hit) = self.cache.lock().get(&key) {
            // Published between our cache miss and flight acquisition.
            note_campaign_lookup(true);
            return Arc::clone(hit);
        }
        note_campaign_lookup(false);
        let result = Arc::new(self.run_uncached(spec));
        self.cache.lock().insert(key.clone(), Arc::clone(&result));
        *slot = Some(Arc::clone(&result));
        drop(slot);
        self.flights.lock().remove(&key);
        result
    }

    /// Run a campaign without touching the campaign cache (golden runs are
    /// still cached). Used by benches that time campaign execution.
    ///
    /// Completed trials flow as [`TrialRecord`] events through a
    /// [`TrialPipeline`]: a reorder buffer delivers them in trial-index
    /// order to the aggregation, ledger, and obs consumers, so every
    /// statistic is a pure fold of the in-order stream regardless of
    /// worker count — and an adaptive [`CampaignSpec::stop`] rule stops
    /// the campaign at a deterministic trial.
    pub fn run_uncached(&self, spec: &CampaignSpec) -> CampaignResult {
        if let ErrorSpec::SerialErrors(_) = spec.errors {
            assert_eq!(spec.procs, 1, "SerialErrors campaigns run serially");
        }
        let metrics_before = obs::MetricsSnapshot::capture();
        let campaign_id = obs::next_campaign_id();
        if obs::enabled() {
            obs::emit(&obs::Event::CampaignStart {
                campaign: campaign_id,
                app: spec.spec.app().name().to_string(),
                procs: spec.procs,
                tests: spec.tests,
                errors: format!("{:?}", spec.errors),
            });
        }
        let executor = TrialExecutor {
            spec: spec.clone(),
            golden: self.golden.get_masked(&spec.spec, spec.procs, spec.op_mask),
            backend: self.exec_backend(spec.replicate),
            retry: self.retry,
            campaign_id,
        };
        let golden = Arc::clone(&executor.golden);

        let start = Instant::now();
        // The trials this process executes: the shard's slice of the
        // index space (everything without a shard), minus whatever the
        // ledger already holds when resuming. Records are keyed by
        // trial index and delivered in owned order, so any
        // partition/skip/completion-order combination aggregates
        // bitwise identically.
        let owned: Vec<usize> = (0..spec.tests)
            .filter(|&t| self.shard.is_none_or(|s| s.owns(t)))
            .collect();
        if self.shard.is_some() {
            obs::count(
                obs::Counter::ShardTrialsSkipped,
                (spec.tests - owned.len()) as u64,
            );
        }
        let ledger_key = spec.ledger_key();
        let ledger = self
            .ledger_dir
            .as_ref()
            .and_then(|dir| TrialLedger::open(dir, &ledger_key, spec.seed).ok());
        let feature_store = self
            .feature_dir
            .as_ref()
            .and_then(|dir| FeatureStore::open(dir, &ledger_key, spec.seed).ok());
        let mut resumed: HashMap<usize, TestOutcome> = match (&self.ledger_dir, self.resume) {
            (Some(dir), true) => TrialLedger::load(dir, &ledger_key, spec.seed),
            _ => HashMap::new(),
        };
        resumed.retain(|&t, _| t < spec.tests);
        // Resumed trials' features were persisted by the run that
        // executed them: reload them so the in-memory result still
        // carries a full training set, without re-appending them (the
        // feature consumer skips resumed records).
        let resumed_features = match (&self.feature_dir, self.resume) {
            (Some(dir), true) => FeatureStore::load(dir, &ledger_key, spec.seed),
            _ => HashMap::new(),
        };
        let pending: Vec<usize> = owned
            .iter()
            .copied()
            .filter(|t| !resumed.contains_key(t))
            .collect();
        obs::count(
            obs::Counter::TrialsResumed,
            (owned.len() - pending.len()) as u64,
        );

        let mut aggregator = CampaignAccumulator::new(spec.procs, spec.stop);
        let mut ledger_sink = LedgerConsumer::new(ledger.as_ref()).with_batch(self.trial_batch);
        let mut feature_sink =
            FeatureConsumer::new(feature_store.as_ref()).with_batch(self.trial_batch);
        let mut obs_sink = ObsTrialConsumer::new(campaign_id);
        let (stopped_early, delivered) = {
            let consumers: Vec<&mut dyn TrialConsumer> = vec![
                &mut aggregator,
                &mut ledger_sink,
                &mut feature_sink,
                &mut obs_sink,
            ];
            let mut pipeline = TrialPipeline::new(owned.clone(), consumers);
            // Seed resumed records first: they may satisfy the stop rule
            // before any fresh trial runs.
            for &t in &owned {
                if let Some(outcome) = resumed.get(&t) {
                    pipeline.push(TrialRecord {
                        index: t,
                        outcome: *outcome,
                        attempts: 0,
                        resumed: true,
                        latency_us: 0,
                        features: resumed_features.get(&t).copied(),
                    });
                }
            }

            let workers = self
                .effective_parallelism(spec.procs)
                .min(pending.len().max(1));
            // Worker-region timer: spans exactly the trial-execution
            // region (not golden profiling, not aggregation), so
            // `WorkerBusyNanos / WorkerWallNanos` is a true utilization.
            let worker_region = Instant::now();
            let batch = self.trial_batch;
            let pipeline = Mutex::new(pipeline);
            if workers <= 1 {
                let mut pos = 0;
                while pos < pending.len() {
                    if pipeline.lock().stopped() {
                        break;
                    }
                    let chunk = &pending[pos..(pos + batch).min(pending.len())];
                    pos += chunk.len();
                    let mut recs = Vec::with_capacity(chunk.len());
                    for &test in chunk {
                        let busy = obs::timer();
                        recs.push(executor.run_trial(test));
                        note_worker_busy(busy);
                    }
                    pipeline.lock().push_batch(recs);
                }
            } else {
                // Workers pull contiguous chunks of `batch` pending
                // positions from a shared counter and push their
                // completions into the pipeline under one lock, which
                // reorders them; a stop request stops workers from
                // claiming more.
                let next = AtomicUsize::new(0);
                let stop_flag = AtomicBool::new(pipeline.lock().stopped());
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        scope.spawn(|| loop {
                            if stop_flag.load(Ordering::Relaxed) {
                                break;
                            }
                            let pos = next.fetch_add(batch, Ordering::Relaxed);
                            if pos >= pending.len() {
                                break;
                            }
                            let chunk = &pending[pos..(pos + batch).min(pending.len())];
                            let mut recs = Vec::with_capacity(chunk.len());
                            for &test in chunk {
                                let busy = obs::timer();
                                recs.push(executor.run_trial(test));
                                note_worker_busy(busy);
                            }
                            let mut p = pipeline.lock();
                            p.push_batch(recs);
                            if p.stopped() {
                                stop_flag.store(true, Ordering::Relaxed);
                            }
                        });
                    }
                });
            }
            if obs::enabled() {
                obs::count(
                    obs::Counter::WorkerWallNanos,
                    (worker_region.elapsed().as_nanos().min(u64::MAX as u128) as u64)
                        .saturating_mul(workers as u64),
                );
            }
            let mut pipeline = pipeline.into_inner();
            pipeline.finish();
            assert!(
                pipeline.stopped() || pipeline.is_drained(),
                "every owned trial resumed or ran"
            );
            (pipeline.stopped(), pipeline.delivered())
        };
        if stopped_early {
            obs::count(obs::Counter::CampaignsStoppedEarly, 1);
            obs::count(
                obs::Counter::TrialsSavedByStopping,
                (owned.len() - delivered) as u64,
            );
            if obs::enabled() {
                obs::emit(&obs::Event::CampaignEarlyStop {
                    campaign: campaign_id,
                    at_trial: delivered,
                    planned: spec.tests,
                });
            }
        }
        let wall = start.elapsed();

        if obs::enabled() {
            obs::emit(&obs::Event::CampaignEnd {
                campaign: campaign_id,
                wall_us: obs::as_micros(wall),
                trials: delivered,
            });
        }
        let (outcomes, features, fi, prop, by_contam, uncontaminated) = aggregator.into_parts();
        CampaignResult {
            procs: spec.procs,
            fi,
            prop,
            by_contam,
            uncontaminated,
            outcomes,
            features,
            stopped_early,
            wall,
            golden,
            metrics: obs::MetricsSnapshot::capture().delta(&metrics_before),
        }
    }

    /// Package this runner's execution configuration for one campaign
    /// as a standalone [`TrialExecutor`]: the golden run is profiled
    /// (or fetched) up front, then any thread may call
    /// [`TrialExecutor::run_trial`] for any trial index — the seam a
    /// multi-campaign scheduler (`resilim serve`) interleaves trials
    /// of many campaigns through, sharing this runner's golden store
    /// and the process-global world pool.
    pub fn trial_executor(&self, spec: &CampaignSpec) -> TrialExecutor {
        TrialExecutor {
            spec: spec.clone(),
            golden: self.golden.get_masked(&spec.spec, spec.procs, spec.op_mask),
            backend: self.exec_backend(spec.replicate),
            retry: self.retry,
            campaign_id: obs::next_campaign_id(),
        }
    }

    /// Assemble a whole-campaign [`CampaignResult`] purely from the
    /// ledger — the `resilim merge` path after N shards each ran their
    /// partition into a shared (or artifact-collected) ledger directory.
    ///
    /// Fails if any trial index in `0..spec.tests` is missing; the
    /// aggregation over the recorded outcomes is the same fold the live
    /// path streams through, so a merged result is bitwise identical to
    /// a single-process run of the same deployment.
    pub fn merged_from_ledger(&self, spec: &CampaignSpec) -> Result<CampaignResult, String> {
        let dir = self
            .ledger_dir
            .as_ref()
            .ok_or("merge needs a ledger directory (--store DIR)")?;
        let metrics_before = obs::MetricsSnapshot::capture();
        let start = Instant::now();
        let mut records = TrialLedger::load_strict(dir, &spec.ledger_key(), spec.seed)?;
        records.retain(|&t, _| t < spec.tests);
        let missing: Vec<usize> = (0..spec.tests)
            .filter(|t| !records.contains_key(t))
            .collect();
        if !missing.is_empty() {
            return Err(format!(
                "ledger incomplete: {}/{} trials missing (e.g. trial {})",
                missing.len(),
                spec.tests,
                missing[0]
            ));
        }
        let golden = self.golden.get_masked(&spec.spec, spec.procs, spec.op_mask);
        let outcomes: Vec<TestOutcome> = (0..spec.tests).map(|t| records[&t]).collect();
        // Feature shards merge alongside the ledger (lenient loader:
        // trials whose features were lost to corruption are simply
        // absent from the merged training set — unlike outcomes, the
        // aggregate statistics do not depend on them).
        let features = match &self.feature_dir {
            Some(dir) => {
                let stored = FeatureStore::load(dir, &spec.ledger_key(), spec.seed);
                (0..spec.tests)
                    .filter_map(|t| stored.get(&t).copied())
                    .collect()
            }
            None => Vec::new(),
        };
        let (fi, prop, by_contam, uncontaminated) = aggregate_outcomes(spec.procs, &outcomes);
        Ok(CampaignResult {
            procs: spec.procs,
            fi,
            prop,
            by_contam,
            uncontaminated,
            outcomes,
            features,
            stopped_early: false,
            wall: start.elapsed(),
            golden,
            metrics: obs::MetricsSnapshot::capture().delta(&metrics_before),
        })
    }
}

/// Everything needed to execute any single trial of one campaign, on
/// any thread: the spec, the profiled golden run, the configured
/// [`ExecBackend`], and the watchdog retry policy.
///
/// [`CampaignRunner::run_uncached`] builds one per campaign and its
/// workers share it; [`CampaignRunner::trial_executor`] hands the same
/// object to external schedulers (the `resilim serve` daemon) so
/// multi-campaign execution reuses the exact per-trial path — bitwise
/// identity with the one-shot runner is by construction, not by test.
pub struct TrialExecutor {
    spec: CampaignSpec,
    golden: Arc<GoldenRun>,
    backend: Box<dyn ExecBackend<AppOutput>>,
    retry: RetryPolicy,
    campaign_id: u64,
}

impl TrialExecutor {
    /// The campaign this executor runs trials of.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// The golden run trials classify against.
    pub fn golden(&self) -> &Arc<GoldenRun> {
        &self.golden
    }

    /// The process-unique campaign id trial events are tagged with.
    pub fn campaign_id(&self) -> u64 {
        self.campaign_id
    }

    /// Run one test durably: the trial span (latency histogram, trial
    /// counter) and the watchdog retry loop, packaged as the
    /// [`TrialRecord`] event the pipeline consumes (the ledger append
    /// and the structured trial event happen in the in-order consumers).
    ///
    /// Only *watchdog* trips are retried: a deterministic in-simulation
    /// crash or hang is the trial's real outcome and would reproduce
    /// identically, so it is recorded first try. A trial that keeps
    /// tripping the deadline after the retry budget is recorded as a
    /// [`FailureKind::Hang`] rather than wedging the campaign.
    pub fn run_trial(&self, test: usize) -> TrialRecord {
        let t = obs::timer();
        let mut attempt: u32 = 0;
        let (outcome, features) = loop {
            let (outcome, tripped, features) = exec::execute_trial(
                &self.spec,
                &self.golden,
                self.golden.op_cap(),
                test,
                self.backend.as_ref(),
            );
            if !tripped {
                break (outcome, features);
            }
            obs::count(obs::Counter::TrialDeadlineTrips, 1);
            if attempt < self.retry.max_retries {
                attempt += 1;
                obs::count(obs::Counter::TrialRetries, 1);
                obs::emit(&obs::Event::TrialRetry {
                    campaign: self.campaign_id,
                    test,
                    attempt,
                });
                std::thread::sleep(self.retry.backoff(attempt - 1));
                continue;
            }
            // Retry budget exhausted: record the wedge as a hang so the
            // campaign terminates with a classified outcome (keeping any
            // detection the doomed run still managed to report). The
            // feature label follows the reclassification.
            let outcome = TestOutcome::failure(
                FailureKind::Hang,
                outcome.contaminated_ranks,
                outcome.injections_fired,
            )
            .with_detected(outcome.detected);
            let mut features = features;
            features.label = outcome.kind.index() as u8;
            break (outcome, features);
        };
        obs::count(obs::Counter::TrialsRun, 1);
        let latency_us = match t {
            Some(t) => {
                let latency_us = obs::as_micros(t.elapsed());
                obs::observe(obs::Hist::TrialLatencyUs, latency_us);
                latency_us
            }
            None => 0,
        };
        TrialRecord {
            index: test,
            outcome,
            attempts: attempt + 1,
            resumed: false,
            latency_us,
            features: Some(features),
        }
    }
}

/// Record a campaign-cache lookup (hit = an Arc'd result was reused).
fn note_campaign_lookup(hit: bool) {
    obs::count(
        if hit {
            obs::Counter::CampaignCacheHits
        } else {
            obs::Counter::CampaignCacheMisses
        },
        1,
    );
    obs::emit(&obs::Event::CacheLookup {
        cache: "campaign",
        hit,
    });
}

/// Add one trial's execution time to `WorkerBusyNanos`.
fn note_worker_busy(busy: Option<Instant>) {
    if let Some(busy) = busy {
        obs::count(
            obs::Counter::WorkerBusyNanos,
            busy.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilim_apps::App;
    use resilim_core::{OutcomeKind, StopRule};

    fn campaign(app: App, procs: usize, errors: ErrorSpec, tests: usize) -> CampaignSpec {
        CampaignSpec::new(app.default_spec(), procs, errors, tests, 42)
    }

    /// Regression for the `--jobs auto` pessimization on small hosts
    /// (BENCH_campaign.json recorded 0.90× vs `jobs=1` on a 1-core
    /// host): auto must resolve to exactly 1 worker whenever the host
    /// cannot fit a second world, so the runner takes its sequential
    /// path and never pays the shared-counter/pipeline-lock overhead.
    #[test]
    fn auto_worker_count_clamps_to_one_on_small_hosts() {
        // cores <= procs: one world already oversubscribes the host.
        assert_eq!(auto_worker_count(1, 4), 1);
        assert_eq!(auto_worker_count(2, 4), 1);
        assert_eq!(auto_worker_count(4, 4), 1);
        assert_eq!(auto_worker_count(1, 1), 1);
        // cores > procs: one worker per world the host can fit.
        assert_eq!(auto_worker_count(8, 4), 2);
        assert_eq!(auto_worker_count(9, 4), 2);
        assert_eq!(auto_worker_count(64, 4), 16);
        assert_eq!(auto_worker_count(3, 2), 1);
        assert_eq!(auto_worker_count(4, 1), 4);
        // Degenerate procs never divides by zero.
        assert_eq!(auto_worker_count(8, 0), 8);
    }

    /// Every non-default fault model runs end-to-end through the
    /// campaign path and produces causally-consistent, model-shaped
    /// outcomes.
    #[test]
    fn fault_models_run_end_to_end() {
        use resilim_inject::{FailureKind, FaultModelSpec};
        let runner = CampaignRunner::new();
        let base = campaign(App::Lu, 2, ErrorSpec::OneParallel, 12);

        // DUE: a fired fault halts its rank; the trial is a detected
        // Due failure, never silent corruption.
        let due = runner.run_uncached(&base.clone().with_fault_model(FaultModelSpec::Due));
        assert!(due.due_count() > 0, "12 trials with no firing fault");
        for o in &due.outcomes {
            assert!(o.is_causally_consistent());
            if o.injections_fired > 0 {
                assert_eq!(o.failure, Some(FailureKind::Due));
                assert!(o.detected);
            }
        }
        assert_eq!(due.detection_coverage(), Some(1.0));

        // Burst: runs to completion under the op-targeting path.
        let burst = runner.run_uncached(&base.clone().with_fault_model(FaultModelSpec::Burst(3)));
        assert_eq!(burst.outcomes.len(), 12);
        assert!(burst.outcomes.iter().all(|o| o.is_causally_consistent()));

        // Msg: the wire fault fires on every trial (the targeted message
        // is always sent in a deterministic app) and contaminates.
        let msg = runner.run_uncached(&base.clone().with_fault_model(FaultModelSpec::Msg));
        assert!(msg.outcomes.iter().all(|o| o.injections_fired > 0));
        assert!(msg.outcomes.iter().any(|o| o.contaminated_ranks > 0));
        assert!(msg.outcomes.iter().all(|o| o.is_causally_consistent()));

        // Replication: wire corruption crosses a compare point, so
        // contaminated msg-model trials are overwhelmingly detected.
        // Coverage may fall short of 1.0: the compare uses the campaign's
        // significance threshold θ, and a low-order-bit flip can slip
        // under it at the compare point yet amplify into contamination
        // downstream — exactly the blind spot tolerance-based comparison
        // has in real replicated MPI.
        let repl = runner.run_uncached(
            &base
                .with_fault_model(FaultModelSpec::Msg)
                .with_replication(true),
        );
        let coverage = repl
            .detection_coverage()
            .expect("contaminated trials exist");
        assert!(coverage >= 0.5, "implausibly low coverage {coverage}");
        // Detection observes, never perturbs: outcome classes match the
        // unreplicated run bitwise.
        for (r, m) in repl.outcomes.iter().zip(msg.outcomes.iter()) {
            assert_eq!(r.with_detected(false), m.with_detected(false));
        }
    }

    #[test]
    fn trial_executor_matches_runner_path() {
        let runner = CampaignRunner::new();
        let spec = campaign(App::Lu, 2, ErrorSpec::OneParallel, 10);
        let result = runner.run_uncached(&spec);
        let executor = runner.trial_executor(&spec);
        for (i, expected) in result.outcomes.iter().enumerate() {
            let rec = executor.run_trial(i);
            assert_eq!(rec.index, i);
            assert_eq!(rec.outcome, *expected, "trial {i} diverges");
            assert!(!rec.resumed);
        }
    }

    #[test]
    fn serial_campaign_basics() {
        let runner = CampaignRunner::new();
        let result = runner.run(&campaign(App::Cg, 1, ErrorSpec::SerialErrors(1), 30));
        assert_eq!(result.fi.total(), 30);
        assert_eq!(result.outcomes.len(), 30);
        assert!(!result.stopped_early, "fixed mode never stops early");
        // Every test fired exactly its planned single error.
        assert!(result.outcomes.iter().all(|o| o.injections_fired == 1));
        // Single-rank: everything contaminates exactly one rank.
        assert_eq!(result.prop.counts[0], 30);
        // Single-bit flips in FP ops should not kill every run.
        assert!(result.fi.success_rate() > 0.2, "{:?}", result.fi);
    }

    #[test]
    fn parallel_campaign_spreads_contamination() {
        let runner = CampaignRunner::new();
        let result = runner.run(&campaign(App::Cg, 4, ErrorSpec::OneParallel, 40));
        assert_eq!(result.fi.total(), 40);
        let total: u64 = result.prop.counts.iter().sum();
        assert_eq!(total, 40);
        // CG reductions spread surviving errors to every rank: expect both
        // single-rank (absorbed) and all-rank (propagated) cases.
        assert!(result.prop.counts[0] > 0, "{:?}", result.prop.counts);
        assert!(result.prop.counts[3] > 0, "{:?}", result.prop.counts);
    }

    #[test]
    fn campaigns_are_reproducible() {
        let runner = CampaignRunner::new();
        let spec = campaign(App::Lu, 2, ErrorSpec::OneParallel, 15);
        let a = runner.run_uncached(&spec);
        let b = runner.run_uncached(&spec);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.fi, b.fi);
    }

    #[test]
    fn campaign_cache_hits() {
        let runner = CampaignRunner::new();
        let spec = campaign(App::Lu, 2, ErrorSpec::OneParallel, 10);
        let a = runner.run(&spec);
        let b = runner.run(&spec);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn multi_error_serial_campaign() {
        let runner = CampaignRunner::new();
        let result = runner.run(&campaign(App::Cg, 1, ErrorSpec::SerialErrors(8), 20));
        // Later errors can land in skipped code after corruption, but most
        // tests should fire several of the 8 planned errors.
        assert!(result.outcomes.iter().all(|o| o.injections_fired >= 1));
        assert!(result.outcomes.iter().any(|o| o.injections_fired == 8));
        // More errors -> lower success rate than 1-error campaigns.
        let one = runner.run(&campaign(App::Cg, 1, ErrorSpec::SerialErrors(1), 20));
        assert!(result.fi.success_rate() <= one.fi.success_rate() + 0.2);
    }

    #[test]
    fn parallel_unique_campaign_targets_unique_region() {
        let runner = CampaignRunner::new();
        // FT's four-step twiddle scaling is the parallel-unique region.
        let result = runner.run(&campaign(App::Ft, 4, ErrorSpec::OneParallelUnique, 15));
        assert_eq!(result.fi.total(), 15);
        assert!(result.outcomes.iter().all(|o| o.injections_fired == 1));
    }

    #[test]
    fn spawn_per_trial_backend_matches_pooled() {
        let spec = campaign(App::Lu, 2, ErrorSpec::OneParallel, 12);
        let pooled = CampaignRunner::new().run_uncached(&spec);
        let spawned = CampaignRunner::new()
            .with_spawn_per_trial()
            .run_uncached(&spec);
        assert_eq!(pooled.outcomes, spawned.outcomes);
        assert_eq!(pooled.fi, spawned.fi);
        assert_eq!(pooled.prop.counts, spawned.prop.counts);
    }

    #[test]
    fn parallel_test_execution_matches_sequential() {
        let spec = campaign(App::Lu, 2, ErrorSpec::OneParallel, 24);
        let sequential = CampaignRunner::new().run_uncached(&spec);
        let parallel = CampaignRunner::new()
            .with_test_parallelism(4)
            .run_uncached(&spec);
        assert_eq!(sequential.outcomes, parallel.outcomes);
        assert_eq!(sequential.fi, parallel.fi);
        assert_eq!(sequential.prop.counts, parallel.prop.counts);
    }

    #[test]
    fn masked_campaign_targets_other_kinds() {
        use resilim_inject::OpMask;
        let runner = CampaignRunner::new();
        let mut spec = campaign(App::Cg, 1, ErrorSpec::SerialErrors(1), 15);
        spec.op_mask = OpMask::DIV;
        let result = runner.run(&spec);
        // Every test fired exactly one fault, in a division.
        assert!(result.outcomes.iter().all(|o| o.injections_fired == 1));
        assert_eq!(result.fi.total(), 15);
        // The golden profile used for the index space was mask-specific:
        // far fewer divisions than adds/muls in CG.
        let div_golden = runner
            .golden()
            .get_masked(&App::Cg.default_spec(), 1, OpMask::DIV);
        let default_golden = runner.golden().get(&App::Cg.default_spec(), 1);
        assert!(div_golden.injectable_total() * 10 < default_golden.injectable_total());
        assert!(div_golden.injectable_total() > 0);
    }

    #[test]
    fn by_contam_partitions_fi() {
        let runner = CampaignRunner::new();
        let result = runner.run(&campaign(App::Cg, 4, ErrorSpec::OneParallel, 30));
        let total: u64 = result.by_contam.iter().map(|fi| fi.total()).sum();
        assert_eq!(total + result.uncontaminated.total(), result.fi.total());
        let success: u64 = result
            .by_contam
            .iter()
            .chain(std::iter::once(&result.uncontaminated))
            .map(|fi| fi.counts[OutcomeKind::Success.index()])
            .sum();
        assert_eq!(success, result.fi.counts[OutcomeKind::Success.index()]);
    }

    #[test]
    fn uncontaminated_tests_stay_out_of_by_contam() {
        // Regression: contaminated_ranks == 0 used to be folded into the
        // x=1 bucket by `clamp(1, procs)`, skewing its conditional rates.
        let outcomes = vec![
            TestOutcome::success(true, 0, 0), // fault never fired
            TestOutcome::success(true, 1, 1), // absorbed on one rank
            TestOutcome::sdc(1, 1),           // corrupted one rank
            TestOutcome::sdc(4, 1),           // spread to all ranks
            TestOutcome::sdc(9, 1),           // over-count clamps to procs
        ];
        let (fi, prop, by_contam, uncontaminated) = aggregate_outcomes(4, &outcomes);
        assert_eq!(fi.total(), 5);
        assert_eq!(uncontaminated.total(), 1);
        assert_eq!(uncontaminated.counts[OutcomeKind::Success.index()], 1);
        // x=1 bucket holds only the genuinely single-rank tests.
        assert_eq!(by_contam[0].total(), 2);
        assert_eq!(by_contam[3].total(), 2);
        assert_eq!(by_contam[1].total() + by_contam[2].total(), 0);
        // The propagation histogram keeps its historical 1..=p clamp.
        assert_eq!(prop.counts.iter().sum::<u64>(), 5);
    }

    #[test]
    fn adaptive_campaign_stops_early_and_is_a_prefix_of_fixed() {
        let fixed_spec = campaign(App::Cg, 1, ErrorSpec::SerialErrors(1), 80);
        let fixed = CampaignRunner::new().run_uncached(&fixed_spec);
        let rule = StopRule::new(0.25).with_min_tests(10);
        let adaptive = CampaignRunner::new().run_uncached(&fixed_spec.clone().with_stop(rule));
        assert!(adaptive.stopped_early, "a loose rule must stop before 80");
        let n = adaptive.outcomes.len();
        assert!((10..80).contains(&n), "stopped at {n}");
        // Adaptive results are exactly the in-order prefix of the fixed
        // campaign: same trials, same seeds, same classifications.
        assert_eq!(adaptive.outcomes[..], fixed.outcomes[..n]);
        assert!(rule.satisfied(&adaptive.fi));
        // The trial before the stop did not satisfy the rule (the stop
        // fires at the *first* satisfying prefix).
        let (prev_fi, ..) = aggregate_outcomes(1, &fixed.outcomes[..n - 1]);
        assert!(!rule.satisfied(&prev_fi));
    }

    #[test]
    fn adaptive_campaign_is_deterministic_across_worker_counts() {
        let spec = campaign(App::Lu, 2, ErrorSpec::OneParallel, 60)
            .with_stop(StopRule::new(0.3).with_min_tests(8));
        let sequential = CampaignRunner::new().run_uncached(&spec);
        let parallel = CampaignRunner::new()
            .with_test_parallelism(4)
            .run_uncached(&spec);
        assert_eq!(sequential.outcomes, parallel.outcomes);
        assert_eq!(sequential.fi, parallel.fi);
        assert_eq!(sequential.stopped_early, parallel.stopped_early);
        assert_eq!(
            sequential.prop.counts, parallel.prop.counts,
            "the delivered prefix is timing-independent"
        );
    }

    #[test]
    fn adaptive_and_fixed_campaigns_cache_separately() {
        let runner = CampaignRunner::new();
        let fixed_spec = campaign(App::Lu, 2, ErrorSpec::OneParallel, 20);
        let adaptive_spec = fixed_spec
            .clone()
            .with_stop(StopRule::new(0.45).with_min_tests(4));
        let fixed = runner.run(&fixed_spec);
        let adaptive = runner.run(&adaptive_spec);
        assert!(!Arc::ptr_eq(&fixed, &adaptive), "distinct cache keys");
        assert!(Arc::ptr_eq(&adaptive, &runner.run(&adaptive_spec)));
    }
}
