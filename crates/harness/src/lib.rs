#![warn(missing_docs)]
//! # resilim-harness
//!
//! The experiment layer of the `resilim` workspace: it drives
//! fault-injection *campaigns* (many randomized tests of one deployment)
//! over the ported applications, caches fault-free *golden* runs, and
//! packages the paper's tables and figures as reproducible pipelines.
//!
//! * [`golden`] — fault-free profiling runs: per-rank dynamic-op profiles
//!   (the injection sample space), golden digests (the SDC reference), and
//!   hang-guard budgets.
//! * [`campaign`] — deployment specs and the campaign runner: seeds →
//!   injection plans → simulated runs → outcome classification →
//!   [`FiResult`](resilim_core::FiResult) +
//!   [`PropagationProfile`](resilim_core::PropagationProfile).
//! * [`experiments`] — one entry point per paper artifact (Table 1/2,
//!   Figures 1–3 and 5–8) returning typed, serializable results that the
//!   CLI and benches render.
//! * [`ledger`] — durable per-trial ledger (append-only JSONL): crash
//!   recovery (`--resume`), deterministic sharding (`--shard i/N` +
//!   `resilim merge`), and the watchdog retry policy.
//! * [`features`] — durable per-trial feature store (the learned
//!   predictors' training data), keyed and sharded exactly like the
//!   ledger.
//! * [`report`] — plain-text table rendering.
//! * [`store`] — JSON persistence of campaign summaries ("measure once,
//!   model later").
//! * [`plot`] — dependency-free SVG rendering of the figures.

pub mod campaign;
pub mod experiments;
pub mod features;
pub mod golden;
pub mod ledger;
pub mod plot;
pub mod report;
pub mod store;

pub use campaign::{
    aggregate_outcomes, auto_worker_count, validate_fault_model, CampaignAccumulator,
    CampaignResult, CampaignRunner, CampaignSpec, ConvergenceSeries, ErrorSpec, TrialConsumer,
    TrialExecutor, TrialPipeline, TrialRecord,
};
pub use features::FeatureStore;
pub use golden::{golden_cache_file_name, GoldenRun, GoldenStore, GOLDEN_CACHE_VERSION};
pub use ledger::{RetryPolicy, Shard, TrialLedger, LEDGER_VERSION};
pub use store::{CampaignSummary, ResultStore};
