//! Durable per-trial campaign ledger: crash-tolerant resume, shardable
//! execution, and bounded retry policy.
//!
//! A campaign of `n` trials used to be all-or-nothing: a crash, OOM
//! kill, or CI timeout at trial `n-1` threw every result away. The
//! ledger makes each completed trial durable the moment it finishes: an
//! append-only JSONL file under `--store DIR/ledger/`, one record per
//! trial keyed by `(campaign ledger key, seed, trial index)`, flushed
//! per record and fsynced in batches.
//!
//! Three features ride on it:
//!
//! * **Resume** (`--resume`): already-ledgered trials are skipped and
//!   their recorded outcomes re-aggregated — bitwise identical to an
//!   uninterrupted run, because a trial is fully determined by
//!   `(spec, seed, trial index)` and [`TestOutcome`] is integral data
//!   (no floats to re-round).
//! * **Sharding** (`--shard i/N`, [`Shard`]): a deterministic partition
//!   of the trial index space (`trial % N == i`), so `N` independent
//!   processes or CI jobs each run a disjoint slice. Their ledgers —
//!   merged in one directory — reassemble into the complete campaign
//!   via `resilim merge`.
//! * **Retry** ([`RetryPolicy`]): a wedged trial (watchdog deadline
//!   trip) is retried with exponential backoff; after the budget is
//!   exhausted it is recorded as a `Hang` outcome instead of wedging
//!   the campaign.
//!
//! Corruption tolerance mirrors the golden cache: every line is parsed
//! independently, and a truncated tail, interleaved garbage, a
//! stale-version record, or a record for a different campaign key all
//! degrade to "that trial was never ledgered" — resume re-runs exactly
//! the affected trials and the merged result still equals a fresh run.

use parking_lot::Mutex;
use resilim_inject::TestOutcome;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Version stamp of the on-disk trial record. Bump whenever the record
/// layout *or trial semantics* change; stale-version records are
/// skipped on load (the affected trials re-run), never migrated.
pub const LEDGER_VERSION: u32 = 1;

/// Records appended between fsyncs. Each append is flushed to the OS
/// immediately (survives a process crash); the batch fsync bounds what
/// a power loss can cost.
const SYNC_BATCH: usize = 64;

/// One durable trial record (one JSONL line).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TrialRecord {
    /// Record-format version ([`LEDGER_VERSION`]).
    v: u32,
    /// The campaign's ledger key (deployment identity minus the trial
    /// count, so shards and differently-sized runs share records).
    key: String,
    /// Campaign seed (also folded into `key`; kept explicit so records
    /// are self-describing to external consumers).
    seed: u64,
    /// Trial index within the campaign.
    trial: usize,
    /// The trial's outcome.
    outcome: TestOutcome,
    /// Watchdog retries this trial needed (0 = first attempt stuck).
    attempts: u32,
}

/// A deterministic `1/N` partition of the trial index space.
///
/// Shard `i/N` owns exactly the trials with `trial % N == i`: every
/// trial belongs to exactly one shard, the partition is independent of
/// execution order and machine, and N round-robin slices have near-equal
/// size, so CI matrix jobs finish together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's index, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl Shard {
    /// Parse the CLI spelling `i/N`.
    pub fn parse(s: &str) -> Result<Shard, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("--shard wants i/N, got '{s}'"))?;
        let index: usize = i
            .trim()
            .parse()
            .map_err(|e| format!("--shard index: {e}"))?;
        let count: usize = n
            .trim()
            .parse()
            .map_err(|e| format!("--shard count: {e}"))?;
        if count == 0 {
            return Err("--shard count must be >= 1".into());
        }
        if index >= count {
            return Err(format!("--shard index {index} out of range for /{count}"));
        }
        Ok(Shard { index, count })
    }

    /// Whether this shard runs `trial`.
    pub fn owns(&self, trial: usize) -> bool {
        trial % self.count == self.index
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Bounded retry with exponential backoff for wedged (watchdog-tripped)
/// trials.
///
/// Deterministic in-simulation crashes and hangs are *final* outcomes —
/// re-running them would reproduce them bitwise — so the policy applies
/// only to trials the wall-clock watchdog killed, which signal external
/// interference (machine load, a wedged worker) rather than the fault
/// under study. After `max_retries` the trial is recorded as a `Hang`.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = record the trip directly).
    pub max_retries: u32,
    /// Backoff before retry 1; doubles per retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// Same backoff schedule, different retry budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> RetryPolicy {
        self.max_retries = max_retries;
        self
    }

    /// Backoff before retry `attempt` (0-based): `base * 2^attempt`,
    /// capped at [`RetryPolicy::max_backoff`].
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// Append-only, crash-tolerant per-trial ledger for one campaign.
///
/// Each process appends to its own file
/// (`trials-<fnv64(key)>-<pid>.jsonl`) so concurrent shards sharing a
/// store directory never interleave partial lines; loading scans every
/// `*.jsonl` file in the directory and filters by `(version, key,
/// seed)`, which is also exactly how shard ledgers merge.
pub struct TrialLedger {
    key: String,
    seed: u64,
    writer: Mutex<Writer>,
}

struct Writer {
    file: BufWriter<File>,
    /// Appends since the last fsync.
    unsynced: usize,
}

impl TrialLedger {
    /// Open (creating the directory and this process's append file if
    /// needed) the ledger for one campaign key.
    pub fn open(dir: impl AsRef<Path>, key: &str, seed: u64) -> std::io::Result<TrialLedger> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(Self::file_name(key)))?;
        Ok(TrialLedger {
            key: key.to_string(),
            seed,
            writer: Mutex::new(Writer {
                file: BufWriter::new(file),
                unsynced: 0,
            }),
        })
    }

    /// This process's append-file name for `key`.
    pub fn file_name(key: &str) -> String {
        format!(
            "trials-{:016x}-{}.jsonl",
            crate::golden::fnv64(&[key.as_bytes()]),
            std::process::id()
        )
    }

    /// Append one completed trial. Best-effort durability: the line is
    /// flushed to the OS immediately (a crashed *process* loses
    /// nothing) and fsynced every `SYNC_BATCH` appends (bounding what
    /// a power loss can cost); IO errors are swallowed — a full disk
    /// must not kill the campaign, it only degrades resumability.
    pub fn append(&self, trial: usize, outcome: &TestOutcome, attempts: u32) {
        self.append_batch(&[(trial, *outcome, attempts)]);
    }

    /// Append a batch of completed trials with one writer lock, one
    /// `write`, and one flush — the amortized form batched admission
    /// uses. Durability bound is unchanged: the whole batch reaches the
    /// OS before this returns, and the `SYNC_BATCH` fsync cadence
    /// counts individual records, not calls.
    pub fn append_batch(&self, records: &[(usize, TestOutcome, u32)]) {
        if records.is_empty() {
            return;
        }
        let mut lines = String::new();
        for &(trial, outcome, attempts) in records {
            let rec = TrialRecord {
                v: LEDGER_VERSION,
                key: self.key.clone(),
                seed: self.seed,
                trial,
                outcome,
                attempts,
            };
            let Ok(line) = serde_json::to_string(&rec) else {
                continue;
            };
            lines.push_str(&line);
            lines.push('\n');
        }
        let mut w = self.writer.lock();
        if w.file.write_all(lines.as_bytes()).is_err() {
            return;
        }
        let _ = w.file.flush();
        w.unsynced += records.len();
        if w.unsynced >= SYNC_BATCH {
            let _ = w.file.get_ref().sync_data();
            w.unsynced = 0;
        }
    }

    /// Flush and fsync any pending batch (also done on drop).
    pub fn sync(&self) {
        let mut w = self.writer.lock();
        let _ = w.file.flush();
        if w.unsynced > 0 {
            let _ = w.file.get_ref().sync_data();
            w.unsynced = 0;
        }
    }

    /// Load every valid record for `(key, seed)` from all ledger files
    /// under `dir`: trial index → outcome. Tolerates a missing
    /// directory, unreadable files, truncated/corrupt lines, stale
    /// versions, and foreign-campaign records — each degrades to "not
    /// ledgered". Files are scanned in name order and later records win
    /// (re-runs of a trial are deterministic, so this is cosmetic).
    pub fn load(dir: impl AsRef<Path>, key: &str, seed: u64) -> HashMap<usize, TestOutcome> {
        let mut out = HashMap::new();
        let Ok(entries) = std::fs::read_dir(dir.as_ref()) else {
            return out;
        };
        let mut paths: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
            .collect();
        paths.sort();
        for path in paths {
            let Ok(raw) = std::fs::read_to_string(&path) else {
                continue;
            };
            for line in raw.lines() {
                let Ok(rec) = serde_json::from_str::<TrialRecord>(line) else {
                    continue; // truncated tail, garbage, or foreign format
                };
                if rec.v != LEDGER_VERSION || rec.key != key || rec.seed != seed {
                    continue; // stale version or different campaign
                }
                out.insert(rec.trial, rec.outcome);
            }
        }
        out
    }

    /// Like [`TrialLedger::load`], but for *merging*: adversarial
    /// conditions that resume can shrug off are hard errors here.
    ///
    /// * **Duplicate trial records** (two valid records for the same
    ///   `(key, seed, trial)`) error out. Legitimate flows never produce
    ///   them — resume skips already-ledgered trials and shards are
    ///   disjoint — so a duplicate means the same shard ran twice into
    ///   one directory, or ledgers from separate runs were mixed.
    ///   Silently deduping would let an overlapping-shard
    ///   misconfiguration double-count a slice of the campaign.
    /// * **Identity mismatches** — a record whose `key` matches but
    ///   whose explicit `seed` field does not — error out. The seed is
    ///   folded into the key, so the two can only disagree on a forged
    ///   or corrupted record; adopting it would merge a trial from a
    ///   different deployment.
    ///
    /// Unparseable lines, stale versions, and foreign-key records are
    /// still skipped (corruption tolerance is unchanged — those degrade
    /// to "never ledgered" and the merge reports the missing trials).
    pub fn load_strict(
        dir: impl AsRef<Path>,
        key: &str,
        seed: u64,
    ) -> Result<HashMap<usize, TestOutcome>, String> {
        let mut out = HashMap::new();
        let Ok(entries) = std::fs::read_dir(dir.as_ref()) else {
            return Ok(out);
        };
        let mut paths: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
            .collect();
        paths.sort();
        for path in paths {
            let Ok(raw) = std::fs::read_to_string(&path) else {
                continue;
            };
            for line in raw.lines() {
                let Ok(rec) = serde_json::from_str::<TrialRecord>(line) else {
                    continue; // truncated tail, garbage, or foreign format
                };
                if rec.v != LEDGER_VERSION || rec.key != key {
                    continue; // stale version or different campaign
                }
                if rec.seed != seed {
                    return Err(format!(
                        "ledger {}: record for trial {} matches campaign key but \
                         carries seed {} (expected {}) — deployment identity \
                         mismatch, refusing to merge",
                        path.display(),
                        rec.trial,
                        rec.seed,
                        seed,
                    ));
                }
                if out.insert(rec.trial, rec.outcome).is_some() {
                    return Err(format!(
                        "ledger {}: duplicate record for trial {} — the same \
                         shard ran twice into this store, or ledgers from \
                         separate runs were mixed; refusing to merge (re-run \
                         the shard with --resume into a clean directory)",
                        path.display(),
                        rec.trial,
                    ));
                }
            }
        }
        Ok(out)
    }
}

impl Drop for TrialLedger {
    fn drop(&mut self) {
        self.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilim_inject::FailureKind;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("resilim-ledger-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn appends_roundtrip_and_filter_by_key() {
        let dir = temp_dir("roundtrip");
        let ledger = TrialLedger::open(&dir, "k1", 7).unwrap();
        ledger.append(0, &TestOutcome::success(true, 1, 1), 0);
        ledger.append(2, &TestOutcome::sdc(3, 1), 1);
        ledger.sync();
        let other = TrialLedger::open(&dir, "k2", 7).unwrap();
        other.append(0, &TestOutcome::failure(FailureKind::Crash, 0, 0), 0);
        other.sync();

        let k1 = TrialLedger::load(&dir, "k1", 7);
        assert_eq!(k1.len(), 2);
        assert_eq!(k1[&0], TestOutcome::success(true, 1, 1));
        assert_eq!(k1[&2], TestOutcome::sdc(3, 1));
        // Different key and different seed see none of k1's records.
        assert_eq!(TrialLedger::load(&dir, "k2", 7).len(), 1);
        assert!(TrialLedger::load(&dir, "k1", 8).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_lines_and_stale_versions_are_skipped() {
        let dir = temp_dir("corrupt");
        let ledger = TrialLedger::open(&dir, "k", 1).unwrap();
        ledger.append(0, &TestOutcome::success(true, 1, 1), 0);
        ledger.append(1, &TestOutcome::sdc(2, 1), 0);
        drop(ledger);
        // Interleave garbage, a stale-version record, and a truncated
        // final line into a second ledger file.
        std::fs::write(
            dir.join("trials-zzz.jsonl"),
            concat!(
                "not json at all\n",
                "{\"v\":999,\"key\":\"k\",\"seed\":1,\"trial\":5,\"outcome\":",
                "{\"kind\":\"Sdc\",\"failure\":null,\"masked\":false,",
                "\"contaminated_ranks\":1,\"injections_fired\":1},\"attempts\":0}\n",
                "{\"v\":1,\"key\":\"k\",\"seed\":1,\"trial\":3,\"outc"
            ),
        )
        .unwrap();
        let map = TrialLedger::load(&dir, "k", 1);
        assert_eq!(map.len(), 2, "{map:?}");
        assert!(
            !map.contains_key(&5),
            "stale-version record must be ignored"
        );
        assert!(!map.contains_key(&3), "truncated record must be ignored");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_loads_empty() {
        let dir = temp_dir("missing");
        assert!(TrialLedger::load(&dir, "k", 0).is_empty());
        assert!(TrialLedger::load_strict(&dir, "k", 0).unwrap().is_empty());
    }

    #[test]
    fn strict_load_rejects_duplicate_trials() {
        let dir = temp_dir("strict-dup");
        let ledger = TrialLedger::open(&dir, "k", 1).unwrap();
        ledger.append(0, &TestOutcome::success(true, 1, 1), 0);
        ledger.append(1, &TestOutcome::sdc(2, 1), 0);
        drop(ledger);
        // A well-formed record for trial 1 lands in a *second* file, as
        // if the same shard ran twice into one store directory.
        let line = std::fs::read_to_string(
            std::fs::read_dir(&dir)
                .unwrap()
                .next()
                .unwrap()
                .unwrap()
                .path(),
        )
        .unwrap()
        .lines()
        .nth(1)
        .unwrap()
        .to_string();
        std::fs::write(dir.join("trials-zzz.jsonl"), format!("{line}\n")).unwrap();
        // Lenient load dedupes (resume semantics)…
        assert_eq!(TrialLedger::load(&dir, "k", 1).len(), 2);
        // …but the merge path must fail loudly.
        let err = TrialLedger::load_strict(&dir, "k", 1).unwrap_err();
        assert!(err.contains("duplicate record for trial 1"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strict_load_rejects_identity_mismatch() {
        let dir = temp_dir("strict-seed");
        let ledger = TrialLedger::open(&dir, "k", 1).unwrap();
        ledger.append(0, &TestOutcome::success(true, 1, 1), 0);
        drop(ledger);
        // Forge a record whose key matches but whose seed field does
        // not: the seed is folded into the key, so this can only be a
        // corrupted or foreign record wearing our key.
        let path = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let forged = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"seed\":1", "\"seed\":2")
            .replace("\"trial\":0", "\"trial\":7");
        std::fs::write(dir.join("trials-zzz.jsonl"), forged).unwrap();
        // Lenient load silently skips it (different campaign)…
        assert_eq!(TrialLedger::load(&dir, "k", 1).len(), 1);
        // …strict load refuses to merge.
        let err = TrialLedger::load_strict(&dir, "k", 1).unwrap_err();
        assert!(err.contains("identity"), "{err}");
        assert!(err.contains("seed 2"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strict_load_still_tolerates_corruption() {
        let dir = temp_dir("strict-corrupt");
        let ledger = TrialLedger::open(&dir, "k", 1).unwrap();
        ledger.append(0, &TestOutcome::success(true, 1, 1), 0);
        drop(ledger);
        std::fs::write(
            dir.join("trials-zzz.jsonl"),
            "garbage\n{\"v\":999,\"key\":\"k\",\"seed\":1,\"trial\":5,\"outcome\":\
             {\"kind\":\"Sdc\",\"failure\":null,\"masked\":false,\
             \"contaminated_ranks\":1,\"injections_fired\":1},\"attempts\":0}\n",
        )
        .unwrap();
        let map = TrialLedger::load_strict(&dir, "k", 1).unwrap();
        assert_eq!(map.len(), 1, "corrupt + stale lines skipped, not fatal");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_partition_is_total_and_disjoint() {
        for count in 1..=5usize {
            for trial in 0..40usize {
                let owners: Vec<usize> = (0..count)
                    .filter(|&i| Shard { index: i, count }.owns(trial))
                    .collect();
                assert_eq!(owners.len(), 1, "trial {trial} of /{count}: {owners:?}");
                assert_eq!(owners[0], trial % count);
            }
        }
    }

    #[test]
    fn shard_parses_and_rejects() {
        assert_eq!(Shard::parse("0/3").unwrap(), Shard { index: 0, count: 3 });
        assert_eq!(Shard::parse("2/3").unwrap().to_string(), "2/3");
        assert!(Shard::parse("3/3").is_err());
        assert!(Shard::parse("0/0").is_err());
        assert!(Shard::parse("1").is_err());
        assert!(Shard::parse("a/b").is_err());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(300),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(50));
        assert_eq!(p.backoff(1), Duration::from_millis(100));
        assert_eq!(p.backoff(2), Duration::from_millis(200));
        assert_eq!(p.backoff(3), Duration::from_millis(300), "capped");
        assert_eq!(p.backoff(63), Duration::from_millis(300), "no overflow");
    }
}
