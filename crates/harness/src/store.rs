//! Persisting campaign results: measure once, model later.
//!
//! A fault-injection campaign is expensive; the model that consumes it is
//! not. [`CampaignSummary`] is the serializable record of one deployment
//! (everything the model needs, nothing the simulator owns), and
//! [`ResultStore`] is a directory of them. This mirrors the paper's
//! workflow: collect serial and small-scale measurements on whatever
//! machine is available, then predict large scales offline.

use crate::campaign::{CampaignResult, CampaignSpec, ErrorSpec};
use resilim_core::{FiResult, PropagationProfile};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// The serializable essence of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// Application name.
    pub app: String,
    /// Rank count of the deployment.
    pub procs: usize,
    /// Fault pattern.
    pub errors: ErrorSpec,
    /// Number of tests the campaign actually ran (equal to the spec's
    /// `tests` in fixed mode; fewer when an adaptive stop rule ended the
    /// campaign early).
    pub tests: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Contamination-significance threshold used.
    pub taint_threshold: f64,
    /// Outcome statistics.
    pub fi: FiResult,
    /// Contaminated-rank histogram.
    pub prop: PropagationProfile,
    /// Outcome statistics conditioned on contamination count.
    pub by_contam: Vec<FiResult>,
    /// Statistics over tests that contaminated no rank (the planned fault
    /// never fired); kept out of `by_contam` so x=1 stays conditional on
    /// genuine single-rank contamination.
    pub uncontaminated: FiResult,
    /// Campaign wall-clock seconds.
    pub wall_secs: f64,
}

impl CampaignSummary {
    /// Build the summary of a finished campaign.
    pub fn of(spec: &CampaignSpec, result: &CampaignResult) -> CampaignSummary {
        CampaignSummary {
            app: spec.spec.app().name().to_string(),
            procs: spec.procs,
            errors: spec.errors,
            tests: result.outcomes.len(),
            seed: spec.seed,
            taint_threshold: spec.taint_threshold,
            fi: result.fi,
            prop: result.prop.clone(),
            by_contam: result.by_contam.clone(),
            uncontaminated: result.uncontaminated,
            wall_secs: result.wall.as_secs_f64(),
        }
    }

    /// The conditional results in the model's optional form.
    pub fn by_contam_optional(&self) -> Vec<Option<FiResult>> {
        self.by_contam
            .iter()
            .map(|fi| if fi.total() > 0 { Some(*fi) } else { None })
            .collect()
    }

    /// Canonical file name for this deployment.
    pub fn file_name(&self) -> String {
        let errors = match self.errors {
            ErrorSpec::OneParallel => "par1".to_string(),
            ErrorSpec::SerialErrors(x) => format!("ser{x}"),
            ErrorSpec::OneParallelUnique => "unique1".to_string(),
            ErrorSpec::OneParallelMultiBit(k) => format!("par1x{k}bit"),
        };
        format!(
            "{}_p{}_{}_n{}_s{}.json",
            self.app, self.procs, errors, self.tests, self.seed
        )
    }
}

/// A directory of saved campaign summaries.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Open (creating if needed) a store at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<ResultStore> {
        std::fs::create_dir_all(&dir)?;
        Ok(ResultStore {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Save a summary under its canonical name; returns the path.
    pub fn save(&self, summary: &CampaignSummary) -> std::io::Result<PathBuf> {
        let path = self.dir.join(summary.file_name());
        let json = serde_json::to_string_pretty(summary)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(&path, json)?;
        Ok(path)
    }

    /// Load one summary by file name.
    pub fn load(&self, file_name: &str) -> std::io::Result<CampaignSummary> {
        let raw = std::fs::read_to_string(self.dir.join(file_name))?;
        serde_json::from_str(&raw)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Load every summary in the store.
    pub fn load_all(&self) -> std::io::Result<Vec<CampaignSummary>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "json") {
                let raw = std::fs::read_to_string(entry.path())?;
                if let Ok(summary) = serde_json::from_str(&raw) {
                    out.push(summary);
                }
            }
        }
        out.sort_by_key(CampaignSummary::file_name);
        Ok(out)
    }
}

/// Assemble [`ModelInputs`](resilim_core::ModelInputs) for predicting
/// scale `p` of `app` from the summaries saved in `store` — the offline
/// half of the paper's workflow.
///
/// Requires: serial campaigns (`SerialErrors(x)`) at every sample case of
/// `(p, s, strategy)` plus `x = 1..=s`, and a 1-error campaign at `s`
/// ranks. Uses a parallel-unique campaign at `s` ranks plus
/// `unique_share` when provided.
pub fn model_inputs_from_store(
    store: &ResultStore,
    app: &str,
    p: usize,
    s: usize,
    strategy: resilim_core::SamplePoints,
    unique_share: f64,
) -> Result<resilim_core::ModelInputs, String> {
    let all = store
        .load_all()
        .map_err(|e| format!("cannot read store: {e}"))?;
    let serial_at = |x: usize| -> Option<FiResult> {
        all.iter()
            .find(|sum| {
                sum.app == app && sum.procs == 1 && sum.errors == ErrorSpec::SerialErrors(x)
            })
            .map(|sum| sum.fi)
    };
    let mut serial = std::collections::BTreeMap::new();
    let mut needed: Vec<usize> = resilim_core::sample_cases(p, s, strategy);
    needed.extend(1..=s);
    for x in needed {
        let fi = serial_at(x).ok_or(format!("store is missing serial campaign x={x} for {app}"))?;
        serial.insert(x, fi);
    }
    let small = all
        .iter()
        .find(|sum| sum.app == app && sum.procs == s && sum.errors == ErrorSpec::OneParallel)
        .ok_or(format!(
            "store is missing the {s}-rank 1-error campaign for {app}"
        ))?;
    let fi_unique = all
        .iter()
        .find(|sum| sum.app == app && sum.procs == s && sum.errors == ErrorSpec::OneParallelUnique)
        .map(|sum| sum.fi);
    let unique_share = if fi_unique.is_some() {
        unique_share
    } else {
        0.0
    };
    Ok(resilim_core::ModelInputs {
        p,
        s,
        strategy,
        serial,
        small_prop: small.prop.clone(),
        small_by_contam: small.by_contam_optional(),
        unique_share,
        fi_unique,
        alpha_threshold: 0.20,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignRunner;
    use resilim_apps::App;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("resilim-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn summary_roundtrips_through_disk() {
        let runner = CampaignRunner::new();
        let spec = CampaignSpec::new(App::Lu.default_spec(), 2, ErrorSpec::OneParallel, 10, 5);
        let result = runner.run(&spec);
        let summary = CampaignSummary::of(&spec, &result);

        let store = ResultStore::open(temp_dir("roundtrip")).unwrap();
        let path = store.save(&summary).unwrap();
        assert!(path.exists());
        let loaded = store.load(&summary.file_name()).unwrap();
        assert_eq!(loaded, summary);
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn load_all_finds_everything() {
        let runner = CampaignRunner::new();
        let store = ResultStore::open(temp_dir("all")).unwrap();
        for x in [1usize, 2] {
            let spec =
                CampaignSpec::new(App::Lu.default_spec(), 1, ErrorSpec::SerialErrors(x), 8, 5);
            let result = runner.run(&spec);
            store.save(&CampaignSummary::of(&spec, &result)).unwrap();
        }
        let all = store.load_all().unwrap();
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|s| s.app == "lu" && s.tests == 8));
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn model_inputs_reconstructed_from_store() {
        let runner = CampaignRunner::new();
        let store = ResultStore::open(temp_dir("model")).unwrap();
        let (p, s) = (4usize, 2usize);
        // Measure and persist everything the model needs.
        let mut cases: Vec<usize> =
            resilim_core::sample_cases(p, s, resilim_core::SamplePoints::BucketUpper);
        cases.extend(1..=s);
        cases.sort_unstable();
        cases.dedup();
        for x in cases {
            let spec =
                CampaignSpec::new(App::Lu.default_spec(), 1, ErrorSpec::SerialErrors(x), 12, 3);
            let result = runner.run(&spec);
            store.save(&CampaignSummary::of(&spec, &result)).unwrap();
        }
        let spec = CampaignSpec::new(App::Lu.default_spec(), s, ErrorSpec::OneParallel, 12, 3);
        let result = runner.run(&spec);
        store.save(&CampaignSummary::of(&spec, &result)).unwrap();

        // Offline: rebuild the inputs and predict.
        let inputs = model_inputs_from_store(
            &store,
            "lu",
            p,
            s,
            resilim_core::SamplePoints::BucketUpper,
            0.0,
        )
        .unwrap();
        let pred = resilim_core::Predictor::new(inputs).predict();
        let total: f64 = pred.rates.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);

        // Missing data is reported, not panicked.
        let err = model_inputs_from_store(
            &store,
            "cg",
            p,
            s,
            resilim_core::SamplePoints::BucketUpper,
            0.0,
        )
        .unwrap_err();
        assert!(err.contains("missing"), "{err}");
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn file_names_distinguish_deployments() {
        let mk = |errors| CampaignSummary {
            app: "cg".into(),
            procs: 4,
            errors,
            tests: 100,
            seed: 1,
            taint_threshold: 1e-9,
            fi: FiResult::new(),
            prop: PropagationProfile::new(4),
            by_contam: vec![],
            uncontaminated: FiResult::new(),
            wall_secs: 0.0,
        };
        let names: Vec<String> = [
            ErrorSpec::OneParallel,
            ErrorSpec::SerialErrors(16),
            ErrorSpec::OneParallelUnique,
            ErrorSpec::OneParallelMultiBit(3),
        ]
        .into_iter()
        .map(|e| mk(e).file_name())
        .collect();
        let unique: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "{names:?}");
    }
}
