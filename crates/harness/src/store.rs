//! Persisting campaign results: measure once, model later.
//!
//! A fault-injection campaign is expensive; the model that consumes it is
//! not. [`CampaignSummary`] is the serializable record of one deployment
//! (everything the model needs, nothing the simulator owns), and
//! [`ResultStore`] is a directory of them. This mirrors the paper's
//! workflow: collect serial and small-scale measurements on whatever
//! machine is available, then predict large scales offline.

use crate::campaign::{CampaignResult, CampaignSpec, ErrorSpec};
use resilim_core::{FiResult, PropagationProfile};
use resilim_inject::FaultModelSpec;
use serde::{Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};

/// The serializable essence of one campaign.
///
/// Serde impls are hand-written: the fault-model fields are emitted only
/// for non-default models (or under replication), so summaries — and the
/// `resilim campaign` JSON output built from them — of baseline campaigns
/// stay byte-identical to records written before fault models existed,
/// and old files load with the defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// Application name.
    pub app: String,
    /// Rank count of the deployment.
    pub procs: usize,
    /// Fault pattern.
    pub errors: ErrorSpec,
    /// Number of tests the campaign actually ran (equal to the spec's
    /// `tests` in fixed mode; fewer when an adaptive stop rule ended the
    /// campaign early).
    pub tests: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Contamination-significance threshold used.
    pub taint_threshold: f64,
    /// Outcome statistics.
    pub fi: FiResult,
    /// Contaminated-rank histogram.
    pub prop: PropagationProfile,
    /// Outcome statistics conditioned on contamination count.
    pub by_contam: Vec<FiResult>,
    /// Statistics over tests that contaminated no rank (the planned fault
    /// never fired); kept out of `by_contam` so x=1 stays conditional on
    /// genuine single-rank contamination.
    pub uncontaminated: FiResult,
    /// Campaign wall-clock seconds.
    pub wall_secs: f64,
    /// The fault model injected (`--fault-model`; default: single-bit
    /// flip, the paper baseline).
    pub fault_model: FaultModelSpec,
    /// Whether TeaMPI-style replica comparison ran (`--replicate`).
    pub replicate: bool,
    /// Trials killed by a detected-uncorrectable error.
    pub due: u64,
    /// Trials whose corruption was detected (DUE kill or replica
    /// comparison).
    pub detected: u64,
    /// `P(detected | contaminated)`; `None` when undefined (no trial
    /// contaminated a rank) — and always `None` in legacy records.
    pub detection_coverage: Option<f64>,
}

impl CampaignSummary {
    /// Build the summary of a finished campaign.
    pub fn of(spec: &CampaignSpec, result: &CampaignResult) -> CampaignSummary {
        CampaignSummary {
            app: spec.spec.app().name().to_string(),
            procs: spec.procs,
            errors: spec.errors,
            tests: result.outcomes.len(),
            seed: spec.seed,
            taint_threshold: spec.taint_threshold,
            fi: result.fi,
            prop: result.prop.clone(),
            by_contam: result.by_contam.clone(),
            uncontaminated: result.uncontaminated,
            wall_secs: result.wall.as_secs_f64(),
            fault_model: spec.fault_model,
            replicate: spec.replicate,
            due: result.due_count() as u64,
            detected: result.detected_count() as u64,
            // Coverage is a property of a deployed detector (DUE
            // machinery or replication); without one it is undefined,
            // not zero.
            detection_coverage: if spec.fault_model.is_default() && !spec.replicate {
                None
            } else {
                result.detection_coverage()
            },
        }
    }

    /// Whether the fault-model fields carry information worth emitting.
    fn models_faults(&self) -> bool {
        !self.fault_model.is_default() || self.replicate
    }

    /// The conditional results in the model's optional form.
    pub fn by_contam_optional(&self) -> Vec<Option<FiResult>> {
        self.by_contam
            .iter()
            .map(|fi| if fi.total() > 0 { Some(*fi) } else { None })
            .collect()
    }

    /// Canonical file name for this deployment. Baseline campaigns keep
    /// their historical names; non-default models (and replication) get
    /// a suffix so they never clobber a baseline record.
    pub fn file_name(&self) -> String {
        let errors = match self.errors {
            ErrorSpec::OneParallel => "par1".to_string(),
            ErrorSpec::SerialErrors(x) => format!("ser{x}"),
            ErrorSpec::OneParallelUnique => "unique1".to_string(),
            ErrorSpec::OneParallelMultiBit(k) => format!("par1x{k}bit"),
        };
        let mut tag = String::new();
        if !self.fault_model.is_default() {
            // "burst:3" → "burst3": keep file names shell-friendly.
            tag.push('_');
            tag.extend(self.fault_model.cli_name().chars().filter(|c| *c != ':'));
        }
        if self.replicate {
            tag.push_str("_repl");
        }
        format!(
            "{}_p{}_{}_n{}_s{}{}.json",
            self.app, self.procs, errors, self.tests, self.seed, tag
        )
    }
}

impl Serialize for CampaignSummary {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("app".to_string(), self.app.to_value()),
            ("procs".to_string(), self.procs.to_value()),
            ("errors".to_string(), self.errors.to_value()),
            ("tests".to_string(), self.tests.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            (
                "taint_threshold".to_string(),
                self.taint_threshold.to_value(),
            ),
            ("fi".to_string(), self.fi.to_value()),
            ("prop".to_string(), self.prop.to_value()),
            ("by_contam".to_string(), self.by_contam.to_value()),
            ("uncontaminated".to_string(), self.uncontaminated.to_value()),
            ("wall_secs".to_string(), self.wall_secs.to_value()),
        ];
        if self.models_faults() {
            fields.push((
                "fault_model".to_string(),
                self.fault_model.cli_name().to_value(),
            ));
            fields.push(("replicate".to_string(), self.replicate.to_value()));
            fields.push(("due".to_string(), self.due.to_value()));
            fields.push(("detected".to_string(), self.detected.to_value()));
            fields.push((
                "detection_coverage".to_string(),
                self.detection_coverage.to_value(),
            ));
        }
        Value::Object(fields)
    }
}

impl Deserialize for CampaignSummary {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let fault_model = match serde::field(v, "fault_model") {
            Value::Null => FaultModelSpec::default(),
            other => {
                FaultModelSpec::parse(&String::from_value(other)?).map_err(serde::Error::new)?
            }
        };
        Ok(CampaignSummary {
            app: Deserialize::from_value(serde::field(v, "app"))?,
            procs: Deserialize::from_value(serde::field(v, "procs"))?,
            errors: Deserialize::from_value(serde::field(v, "errors"))?,
            tests: Deserialize::from_value(serde::field(v, "tests"))?,
            seed: Deserialize::from_value(serde::field(v, "seed"))?,
            taint_threshold: Deserialize::from_value(serde::field(v, "taint_threshold"))?,
            fi: Deserialize::from_value(serde::field(v, "fi"))?,
            prop: Deserialize::from_value(serde::field(v, "prop"))?,
            by_contam: Deserialize::from_value(serde::field(v, "by_contam"))?,
            uncontaminated: Deserialize::from_value(serde::field(v, "uncontaminated"))?,
            wall_secs: Deserialize::from_value(serde::field(v, "wall_secs"))?,
            fault_model,
            replicate: match serde::field(v, "replicate") {
                Value::Null => false,
                other => Deserialize::from_value(other)?,
            },
            due: match serde::field(v, "due") {
                Value::Null => 0,
                other => Deserialize::from_value(other)?,
            },
            detected: match serde::field(v, "detected") {
                Value::Null => 0,
                other => Deserialize::from_value(other)?,
            },
            detection_coverage: Deserialize::from_value(serde::field(v, "detection_coverage"))?,
        })
    }
}

/// A directory of saved campaign summaries.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Open (creating if needed) a store at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<ResultStore> {
        std::fs::create_dir_all(&dir)?;
        Ok(ResultStore {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Save a summary under its canonical name; returns the path.
    pub fn save(&self, summary: &CampaignSummary) -> std::io::Result<PathBuf> {
        let path = self.dir.join(summary.file_name());
        let json = serde_json::to_string_pretty(summary)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(&path, json)?;
        Ok(path)
    }

    /// Load one summary by file name.
    pub fn load(&self, file_name: &str) -> std::io::Result<CampaignSummary> {
        let raw = std::fs::read_to_string(self.dir.join(file_name))?;
        serde_json::from_str(&raw)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Load every summary in the store.
    pub fn load_all(&self) -> std::io::Result<Vec<CampaignSummary>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "json") {
                let raw = std::fs::read_to_string(entry.path())?;
                if let Ok(summary) = serde_json::from_str(&raw) {
                    out.push(summary);
                }
            }
        }
        out.sort_by_key(CampaignSummary::file_name);
        Ok(out)
    }
}

/// Assemble [`ModelInputs`](resilim_core::ModelInputs) for predicting
/// scale `p` of `app` from the summaries saved in `store` — the offline
/// half of the paper's workflow.
///
/// Requires: serial campaigns (`SerialErrors(x)`) at every sample case of
/// `(p, s, strategy)` plus `x = 1..=s`, and a 1-error campaign at `s`
/// ranks. Uses a parallel-unique campaign at `s` ranks plus
/// `unique_share` when provided.
pub fn model_inputs_from_store(
    store: &ResultStore,
    app: &str,
    p: usize,
    s: usize,
    strategy: resilim_core::SamplePoints,
    unique_share: f64,
) -> Result<resilim_core::ModelInputs, String> {
    let all = store
        .load_all()
        .map_err(|e| format!("cannot read store: {e}"))?;
    // The paper's model is calibrated on baseline (single-bit, unmitigated)
    // measurements only; summaries from other fault models never feed it.
    let baseline = |sum: &&CampaignSummary| sum.fault_model.is_default() && !sum.replicate;
    let serial_at = |x: usize| -> Option<FiResult> {
        all.iter()
            .filter(baseline)
            .find(|sum| {
                sum.app == app && sum.procs == 1 && sum.errors == ErrorSpec::SerialErrors(x)
            })
            .map(|sum| sum.fi)
    };
    let mut serial = std::collections::BTreeMap::new();
    let mut needed: Vec<usize> = resilim_core::sample_cases(p, s, strategy);
    needed.extend(1..=s);
    for x in needed {
        let fi = serial_at(x).ok_or(format!("store is missing serial campaign x={x} for {app}"))?;
        serial.insert(x, fi);
    }
    let small = all
        .iter()
        .filter(baseline)
        .find(|sum| sum.app == app && sum.procs == s && sum.errors == ErrorSpec::OneParallel)
        .ok_or(format!(
            "store is missing the {s}-rank 1-error campaign for {app}"
        ))?;
    let fi_unique = all
        .iter()
        .filter(baseline)
        .find(|sum| sum.app == app && sum.procs == s && sum.errors == ErrorSpec::OneParallelUnique)
        .map(|sum| sum.fi);
    let unique_share = if fi_unique.is_some() {
        unique_share
    } else {
        0.0
    };
    Ok(resilim_core::ModelInputs {
        p,
        s,
        strategy,
        serial,
        small_prop: small.prop.clone(),
        small_by_contam: small.by_contam_optional(),
        unique_share,
        fi_unique,
        alpha_threshold: 0.20,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignRunner;
    use resilim_apps::App;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("resilim-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn summary_roundtrips_through_disk() {
        let runner = CampaignRunner::new();
        let spec = CampaignSpec::new(App::Lu.default_spec(), 2, ErrorSpec::OneParallel, 10, 5);
        let result = runner.run(&spec);
        let summary = CampaignSummary::of(&spec, &result);

        let store = ResultStore::open(temp_dir("roundtrip")).unwrap();
        let path = store.save(&summary).unwrap();
        assert!(path.exists());
        let loaded = store.load(&summary.file_name()).unwrap();
        assert_eq!(loaded, summary);
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn load_all_finds_everything() {
        let runner = CampaignRunner::new();
        let store = ResultStore::open(temp_dir("all")).unwrap();
        for x in [1usize, 2] {
            let spec =
                CampaignSpec::new(App::Lu.default_spec(), 1, ErrorSpec::SerialErrors(x), 8, 5);
            let result = runner.run(&spec);
            store.save(&CampaignSummary::of(&spec, &result)).unwrap();
        }
        let all = store.load_all().unwrap();
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|s| s.app == "lu" && s.tests == 8));
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn model_inputs_reconstructed_from_store() {
        let runner = CampaignRunner::new();
        let store = ResultStore::open(temp_dir("model")).unwrap();
        let (p, s) = (4usize, 2usize);
        // Measure and persist everything the model needs.
        let mut cases: Vec<usize> =
            resilim_core::sample_cases(p, s, resilim_core::SamplePoints::BucketUpper);
        cases.extend(1..=s);
        cases.sort_unstable();
        cases.dedup();
        for x in cases {
            let spec =
                CampaignSpec::new(App::Lu.default_spec(), 1, ErrorSpec::SerialErrors(x), 12, 3);
            let result = runner.run(&spec);
            store.save(&CampaignSummary::of(&spec, &result)).unwrap();
        }
        let spec = CampaignSpec::new(App::Lu.default_spec(), s, ErrorSpec::OneParallel, 12, 3);
        let result = runner.run(&spec);
        store.save(&CampaignSummary::of(&spec, &result)).unwrap();

        // Offline: rebuild the inputs and predict.
        let inputs = model_inputs_from_store(
            &store,
            "lu",
            p,
            s,
            resilim_core::SamplePoints::BucketUpper,
            0.0,
        )
        .unwrap();
        let pred = resilim_core::PaperEq8::new(inputs).predict();
        let total: f64 = pred.rates.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);

        // Missing data is reported, not panicked.
        let err = model_inputs_from_store(
            &store,
            "cg",
            p,
            s,
            resilim_core::SamplePoints::BucketUpper,
            0.0,
        )
        .unwrap_err();
        assert!(err.contains("missing"), "{err}");
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    fn summary(errors: ErrorSpec) -> CampaignSummary {
        CampaignSummary {
            app: "cg".into(),
            procs: 4,
            errors,
            tests: 100,
            seed: 1,
            taint_threshold: 1e-9,
            fi: FiResult::new(),
            prop: PropagationProfile::new(4),
            by_contam: vec![],
            uncontaminated: FiResult::new(),
            wall_secs: 0.0,
            fault_model: FaultModelSpec::default(),
            replicate: false,
            due: 0,
            detected: 0,
            detection_coverage: None,
        }
    }

    #[test]
    fn file_names_distinguish_deployments() {
        let mut variants: Vec<CampaignSummary> = [
            ErrorSpec::OneParallel,
            ErrorSpec::SerialErrors(16),
            ErrorSpec::OneParallelUnique,
            ErrorSpec::OneParallelMultiBit(3),
        ]
        .into_iter()
        .map(summary)
        .collect();
        // Every fault model (and replication) is its own deployment too.
        for fm in FaultModelSpec::ALL {
            let mut s = summary(ErrorSpec::OneParallel);
            s.fault_model = fm;
            variants.push(s);
        }
        let mut repl = summary(ErrorSpec::OneParallel);
        repl.replicate = true;
        variants.push(repl);
        let names: Vec<String> = variants.iter().map(CampaignSummary::file_name).collect();
        // The default-model variant appears twice by construction (first
        // array + ALL[0]); dedup that one expected collision.
        let unique: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), names.len() - 1, "{names:?}");
        assert!(names.iter().any(|n| n.contains("burst3")));
        assert!(names.iter().any(|n| n.ends_with("_repl.json")));
    }

    /// Baseline summaries must serialize without any fault-model field:
    /// the `resilim campaign` JSON of a default campaign is byte-identical
    /// to what pre-fault-model builds emitted.
    #[test]
    fn baseline_summary_serializes_like_legacy() {
        let s = summary(ErrorSpec::OneParallel);
        let json = serde_json::to_string(&s).unwrap();
        assert!(!json.contains("fault_model"), "{json}");
        assert!(!json.contains("replicate"), "{json}");
        assert!(!json.contains("detection_coverage"), "{json}");
        // And a legacy record (no fault-model fields) loads with defaults.
        let back: CampaignSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn modeled_summary_roundtrips_with_fault_fields() {
        let mut s = summary(ErrorSpec::OneParallel);
        s.fault_model = FaultModelSpec::Due;
        s.replicate = true;
        s.due = 12;
        s.detected = 30;
        s.detection_coverage = Some(0.75);
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"fault_model\":\"due\""), "{json}");
        let back: CampaignSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
