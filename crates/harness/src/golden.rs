//! Fault-free golden runs: the reference every fault-injection test is
//! classified against, and the profile the injection sample space is
//! drawn from.

use parking_lot::Mutex;
use resilim_apps::{AppOutput, ProblemSpec};
use resilim_inject::{OpMask, OpProfile, RankCtx, Region};
use resilim_obs as obs;
use resilim_simmpi::World;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Version stamp of the on-disk golden-run record. Bump whenever the
/// record layout *or the semantics of what a profile counts* changes;
/// stale-version files are ignored and re-measured, never migrated.
/// Version 2: [`OpProfile`] gained `msgs_sent` (wire-fault site space).
pub const GOLDEN_CACHE_VERSION: u32 = 2;

/// A fault-free run of one `(problem, scale, mask)` deployment.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// The problem.
    pub spec: ProblemSpec,
    /// Rank count.
    pub procs: usize,
    /// The injectable-op mask the profile's index space was counted with.
    pub op_mask: OpMask,
    /// Rank 0's digest (identical on every rank in a fault-free run).
    pub output: AppOutput,
    /// Per-rank dynamic-op profiles.
    pub profiles: Vec<OpProfile>,
    /// Wall-clock duration of the fault-free run.
    pub wall: Duration,
}

impl GoldenRun {
    /// Execute the fault-free profiling run with the paper's default mask.
    pub fn measure(spec: &ProblemSpec, procs: usize) -> GoldenRun {
        GoldenRun::measure_masked(spec, procs, OpMask::FP_ARITH)
    }

    /// Execute the fault-free profiling run, counting the injection index
    /// space over `mask`.
    pub fn measure_masked(spec: &ProblemSpec, procs: usize, mask: OpMask) -> GoldenRun {
        let world = World::new(procs);
        let start = Instant::now();
        let spec_clone = spec.clone();
        let results = world.run_with_ctx(
            move |rank| Some(RankCtx::profiling(rank).with_op_mask(mask)),
            move |comm| spec_clone.run_rank(comm),
        );
        let wall = start.elapsed();
        let mut output = None;
        let mut profiles = Vec::with_capacity(procs);
        for r in results {
            let out = match r.result {
                Ok(o) => o,
                Err(p) => panic!(
                    "fault-free run of {:?} at p={procs} failed on rank {}: {}",
                    spec.app(),
                    r.rank,
                    p.message
                ),
            };
            if r.rank == 0 {
                output = Some(out);
            }
            profiles.push(r.ctx_report.expect("profiling ctx installed").profile);
        }
        GoldenRun {
            spec: spec.clone(),
            procs,
            op_mask: mask,
            output: output.expect("rank 0 reported"),
            profiles,
            wall,
        }
    }

    /// Total injectable ops in a region across all ranks.
    pub fn injectable(&self, region: Region) -> u64 {
        self.profiles.iter().map(|p| p.injectable(region)).sum()
    }

    /// Total injectable ops across ranks and regions.
    pub fn injectable_total(&self) -> u64 {
        self.profiles.iter().map(|p| p.injectable_total()).sum()
    }

    /// The parallel-unique share of injectable ops (Table 1's quantity;
    /// `prob₂` of Eq. 1).
    pub fn unique_share(&self) -> f64 {
        let total = self.injectable_total();
        if total == 0 {
            return 0.0;
        }
        self.injectable(Region::ParallelUnique) as f64 / total as f64
    }

    /// Hang-guard budget per rank: generously above the fault-free op
    /// count, so only genuinely runaway executions trip it.
    pub fn op_cap(&self) -> u64 {
        let max_ops = self.profiles.iter().map(|p| p.total()).max().unwrap_or(0);
        max_ops * 8 + 100_000
    }
}

/// The serialized form of a [`GoldenRun`]. `ProblemSpec` itself is not
/// serializable, so the record carries the spec's `cache_key()` and the
/// caller's spec is re-attached on load — a full key match is required,
/// so a record can never be applied to a different problem.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct GoldenRecord {
    version: u32,
    key: String,
    procs: usize,
    op_mask: OpMask,
    output: AppOutput,
    profiles: Vec<OpProfile>,
    wall_secs: f64,
}

type Key = (String, usize, OpMask);

/// Single-flight registry: one slot per in-flight key. The measuring
/// caller holds the slot's lock until the value is published; same-key
/// callers block on the slot and share the leader's `Arc`.
pub(crate) type Flights<K, V> = Mutex<HashMap<K, Arc<Mutex<Option<Arc<V>>>>>>;

/// FNV-1a over a sequence of byte groups: a *deterministic* file-name
/// hash (std's `DefaultHasher` is randomly keyed per process, which
/// would defeat a cross-process cache). Shared by the golden cache and
/// the trial ledger.
pub(crate) fn fnv64(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for bytes in parts {
        for &b in *bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn key_file_hash(key: &Key) -> u64 {
    fnv64(&[
        key.0.as_bytes(),
        &(key.1 as u64).to_le_bytes(),
        &[key.2.bits()],
    ])
}

/// File name of a deployment's golden-cache entry inside the cache
/// directory (exposed so tests and operators can locate entries).
pub fn golden_cache_file_name(spec: &ProblemSpec, procs: usize, mask: OpMask) -> String {
    let key = (spec.cache_key(), procs, mask);
    format!("golden-{:016x}.json", key_file_hash(&key))
}

/// Process-wide cache of golden runs, keyed by `(problem, scale, mask)`,
/// with an optional persistent layer on disk.
///
/// Campaigns re-classify thousands of tests against the same golden run;
/// measuring it once per deployment keeps the harness O(tests), and the
/// disk layer (wired to the CLI's `--store DIR`) extends that across
/// process invocations. Lookups are *single-flight*: concurrent callers
/// of the same key agree on one measurer and wait for it instead of
/// profiling the deployment once each.
#[derive(Debug, Default)]
pub struct GoldenStore {
    cache: Mutex<HashMap<Key, Arc<GoldenRun>>>,
    /// In-flight measurements: one slot per key; the measuring caller
    /// holds the slot's lock until the run is published.
    flights: Flights<Key, GoldenRun>,
    disk: Option<PathBuf>,
}

impl GoldenStore {
    /// Empty store (memory-only).
    pub fn new() -> GoldenStore {
        GoldenStore::default()
    }

    /// Add a persistent cache layer under `dir` (created on first save).
    pub fn with_disk_dir(mut self, dir: impl Into<PathBuf>) -> GoldenStore {
        self.disk = Some(dir.into());
        self
    }

    /// The persistent cache directory, when one is configured.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk.as_deref()
    }

    /// Fetch (measuring on first use) the golden run for a deployment,
    /// with the paper's default injectable mask.
    pub fn get(&self, spec: &ProblemSpec, procs: usize) -> Arc<GoldenRun> {
        self.get_masked(spec, procs, OpMask::FP_ARITH)
    }

    /// Fetch (measuring on first use) the golden run for a deployment
    /// under an explicit injectable mask.
    ///
    /// Obs accounting: `GoldenCacheHits` counts every avoided profiling
    /// run (memory or disk layer); `GoldenCacheMisses` counts only actual
    /// measurements — so a fully warm store reports zero misses.
    pub fn get_masked(&self, spec: &ProblemSpec, procs: usize, mask: OpMask) -> Arc<GoldenRun> {
        let key = (spec.cache_key(), procs, mask);
        if let Some(hit) = self.cache.lock().get(&key) {
            note_lookup(true);
            return Arc::clone(hit);
        }
        let flight = Arc::clone(self.flights.lock().entry(key.clone()).or_default());
        let mut slot = flight.lock();
        if let Some(run) = slot.as_ref() {
            // The in-flight measurer finished while we waited.
            note_lookup(true);
            return Arc::clone(run);
        }
        // The flight entry may be fresh even though the run was already
        // published (measurer removes its entry after filling the memory
        // cache); re-check before measuring.
        if let Some(hit) = self.cache.lock().get(&key) {
            note_lookup(true);
            return Arc::clone(hit);
        }
        let run = match self.load_disk(&key, spec) {
            Some(run) => {
                note_lookup(true);
                obs::emit(&obs::Event::CacheLookup {
                    cache: "golden-disk",
                    hit: true,
                });
                Arc::new(run)
            }
            None => {
                note_lookup(false);
                let run = Arc::new(GoldenRun::measure_masked(spec, procs, mask));
                self.save_disk(&key, &run);
                run
            }
        };
        self.cache.lock().insert(key.clone(), Arc::clone(&run));
        *slot = Some(Arc::clone(&run));
        drop(slot);
        self.flights.lock().remove(&key);
        run
    }

    /// Load and validate a disk record. Any failure — unreadable file,
    /// malformed JSON, stale version, key/shape mismatch — degrades to
    /// `None` (re-measure); a corrupt cache must never break a campaign.
    fn load_disk(&self, key: &Key, spec: &ProblemSpec) -> Option<GoldenRun> {
        let dir = self.disk.as_ref()?;
        let path = dir.join(format!("golden-{:016x}.json", key_file_hash(key)));
        let raw = std::fs::read_to_string(path).ok()?;
        let rec: GoldenRecord = serde_json::from_str(&raw).ok()?;
        if rec.version != GOLDEN_CACHE_VERSION
            || rec.key != key.0
            || rec.procs != key.1
            || rec.op_mask != key.2
            || rec.profiles.len() != key.1
        {
            return None;
        }
        Some(GoldenRun {
            spec: spec.clone(),
            procs: rec.procs,
            op_mask: rec.op_mask,
            output: rec.output,
            profiles: rec.profiles,
            wall: Duration::from_secs_f64(rec.wall_secs.max(0.0)),
        })
    }

    /// Persist a record, best-effort: write-to-temp + rename so readers
    /// never observe a half-written file; IO errors are swallowed (the
    /// cache is an optimization, not a durability contract).
    fn save_disk(&self, key: &Key, run: &GoldenRun) {
        let Some(dir) = self.disk.as_ref() else {
            return;
        };
        let rec = GoldenRecord {
            version: GOLDEN_CACHE_VERSION,
            key: key.0.clone(),
            procs: run.procs,
            op_mask: run.op_mask,
            output: run.output.clone(),
            profiles: run.profiles.clone(),
            wall_secs: run.wall.as_secs_f64(),
        };
        let Ok(json) = serde_json::to_string(&rec) else {
            return;
        };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let path = dir.join(format!("golden-{:016x}.json", key_file_hash(key)));
        let tmp = dir.join(format!(
            "golden-{:016x}.json.tmp.{}",
            key_file_hash(key),
            std::process::id()
        ));
        if std::fs::write(&tmp, json).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }

    /// Number of cached runs (memory layer).
    pub fn len(&self) -> usize {
        self.cache.lock().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Record a golden-cache lookup: hit = a profiling run was avoided.
fn note_lookup(hit: bool) {
    obs::count(
        if hit {
            obs::Counter::GoldenCacheHits
        } else {
            obs::Counter::GoldenCacheMisses
        },
        1,
    );
    obs::emit(&obs::Event::CacheLookup {
        cache: "golden",
        hit,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilim_apps::App;

    #[test]
    fn golden_run_is_reproducible() {
        let spec = App::Cg.default_spec();
        let a = GoldenRun::measure(&spec, 2);
        let b = GoldenRun::measure(&spec, 2);
        assert!(a.output.identical(&b.output));
        assert_eq!(a.profiles, b.profiles);
    }

    #[test]
    fn profiles_cover_all_ranks_and_ops() {
        let run = GoldenRun::measure(&App::Cg.default_spec(), 4);
        assert_eq!(run.profiles.len(), 4);
        assert!(
            run.injectable_total() > 10_000,
            "{}",
            run.injectable_total()
        );
        // CG's recursive-doubling combines are a small parallel-unique part.
        let share = run.unique_share();
        assert!(share > 0.0 && share < 0.05, "share = {share}");
    }

    #[test]
    fn serial_run_has_no_parallel_unique_ops() {
        let run = GoldenRun::measure(&App::Cg.default_spec(), 1);
        assert_eq!(run.injectable(Region::ParallelUnique), 0);
    }

    #[test]
    fn store_caches() {
        let store = GoldenStore::new();
        let spec = App::Lu.default_spec();
        let a = store.get(&spec, 2);
        let b = store.get(&spec, 2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.len(), 1);
        let _c = store.get(&spec, 4);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn op_cap_exceeds_fault_free_needs() {
        let run = GoldenRun::measure(&App::Mg.default_spec(), 1);
        assert!(run.op_cap() > run.profiles[0].total());
    }
}
