//! Fault-free golden runs: the reference every fault-injection test is
//! classified against, and the profile the injection sample space is
//! drawn from.

use parking_lot::Mutex;
use resilim_apps::{AppOutput, ProblemSpec};
use resilim_inject::{OpMask, OpProfile, RankCtx, Region};
use resilim_obs as obs;
use resilim_simmpi::World;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A fault-free run of one `(problem, scale, mask)` deployment.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// The problem.
    pub spec: ProblemSpec,
    /// Rank count.
    pub procs: usize,
    /// The injectable-op mask the profile's index space was counted with.
    pub op_mask: OpMask,
    /// Rank 0's digest (identical on every rank in a fault-free run).
    pub output: AppOutput,
    /// Per-rank dynamic-op profiles.
    pub profiles: Vec<OpProfile>,
    /// Wall-clock duration of the fault-free run.
    pub wall: Duration,
}

impl GoldenRun {
    /// Execute the fault-free profiling run with the paper's default mask.
    pub fn measure(spec: &ProblemSpec, procs: usize) -> GoldenRun {
        GoldenRun::measure_masked(spec, procs, OpMask::FP_ARITH)
    }

    /// Execute the fault-free profiling run, counting the injection index
    /// space over `mask`.
    pub fn measure_masked(spec: &ProblemSpec, procs: usize, mask: OpMask) -> GoldenRun {
        let world = World::new(procs);
        let start = Instant::now();
        let spec_clone = spec.clone();
        let results = world.run_with_ctx(
            move |rank| Some(RankCtx::profiling(rank).with_op_mask(mask)),
            move |comm| spec_clone.run_rank(comm),
        );
        let wall = start.elapsed();
        let mut output = None;
        let mut profiles = Vec::with_capacity(procs);
        for r in results {
            let out = match r.result {
                Ok(o) => o,
                Err(p) => panic!(
                    "fault-free run of {:?} at p={procs} failed on rank {}: {}",
                    spec.app(),
                    r.rank,
                    p.message
                ),
            };
            if r.rank == 0 {
                output = Some(out);
            }
            profiles.push(r.ctx_report.expect("profiling ctx installed").profile);
        }
        GoldenRun {
            spec: spec.clone(),
            procs,
            op_mask: mask,
            output: output.expect("rank 0 reported"),
            profiles,
            wall,
        }
    }

    /// Total injectable ops in a region across all ranks.
    pub fn injectable(&self, region: Region) -> u64 {
        self.profiles.iter().map(|p| p.injectable(region)).sum()
    }

    /// Total injectable ops across ranks and regions.
    pub fn injectable_total(&self) -> u64 {
        self.profiles.iter().map(|p| p.injectable_total()).sum()
    }

    /// The parallel-unique share of injectable ops (Table 1's quantity;
    /// `prob₂` of Eq. 1).
    pub fn unique_share(&self) -> f64 {
        let total = self.injectable_total();
        if total == 0 {
            return 0.0;
        }
        self.injectable(Region::ParallelUnique) as f64 / total as f64
    }

    /// Hang-guard budget per rank: generously above the fault-free op
    /// count, so only genuinely runaway executions trip it.
    pub fn op_cap(&self) -> u64 {
        let max_ops = self.profiles.iter().map(|p| p.total()).max().unwrap_or(0);
        max_ops * 8 + 100_000
    }
}

/// Process-wide cache of golden runs, keyed by `(problem, scale)`.
///
/// Campaigns re-classify thousands of tests against the same golden run;
/// measuring it once per deployment keeps the harness O(tests).
#[derive(Debug, Default)]
pub struct GoldenStore {
    cache: Mutex<HashMap<(String, usize, OpMask), Arc<GoldenRun>>>,
}

impl GoldenStore {
    /// Empty store.
    pub fn new() -> GoldenStore {
        GoldenStore::default()
    }

    /// Fetch (measuring on first use) the golden run for a deployment,
    /// with the paper's default injectable mask.
    pub fn get(&self, spec: &ProblemSpec, procs: usize) -> Arc<GoldenRun> {
        self.get_masked(spec, procs, OpMask::FP_ARITH)
    }

    /// Fetch (measuring on first use) the golden run for a deployment
    /// under an explicit injectable mask.
    pub fn get_masked(&self, spec: &ProblemSpec, procs: usize, mask: OpMask) -> Arc<GoldenRun> {
        let key = (spec.cache_key(), procs, mask);
        if let Some(hit) = self.cache.lock().get(&key) {
            obs::count(obs::Counter::GoldenCacheHits, 1);
            obs::emit(&obs::Event::CacheLookup {
                cache: "golden",
                hit: true,
            });
            return Arc::clone(hit);
        }
        obs::count(obs::Counter::GoldenCacheMisses, 1);
        obs::emit(&obs::Event::CacheLookup {
            cache: "golden",
            hit: false,
        });
        // Measure outside the lock (single-threaded campaigns anyway).
        let run = Arc::new(GoldenRun::measure_masked(spec, procs, mask));
        self.cache.lock().insert(key, Arc::clone(&run));
        run
    }

    /// Number of cached runs.
    pub fn len(&self) -> usize {
        self.cache.lock().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilim_apps::App;

    #[test]
    fn golden_run_is_reproducible() {
        let spec = App::Cg.default_spec();
        let a = GoldenRun::measure(&spec, 2);
        let b = GoldenRun::measure(&spec, 2);
        assert!(a.output.identical(&b.output));
        assert_eq!(a.profiles, b.profiles);
    }

    #[test]
    fn profiles_cover_all_ranks_and_ops() {
        let run = GoldenRun::measure(&App::Cg.default_spec(), 4);
        assert_eq!(run.profiles.len(), 4);
        assert!(
            run.injectable_total() > 10_000,
            "{}",
            run.injectable_total()
        );
        // CG's recursive-doubling combines are a small parallel-unique part.
        let share = run.unique_share();
        assert!(share > 0.0 && share < 0.05, "share = {share}");
    }

    #[test]
    fn serial_run_has_no_parallel_unique_ops() {
        let run = GoldenRun::measure(&App::Cg.default_spec(), 1);
        assert_eq!(run.injectable(Region::ParallelUnique), 0);
    }

    #[test]
    fn store_caches() {
        let store = GoldenStore::new();
        let spec = App::Lu.default_spec();
        let a = store.get(&spec, 2);
        let b = store.get(&spec, 2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.len(), 1);
        let _c = store.get(&spec, 4);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn op_cap_exceeds_fault_free_needs() {
        let run = GoldenRun::measure(&App::Mg.default_spec(), 1);
        assert!(run.op_cap() > run.profiles[0].total());
    }
}
