#![warn(missing_docs)]
//! # resilim-serve
//!
//! The campaign *service*: a persistent daemon (`resilim serve`) that
//! accepts campaign submissions from many clients over a unix-domain
//! socket and schedules their trials concurrently over one shared
//! world pool, golden cache, and trial ledger.
//!
//! The one-shot CLI reprofiles golden runs, rebuilds worker pools, and
//! re-reads the ledger on every invocation; a long-lived experiment
//! session (sweeps, CI matrices, several users on one box) pays that
//! setup once by submitting to a daemon instead. The layers:
//!
//! * [`protocol`] — the versioned JSON-lines wire vocabulary
//!   ([`protocol::Request`] / [`protocol::Response`]) and the
//!   [`protocol::SubmitSpec`] ⇄ [`resilim_harness::CampaignSpec`]
//!   translation. Plain named structs with string discriminators, so
//!   any JSON producer can speak it.
//! * [`scheduler`] — the socket-free core: worker threads round-robin
//!   trial admission across active campaigns (fair share with
//!   per-campaign backpressure), each campaign streaming its completed
//!   trials through the same deterministic reorder-buffer pipeline the
//!   one-shot runner uses — so per-campaign results are bitwise
//!   identical to solo runs by construction.
//! * [`daemon`] — the unix-socket front end: connection handling, the
//!   durable submission journal (restart resume), and graceful
//!   drain-on-shutdown (SIGTERM or a `shutdown` request).
//! * [`client`] — the client side the `resilim submit`/`status`
//!   subcommands and the `serve-identity` check oracle connect with.
//!
//! Everything is `std` + workspace shims: no async runtime, no HTTP —
//! one thread per connection, a JSON object per line.

pub mod client;
pub mod daemon;
pub mod protocol;
pub mod scheduler;

pub use client::Client;
pub use daemon::{Daemon, ServeConfig};
pub use protocol::{CampaignStatus, Request, Response, SubmitSpec, PROTOCOL_VERSION};
pub use scheduler::{CampaignState, Scheduler, WatchEvent};
