//! The client side of the wire protocol: what `resilim submit`,
//! `resilim status`, the CI smoke test, and the `serve-identity` check
//! oracle use to talk to a daemon.

use crate::protocol::{self, Request, Response, SubmitSpec};
use crate::scheduler::CampaignState;
use resilim_harness::CampaignSummary;
use std::io::{BufRead, BufReader};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// A connection to a `resilim serve` daemon.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connect to the daemon at `socket`.
    pub fn connect(socket: impl AsRef<Path>) -> Result<Client, String> {
        let socket = socket.as_ref();
        let stream = UnixStream::connect(socket).map_err(|e| {
            format!(
                "connect {}: {e} (is `resilim serve` running?)",
                socket.display()
            )
        })?;
        let writer = stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Connect, retrying until the daemon's socket appears (used by
    /// tests and the CI smoke step, which race daemon startup).
    pub fn connect_retry(socket: impl AsRef<Path>, timeout: Duration) -> Result<Client, String> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(&socket) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Send one request line.
    pub fn send(&mut self, req: &Request) -> Result<(), String> {
        protocol::write_line(&mut self.writer, req).map_err(|e| format!("send: {e}"))
    }

    /// Read one response line.
    pub fn recv(&mut self) -> Result<Response, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("daemon closed the connection".into()),
            Ok(_) => protocol::parse_line(&line),
            Err(e) => Err(format!("recv: {e}")),
        }
    }

    /// One request, one response.
    pub fn call(&mut self, req: &Request) -> Result<Response, String> {
        self.send(req)?;
        self.recv()
    }

    /// Submit a campaign; returns `(id, deduped)`.
    pub fn submit(&mut self, spec: SubmitSpec) -> Result<(u64, bool), String> {
        let resp = self.call(&Request::submit(spec))?;
        match resp.kind.as_str() {
            "submitted" => Ok((
                resp.id.ok_or("submitted without id")?,
                resp.deduped.unwrap_or(false),
            )),
            _ => Err(resp
                .message
                .unwrap_or_else(|| format!("unexpected response kind {:?}", resp.kind))),
        }
    }

    /// Watch campaign `id` to completion, invoking `progress` on each
    /// tick; returns the terminal state and (when done) the summary.
    pub fn watch(
        &mut self,
        id: u64,
        mut progress: impl FnMut(usize, usize),
    ) -> Result<(CampaignState, Option<CampaignSummary>), String> {
        self.send(&Request::watch(id))?;
        loop {
            let resp = self.recv()?;
            match resp.kind.as_str() {
                "progress" => {
                    progress(resp.done.unwrap_or(0), resp.total.unwrap_or(0));
                }
                "done" => {
                    let state = match resp.state.as_deref() {
                        Some("cancelled") => CampaignState::Cancelled,
                        _ => CampaignState::Done,
                    };
                    return Ok((state, resp.summary));
                }
                "error" => {
                    return Err(resp.message.unwrap_or_else(|| "daemon error".into()));
                }
                other => return Err(format!("unexpected response kind {other:?}")),
            }
        }
    }

    /// Submit and watch to completion (the `resilim submit --watch`
    /// path).
    pub fn submit_and_wait(
        &mut self,
        spec: SubmitSpec,
    ) -> Result<(u64, Option<CampaignSummary>), String> {
        let (id, _deduped) = self.submit(spec)?;
        let (_state, summary) = self.watch(id, |_, _| {})?;
        Ok((id, summary))
    }

    /// Ask the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), String> {
        let resp = self.call(&Request::shutdown())?;
        match resp.kind.as_str() {
            "ok" => Ok(()),
            _ => Err(resp.message.unwrap_or_else(|| "shutdown refused".into())),
        }
    }
}
