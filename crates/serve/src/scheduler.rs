//! The multi-campaign trial scheduler: fair-share admission of many
//! concurrent campaigns' trials over one shared worker pool.
//!
//! ## Architecture
//!
//! A fixed set of worker threads pulls *single trials* from a registry
//! of active campaigns. Admission is round-robin across campaigns with
//! two per-campaign brakes:
//!
//! * **fair share** — a campaign may hold at most
//!   `max(1, workers / active_campaigns)` trials in flight, so a
//!   10 000-trial campaign cannot starve a 50-trial one submitted
//!   after it; when only one campaign has work it gets every worker.
//! * **reorder window** — a campaign may run at most
//!   [`REORDER_WINDOW`] trials ahead of its in-order delivery cursor,
//!   bounding the reorder buffer (and keeping adaptive-stop campaigns
//!   from racing far past their stopping point).
//!
//! ## Determinism
//!
//! Each campaign's completed trials flow through its own
//! [`ReorderBuffer`] into the same consumers the one-shot
//! [`CampaignRunner`] wires ([`CampaignAccumulator`], ledger append,
//! obs trial events), and each trial is executed by the
//! [`TrialExecutor`] the runner itself builds — so a campaign's final
//! aggregate is bitwise identical to a solo `resilim campaign` run of
//! the same spec, no matter how many other campaigns it shared the
//! pool with or in what order the workers interleaved them.

use parking_lot::{Condvar, Mutex};
use resilim_harness::campaign::{ObsTrialConsumer, ReorderBuffer};
use resilim_harness::{
    CampaignAccumulator, CampaignResult, CampaignRunner, CampaignSpec, CampaignSummary,
    FeatureStore, TrialConsumer, TrialExecutor, TrialLedger, TrialRecord,
};
use resilim_obs as obs;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How many trials a campaign may run ahead of its in-order delivery
/// cursor. Bounds per-campaign reorder-buffer memory and the number of
/// wasted trials after an adaptive stop fires.
pub const REORDER_WINDOW: usize = 64;

/// A campaign's lifecycle state in the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignState {
    /// Trials are pending or in flight.
    Running,
    /// All trials delivered (or an adaptive stop fired); the summary
    /// is final.
    Done,
    /// A client cancelled the campaign before completion.
    Cancelled,
}

impl CampaignState {
    /// The wire spelling (`running`/`done`/`cancelled`).
    pub fn as_str(self) -> &'static str {
        match self {
            CampaignState::Running => "running",
            CampaignState::Done => "done",
            CampaignState::Cancelled => "cancelled",
        }
    }
}

/// One event on a campaign's watch stream.
#[derive(Debug, Clone)]
pub enum WatchEvent {
    /// `done` of `total` trials delivered so far.
    Progress {
        /// Trials delivered in order.
        done: usize,
        /// Trial ceiling.
        total: usize,
    },
    /// The campaign reached a terminal state.
    Terminal {
        /// Final state (never [`CampaignState::Running`]).
        state: CampaignState,
        /// The final aggregates ([`CampaignState::Done`] only).
        summary: Option<CampaignSummary>,
    },
}

/// One registered campaign.
struct Entry {
    spec: CampaignSpec,
    exec: Arc<TrialExecutor>,
    /// Trial indices this daemon must still execute (not resumed).
    pending: Vec<usize>,
    /// Position in `pending` of the next trial to claim.
    next: usize,
    /// Claimed trials whose records have not come back yet.
    in_flight: usize,
    /// Freshly executed records delivered in order (excludes resumed).
    delivered_fresh: usize,
    buffer: ReorderBuffer,
    /// `Some` while running; taken at finalization.
    acc: Option<CampaignAccumulator>,
    ledger: Option<TrialLedger>,
    /// Per-trial feature persistence (`<store>/features`), when durable.
    feature_store: Option<FeatureStore>,
    obs_sink: ObsTrialConsumer,
    /// An adaptive stop rule fired; the delivered prefix is final.
    stopped: bool,
    state: CampaignState,
    summary: Option<CampaignSummary>,
    watchers: Vec<mpsc::Sender<WatchEvent>>,
    started: Instant,
    metrics_before: obs::MetricsSnapshot,
}

impl Entry {
    fn id(&self) -> u64 {
        self.exec.campaign_id()
    }

    /// Whether the scheduler may admit another trial of this campaign.
    fn claimable(&self, fair_share: usize) -> bool {
        self.state == CampaignState::Running
            && !self.stopped
            && self.next < self.pending.len()
            && self.in_flight < fair_share
            // in_flight + parked-out-of-order records; see module doc.
            && self.next - self.delivered_fresh < REORDER_WINDOW
    }

    /// Whether this campaign still has admissible work (for the fair
    /// share's active-campaign count).
    fn has_work(&self) -> bool {
        self.state == CampaignState::Running && !self.stopped && self.next < self.pending.len()
    }

    /// Push one completed record and deliver everything that became
    /// in-order; finalize if the campaign reached its end.
    fn deliver(&mut self, rec: TrialRecord) {
        self.deliver_batch(std::iter::once(rec));
    }

    /// Push a batch of completed records (one registry-lock hold) and
    /// deliver everything that became in-order; finalize if the
    /// campaign reached its end. Delivery order — and therefore every
    /// aggregate and the adaptive stop position — is identical to
    /// delivering the records one at a time.
    fn deliver_batch(&mut self, records: impl IntoIterator<Item = TrialRecord>) {
        if self.state != CampaignState::Running || self.stopped {
            // A late record of a cancelled or already-stopped campaign:
            // dropped, exactly like the one-shot pipeline after a stop.
            return;
        }
        for rec in records {
            self.buffer.push(rec);
        }
        // Ledger and feature-store appends for this delivery are
        // batched into one write each (order within the batch is the
        // delivery order, so the file contents are identical to
        // unbatched appends).
        let mut fresh = Vec::new();
        let mut fresh_features = Vec::new();
        while !self.stopped {
            let Some(ready) = self.buffer.pop_ready() else {
                break;
            };
            let stop = self.acc.as_mut().expect("running campaign").consume(&ready);
            if !ready.resumed {
                if self.ledger.is_some() {
                    fresh.push((ready.index, ready.outcome, ready.attempts));
                }
                if self.feature_store.is_some() {
                    if let Some(features) = ready.features {
                        fresh_features.push((ready.index, features));
                    }
                }
                self.obs_sink.consume(&ready);
                self.delivered_fresh += 1;
            }
            let progress = WatchEvent::Progress {
                done: self.buffer.delivered(),
                total: self.spec.tests,
            };
            self.watchers.retain(|w| w.send(progress.clone()).is_ok());
            if stop {
                self.stopped = true;
            }
        }
        if let Some(ledger) = &self.ledger {
            ledger.append_batch(&fresh);
        }
        if let Some(store) = &self.feature_store {
            store.append_batch(&fresh_features);
        }
        if self.stopped || self.buffer.is_drained() {
            self.finalize();
        }
    }

    /// Seal the campaign: fold the accumulator into the final summary
    /// via the same [`CampaignResult`] → [`CampaignSummary`] path the
    /// CLI takes, flush the ledger, and notify watchers.
    fn finalize(&mut self) {
        debug_assert_eq!(self.state, CampaignState::Running);
        let delivered = self.buffer.delivered();
        if self.stopped {
            obs::count(obs::Counter::CampaignsStoppedEarly, 1);
            obs::count(
                obs::Counter::TrialsSavedByStopping,
                (self.spec.tests - delivered) as u64,
            );
            if obs::enabled() {
                obs::emit(&obs::Event::CampaignEarlyStop {
                    campaign: self.id(),
                    at_trial: delivered,
                    planned: self.spec.tests,
                });
            }
        }
        let (outcomes, features, fi, prop, by_contam, uncontaminated) =
            self.acc.take().expect("finalize once").into_parts();
        let result = CampaignResult {
            procs: self.spec.procs,
            fi,
            prop,
            by_contam,
            uncontaminated,
            outcomes,
            features,
            stopped_early: self.stopped,
            wall: self.started.elapsed(),
            golden: Arc::clone(self.exec.golden()),
            metrics: obs::MetricsSnapshot::capture().delta(&self.metrics_before),
        };
        self.summary = Some(CampaignSummary::of(&self.spec, &result));
        self.state = CampaignState::Done;
        if let Some(ledger) = &self.ledger {
            ledger.sync();
        }
        if let Some(store) = &self.feature_store {
            store.sync();
        }
        obs::count(obs::Counter::ServeCampaignsDone, 1);
        obs::gauge_add(obs::Gauge::ServeActiveCampaigns, -1);
        if obs::enabled() {
            obs::emit(&obs::Event::CampaignEnd {
                campaign: self.id(),
                wall_us: obs::as_micros(self.started.elapsed()),
                trials: delivered,
            });
            obs::emit(&obs::Event::ServeCampaignDone {
                id: self.id(),
                trials: delivered,
                state: "done",
            });
        }
        let terminal = WatchEvent::Terminal {
            state: CampaignState::Done,
            summary: self.summary.clone(),
        };
        self.watchers.retain(|w| w.send(terminal.clone()).is_ok());
        self.watchers.clear();
    }

    fn status(&self) -> crate::protocol::CampaignStatus {
        crate::protocol::CampaignStatus {
            id: self.id(),
            app: self.spec.spec.app().name().to_string(),
            procs: self.spec.procs,
            errors: self.spec.errors.cli_name(),
            tests: self.spec.tests,
            seed: self.spec.seed,
            state: self.state.as_str().to_string(),
            done: self.buffer.delivered(),
            total: self.spec.tests,
        }
    }
}

/// Registry of campaigns plus the round-robin admission cursor.
struct State {
    entries: BTreeMap<u64, Entry>,
    /// Aggregation identity ([`CampaignSpec::cache_key`]) → campaign
    /// id, for idempotent submission.
    by_key: HashMap<String, u64>,
    /// Id of the campaign the last claim was admitted from.
    rr_last: u64,
}

struct Shared {
    runner: CampaignRunner,
    state: Mutex<State>,
    cv: Condvar,
    /// Workers stop claiming new trials once set; in-flight trials
    /// still complete and deliver (graceful drain).
    shutdown: AtomicBool,
    workers: usize,
    /// Trials a worker claims (and later delivers) per admission.
    batch: usize,
    /// Ledger directory (`<store>/ledger`), when durable.
    ledger_dir: Option<PathBuf>,
    /// Feature-store directory (`<store>/features`), when durable.
    feature_dir: Option<PathBuf>,
}

impl Shared {
    /// Claim the next admissible `(campaign, trials)` batch, round-robin
    /// across campaigns starting after the last admitted one. Up to
    /// [`Shared::batch`] consecutive trials of one campaign are claimed
    /// at once (still bounded by the fair share and the reorder
    /// window), amortizing the registry lock and admission bookkeeping
    /// per trial.
    fn claim(&self, st: &mut State) -> Option<(u64, Arc<TrialExecutor>, Vec<usize>)> {
        let active = st.entries.values().filter(|e| e.has_work()).count();
        if active == 0 {
            return None;
        }
        let fair_share = (self.workers / active).max(1);
        // Two passes: ids strictly after the cursor, then the wrap.
        let ids: Vec<u64> = st
            .entries
            .range(st.rr_last + 1..)
            .map(|(&id, _)| id)
            .chain(st.entries.range(..=st.rr_last).map(|(&id, _)| id))
            .collect();
        for id in ids {
            let entry = st.entries.get_mut(&id).expect("listed id");
            let mut tests = Vec::new();
            while tests.len() < self.batch && entry.claimable(fair_share) {
                tests.push(entry.pending[entry.next]);
                entry.next += 1;
                entry.in_flight += 1;
            }
            if !tests.is_empty() {
                st.rr_last = id;
                return Some((id, Arc::clone(&entry.exec), tests));
            }
        }
        None
    }
}

/// The campaign scheduler: a shared [`CampaignRunner`] (golden cache +
/// world pool), a worker pool, and the campaign registry. Socket-free —
/// the daemon layers the wire protocol on top, and tests drive it
/// directly.
pub struct Scheduler {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Start `workers` trial workers over `runner`. With a `store`
    /// directory, every campaign is ledgered under `<store>/ledger`
    /// and submissions resume whatever the ledger already holds.
    /// Admission batch size comes from the runner
    /// ([`CampaignRunner::with_trial_batch`]); batching is
    /// observationally invisible (see `Entry::deliver_batch`).
    pub fn new(runner: CampaignRunner, workers: usize, store: Option<PathBuf>) -> Scheduler {
        let workers = workers.max(1);
        let batch = runner.trial_batch();
        let shared = Arc::new(Shared {
            runner,
            state: Mutex::new(State {
                entries: BTreeMap::new(),
                by_key: HashMap::new(),
                rr_last: 0,
            }),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers,
            batch,
            ledger_dir: store.as_ref().map(|dir| dir.join("ledger")),
            feature_dir: store.map(|dir| dir.join("features")),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Scheduler {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// The golden-cache-sharing runner (e.g. to pre-warm goldens).
    pub fn runner(&self) -> &CampaignRunner {
        &self.shared.runner
    }

    /// Register a campaign. Returns `(id, deduped)`: a spec whose
    /// aggregation identity matches an already-registered campaign
    /// (running *or* finished) joins it instead of running again.
    /// With a store, trials the ledger already holds are resumed, so
    /// resubmitting a completed deployment to a fresh daemon finishes
    /// without executing a single trial.
    pub fn submit(&self, spec: &CampaignSpec) -> Result<(u64, bool), String> {
        obs::count(obs::Counter::ServeSubmits, 1);
        let key = spec.cache_key();
        if let Some(id) = self.try_dedup(&key, spec) {
            return Ok((id, true));
        }
        // Golden profiling (or cache load) happens outside the registry
        // lock; concurrent identical submissions single-flight inside
        // the golden store and collapse at registration below.
        let exec = Arc::new(self.shared.runner.trial_executor(spec));
        let metrics_before = obs::MetricsSnapshot::capture();
        let (ledger, mut resumed) = match &self.shared.ledger_dir {
            Some(dir) => (
                TrialLedger::open(dir, &spec.ledger_key(), spec.seed).ok(),
                TrialLedger::load(dir, &spec.ledger_key(), spec.seed),
            ),
            None => (None, HashMap::new()),
        };
        resumed.retain(|&t, _| t < spec.tests);
        let (feature_store, resumed_features) = match &self.shared.feature_dir {
            Some(dir) => (
                FeatureStore::open(dir, &spec.ledger_key(), spec.seed).ok(),
                FeatureStore::load(dir, &spec.ledger_key(), spec.seed),
            ),
            None => (None, HashMap::new()),
        };
        let owned: Vec<usize> = (0..spec.tests).collect();
        let pending: Vec<usize> = owned
            .iter()
            .copied()
            .filter(|t| !resumed.contains_key(t))
            .collect();

        let mut st = self.shared.state.lock();
        if self.shared.shutdown.load(Ordering::Relaxed) {
            return Err("daemon is shutting down".into());
        }
        if let Some(&id) = st.by_key.get(&key) {
            drop(st);
            obs::count(obs::Counter::ServeDedupHits, 1);
            self.note_submit(id, spec, true);
            return Ok((id, true));
        }
        let id = exec.campaign_id();
        obs::count(
            obs::Counter::TrialsResumed,
            (owned.len() - pending.len()) as u64,
        );
        obs::gauge_add(obs::Gauge::ServeActiveCampaigns, 1);
        self.note_submit(id, spec, false);
        if obs::enabled() {
            obs::emit(&obs::Event::CampaignStart {
                campaign: id,
                app: spec.spec.app().name().to_string(),
                procs: spec.procs,
                tests: spec.tests,
                errors: format!("{:?}", spec.errors),
            });
        }
        let mut entry = Entry {
            spec: spec.clone(),
            exec,
            pending,
            next: 0,
            in_flight: 0,
            delivered_fresh: 0,
            buffer: ReorderBuffer::new(owned.clone()),
            acc: Some(CampaignAccumulator::new(spec.procs, spec.stop)),
            ledger,
            feature_store,
            obs_sink: ObsTrialConsumer::new(id),
            stopped: false,
            state: CampaignState::Running,
            summary: None,
            watchers: Vec::new(),
            started: Instant::now(),
            metrics_before,
        };
        // Seed the ledger's records first: they may complete (or
        // adaptively stop) the campaign before any worker runs.
        for &t in &owned {
            if let Some(outcome) = resumed.get(&t) {
                entry.deliver(TrialRecord {
                    index: t,
                    outcome: *outcome,
                    attempts: 0,
                    resumed: true,
                    latency_us: 0,
                    features: resumed_features.get(&t).copied(),
                });
            }
        }
        st.by_key.insert(key, id);
        st.entries.insert(id, entry);
        self.shared.cv.notify_all();
        Ok((id, false))
    }

    /// First-pass dedup check (fast path, registry lock only).
    fn try_dedup(&self, key: &str, spec: &CampaignSpec) -> Option<u64> {
        let st = self.shared.state.lock();
        let id = *st.by_key.get(key)?;
        drop(st);
        obs::count(obs::Counter::ServeDedupHits, 1);
        self.note_submit(id, spec, true);
        Some(id)
    }

    fn note_submit(&self, id: u64, spec: &CampaignSpec, deduped: bool) {
        if obs::enabled() {
            obs::emit(&obs::Event::ServeSubmit {
                id,
                app: spec.spec.app().name().to_string(),
                procs: spec.procs,
                tests: spec.tests,
                deduped,
            });
        }
    }

    /// One campaign's status.
    pub fn status(&self, id: u64) -> Option<crate::protocol::CampaignStatus> {
        self.shared.state.lock().entries.get(&id).map(Entry::status)
    }

    /// The spec campaign `id` was registered with (for journaling).
    pub fn submitted_spec(&self, id: u64) -> Option<CampaignSpec> {
        self.shared
            .state
            .lock()
            .entries
            .get(&id)
            .map(|e| e.spec.clone())
    }

    /// A finished campaign's final aggregates.
    pub fn summary(&self, id: u64) -> Option<CampaignSummary> {
        self.shared
            .state
            .lock()
            .entries
            .get(&id)
            .and_then(|e| e.summary.clone())
    }

    /// Every known campaign's status, in id order.
    pub fn list(&self) -> Vec<crate::protocol::CampaignStatus> {
        self.shared
            .state
            .lock()
            .entries
            .values()
            .map(Entry::status)
            .collect()
    }

    /// Cancel a running campaign. Returns `false` for unknown ids;
    /// cancelling an already-terminal campaign is a no-op `true`.
    /// In-flight trials finish harmlessly (their records are dropped);
    /// the ledger keeps everything delivered so far, so a later
    /// resubmission resumes instead of starting over.
    pub fn cancel(&self, id: u64) -> bool {
        let mut st = self.shared.state.lock();
        let Some(entry) = st.entries.get_mut(&id) else {
            return false;
        };
        if entry.state != CampaignState::Running {
            return true;
        }
        entry.state = CampaignState::Cancelled;
        if let Some(ledger) = &entry.ledger {
            ledger.sync();
        }
        if let Some(store) = &entry.feature_store {
            store.sync();
        }
        obs::count(obs::Counter::ServeCampaignsCancelled, 1);
        obs::gauge_add(obs::Gauge::ServeActiveCampaigns, -1);
        if obs::enabled() {
            obs::emit(&obs::Event::ServeCampaignDone {
                id,
                trials: entry.buffer.delivered(),
                state: "cancelled",
            });
        }
        let terminal = WatchEvent::Terminal {
            state: CampaignState::Cancelled,
            summary: None,
        };
        entry.watchers.retain(|w| w.send(terminal.clone()).is_ok());
        entry.watchers.clear();
        self.shared.cv.notify_all();
        true
    }

    /// Subscribe to a campaign's progress stream. A campaign already
    /// in a terminal state yields its terminal event immediately.
    pub fn watch(&self, id: u64) -> Option<mpsc::Receiver<WatchEvent>> {
        let (tx, rx) = mpsc::channel();
        let mut st = self.shared.state.lock();
        let entry = st.entries.get_mut(&id)?;
        if entry.state == CampaignState::Running {
            entry.watchers.push(tx);
        } else {
            let _ = tx.send(WatchEvent::Terminal {
                state: entry.state,
                summary: entry.summary.clone(),
            });
        }
        Some(rx)
    }

    /// Block until campaign `id` reaches a terminal state (or `timeout`
    /// passes). Returns the state reached, `None` for unknown ids or
    /// on timeout.
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<CampaignState> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock();
        loop {
            match st.entries.get(&id) {
                None => return None,
                Some(e) if e.state != CampaignState::Running => return Some(e.state),
                Some(_) => {
                    if self.shared.cv.wait_until(&mut st, deadline).timed_out() {
                        return None;
                    }
                }
            }
        }
    }

    /// Graceful drain: stop admitting trials, let in-flight trials
    /// finish and deliver, flush every running campaign's ledger, and
    /// join the workers. Idempotent.
    pub fn shutdown(&self) {
        {
            // Flag + wakeup under the registry lock, so a worker cannot
            // check the flag and then sleep through the notification.
            let _st = self.shared.state.lock();
            self.shared.shutdown.store(true, Ordering::Relaxed);
            self.shared.cv.notify_all();
        }
        for handle in self.handles.lock().drain(..) {
            let _ = handle.join();
        }
        let st = self.shared.state.lock();
        for entry in st.entries.values() {
            if entry.state == CampaignState::Running {
                if let Some(ledger) = &entry.ledger {
                    ledger.sync();
                }
                if let Some(store) = &entry.feature_store {
                    store.sync();
                }
            }
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker: claim a batch of trials, run them outside the lock,
/// deliver the records under one lock hold, repeat — across *all*
/// campaigns, interleaved.
fn worker_loop(shared: &Shared) {
    loop {
        let claim = {
            let mut st = shared.state.lock();
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    break None;
                }
                if let Some(claim) = shared.claim(&mut st) {
                    break Some(claim);
                }
                shared.cv.wait(&mut st);
            }
        };
        let Some((id, exec, tests)) = claim else {
            return;
        };
        let mut recs = Vec::with_capacity(tests.len());
        for test in &tests {
            let busy = obs::timer();
            recs.push(exec.run_trial(*test));
            if let Some(busy) = busy {
                obs::count(
                    obs::Counter::WorkerBusyNanos,
                    busy.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                );
            }
        }
        let mut st = shared.state.lock();
        if let Some(entry) = st.entries.get_mut(&id) {
            entry.in_flight -= tests.len();
            entry.deliver_batch(recs);
        }
        // A freed slot (or a finished campaign) may unblock peers.
        shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilim_apps::App;
    use resilim_harness::ErrorSpec;

    fn spec(app: App, procs: usize, tests: usize, seed: u64) -> CampaignSpec {
        CampaignSpec::new(
            app.default_spec(),
            procs,
            ErrorSpec::OneParallel,
            tests,
            seed,
        )
    }

    fn wait_done(s: &Scheduler, id: u64) -> CampaignState {
        s.wait(id, Duration::from_secs(60)).expect("terminal state")
    }

    /// Summaries are bitwise-comparable except for the wall-clock field.
    fn assert_same_measurement(a: &CampaignSummary, b: &CampaignSummary) {
        let mut b = b.clone();
        b.wall_secs = a.wall_secs;
        assert_eq!(*a, b);
    }

    #[test]
    fn single_campaign_matches_solo_run() {
        let s = spec(App::Lu, 2, 12, 3);
        let solo = CampaignSummary::of(&s, &CampaignRunner::new().run_uncached(&s));
        let sched = Scheduler::new(CampaignRunner::new(), 3, None);
        let (id, deduped) = sched.submit(&s).unwrap();
        assert!(!deduped);
        assert_eq!(wait_done(&sched, id), CampaignState::Done);
        assert_same_measurement(&sched.summary(id).unwrap(), &solo);
    }

    #[test]
    fn resubmission_joins_the_existing_campaign() {
        let sched = Scheduler::new(CampaignRunner::new(), 2, None);
        let (a, first) = sched.submit(&spec(App::Cg, 1, 8, 5)).unwrap();
        let (b, second) = sched.submit(&spec(App::Cg, 1, 8, 5)).unwrap();
        assert!(!first);
        assert!(second);
        assert_eq!(a, b);
        // Still deduped after completion.
        wait_done(&sched, a);
        let (c, third) = sched.submit(&spec(App::Cg, 1, 8, 5)).unwrap();
        assert!(third);
        assert_eq!(a, c);
        // A different seed is a different campaign.
        let (d, fourth) = sched.submit(&spec(App::Cg, 1, 8, 6)).unwrap();
        assert!(!fourth);
        assert_ne!(a, d);
    }

    #[test]
    fn adaptive_stop_matches_solo_run() {
        let adaptive =
            spec(App::Lu, 2, 60, 9).with_stop(resilim_core::StopRule::new(0.3).with_min_tests(8));
        let result = CampaignRunner::new().run_uncached(&adaptive);
        assert!(result.stopped_early);
        let solo = CampaignSummary::of(&adaptive, &result);
        let sched = Scheduler::new(CampaignRunner::new(), 4, None);
        let (id, _) = sched.submit(&adaptive).unwrap();
        assert_eq!(wait_done(&sched, id), CampaignState::Done);
        assert_same_measurement(&sched.summary(id).unwrap(), &solo);
    }

    #[test]
    fn watch_streams_progress_then_terminal() {
        let sched = Scheduler::new(CampaignRunner::new(), 2, None);
        let (id, _) = sched.submit(&spec(App::Lu, 2, 10, 11)).unwrap();
        let rx = sched.watch(id).expect("known id");
        let mut last_done = 0;
        loop {
            match rx.recv_timeout(Duration::from_secs(60)).expect("event") {
                WatchEvent::Progress { done, total } => {
                    assert!(done >= last_done, "monotone progress");
                    assert_eq!(total, 10);
                    last_done = done;
                }
                WatchEvent::Terminal { state, summary } => {
                    assert_eq!(state, CampaignState::Done);
                    assert_eq!(summary.unwrap().tests, 10);
                    break;
                }
            }
        }
        // Watching a finished campaign yields the terminal event.
        let rx = sched.watch(id).unwrap();
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            WatchEvent::Terminal { state, .. } => assert_eq!(state, CampaignState::Done),
            other => panic!("expected terminal, got {other:?}"),
        }
        assert!(sched.watch(9_999_999).is_none());
    }

    #[test]
    fn shutdown_refuses_new_submissions() {
        let sched = Scheduler::new(CampaignRunner::new(), 1, None);
        sched.shutdown();
        assert!(sched.submit(&spec(App::Cg, 1, 4, 1)).is_err());
    }
}
