//! The unix-socket daemon: accepts JSON-lines connections, dispatches
//! requests to the [`Scheduler`], journals submissions for restart
//! resume, and drains gracefully on SIGTERM/SIGINT or a `shutdown`
//! request.
//!
//! ## Durability model
//!
//! Two complementary files under the store directory make the daemon
//! restartable mid-campaign:
//!
//! * the **trial ledger** (shared with the one-shot CLI) records every
//!   completed trial — the expensive state;
//! * the **submission journal** (`submissions.jsonl`, daemon-only)
//!   records which campaigns were asked for — the cheap state.
//!
//! On startup the daemon replays the journal: every submission that was
//! not later cancelled is resubmitted, and the ledger resume inside
//! [`Scheduler::submit`] skips whatever already ran. A daemon killed
//! mid-campaign therefore resumes exactly where it stopped and — because
//! aggregation folds records in owned-index order regardless of which
//! process executed them — finishes with a bitwise-identical summary.

use crate::protocol::{self, Request, Response, SubmitSpec, PROTOCOL_VERSION};
use crate::scheduler::{Scheduler, WatchEvent};
use resilim_harness::CampaignRunner;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Set by the SIGTERM/SIGINT handler; polled by every accept loop.
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::Relaxed);
}

/// Install the termination handler for SIGTERM (15) and SIGINT (2).
///
/// Uses the raw libc `signal` symbol directly — the workspace is
/// offline and vendors no libc crate, and the handler only stores to an
/// atomic (async-signal-safe).
fn install_term_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler: extern "C" fn(i32) = on_term;
    unsafe {
        signal(15, handler as usize);
        signal(2, handler as usize);
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Durable store directory (golden cache, trial ledger, submission
    /// journal). `None` runs fully in memory: no resume, no journal.
    pub store: Option<PathBuf>,
    /// Worker threads shared by all campaigns.
    pub workers: usize,
    /// Trials each worker claims and commits per batch (1 = unbatched;
    /// aggregates are bitwise identical at every batch size).
    pub batch: usize,
}

/// One line of the submission journal.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct JournalLine {
    /// `"submit"` or `"cancel"`.
    op: String,
    spec: SubmitSpec,
}

/// Append-only journal of submissions, replayed on startup.
struct Journal {
    path: PathBuf,
}

impl Journal {
    fn open(store: &Path) -> std::io::Result<Journal> {
        std::fs::create_dir_all(store)?;
        Ok(Journal {
            path: store.join("submissions.jsonl"),
        })
    }

    fn append(&self, line: &JournalLine) {
        let Ok(json) = serde_json::to_string(line) else {
            return;
        };
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
        {
            let _ = writeln!(f, "{json}");
            let _ = f.sync_data();
        }
    }

    /// Submissions that were not later cancelled, in first-seen order.
    fn replay(&self) -> Vec<SubmitSpec> {
        let Ok(text) = std::fs::read_to_string(&self.path) else {
            return Vec::new();
        };
        let mut live: Vec<SubmitSpec> = Vec::new();
        for line in text.lines() {
            let Ok(entry) = protocol::parse_line::<JournalLine>(line) else {
                continue; // torn tail write or foreign line: skip
            };
            match entry.op.as_str() {
                "submit" => {
                    if !live.contains(&entry.spec) {
                        live.push(entry.spec);
                    }
                }
                "cancel" => live.retain(|s| *s != entry.spec),
                _ => {}
            }
        }
        live
    }
}

/// A running daemon handle (in-process embedding: tests, the
/// `serve-identity` oracle). The CLI entry point is [`run`].
pub struct Daemon {
    scheduler: Arc<Scheduler>,
    socket: PathBuf,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Bind `config.socket`, replay the journal, and start accepting
    /// connections on a background thread.
    pub fn spawn(config: ServeConfig) -> Result<Daemon, String> {
        let mut runner = CampaignRunner::new().with_trial_batch(config.batch.max(1));
        let journal = match &config.store {
            Some(store) => {
                runner = runner.with_golden_dir(store.join("golden"));
                Some(Journal::open(store).map_err(|e| format!("store: {e}"))?)
            }
            None => None,
        };
        let scheduler = Arc::new(Scheduler::new(runner, config.workers, config.store.clone()));

        // Bind before replay so a client polling for the socket cannot
        // connect to a half-initialized daemon — the listener exists but
        // nothing is accepted until replay finished.
        if config.socket.exists() {
            std::fs::remove_file(&config.socket)
                .map_err(|e| format!("stale socket {}: {e}", config.socket.display()))?;
        }
        let listener = UnixListener::bind(&config.socket)
            .map_err(|e| format!("bind {}: {e}", config.socket.display()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking: {e}"))?;

        let journal = journal.map(Arc::new);
        if let Some(journal) = &journal {
            for spec in journal.replay() {
                match spec.to_campaign() {
                    Ok(campaign) => {
                        if let Err(e) = scheduler.submit(&campaign) {
                            eprintln!("serve: journal resubmit failed: {e}");
                        }
                    }
                    Err(e) => eprintln!("serve: journal entry invalid: {e}"),
                }
            }
        }

        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let scheduler = Arc::clone(&scheduler);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || accept_loop(&listener, &scheduler, &journal, &shutdown))
        };
        Ok(Daemon {
            scheduler,
            socket: config.socket,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The daemon's scheduler (for in-process inspection in tests).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Wait until the daemon exits (a `shutdown` request or signal).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.finish();
    }

    /// Request shutdown and drain: in-flight trials finish, ledgers
    /// flush, the socket file is removed.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.finish();
    }

    fn finish(&mut self) {
        self.scheduler.shutdown();
        let _ = std::fs::remove_file(&self.socket);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.finish();
    }
}

/// CLI entry point: run a daemon in the foreground until SIGTERM,
/// SIGINT, or a `shutdown` request, then drain and exit cleanly.
pub fn run(config: ServeConfig) -> Result<(), String> {
    install_term_handler();
    TERM.store(false, Ordering::Relaxed);
    let socket = config.socket.clone();
    let daemon = Daemon::spawn(config)?;
    eprintln!("resilim serve: listening on {}", socket.display());
    daemon.join();
    eprintln!("resilim serve: drained, exiting");
    Ok(())
}

/// Accept connections until shutdown is requested (by flag, signal, or
/// a `shutdown` request handled on a connection), then join handlers.
fn accept_loop(
    listener: &UnixListener,
    scheduler: &Arc<Scheduler>,
    journal: &Option<Arc<Journal>>,
    shutdown: &Arc<AtomicBool>,
) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::Relaxed) && !TERM.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let scheduler = Arc::clone(scheduler);
                let journal = journal.clone();
                let shutdown = Arc::clone(shutdown);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(stream, &scheduler, &journal, &shutdown);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => break,
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Serve one connection: a sequence of requests, one JSON object per
/// line, each answered by one (or, for `watch`, a stream of) response
/// lines.
fn handle_connection(
    stream: UnixStream,
    scheduler: &Scheduler,
    journal: &Option<Arc<Journal>>,
    shutdown: &Arc<AtomicBool>,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // Short read timeout so the handler notices daemon shutdown even
    // on an idle connection.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::Relaxed) || TERM.load(Ordering::Relaxed) {
            return;
        }
        // NB: on timeout, `read_line` has already appended any bytes it
        // read into `line` — keep them and retry for the rest.
        match reader.read_line(&mut line) {
            Ok(0) => return, // client hung up
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(_) => return,
        }
        let keep_going = dispatch(line.trim(), &mut writer, scheduler, journal, shutdown);
        line.clear();
        if !keep_going {
            return;
        }
    }
}

/// Handle one request line. Returns `false` when the connection should
/// close (protocol error or daemon shutdown).
fn dispatch(
    line: &str,
    writer: &mut UnixStream,
    scheduler: &Scheduler,
    journal: &Option<Arc<Journal>>,
    shutdown: &Arc<AtomicBool>,
) -> bool {
    if line.is_empty() {
        return true;
    }
    let req: Request = match protocol::parse_line(line) {
        Ok(req) => req,
        Err(e) => {
            let _ = protocol::write_line(writer, &Response::error(e));
            return false;
        }
    };
    if req.v > PROTOCOL_VERSION {
        let _ = protocol::write_line(
            writer,
            &Response::error(format!(
                "protocol v{} not supported (daemon speaks v{PROTOCOL_VERSION})",
                req.v
            )),
        );
        return false;
    }
    match req.cmd.as_str() {
        "submit" => {
            let Some(spec) = req.spec else {
                let _ = protocol::write_line(writer, &Response::error("submit needs a spec"));
                return false;
            };
            let resp = match spec.to_campaign() {
                Ok(campaign) => match scheduler.submit(&campaign) {
                    Ok((id, deduped)) => {
                        if !deduped {
                            if let Some(journal) = journal {
                                journal.append(&JournalLine {
                                    op: "submit".into(),
                                    spec: SubmitSpec::of_campaign(&campaign),
                                });
                            }
                        }
                        Response::submitted(id, deduped)
                    }
                    Err(e) => Response::error(e),
                },
                Err(e) => Response::error(e),
            };
            let _ = protocol::write_line(writer, &resp);
            true
        }
        "status" => {
            let resp = match req.id.and_then(|id| scheduler.status(id)) {
                Some(status) => {
                    let summary = scheduler.summary(status.id);
                    Response::status(status, summary)
                }
                None => Response::error("unknown campaign"),
            };
            let _ = protocol::write_line(writer, &resp);
            true
        }
        "watch" => {
            let Some(rx) = req.id.and_then(|id| scheduler.watch(id)) else {
                let _ = protocol::write_line(writer, &Response::error("unknown campaign"));
                return true;
            };
            let id = req.id.expect("checked above");
            stream_watch(writer, id, &rx, shutdown)
        }
        "cancel" => {
            let resp = match req.id {
                Some(id) if scheduler.cancel(id) => {
                    // Journal the cancel so a restart does not
                    // resurrect the campaign.
                    if let (Some(journal), Some(spec)) = (journal, scheduler.submitted_spec(id)) {
                        journal.append(&JournalLine {
                            op: "cancel".into(),
                            spec: SubmitSpec::of_campaign(&spec),
                        });
                    }
                    Response::ok()
                }
                _ => Response::error("unknown campaign"),
            };
            let _ = protocol::write_line(writer, &resp);
            true
        }
        "list" => {
            let _ = protocol::write_line(writer, &Response::list(scheduler.list()));
            true
        }
        "shutdown" => {
            let _ = protocol::write_line(writer, &Response::ok());
            shutdown.store(true, Ordering::Relaxed);
            false
        }
        other => {
            let _ = protocol::write_line(
                writer,
                &Response::error(format!("unknown command {other:?}")),
            );
            true
        }
    }
}

/// Stream a campaign's watch events as response lines until terminal.
fn stream_watch(
    writer: &mut UnixStream,
    id: u64,
    rx: &mpsc::Receiver<WatchEvent>,
    shutdown: &Arc<AtomicBool>,
) -> bool {
    loop {
        if shutdown.load(Ordering::Relaxed) || TERM.load(Ordering::Relaxed) {
            return false;
        }
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(WatchEvent::Progress { done, total }) => {
                if protocol::write_line(writer, &Response::progress(id, done, total)).is_err() {
                    return false; // watcher hung up
                }
            }
            Ok(WatchEvent::Terminal { state, summary }) => {
                let _ = protocol::write_line(writer, &Response::done(id, state.as_str(), summary));
                return true;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Scheduler dropped the sender without a terminal event
                // (daemon shutting down mid-campaign).
                let _ = protocol::write_line(writer, &Response::error("daemon stopped"));
                return false;
            }
        }
    }
}
