//! The wire vocabulary: versioned JSON-lines requests and responses.
//!
//! Framing is one JSON object per `\n`-terminated line. Every request
//! carries a protocol version `v` and a string command discriminator
//! `cmd`; every response carries `v` and a string `kind`. Payload
//! fields are optional and flat — plain named structs rather than
//! tagged enums, so a hand-written `echo '{...}' | nc -U` request, a
//! jq consumer, and a future client with extra fields all interoperate
//! (unknown fields are ignored, missing optional fields read as null).

use resilim_apps::App;
use resilim_core::StopRule;
use resilim_harness::{CampaignSpec, CampaignSummary, ErrorSpec};
use resilim_inject::FaultModelSpec;
use serde::{Deserialize, Serialize};

/// Wire protocol version. Bump on incompatible changes; the daemon
/// rejects requests with a newer `v` than it speaks.
pub const PROTOCOL_VERSION: u32 = 1;

/// A campaign submission, in CLI vocabulary: the deployment fields the
/// `resilim campaign` command exposes, spelled the way its flags spell
/// them (`errors` is `par`/`ser:N`/`unique`/`multi:K`). Contamination
/// threshold and op mask are not carried — wire campaigns always use
/// the paper defaults, exactly like the CLI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitSpec {
    /// Application name (`cg`, `ft`, ...).
    pub app: String,
    /// Rank count.
    pub procs: usize,
    /// Fault pattern, CLI spelling (see [`ErrorSpec::parse`]).
    pub errors: String,
    /// Trial count (the ceiling when a stop rule is set).
    pub tests: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Adaptive stopping: target Wilson half-width (`--ci`); absent =
    /// fixed `tests` trials.
    pub ci: Option<f64>,
    /// Minimum trials before adaptive stopping may fire
    /// (`--min-tests`); only meaningful with `ci`.
    pub min_tests: Option<u64>,
    /// Fault model, CLI spelling (`--fault-model`; see
    /// [`resilim_inject::FaultModelSpec::parse`]). Absent = the default
    /// single-bit flip, so pre-fault-model clients keep working.
    pub fault_model: Option<String>,
    /// Rank replication (`--replicate`). Absent reads as `false`.
    pub replicate: Option<bool>,
}

impl SubmitSpec {
    /// Validate and translate into the harness [`CampaignSpec`].
    pub fn to_campaign(&self) -> Result<CampaignSpec, String> {
        let app = App::parse(&self.app).ok_or(format!("unknown app '{}'", self.app))?;
        if self.procs == 0 {
            return Err("procs must be >= 1".into());
        }
        if self.procs > app.max_procs() {
            return Err(format!(
                "app '{}' supports at most {} ranks",
                self.app,
                app.max_procs()
            ));
        }
        if self.tests == 0 {
            return Err("tests must be >= 1".into());
        }
        let errors = ErrorSpec::parse(&self.errors, self.procs)?;
        let fault_model = match &self.fault_model {
            None => FaultModelSpec::default(),
            Some(name) => FaultModelSpec::parse(name)?,
        };
        resilim_harness::validate_fault_model(fault_model, errors, self.procs)?;
        let mut spec = CampaignSpec::new(
            app.default_spec(),
            self.procs,
            errors,
            self.tests,
            self.seed,
        )
        .with_fault_model(fault_model)
        .with_replication(self.replicate.unwrap_or(false));
        if let Some(ci) = self.ci {
            if !ci.is_finite() || ci <= 0.0 || ci >= 0.5 {
                return Err("ci must be a half-width in (0, 0.5)".into());
            }
            let mut rule = StopRule::new(ci);
            if let Some(n) = self.min_tests {
                rule = rule.with_min_tests(n);
            }
            spec = spec.with_stop(rule);
        } else if self.min_tests.is_some() {
            return Err("min_tests needs ci".into());
        }
        Ok(spec)
    }

    /// The wire form of a harness spec (inverse of
    /// [`SubmitSpec::to_campaign`] for specs in the CLI vocabulary:
    /// default θ, default op mask, default z).
    pub fn of_campaign(spec: &CampaignSpec) -> SubmitSpec {
        SubmitSpec {
            app: spec.spec.app().name().to_string(),
            procs: spec.procs,
            errors: spec.errors.cli_name(),
            tests: spec.tests,
            seed: spec.seed,
            ci: spec.stop.map(|rule| rule.ci_halfwidth),
            min_tests: spec.stop.map(|rule| rule.min_tests),
            // Defaults read back as `None`, matching a submission that
            // never mentioned the fields (pre-fault-model clients).
            fault_model: (!spec.fault_model.is_default()).then(|| spec.fault_model.cli_name()),
            replicate: spec.replicate.then_some(true),
        }
    }
}

/// One client request (one JSON line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Protocol version ([`PROTOCOL_VERSION`]).
    pub v: u32,
    /// Command: `submit`, `status`, `watch`, `cancel`, `list`, or
    /// `shutdown`.
    pub cmd: String,
    /// The submission (`submit` only).
    pub spec: Option<SubmitSpec>,
    /// Target campaign id (`status`/`watch`/`cancel`).
    pub id: Option<u64>,
}

impl Request {
    fn cmd(cmd: &str) -> Request {
        Request {
            v: PROTOCOL_VERSION,
            cmd: cmd.to_string(),
            spec: None,
            id: None,
        }
    }

    /// Submit a campaign.
    pub fn submit(spec: SubmitSpec) -> Request {
        Request {
            spec: Some(spec),
            ..Request::cmd("submit")
        }
    }

    /// One-shot status of campaign `id`.
    pub fn status(id: u64) -> Request {
        Request {
            id: Some(id),
            ..Request::cmd("status")
        }
    }

    /// Stream progress of campaign `id` until it reaches a terminal
    /// state.
    pub fn watch(id: u64) -> Request {
        Request {
            id: Some(id),
            ..Request::cmd("watch")
        }
    }

    /// Cancel campaign `id`.
    pub fn cancel(id: u64) -> Request {
        Request {
            id: Some(id),
            ..Request::cmd("cancel")
        }
    }

    /// Status of every campaign the daemon knows.
    pub fn list() -> Request {
        Request::cmd("list")
    }

    /// Ask the daemon to drain and exit.
    pub fn shutdown() -> Request {
        Request::cmd("shutdown")
    }
}

/// One campaign's status line (the `status`/`list` payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignStatus {
    /// Daemon-assigned campaign id.
    pub id: u64,
    /// Application name.
    pub app: String,
    /// Rank count.
    pub procs: usize,
    /// Fault pattern, CLI spelling.
    pub errors: String,
    /// Trial ceiling.
    pub tests: usize,
    /// Campaign seed.
    pub seed: u64,
    /// `running`, `done`, or `cancelled`.
    pub state: String,
    /// Trials delivered (aggregated in order) so far.
    pub done: usize,
    /// Total trials planned (= `tests`).
    pub total: usize,
}

/// One daemon response (one JSON line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Protocol version.
    pub v: u32,
    /// Response kind: `submitted`, `status`, `progress`, `done`,
    /// `list`, `ok`, or `error`.
    pub kind: String,
    /// Campaign id the response concerns.
    pub id: Option<u64>,
    /// `submitted`: whether the submission joined an existing campaign.
    pub deduped: Option<bool>,
    /// `status`/`done`: the campaign's state string.
    pub state: Option<String>,
    /// `status`/`progress`: trials delivered so far.
    pub done: Option<usize>,
    /// `status`/`progress`: total trials planned.
    pub total: Option<usize>,
    /// `status`/`done` of a finished campaign: the final aggregates.
    pub summary: Option<CampaignSummary>,
    /// `list`: every campaign's status.
    pub campaigns: Option<Vec<CampaignStatus>>,
    /// `error`: what went wrong.
    pub message: Option<String>,
}

impl Response {
    fn kind(kind: &str) -> Response {
        Response {
            v: PROTOCOL_VERSION,
            kind: kind.to_string(),
            id: None,
            deduped: None,
            state: None,
            done: None,
            total: None,
            summary: None,
            campaigns: None,
            message: None,
        }
    }

    /// A submission was accepted (or deduplicated onto `id`).
    pub fn submitted(id: u64, deduped: bool) -> Response {
        Response {
            id: Some(id),
            deduped: Some(deduped),
            ..Response::kind("submitted")
        }
    }

    /// One campaign's status, with the final summary once terminal.
    pub fn status(status: CampaignStatus, summary: Option<CampaignSummary>) -> Response {
        Response {
            id: Some(status.id),
            state: Some(status.state.clone()),
            done: Some(status.done),
            total: Some(status.total),
            summary,
            ..Response::kind("status")
        }
    }

    /// A watch-stream progress tick.
    pub fn progress(id: u64, done: usize, total: usize) -> Response {
        Response {
            id: Some(id),
            done: Some(done),
            total: Some(total),
            ..Response::kind("progress")
        }
    }

    /// A watch-stream terminal line.
    pub fn done(id: u64, state: &str, summary: Option<CampaignSummary>) -> Response {
        Response {
            id: Some(id),
            state: Some(state.to_string()),
            summary,
            ..Response::kind("done")
        }
    }

    /// The full campaign listing.
    pub fn list(campaigns: Vec<CampaignStatus>) -> Response {
        Response {
            campaigns: Some(campaigns),
            ..Response::kind("list")
        }
    }

    /// A bare acknowledgement.
    pub fn ok() -> Response {
        Response::kind("ok")
    }

    /// A request-level failure.
    pub fn error(message: impl Into<String>) -> Response {
        Response {
            message: Some(message.into()),
            ..Response::kind("error")
        }
    }
}

/// Serialize `value` as one JSON line and flush it.
pub fn write_line<T: Serialize>(w: &mut impl std::io::Write, value: &T) -> std::io::Result<()> {
    let json = serde_json::to_string(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    w.write_all(json.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Parse one JSON line.
pub fn parse_line<T: Deserialize>(line: &str) -> Result<T, String> {
    serde_json::from_str(line.trim()).map_err(|e| format!("bad request: {e:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SubmitSpec {
        SubmitSpec {
            app: "lu".into(),
            procs: 2,
            errors: "par".into(),
            tests: 10,
            seed: 7,
            ci: None,
            min_tests: None,
            fault_model: None,
            replicate: None,
        }
    }

    #[test]
    fn requests_round_trip_through_json() {
        for req in [
            Request::submit(spec()),
            Request::status(3),
            Request::watch(4),
            Request::cancel(5),
            Request::list(),
            Request::shutdown(),
        ] {
            let line = serde_json::to_string(&req).unwrap();
            let back: Request = parse_line(&line).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip_through_json() {
        let status = CampaignStatus {
            id: 9,
            app: "cg".into(),
            procs: 4,
            errors: "par".into(),
            tests: 50,
            seed: 1,
            state: "running".into(),
            done: 12,
            total: 50,
        };
        for resp in [
            Response::submitted(9, true),
            Response::status(status.clone(), None),
            Response::progress(9, 12, 50),
            Response::done(9, "done", None),
            Response::list(vec![status]),
            Response::ok(),
            Response::error("nope"),
        ] {
            let line = serde_json::to_string(&resp).unwrap();
            let back: Response = parse_line(&line).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn submit_spec_round_trips_through_campaign() {
        let mut wire = spec();
        wire.ci = Some(0.05);
        wire.min_tests = Some(20);
        let campaign = wire.to_campaign().unwrap();
        assert_eq!(campaign.procs, 2);
        assert_eq!(campaign.tests, 10);
        assert_eq!(campaign.stop.unwrap().min_tests, 20);
        assert_eq!(SubmitSpec::of_campaign(&campaign), wire);
    }

    #[test]
    fn submit_spec_validates() {
        let bad = |f: fn(&mut SubmitSpec)| {
            let mut s = spec();
            f(&mut s);
            s.to_campaign().unwrap_err()
        };
        assert!(bad(|s| s.app = "nope".into()).contains("unknown app"));
        assert!(bad(|s| s.procs = 0).contains("procs"));
        assert!(bad(|s| s.procs = 10_000).contains("at most"));
        assert!(bad(|s| s.tests = 0).contains("tests"));
        assert!(bad(|s| s.errors = "bogus".into()).contains("unknown"));
        assert!(bad(|s| s.ci = Some(0.9)).contains("half-width"));
        assert!(bad(|s| s.min_tests = Some(5)).contains("needs ci"));
        // ser:N requires a serial deployment, same as the CLI.
        assert!(bad(|s| s.errors = "ser:2".into()).contains("--scale 1"));
        // Fault-model combinations are rejected by the shared harness
        // validator, exactly like the CLI front end.
        assert!(bad(|s| s.fault_model = Some("bogus".into())).contains("unknown fault model"));
        assert!(bad(|s| {
            s.fault_model = Some("burst:3".into());
            s.errors = "unique".into();
        })
        .contains("errors=par"));
        assert!(bad(|s| {
            s.fault_model = Some("msg".into());
            s.procs = 1;
        })
        .contains(">= 2 ranks"));
    }

    #[test]
    fn submit_spec_carries_fault_model_and_replication() {
        let mut wire = spec();
        wire.fault_model = Some("due".into());
        wire.replicate = Some(true);
        let campaign = wire.to_campaign().unwrap();
        assert_eq!(campaign.fault_model, FaultModelSpec::Due);
        assert!(campaign.replicate);
        assert_eq!(SubmitSpec::of_campaign(&campaign), wire);

        // A baseline campaign reads back with both fields `None`, the
        // same shape a pre-fault-model client would have submitted.
        let baseline = SubmitSpec::of_campaign(&spec().to_campaign().unwrap());
        assert_eq!(baseline, spec());
    }

    #[test]
    fn missing_optional_fields_parse_as_none() {
        let line = r#"{"v":1,"cmd":"submit","spec":{"app":"cg","procs":1,"errors":"ser:1","tests":5,"seed":3}}"#;
        let req: Request = parse_line(line).unwrap();
        let spec = req.spec.unwrap();
        assert_eq!(spec.ci, None);
        assert_eq!(spec.min_tests, None);
        assert_eq!(spec.fault_model, None);
        assert_eq!(spec.replicate, None);
        assert!(spec.to_campaign().is_ok());
    }
}
