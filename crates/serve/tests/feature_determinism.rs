//! Feature-pipeline determinism: the per-trial feature shard a campaign
//! writes under `--store DIR/features/` must be **bitwise identical** no
//! matter how the trials were scheduled — jobs ∈ {1, 4, auto} × batch ∈
//! {1, 7, 64}, one-shot runner or daemon-served. Features ride the same
//! reorder buffer as outcomes, so any scheduling-dependent byte is a
//! pipeline bug.

use resilim_apps::App;
use resilim_harness::{CampaignRunner, CampaignSpec, ErrorSpec, FeatureStore};
use resilim_serve::{CampaignState, Scheduler};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("resilim-featdet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec() -> CampaignSpec {
    CampaignSpec::new(App::Cg.default_spec(), 2, ErrorSpec::OneParallel, 24, 5)
}

/// The single feature shard a run produced, as raw bytes.
fn shard_bytes(features_dir: &Path) -> Vec<u8> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(features_dir)
        .expect("features dir exists")
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    assert_eq!(files.len(), 1, "one shard per single-process run");
    std::fs::read(&files[0]).unwrap()
}

#[test]
fn features_are_bitwise_identical_across_schedules() {
    let s = spec();
    let mut reference: Option<Vec<u8>> = None;
    for (name, jobs) in [
        ("jobs=1", Some(1)),
        ("jobs=4", Some(4)),
        ("jobs=auto", None),
    ] {
        for batch in [1usize, 7, 64] {
            let dir = temp_dir(&format!("{name}-b{batch}"));
            let runner = match jobs {
                Some(k) => CampaignRunner::new().with_test_parallelism(k),
                None => CampaignRunner::new().with_auto_parallelism(),
            };
            let runner = runner
                .with_feature_dir(dir.join("features"))
                .with_trial_batch(batch);
            let result = runner.run_uncached(&s);
            assert_eq!(result.features.len(), s.tests, "{name} batch={batch}");
            let bytes = shard_bytes(&dir.join("features"));
            assert!(!bytes.is_empty(), "{name} batch={batch} wrote nothing");
            match &reference {
                None => reference = Some(bytes),
                Some(want) => {
                    assert_eq!(&bytes, want, "{name} batch={batch} shard diverges")
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let reference = reference.unwrap();

    // Daemon-served over a shared pool, batched claims: same bytes.
    let dir = temp_dir("serve");
    let sched = Scheduler::new(
        CampaignRunner::new().with_trial_batch(7),
        4,
        Some(dir.clone()),
    );
    let (id, deduped) = sched.submit(&s).unwrap();
    assert!(!deduped);
    assert_eq!(
        sched.wait(id, Duration::from_secs(120)),
        Some(CampaignState::Done)
    );
    sched.shutdown();
    let served = shard_bytes(&dir.join("features"));
    assert_eq!(served, reference, "daemon-served shard diverges");

    // And the loader reads back exactly one record per trial.
    let loaded = FeatureStore::load_all(dir.join("features"));
    assert_eq!(loaded.len(), s.tests);
    let _ = std::fs::remove_dir_all(&dir);
}
