//! End-to-end service tests: concurrent multi-campaign scheduling over
//! one shared pool, idempotent submission, cancellation isolation,
//! durable restart-resume, and the unix-socket daemon round trip.
//!
//! The load-bearing property throughout: a campaign's final summary is
//! **bitwise identical** to a solo `CampaignRunner` run of the same
//! spec, no matter how many campaigns shared the worker pool, where the
//! daemon was restarted, or which process executed which trial.

use resilim_apps::App;
use resilim_harness::{CampaignRunner, CampaignSpec, CampaignSummary, ErrorSpec};
use resilim_serve::{CampaignState, Client, Daemon, Request, Scheduler, ServeConfig, SubmitSpec};
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("resilim-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(app: App, procs: usize, tests: usize, seed: u64) -> CampaignSpec {
    CampaignSpec::new(
        app.default_spec(),
        procs,
        ErrorSpec::OneParallel,
        tests,
        seed,
    )
}

/// Solo one-shot run of `s`, as the summary the service must reproduce.
fn solo(s: &CampaignSpec) -> CampaignSummary {
    CampaignSummary::of(s, &CampaignRunner::new().run_uncached(s))
}

/// Bitwise equality modulo the wall-clock field.
fn assert_same_measurement(got: &CampaignSummary, want: &CampaignSummary) {
    let mut want = want.clone();
    want.wall_secs = got.wall_secs;
    assert_eq!(*got, want);
}

const WAIT: Duration = Duration::from_secs(120);

/// Acceptance: ≥4 campaigns concurrently over one shared pool, every
/// result bitwise identical to its solo run.
#[test]
fn four_concurrent_campaigns_match_their_solo_runs() {
    let specs = [
        spec(App::Lu, 2, 14, 1),
        spec(App::Cg, 2, 14, 2),
        spec(App::Lu, 4, 10, 3),
        spec(App::Cg, 1, 18, 4),
    ];
    let expected: Vec<CampaignSummary> = specs.iter().map(solo).collect();

    let sched = Scheduler::new(CampaignRunner::new(), 4, None);
    let ids: Vec<u64> = specs
        .iter()
        .map(|s| {
            let (id, deduped) = sched.submit(s).expect("submit");
            assert!(!deduped);
            id
        })
        .collect();
    // All four run concurrently; all four must finish.
    for (&id, want) in ids.iter().zip(&expected) {
        assert_eq!(sched.wait(id, WAIT), Some(CampaignState::Done));
        assert_same_measurement(&sched.summary(id).expect("summary"), want);
    }
    // Fair sharing left every campaign registered and distinct.
    let listed = sched.list();
    assert_eq!(listed.len(), 4);
    assert!(listed.iter().all(|c| c.state == "done"));
}

/// Cancelling one campaign must not perturb its neighbours.
#[test]
fn cancellation_is_isolated() {
    let victim = spec(App::Lu, 2, 400, 77);
    let bystander = spec(App::Cg, 2, 12, 78);
    let want = solo(&bystander);

    let sched = Scheduler::new(CampaignRunner::new(), 2, None);
    let (victim_id, _) = sched.submit(&victim).unwrap();
    let (bystander_id, _) = sched.submit(&bystander).unwrap();
    // 400 trials over 2 workers: the victim cannot be done yet.
    assert!(sched.cancel(victim_id), "victim is known");
    assert_eq!(
        sched.status(victim_id).unwrap().state,
        "cancelled",
        "victim cancelled before its 400 trials could finish"
    );
    assert!(
        sched.summary(victim_id).is_none(),
        "no summary for cancelled"
    );

    assert_eq!(sched.wait(bystander_id, WAIT), Some(CampaignState::Done));
    assert_same_measurement(&sched.summary(bystander_id).unwrap(), &want);

    assert!(!sched.cancel(999_999_999), "unknown id");
}

/// Resubmitting a completed deployment to a *fresh* scheduler over the
/// same store finishes instantly from the ledger: zero trials executed.
#[test]
fn ledger_makes_resubmission_instant() {
    let store = temp_dir("dedup");
    let s = spec(App::Cg, 2, 16, 21);
    let want = solo(&s);

    let first = Scheduler::new(CampaignRunner::new(), 2, Some(store.clone()));
    let (id, deduped) = first.submit(&s).unwrap();
    assert!(!deduped);
    assert_eq!(first.wait(id, WAIT), Some(CampaignState::Done));
    assert_same_measurement(&first.summary(id).unwrap(), &want);
    first.shutdown();

    // New daemon process, same store: the submission completes inside
    // `submit` itself — every record is seeded from the ledger.
    let second = Scheduler::new(CampaignRunner::new(), 2, Some(store.clone()));
    let (id2, deduped2) = second.submit(&s).unwrap();
    assert!(!deduped2, "fresh scheduler has no in-memory entry");
    let status = second.status(id2).unwrap();
    assert_eq!(
        status.state, "done",
        "resumed to completion with no trial run"
    );
    assert_eq!(status.done, 16);
    assert_same_measurement(&second.summary(id2).unwrap(), &want);

    // Same-process resubmission is a pure dedup hit.
    let (id3, deduped3) = second.submit(&s).unwrap();
    assert!(deduped3);
    assert_eq!(id2, id3);
    let _ = std::fs::remove_dir_all(&store);
}

/// Acceptance: kill the service mid-campaign (graceful drain), restart
/// over the same store, and the campaign finishes with the bitwise-same
/// aggregate a solo uninterrupted run produces.
#[test]
fn restart_mid_campaign_resumes_to_identical_aggregate() {
    let store = temp_dir("restart");
    let s = spec(App::Lu, 2, 60, 42);
    let want = solo(&s);

    let first = Scheduler::new(CampaignRunner::new(), 2, Some(store.clone()));
    let (id, _) = first.submit(&s).unwrap();
    // Let some (but not all) trials land, then drain and stop.
    let deadline = std::time::Instant::now() + WAIT;
    loop {
        let done = first.status(id).unwrap().done;
        if done > 0 || std::time::Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    first.shutdown();
    let partial = first.status(id).unwrap().done;
    assert!(partial > 0, "made progress before the shutdown");

    let second = Scheduler::new(CampaignRunner::new(), 2, Some(store.clone()));
    let (id2, _) = second.submit(&s).unwrap();
    assert_eq!(second.wait(id2, WAIT), Some(CampaignState::Done));
    assert_same_measurement(&second.summary(id2).unwrap(), &want);
    let _ = std::fs::remove_dir_all(&store);
}

/// Full wire round trip: spawn a daemon on a socket, submit over the
/// protocol, stream progress, list, status, shutdown — and the summary
/// a client receives equals the solo run.
#[test]
fn daemon_socket_round_trip() {
    let dir = temp_dir("socket");
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("d.sock");
    let s = spec(App::Cg, 2, 12, 9);
    let want = solo(&s);

    // batch > 1 on purpose: the summary must still equal the solo run.
    let daemon = Daemon::spawn(ServeConfig {
        socket: socket.clone(),
        store: None,
        workers: 2,
        batch: 3,
    })
    .expect("spawn daemon");

    let mut client = Client::connect_retry(&socket, Duration::from_secs(10)).expect("connect");
    let (id, deduped) = client.submit(SubmitSpec::of_campaign(&s)).expect("submit");
    assert!(!deduped);

    let (state, summary) = client
        .watch(id, |done, total| assert!(done <= total))
        .expect("watch");
    assert_eq!(state, CampaignState::Done);
    assert_same_measurement(&summary.expect("done summary"), &want);

    // Status and list agree post-completion.
    let resp = client.call(&Request::status(id)).unwrap();
    assert_eq!(resp.kind, "status");
    assert_eq!(resp.state.as_deref(), Some("done"));
    assert_same_measurement(&resp.summary.expect("status summary"), &want);
    let resp = client.call(&Request::list()).unwrap();
    assert_eq!(resp.campaigns.expect("listing").len(), 1);

    // A second client sees the same daemon (true multi-tenancy).
    let mut other = Client::connect(&socket).expect("second client");
    let (id2, deduped2) = other.submit(SubmitSpec::of_campaign(&s)).expect("resubmit");
    assert!(deduped2, "identical submission joins the finished campaign");
    assert_eq!(id2, id);

    // Protocol-level graceful shutdown removes the socket.
    client.shutdown().expect("shutdown ack");
    daemon.join();
    assert!(!socket.exists(), "socket removed on exit");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Daemon restart over a store: the submission journal resurrects
/// in-flight campaigns, the ledger completes them without re-running,
/// and cancelled campaigns stay dead.
#[test]
fn daemon_restart_replays_journal() {
    let dir = temp_dir("journal");
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("d.sock");
    let store = dir.join("store");
    let kept = spec(App::Cg, 1, 10, 31);
    let dropped = spec(App::Lu, 2, 300, 32);
    let want = solo(&kept);
    let config = ServeConfig {
        socket: socket.clone(),
        store: Some(store.clone()),
        workers: 2,
        batch: 2,
    };

    let daemon = Daemon::spawn(config.clone()).expect("spawn");
    let mut client = Client::connect_retry(&socket, Duration::from_secs(10)).unwrap();
    let (kept_id, _) = client.submit(SubmitSpec::of_campaign(&kept)).unwrap();
    let (dropped_id, _) = client.submit(SubmitSpec::of_campaign(&dropped)).unwrap();
    let resp = client.call(&Request::cancel(dropped_id)).unwrap();
    assert_eq!(resp.kind, "ok");
    let (state, _) = client.watch(kept_id, |_, _| {}).unwrap();
    assert_eq!(state, CampaignState::Done);
    daemon.stop();

    // Restart: the kept campaign reappears complete (journal + ledger);
    // the cancelled one does not come back.
    let daemon = Daemon::spawn(config).expect("respawn");
    let mut client = Client::connect_retry(&socket, Duration::from_secs(10)).unwrap();
    let resp = client.call(&Request::list()).unwrap();
    let campaigns = resp.campaigns.expect("listing");
    assert_eq!(campaigns.len(), 1, "cancelled campaign stays dead");
    assert_eq!(campaigns[0].state, "done");
    assert_eq!(campaigns[0].seed, kept.seed);
    let resp = client.call(&Request::status(campaigns[0].id)).unwrap();
    assert_same_measurement(&resp.summary.expect("replayed summary"), &want);
    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The wire rejects what it should reject.
#[test]
fn daemon_rejects_bad_requests() {
    let dir = temp_dir("reject");
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("d.sock");
    let daemon = Daemon::spawn(ServeConfig {
        socket: socket.clone(),
        store: None,
        workers: 1,
        batch: 1,
    })
    .expect("spawn");

    // Unknown campaign id.
    let mut client = Client::connect_retry(&socket, Duration::from_secs(10)).unwrap();
    let resp = client.call(&Request::status(123_456)).unwrap();
    assert_eq!(resp.kind, "error");

    // Invalid spec (validated daemon-side too, not just in the CLI).
    let mut bad = SubmitSpec::of_campaign(&spec(App::Cg, 1, 4, 1));
    bad.app = "not-an-app".into();
    let mut client = Client::connect(&socket).unwrap();
    let err = client.submit(bad).unwrap_err();
    assert!(err.contains("unknown app"), "{err}");

    // A request from the future is refused.
    let mut client = Client::connect(&socket).unwrap();
    let mut req = Request::list();
    req.v = 99;
    let resp = client.call(&req).unwrap();
    assert_eq!(resp.kind, "error");
    assert!(resp.message.unwrap().contains("protocol"));

    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
