//! Property-based tests for online aggregation and adaptive stopping.

use proptest::prelude::*;
use resilim_core::{
    FailureKind, FiAccumulator, FiResult, PropagationProfile, StopRule, TestOutcome,
};

/// Any outcome that satisfies the injector's causality invariant:
/// contamination requires a fired fault, and failures carry a detail.
fn outcome(procs: usize) -> impl Strategy<Value = TestOutcome> {
    prop_oneof![
        Just(TestOutcome::success(true, 0, 0)),
        (1..=procs, 1..3usize).prop_map(|(c, f)| TestOutcome::success(true, c, f)),
        (1..=procs, 1..3usize).prop_map(|(c, f)| TestOutcome::success(false, c, f)),
        // Contamination counts above `procs` exercise the clamp.
        (1..=2 * procs, 1..3usize).prop_map(|(c, f)| TestOutcome::sdc(c, f)),
        (1..=procs, 1..3usize).prop_map(|(c, f)| TestOutcome::failure(FailureKind::Crash, c, f)),
        (1..=procs, 1..3usize).prop_map(|(c, f)| TestOutcome::failure(FailureKind::Hang, c, f)),
    ]
}

proptest! {
    /// Folding outcomes one at a time equals the batch construction
    /// bitwise — all four statistics, for any stream and deployment size.
    #[test]
    fn accumulator_equals_batch_fold(
        procs in 1..9usize,
        outcomes in prop::collection::vec(outcome(8), 0..120),
    ) {
        let mut acc = FiAccumulator::new(procs);
        for o in &outcomes {
            acc.record(o);
        }

        let mut fi = FiResult::new();
        let mut prop = PropagationProfile::new(procs);
        let mut by_contam = vec![FiResult::new(); procs];
        let mut uncontaminated = FiResult::new();
        for o in &outcomes {
            fi.record(o);
            prop.record(o);
            match o.contaminated_ranks {
                0 => uncontaminated.record(o),
                x => by_contam[x.min(procs) - 1].record(o),
            }
        }

        prop_assert_eq!(FiResult::from_outcomes(&outcomes), fi);
        prop_assert_eq!(acc.total(), outcomes.len() as u64);
        let (afi, aprop, aby, aunc) = acc.into_parts();
        prop_assert_eq!(afi, fi);
        prop_assert_eq!(aprop.counts, prop.counts);
        prop_assert_eq!(aby, by_contam);
        prop_assert_eq!(aunc, uncontaminated);
    }

    /// Stop decisions are monotone in trial count: once a rule is
    /// satisfied at some class mix, observing proportionally more trials
    /// of the same mix never un-satisfies it (Wilson intervals only
    /// narrow as n grows at fixed rates).
    #[test]
    fn stop_rule_is_monotone_under_proportional_growth(
        succ in 0..40u64,
        sdc in 0..40u64,
        fail in 0..40u64,
        scale in 2..6u64,
        halfwidth in 0.01..0.6f64,
        min_tests in 0..60u64,
    ) {
        let fold = |m: u64| {
            let mut fi = FiResult::new();
            for _ in 0..succ * m {
                fi.record(&TestOutcome::success(false, 1, 1));
            }
            for _ in 0..sdc * m {
                fi.record(&TestOutcome::sdc(1, 1));
            }
            for _ in 0..fail * m {
                fi.record(&TestOutcome::failure(FailureKind::Crash, 1, 1));
            }
            fi
        };
        let rule = StopRule::new(halfwidth).with_min_tests(min_tests);
        let small = fold(1);
        let large = fold(scale);
        prop_assert!(
            !rule.satisfied(&small) || rule.satisfied(&large),
            "rule satisfied at n={} but not at n={}: widths {} -> {}",
            small.total(),
            large.total(),
            rule.widest_halfwidth(&small),
            rule.widest_halfwidth(&large),
        );
    }

    /// The widest half-width shrinks (weakly) as the same mix is scaled
    /// up, independent of any particular rule.
    #[test]
    fn widest_halfwidth_shrinks_with_n(
        succ in 1..40u64,
        sdc in 0..40u64,
        scale in 2..6u64,
    ) {
        let fold = |m: u64| {
            let mut fi = FiResult::new();
            for _ in 0..succ * m {
                fi.record(&TestOutcome::success(false, 1, 1));
            }
            for _ in 0..sdc * m {
                fi.record(&TestOutcome::sdc(1, 1));
            }
            fi
        };
        let rule = StopRule::new(0.0);
        let before = rule.widest_halfwidth(&fold(1));
        let after = rule.widest_halfwidth(&fold(scale));
        prop_assert!(after <= before + 1e-12, "{after} > {before}");
    }
}
