//! Proof-grade checks for the pure arithmetic at the heart of the
//! reproduction: exhaustive small-domain enumeration (not sampling) of
//! the algebraic identities the paper's closed forms and this repo's
//! aggregation rest on. Each proof attests the claim it verifies with
//! `verifies!`; `resilim trace-matrix` joins the attestations against
//! the claims registry (DESIGN.md §13).
//!
//! The default domain bound keeps the suite fast enough for every
//! `cargo test`; nightly CI re-runs it larger via the
//! `RESILIM_PROOF_BOUND` environment variable (see
//! `.github/workflows/nightly-check.yml`).

use resilim_core::{
    prediction_error, rmse, verifies, FiResult, ModelInputs, PaperEq8, PropagationProfile,
    SamplePoints, StopRule,
};
use resilim_inject::{FailureKind, OutcomeKind, TestOutcome};
use std::collections::BTreeMap;

/// Per-component count bound for exhaustive `FiResult` enumeration.
/// Default 3; nightly raises it (`RESILIM_PROOF_BOUND=5`) so the same
/// proofs run over a strictly larger domain.
fn bound() -> u64 {
    match std::env::var("RESILIM_PROOF_BOUND") {
        Ok(v) => v
            .parse()
            .expect("RESILIM_PROOF_BOUND must be a small integer"),
        Err(_) => 3,
    }
}

/// Every reachable `FiResult` with each outcome count in `0..=b`:
/// `masked` only ever counts masked successes, so `masked <=
/// counts[Success]` is the reachable envelope.
fn all_fi(b: u64) -> Vec<FiResult> {
    let mut out = Vec::new();
    for success in 0..=b {
        for sdc in 0..=b {
            for failure in 0..=b {
                for masked in 0..=success {
                    let mut fi = FiResult::new();
                    fi.counts[OutcomeKind::Success.index()] = success;
                    fi.counts[OutcomeKind::Sdc.index()] = sdc;
                    fi.counts[OutcomeKind::Failure.index()] = failure;
                    fi.masked = masked;
                    out.push(fi);
                }
            }
        }
    }
    out
}

/// Scale every count of `fi` by `k` (proportional growth: the rates are
/// unchanged, only the sample size grows).
fn scale(fi: &FiResult, k: u64) -> FiResult {
    let mut s = *fi;
    for c in &mut s.counts {
        *c *= k;
    }
    s.masked *= k;
    s
}

fn merge(a: &FiResult, b: &FiResult) -> FiResult {
    let mut m = *a;
    m.merge(b);
    m
}

// ---------------------------------------------------------------------
// FiResult / FiAccumulator merge algebra (INV_MERGE)
// ---------------------------------------------------------------------

#[test]
fn proof_merge_commutative_and_identity() {
    verifies!(INV_MERGE);
    let domain = all_fi(bound());
    let empty = FiResult::new();
    for a in &domain {
        assert_eq!(merge(a, &empty), *a, "right identity failed for {a:?}");
        assert_eq!(merge(&empty, a), *a, "left identity failed for {a:?}");
        for b in &domain {
            assert_eq!(
                merge(a, b),
                merge(b, a),
                "commutativity failed: {a:?} {b:?}"
            );
        }
    }
}

#[test]
fn proof_merge_associative() {
    verifies!(INV_MERGE);
    // Triples cube the domain; a reduced bound keeps the proof
    // exhaustive yet fast (the nightly bound covers more).
    let domain = all_fi(bound().min(2));
    for a in &domain {
        for b in &domain {
            let ab = merge(a, b);
            for c in &domain {
                assert_eq!(
                    merge(&ab, c),
                    merge(a, &merge(b, c)),
                    "associativity failed: {a:?} {b:?} {c:?}"
                );
            }
        }
    }
}

/// The small outcome vocabulary the accumulator proofs fold over: every
/// outcome kind at several contamination counts, including the
/// never-fired (x = 0) trial that lands in the uncontaminated bucket.
fn outcome_vocab() -> Vec<TestOutcome> {
    let mut v = vec![TestOutcome::success(true, 0, 0)];
    for x in [1usize, 2, 4] {
        v.push(TestOutcome::success(false, x, 1));
        v.push(TestOutcome::sdc(x, 1));
        v.push(TestOutcome::failure(FailureKind::Crash, x, 1));
    }
    v.push(TestOutcome::failure(FailureKind::Hang, 1, 1));
    v
}

#[test]
fn proof_accumulator_fold_is_order_invariant() {
    verifies!(INV_MERGE, EQ3);
    // Exhaust every multiset of up to 3 outcomes from the vocabulary
    // (as ordered index triples, which covers every permutation of
    // every multiset) and check the fold ignores order.
    let vocab = outcome_vocab();
    let procs = 2usize;
    let fold = |ix: &[usize]| {
        let mut acc = resilim_core::FiAccumulator::new(procs);
        for &i in ix {
            acc.record(&vocab[i]);
        }
        acc
    };
    let n = vocab.len();
    for i in 0..n {
        for j in 0..n {
            assert_eq!(fold(&[i, j]), fold(&[j, i]), "pair fold order mattered");
            for k in 0..n {
                let sorted = {
                    let mut s = [i, j, k];
                    s.sort_unstable();
                    s
                };
                assert_eq!(
                    fold(&[i, j, k]),
                    fold(&sorted),
                    "triple fold order mattered for ({i},{j},{k})"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rates are a probability distribution (EQ2 / EQ3)
// ---------------------------------------------------------------------

#[test]
fn proof_rates_partition_unity() {
    verifies!(EQ2, EQ3);
    for fi in all_fi(bound()) {
        let rates = fi.rates();
        for r in rates {
            assert!((0.0..=1.0).contains(&r), "rate out of range: {fi:?}");
            assert!(r.is_finite(), "rate not finite: {fi:?}");
        }
        if fi.total() == 0 {
            // Empty results are NaN-free zeros, not 0/0.
            assert_eq!(rates, [0.0; 3], "empty result must have zero rates");
        } else {
            let sum: f64 = rates.iter().sum();
            // Three divisions by the same total: off by at most a few ulps.
            assert!((sum - 1.0).abs() < 1e-12, "rates sum {sum} for {fi:?}");
        }
    }
}

#[test]
fn proof_propagation_r_is_a_distribution() {
    verifies!(EQ3);
    // Exhaust small propagation profiles: p in {1, 2, 3}, counts 0..=b.
    let b = bound();
    for p in 1usize..=3 {
        let mut counts = vec![0u64; p];
        loop {
            let prof = PropagationProfile {
                p,
                counts: counts.clone(),
            };
            let rv = prof.r_vec();
            if prof.total() > 0 {
                let sum: f64 = rv.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12, "r_vec sum {sum} for {counts:?}");
            } else {
                assert!(rv.iter().all(|&r| r == 0.0));
            }
            for (x, &r) in rv.iter().enumerate() {
                assert_eq!(prof.r(x + 1), r);
            }
            assert_eq!(prof.r(0), 0.0);
            assert_eq!(prof.r(p + 1), 0.0);
            // Odometer over the count vector.
            let mut i = 0;
            while i < p && counts[i] == b {
                counts[i] = 0;
                i += 1;
            }
            if i == p {
                break;
            }
            counts[i] += 1;
        }
    }
}

// ---------------------------------------------------------------------
// Grouping conserves mass and refines consistently (EQ5 / O3)
// ---------------------------------------------------------------------

#[test]
fn proof_grouping_conserves_and_refines() {
    verifies!(EQ5, O3);
    // p = 4: exhaust counts in 0..=b, check every divisor grouping.
    let b = bound();
    let p = 4usize;
    let mut counts = vec![0u64; p];
    loop {
        let prof = PropagationProfile {
            p,
            counts: counts.clone(),
        };
        if prof.total() > 0 {
            let fine = prof.group(4); // identity grouping = r_vec
            let mid = prof.group(2);
            let coarse = prof.group(1);
            let sum = |v: &[f64]| v.iter().sum::<f64>();
            assert!((sum(&fine) - 1.0).abs() < 1e-12);
            assert!((sum(&mid) - 1.0).abs() < 1e-12);
            assert!((sum(&coarse) - 1.0).abs() < 1e-12);
            // Refinement consistency: coarse buckets are sums of fine ones.
            assert!((mid[0] - (fine[0] + fine[1])).abs() < 1e-12);
            assert!((mid[1] - (fine[2] + fine[3])).abs() < 1e-12);
            assert!((coarse[0] - 1.0).abs() < 1e-12);
        }
        let mut i = 0;
        while i < p && counts[i] == b {
            counts[i] = 0;
            i += 1;
        }
        if i == p {
            break;
        }
        counts[i] += 1;
    }
}

// ---------------------------------------------------------------------
// Wilson interval sanity (INV_WILSON)
// ---------------------------------------------------------------------

#[test]
fn proof_wilson_bounds_and_width_monotone() {
    verifies!(INV_WILSON);
    let domain = all_fi(bound());
    for fi in &domain {
        for kind in OutcomeKind::ALL {
            for z in [1.0, 1.96, 2.58] {
                let (lo, hi) = fi.wilson_ci(kind, z);
                assert!(
                    (0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi),
                    "bounds out of [0,1]: {fi:?} {lo} {hi}"
                );
                assert!(lo <= hi, "inverted interval: {fi:?}");
                if fi.total() > 0 {
                    let phat = fi.rate(kind);
                    assert!(
                        lo <= phat + 1e-12 && phat <= hi + 1e-12,
                        "interval misses point estimate: {fi:?} {lo} {phat} {hi}"
                    );
                }
                // Proportional growth at the same rate never widens the
                // interval (width is monotone non-increasing in n).
                let mut prev = hi - lo;
                for k in [2u64, 4, 8] {
                    let (slo, shi) = scale(fi, k).wilson_ci(kind, z);
                    let width = shi - slo;
                    assert!(
                        width <= prev + 1e-12,
                        "width grew under scaling: {fi:?} k={k} {width} > {prev}"
                    );
                    prev = width;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Stop-rule monotonicity (INV_STOP)
// ---------------------------------------------------------------------

#[test]
fn proof_stop_rule_monotone_under_proportional_growth() {
    verifies!(INV_STOP);
    let domain = all_fi(bound());
    let rules = [
        StopRule::new(0.05).with_min_tests(0),
        StopRule::new(0.1).with_min_tests(2),
        StopRule::new(0.25).with_min_tests(5),
        StopRule::new(0.45).with_min_tests(1),
    ];
    for fi in &domain {
        for rule in &rules {
            // Halfwidth is monotone non-increasing under scaling, so a
            // satisfied rule stays satisfied at every larger k.
            if rule.satisfied(fi) {
                for k in [2u64, 3, 8, 32] {
                    let grown = scale(fi, k);
                    assert!(
                        rule.satisfied(&grown),
                        "rule {rule:?} un-satisfied by growth x{k} of {fi:?} \
                         (halfwidth {} -> {})",
                        rule.widest_halfwidth(fi),
                        rule.widest_halfwidth(&grown)
                    );
                }
            }
        }
    }
}

#[test]
fn stop_rule_min_tests_edge_cases() {
    verifies!(INV_STOP);
    // min_tests = 0: the trial floor vanishes, only the width gates.
    let zero_floor = StopRule::new(0.49).with_min_tests(0);
    assert!(
        !zero_floor.satisfied(&FiResult::new()),
        "empty result has halfwidth 0.5 and must not satisfy a 0.49 target"
    );
    let loose = StopRule::new(0.5).with_min_tests(0);
    assert!(
        loose.satisfied(&FiResult::new()),
        "empty result exactly meets a 0.5 half-width target with no floor"
    );

    // An all-one-kind distribution: the observed class pins phat = 1,
    // the unobserved classes pin phat = 0; all three Wilson intervals
    // shrink with n, so widest_halfwidth is driven by n alone.
    let mut fi = FiResult::new();
    for _ in 0..100 {
        fi.record(&TestOutcome::success(false, 1, 1));
    }
    let rule = StopRule::new(0.05).with_min_tests(10);
    assert!(
        rule.widest_halfwidth(&fi) < 0.05,
        "n=100 all-success is tight"
    );
    assert!(rule.satisfied(&fi));

    // min_tests above the total vetoes however narrow the intervals are.
    assert!(!rule.with_min_tests(101).satisfied(&fi));
    assert!(rule.with_min_tests(100).satisfied(&fi));

    // Interaction: widest_halfwidth ignores the floor entirely.
    assert_eq!(
        rule.with_min_tests(0).widest_halfwidth(&fi),
        rule.with_min_tests(10_000).widest_halfwidth(&fi)
    );
}

// ---------------------------------------------------------------------
// Eq. 1 mixture and Eq. 8 weighted sum (EQ1 / EQ2 / EQ4 / EQ8)
// ---------------------------------------------------------------------

/// A `FiResult` with the given counts (masked stays 0; the predictor
/// only reads rates).
fn fi(success: u64, sdc: u64, failure: u64) -> FiResult {
    let mut f = FiResult::new();
    f.counts[OutcomeKind::Success.index()] = success;
    f.counts[OutcomeKind::Sdc.index()] = sdc;
    f.counts[OutcomeKind::Failure.index()] = failure;
    f
}

/// Every nonzero rate triple with counts in `0..=b`.
fn nonzero_fi(b: u64) -> Vec<FiResult> {
    all_fi(b)
        .into_iter()
        .filter(|f| f.total() > 0 && f.masked == 0)
        .collect()
}

#[test]
fn proof_eq8_is_the_weighted_sum() {
    verifies!(EQ4, EQ8);
    // s = 2, p = 4: exhaust propagation weights and two serial bucket
    // values over the small domain; the prediction must equal the
    // hand-computed weighted sum in every component.
    let b = bound().min(2);
    let serial_domain = nonzero_fi(b);
    for w1 in 0..=b {
        for w2 in 0..=b {
            if w1 + w2 == 0 {
                continue;
            }
            for s1 in &serial_domain {
                for s2 in &serial_domain {
                    let mut serial = BTreeMap::new();
                    serial.insert(1, *s1);
                    serial.insert(4, *s2);
                    let mut small_prop = PropagationProfile::new(2);
                    small_prop.counts = vec![w1, w2];
                    let inputs = ModelInputs {
                        p: 4,
                        s: 2,
                        strategy: SamplePoints::BucketUpper,
                        serial,
                        small_prop,
                        small_by_contam: vec![None, None],
                        unique_share: 0.0,
                        fi_unique: None,
                        alpha_threshold: f64::INFINITY,
                    };
                    let pred = PaperEq8::new(inputs).predict();
                    let total = (w1 + w2) as f64;
                    let (r1, r2) = (w1 as f64 / total, w2 as f64 / total);
                    for k in 0..3 {
                        let expect = r1 * s1.rates()[k] + r2 * s2.rates()[k];
                        assert!(
                            (pred.rates[k] - expect).abs() < 1e-12,
                            "Eq.8 mismatch at class {k}: {} vs {expect}",
                            pred.rates[k]
                        );
                    }
                    // Distributions in, distribution out (Eq. 2).
                    let sum: f64 = pred.rates.iter().sum();
                    assert!((sum - 1.0).abs() < 1e-9, "prediction sum {sum}");
                }
            }
        }
    }
}

#[test]
fn proof_eq8_monotone_in_serial_success() {
    verifies!(EQ8, O4);
    // Raising any bucket's serial success rate (mass moved from SDC to
    // success) never lowers the predicted success rate.
    let run = |s1: FiResult, s2: FiResult| -> f64 {
        let mut serial = BTreeMap::new();
        serial.insert(1, s1);
        serial.insert(4, s2);
        let mut small_prop = PropagationProfile::new(2);
        small_prop.counts = vec![3, 1];
        PaperEq8::new(ModelInputs {
            p: 4,
            s: 2,
            strategy: SamplePoints::BucketUpper,
            serial,
            small_prop,
            small_by_contam: vec![None, None],
            unique_share: 0.0,
            fi_unique: None,
            alpha_threshold: f64::INFINITY,
        })
        .predict()
        .success()
    };
    let n = bound().max(2);
    for good in 0..=n {
        for better in good..=n {
            for other in 0..=n {
                let lo = run(fi(good, n - good, 0), fi(other, n - other, 0));
                let hi = run(fi(better, n - better, 0), fi(other, n - other, 0));
                assert!(
                    hi >= lo - 1e-12,
                    "bucket-1 success {good}->{better} lowered prediction {lo}->{hi}"
                );
                // Same in the second bucket.
                let lo = run(fi(other, n - other, 0), fi(good, n - good, 0));
                let hi = run(fi(other, n - other, 0), fi(better, n - better, 0));
                assert!(hi >= lo - 1e-12, "bucket-2 monotonicity violated");
            }
        }
    }
}

#[test]
fn proof_eq8_degenerates_when_s_equals_p() {
    verifies!(EQ8);
    // s = p makes the bucket map the identity: the prediction is
    // exactly the propagation-weighted mixture of the per-x serial
    // results — no sparsity left.
    let b = bound().min(2);
    let values = nonzero_fi(b);
    for p in [1usize, 2] {
        for va in &values {
            for vb in &values {
                let pick = |x: usize| if x == 1 { *va } else { *vb };
                let serial: BTreeMap<usize, FiResult> = (1..=p).map(|x| (x, pick(x))).collect();
                for w1 in 1..=b {
                    let mut prop = PropagationProfile::new(p);
                    for (x, c) in prop.counts.iter_mut().enumerate() {
                        *c = if x == 0 { w1 } else { 1 };
                    }
                    let total: u64 = prop.counts.iter().sum();
                    let weights = prop.r_vec();
                    let pred = PaperEq8::new(ModelInputs {
                        p,
                        s: p,
                        strategy: SamplePoints::BucketUpper,
                        serial: serial.clone(),
                        small_prop: prop,
                        small_by_contam: vec![None; p],
                        unique_share: 0.0,
                        fi_unique: None,
                        alpha_threshold: f64::INFINITY,
                    })
                    .predict();
                    let mut expect = [0.0f64; 3];
                    for (x, w) in weights.iter().enumerate() {
                        for k in 0..3 {
                            expect[k] += w * pick(x + 1).rates()[k];
                        }
                    }
                    for k in 0..3 {
                        assert!(
                            (pred.rates[k] - expect[k]).abs() < 1e-12,
                            "s==p degeneracy broken (p={p}, total={total})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn proof_eq1_mixture_is_convex() {
    verifies!(EQ1, EQ2);
    // The parallel-unique mixture interpolates linearly between the
    // common term (share 0) and the unique term (share 1), staying a
    // probability distribution throughout.
    let b = bound().min(2);
    let values = nonzero_fi(b);
    for common in &values {
        for unique in &values {
            let mut results = Vec::new();
            for share in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let mut serial = BTreeMap::new();
                serial.insert(1, *common);
                let mut small_prop = PropagationProfile::new(1);
                small_prop.counts = vec![1];
                let pred = PaperEq8::new(ModelInputs {
                    p: 1,
                    s: 1,
                    strategy: SamplePoints::BucketUpper,
                    serial,
                    small_prop,
                    small_by_contam: vec![None],
                    unique_share: share,
                    fi_unique: Some(*unique),
                    alpha_threshold: f64::INFINITY,
                })
                .predict();
                for k in 0..3 {
                    let expect = (1.0 - share) * common.rates()[k] + share * unique.rates()[k];
                    assert!(
                        (pred.rates[k] - expect).abs() < 1e-12,
                        "Eq.1 mixture wrong at share {share}"
                    );
                }
                let sum: f64 = pred.rates.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9);
                results.push(pred.success());
            }
            // Endpoint checks: share 0 is pure common, share 1 pure unique.
            assert!((results[0] - common.success_rate()).abs() < 1e-12);
            assert!((results[4] - unique.success_rate()).abs() < 1e-12);
        }
    }
}

// ---------------------------------------------------------------------
// Alpha fine-tuning (EQ6)
// ---------------------------------------------------------------------

#[test]
fn proof_alpha_zero_divergence_never_tunes() {
    verifies!(EQ6);
    // When the small-scale conditionals equal the serial results
    // exactly, divergence is 0 and fine-tuning must stay off at any
    // positive threshold — the substitution only fires on disagreement.
    let b = bound().min(2);
    for serial_fi in nonzero_fi(b) {
        let mut serial = BTreeMap::new();
        serial.insert(1, serial_fi);
        serial.insert(4, serial_fi);
        let mut small_prop = PropagationProfile::new(2);
        small_prop.counts = vec![1, 1];
        let predictor = PaperEq8::new(ModelInputs {
            p: 4,
            s: 2,
            strategy: SamplePoints::BucketUpper,
            serial,
            small_prop,
            small_by_contam: vec![Some(serial_fi), Some(serial_fi)],
            unique_share: 0.0,
            fi_unique: None,
            alpha_threshold: 1e-9,
        });
        assert_eq!(predictor.divergence(), 0.0);
        let pred = predictor.predict();
        assert!(!pred.used_alpha);
        assert!(pred.per_bucket.iter().all(|bkt| !bkt.tuned));
    }
}

// ---------------------------------------------------------------------
// Accuracy metrics (EQ9) — direct unit coverage of accuracy.rs
// ---------------------------------------------------------------------

#[test]
fn prediction_error_exact_match_is_zero() {
    verifies!(EQ9);
    for v in [0.0, 0.25, 0.5, 1.0] {
        assert_eq!(prediction_error(v, v), 0.0);
    }
    // Hand-computed: |0.83 - 0.6| = 0.23 pp on the rate scale.
    assert!((prediction_error(0.83, 0.6) - 0.23).abs() < 1e-12);
    assert!((prediction_error(0.6, 0.83) - 0.23).abs() < 1e-12);
}

#[test]
fn rmse_known_values_and_empty_slice() {
    verifies!(EQ9);
    assert_eq!(rmse(&[]), 0.0, "empty slice is defined as zero error");
    assert_eq!(rmse(&[(0.4, 0.4), (0.9, 0.9)]), 0.0);
    // 3-4-5 style: errors 0.3 and 0.4 -> sqrt((0.09 + 0.16)/2) = 0.3535...
    let pairs = [(0.5, 0.2), (0.1, 0.5)];
    assert!((rmse(&pairs) - (0.25f64 / 2.0).sqrt()).abs() < 1e-12);
    // RMSE of a single pair is the absolute error.
    assert!((rmse(&[(0.9, 0.65)]) - 0.25).abs() < 1e-12);
    // Order of pairs is irrelevant.
    let swapped = [(0.1, 0.5), (0.5, 0.2)];
    assert_eq!(rmse(&pairs), rmse(&swapped));
}

// ---------------------------------------------------------------------
// Property tests (randomized, on top of the exhaustive proofs)
// ---------------------------------------------------------------------

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Satellite: rates() of any nonzero outcome mix sums to 1
        /// within ulp-scale epsilon; empty results are exact zeros.
        #[test]
        fn rates_sum_to_one(
            success in 0u64..10_000,
            sdc in 0u64..10_000,
            failure in 0u64..10_000,
        ) {
            verifies!(EQ2);
            let f = fi(success, sdc, failure);
            let rates = f.rates();
            if f.total() == 0 {
                prop_assert_eq!(rates, [0.0; 3]);
            } else {
                let sum: f64 = rates.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-12, "sum = {}", sum);
            }
            for r in rates {
                prop_assert!(r.is_finite());
            }
        }

        /// Wilson interval stays sane at arbitrary counts, not just the
        /// exhaustive small domain.
        #[test]
        fn wilson_bounds_hold_at_scale(
            success in 0u64..1_000_000,
            sdc in 0u64..1_000_000,
        ) {
            verifies!(INV_WILSON);
            let f = fi(success, sdc, 0);
            let (lo, hi) = f.wilson_ci(OutcomeKind::Success, 1.96);
            prop_assert!((0.0..=1.0).contains(&lo));
            prop_assert!((0.0..=1.0).contains(&hi));
            prop_assert!(lo <= hi);
        }
    }
}
