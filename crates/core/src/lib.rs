#![warn(missing_docs)]
//! # resilim-core
//!
//! The modeling contribution of *Modeling Application Resilience in
//! Large-scale Parallel Execution* (ICPP 2018) as a pure-data library:
//! given fault-injection measurements from **serial** and **small-scale**
//! executions, predict the fault-injection result of a **large-scale**
//! execution without ever running it.
//!
//! The pipeline (paper §4):
//!
//! 1. Measure [`FiResult`]s for serial runs with `x` errors injected, at a
//!    sparse set of sample cases ([`sampling`], Eq. 7's bucket map).
//! 2. Measure the error-propagation profile of a small-scale run
//!    ([`PropagationProfile`]): how many ranks does one injected error
//!    contaminate? Observation 3 says its grouped shape predicts the
//!    large-scale profile (quantified with [`propagation::cosine_similarity`],
//!    Table 2).
//! 3. If the serial results diverge from the small-scale results by more
//!    than a threshold (20 %), fine-tune with α factors (§4.2).
//! 4. Combine: `FI_par = prob₁·FI_common + prob₂·FI_unique` (Eq. 1) with
//!    `FI_common = Σ r'_j · FI_ser(x_j)` (Eq. 4/8).
//!
//! Everything here operates on plain measurement data — the crate is
//! independent of the simulator and can be applied to externally collected
//! fault-injection results (see `examples/external_data.rs`).

pub mod accum;
pub mod accuracy;
pub mod claims;
pub mod features;
pub mod fi;
pub mod learn;
pub mod model;
pub mod propagation;
pub mod sampling;

pub use accum::{FiAccumulator, StopRule};
pub use accuracy::{prediction_error, rmse};
pub use claims::{Claim, ClaimKind};
pub use features::{TrialFeatures, FEATURE_DIM, FEATURE_SCHEMA_VERSION, SPREAD_WINDOWS};
pub use fi::FiResult;
pub use learn::{empirical_rates, fit_predictor, LogisticModel, StumpsModel};
pub use model::{flat_prediction, ModelInputs, PaperEq8, Prediction, Predictor, PredictorKind};
pub use propagation::{cosine_similarity, PropagationProfile};
pub use sampling::{bucket_of, sample_cases, sample_for, SamplePoints};

// Re-export the outcome vocabulary shared with the injector.
pub use resilim_inject::{FailureKind, OutcomeKind, TestOutcome};
