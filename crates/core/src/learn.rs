//! Learned resilience predictors: no-heavy-deps in-repo learners over
//! per-trial [`TrialFeatures`].
//!
//! Two implementations of the [`Predictor`] trait that train on a
//! feature store instead of evaluating the paper's closed form:
//!
//! * [`LogisticModel`] — multinomial (3-class softmax) logistic
//!   regression fit by full-batch gradient descent on standardized
//!   features;
//! * [`StumpsModel`] — one-vs-rest gradient-boosted decision stumps
//!   (logistic loss, Newton leaf values).
//!
//! Both are deliberately dependency-free and **deterministic**: no
//! random initialization, fixed iteration counts, and fixed feature/
//! threshold scan order, so the same feature store always yields the
//! same model byte for byte — the property the CI predictor smoke job
//! and the `predictor-divergence` oracle rely on.

use crate::features::{TrialFeatures, FEATURE_DIM};
use crate::model::{flat_prediction, Prediction, Predictor, PredictorKind};

/// Gradient-descent iterations for [`LogisticModel::fit`].
const LOGISTIC_ITERS: usize = 400;
/// Gradient-descent learning rate (standardized features keep this safe).
const LOGISTIC_LR: f64 = 0.5;
/// Boosting rounds per class for [`StumpsModel::fit`].
const STUMP_ROUNDS: usize = 30;
/// Boosting shrinkage.
const STUMP_LR: f64 = 0.3;
/// Logit clamp: keeps sigmoids away from exact 0/1 (and the Newton leaf
/// denominator away from 0) on separable data.
const LOGIT_CLAMP: f64 = 8.0;

/// Empirical outcome rates `[success, sdc, failure]` of a feature set.
pub fn empirical_rates(data: &[TrialFeatures]) -> [f64; 3] {
    let mut counts = [0usize; 3];
    for f in data {
        counts[f.outcome().index()] += 1;
    }
    let total = data.len().max(1) as f64;
    counts.map(|c| c as f64 / total)
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z.clamp(-LOGIT_CLAMP, LOGIT_CLAMP)).exp())
}

/// Per-feature standardization parameters shared by both learners: the
/// learned weights live in standardized space, so a model carries its
/// training means/stds and applies them at prediction time.
#[derive(Debug, Clone)]
struct Standardizer {
    means: [f64; FEATURE_DIM],
    stds: [f64; FEATURE_DIM],
}

impl Standardizer {
    fn fit(rows: &[[f64; FEATURE_DIM]]) -> Standardizer {
        let n = rows.len().max(1) as f64;
        let mut means = [0.0; FEATURE_DIM];
        for row in rows {
            for (m, x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = [0.0; FEATURE_DIM];
        for row in rows {
            for ((s, m), x) in stds.iter_mut().zip(&means).zip(row) {
                *s += (x - m) * (x - m);
            }
        }
        for s in &mut stds {
            // Constant features standardize to 0 (std 1 avoids 0/0).
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Standardizer { means, stds }
    }

    fn apply(&self, row: &[f64; FEATURE_DIM]) -> [f64; FEATURE_DIM] {
        let mut out = *row;
        for ((x, m), s) in out.iter_mut().zip(&self.means).zip(&self.stds) {
            *x = (*x - m) / s;
        }
        out
    }
}

/// Multinomial logistic regression over [`TrialFeatures`].
#[derive(Debug, Clone)]
pub struct LogisticModel {
    standardizer: Standardizer,
    /// Per-class weight vector, bias last.
    weights: [[f64; FEATURE_DIM + 1]; 3],
    /// Mean predicted class probabilities over the training set — the
    /// model's campaign-level rate prediction.
    train_rates: [f64; 3],
    /// Training-set size (reporting).
    pub trained_on: usize,
}

impl LogisticModel {
    /// Fit by full-batch gradient descent (deterministic: zero init,
    /// fixed iteration count and order).
    pub fn fit(data: &[TrialFeatures]) -> Result<LogisticModel, String> {
        if data.len() < 2 {
            return Err(format!(
                "logistic predictor needs at least 2 feature records, got {}",
                data.len()
            ));
        }
        let rows: Vec<[f64; FEATURE_DIM]> = data.iter().map(|f| f.vector()).collect();
        let standardizer = Standardizer::fit(&rows);
        let x: Vec<[f64; FEATURE_DIM]> = rows.iter().map(|r| standardizer.apply(r)).collect();
        let y: Vec<usize> = data.iter().map(|f| f.outcome().index()).collect();
        let n = x.len() as f64;

        let mut weights = [[0.0f64; FEATURE_DIM + 1]; 3];
        for _ in 0..LOGISTIC_ITERS {
            let mut grad = [[0.0f64; FEATURE_DIM + 1]; 3];
            for (xi, &yi) in x.iter().zip(&y) {
                let p = softmax_probs(&weights, xi);
                for (c, g) in grad.iter_mut().enumerate() {
                    let err = p[c] - if yi == c { 1.0 } else { 0.0 };
                    for (gj, xj) in g.iter_mut().zip(xi) {
                        *gj += err * xj;
                    }
                    g[FEATURE_DIM] += err;
                }
            }
            for (w, g) in weights.iter_mut().zip(&grad) {
                for (wj, gj) in w.iter_mut().zip(g) {
                    *wj -= LOGISTIC_LR * gj / n;
                }
            }
        }

        let mut train_rates = [0.0f64; 3];
        for xi in &x {
            let p = softmax_probs(&weights, xi);
            for (r, pc) in train_rates.iter_mut().zip(&p) {
                *r += pc;
            }
        }
        for r in &mut train_rates {
            *r /= n;
        }
        Ok(LogisticModel {
            standardizer,
            weights,
            train_rates,
            trained_on: data.len(),
        })
    }

    /// Predicted class probabilities for one trial.
    pub fn predict_one(&self, f: &TrialFeatures) -> [f64; 3] {
        softmax_probs(&self.weights, &self.standardizer.apply(&f.vector()))
    }
}

fn softmax_probs(weights: &[[f64; FEATURE_DIM + 1]; 3], x: &[f64; FEATURE_DIM]) -> [f64; 3] {
    let mut z = [0.0f64; 3];
    for (zc, w) in z.iter_mut().zip(weights) {
        *zc = w[FEATURE_DIM]
            + w[..FEATURE_DIM]
                .iter()
                .zip(x)
                .map(|(wj, xj)| wj * xj)
                .sum::<f64>();
    }
    let max = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut e = z.map(|zc| (zc - max).exp());
    let sum: f64 = e.iter().sum();
    for ec in &mut e {
        *ec /= sum;
    }
    e
}

impl Predictor for LogisticModel {
    fn name(&self) -> &'static str {
        PredictorKind::Logistic.name()
    }

    fn predict(&self) -> Prediction {
        flat_prediction(self.train_rates)
    }
}

/// One decision stump of a boosted ensemble: `x[feature] <= threshold`
/// adds `left`, else `right`, to the class logit.
#[derive(Debug, Clone, Copy)]
struct Stump {
    feature: usize,
    threshold: f64,
    left: f64,
    right: f64,
}

/// One-vs-rest gradient-boosted decision stumps over [`TrialFeatures`].
#[derive(Debug, Clone)]
pub struct StumpsModel {
    standardizer: Standardizer,
    /// Per-class prior logit.
    base: [f64; 3],
    /// Per-class boosted ensemble.
    stumps: [Vec<Stump>; 3],
    train_rates: [f64; 3],
    /// Training-set size (reporting).
    pub trained_on: usize,
}

impl StumpsModel {
    /// Fit per-class boosted stumps with logistic loss (deterministic:
    /// fixed rounds, fixed feature/threshold scan order, first-best tie
    /// break).
    pub fn fit(data: &[TrialFeatures]) -> Result<StumpsModel, String> {
        if data.len() < 2 {
            return Err(format!(
                "stumps predictor needs at least 2 feature records, got {}",
                data.len()
            ));
        }
        let rows: Vec<[f64; FEATURE_DIM]> = data.iter().map(|f| f.vector()).collect();
        let standardizer = Standardizer::fit(&rows);
        let x: Vec<[f64; FEATURE_DIM]> = rows.iter().map(|r| standardizer.apply(r)).collect();
        let n = x.len();
        let rates = empirical_rates(data);

        let mut base = [0.0f64; 3];
        let mut stumps: [Vec<Stump>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for c in 0..3 {
            let y: Vec<f64> = data
                .iter()
                .map(|f| if f.outcome().index() == c { 1.0 } else { 0.0 })
                .collect();
            // Prior log-odds of the class, clamped on pure data.
            let p0 = rates[c].clamp(1e-6, 1.0 - 1e-6);
            base[c] = (p0 / (1.0 - p0)).ln().clamp(-LOGIT_CLAMP, LOGIT_CLAMP);
            let mut logit: Vec<f64> = vec![base[c]; n];
            for _ in 0..STUMP_ROUNDS {
                // Pseudo-residuals and Newton weights for logistic loss.
                let p: Vec<f64> = logit.iter().map(|&z| sigmoid(z)).collect();
                let resid: Vec<f64> = y.iter().zip(&p).map(|(yi, pi)| yi - pi).collect();
                let hess: Vec<f64> = p.iter().map(|pi| (pi * (1.0 - pi)).max(1e-6)).collect();
                let Some(stump) = best_stump(&x, &resid, &hess) else {
                    break;
                };
                for (zi, xi) in logit.iter_mut().zip(&x) {
                    *zi += stump_value(&stump, xi);
                    *zi = zi.clamp(-LOGIT_CLAMP, LOGIT_CLAMP);
                }
                stumps[c].push(stump);
            }
        }

        let mut model = StumpsModel {
            standardizer,
            base,
            stumps,
            train_rates: [0.0; 3],
            trained_on: data.len(),
        };
        let mut train_rates = [0.0f64; 3];
        for f in data {
            let p = model.predict_one(f);
            for (r, pc) in train_rates.iter_mut().zip(&p) {
                *r += pc;
            }
        }
        for r in &mut train_rates {
            *r /= n as f64;
        }
        model.train_rates = train_rates;
        Ok(model)
    }

    /// Predicted class probabilities for one trial (per-class sigmoids,
    /// normalized across the three classes).
    pub fn predict_one(&self, f: &TrialFeatures) -> [f64; 3] {
        let x = self.standardizer.apply(&f.vector());
        let mut p = [0.0f64; 3];
        for (c, pc) in p.iter_mut().enumerate() {
            let mut z = self.base[c];
            for s in &self.stumps[c] {
                z += stump_value(s, &x);
            }
            *pc = sigmoid(z);
        }
        let sum: f64 = p.iter().sum();
        if sum > 0.0 {
            for pc in &mut p {
                *pc /= sum;
            }
        }
        p
    }
}

fn stump_value(s: &Stump, x: &[f64; FEATURE_DIM]) -> f64 {
    if x[s.feature] <= s.threshold {
        s.left
    } else {
        s.right
    }
}

/// The least-squares-best stump for the Newton-weighted residuals:
/// scans features in index order and thresholds at midpoints of sorted
/// distinct values, keeping the first best split (deterministic tie
/// break). Leaf values are shrunk Newton steps `Σr / Σh`.
fn best_stump(x: &[[f64; FEATURE_DIM]], resid: &[f64], hess: &[f64]) -> Option<Stump> {
    let total_r: f64 = resid.iter().sum();
    let total_h: f64 = hess.iter().sum();
    let mut best: Option<(f64, Stump)> = None;
    for feature in 0..FEATURE_DIM {
        let mut order: Vec<usize> = (0..x.len()).collect();
        order.sort_by(|&a, &b| {
            x[a][feature]
                .partial_cmp(&x[b][feature])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut left_r = 0.0f64;
        let mut left_h = 0.0f64;
        for (rank, &i) in order.iter().enumerate() {
            left_r += resid[i];
            left_h += hess[i];
            let next = match order.get(rank + 1) {
                Some(&j) => x[j][feature],
                None => break,
            };
            let here = x[i][feature];
            if next <= here {
                continue; // no distinct boundary between equal values
            }
            let right_r = total_r - left_r;
            let right_h = total_h - left_h;
            // Score: weighted-least-squares gain of the two Newton leaves.
            let gain = left_r * left_r / left_h + right_r * right_r / right_h;
            if best.as_ref().is_none_or(|(g, _)| gain > *g + 1e-12) {
                best = Some((
                    gain,
                    Stump {
                        feature,
                        threshold: (here + next) / 2.0,
                        left: STUMP_LR * left_r / left_h,
                        right: STUMP_LR * right_r / right_h,
                    },
                ));
            }
        }
    }
    best.map(|(_, s)| s)
}

impl Predictor for StumpsModel {
    fn name(&self) -> &'static str {
        PredictorKind::Stumps.name()
    }

    fn predict(&self) -> Prediction {
        flat_prediction(self.train_rates)
    }
}

/// Train the learned predictor `kind` selects on a feature set. Errors on
/// [`PredictorKind::Eq8`] (which is built from
/// [`ModelInputs`](crate::ModelInputs), not features) and on degenerate
/// feature sets.
pub fn fit_predictor(
    kind: PredictorKind,
    data: &[TrialFeatures],
) -> Result<Box<dyn Predictor>, String> {
    match kind {
        PredictorKind::Eq8 => Err("eq8 is built from model inputs, not features".into()),
        PredictorKind::Logistic => Ok(Box::new(LogisticModel::fit(data)?)),
        PredictorKind::Stumps => Ok(Box::new(StumpsModel::fit(data)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilim_inject::OutcomeKind;

    /// A synthetic, linearly separable-ish feature set: quiet trials
    /// succeed, widely spread trials fail, the rest SDC.
    fn dataset() -> Vec<TrialFeatures> {
        let mut data = Vec::new();
        for i in 0..30u32 {
            let spread = i % 3;
            let mut f = TrialFeatures::quiet(
                match spread {
                    0 => OutcomeKind::Success,
                    1 => OutcomeKind::Sdc,
                    _ => OutcomeKind::Failure,
                },
                4,
                1000 + i as u64,
                [0.4, 0.2, 0.3, 0.05, 0.05],
            );
            f.contaminated_ranks = spread + 1;
            f.first_contam_op = (10 * (i + 1)) as i64;
            f.spread_rate = spread as f64 * 0.01;
            f.taint_crossings = (spread * 2) as u64;
            data.push(f);
        }
        data
    }

    #[test]
    fn logistic_learns_the_class_rates() {
        crate::verifies!(INV_PREDICT);
        let data = dataset();
        let model = LogisticModel::fit(&data).unwrap();
        let rates = empirical_rates(&data);
        let pred = model.predict().rates;
        for (p, r) in pred.iter().zip(&rates) {
            assert!(
                (p - r).abs() < 0.05,
                "predicted {pred:?} vs empirical {rates:?}"
            );
        }
        // A separable example is classified correctly.
        let p = model.predict_one(&data[2]);
        assert_eq!(data[2].outcome().index(), 2);
        assert!(p[2] > p[0] && p[2] > p[1], "{p:?}");
    }

    #[test]
    fn stumps_learn_the_class_rates() {
        crate::verifies!(INV_PREDICT);
        let data = dataset();
        let model = StumpsModel::fit(&data).unwrap();
        let rates = empirical_rates(&data);
        let pred = model.predict().rates;
        for (p, r) in pred.iter().zip(&rates) {
            assert!(
                (p - r).abs() < 0.10,
                "predicted {pred:?} vs empirical {rates:?}"
            );
        }
        let p = model.predict_one(&data[0]);
        assert!(p[0] > p[1] && p[0] > p[2], "{p:?}");
    }

    #[test]
    fn training_is_deterministic() {
        let data = dataset();
        for kind in [PredictorKind::Logistic, PredictorKind::Stumps] {
            let a = fit_predictor(kind, &data).unwrap().predict();
            let b = fit_predictor(kind, &data).unwrap().predict();
            assert_eq!(a.rates.map(f64::to_bits), b.rates.map(f64::to_bits));
        }
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(LogisticModel::fit(&[]).is_err());
        assert!(StumpsModel::fit(&dataset()[..1]).is_err());
        assert!(fit_predictor(PredictorKind::Eq8, &dataset()).is_err());
    }

    #[test]
    fn single_class_data_predicts_that_class() {
        let data: Vec<TrialFeatures> = (0..10)
            .map(|i| {
                TrialFeatures::quiet(OutcomeKind::Success, 2, 100 + i, [1.0, 0.0, 0.0, 0.0, 0.0])
            })
            .collect();
        let model = LogisticModel::fit(&data).unwrap();
        assert!(model.predict().rates[0] > 0.9);
        let model = StumpsModel::fit(&data).unwrap();
        assert!(model.predict().rates[0] > 0.9);
    }
}
