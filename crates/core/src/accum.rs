//! Online campaign aggregation: fold one outcome at a time.
//!
//! [`FiAccumulator`] is the incremental form of the batch campaign fold
//! (overall [`FiResult`], [`PropagationProfile`], conditional-on-
//! contamination results, and the uncontaminated bucket). Folding the
//! same outcomes in the same order produces bitwise-identical statistics
//! to the batch construction — the campaign layer delegates its batch
//! aggregation to this type, so the two cannot drift apart.
//!
//! [`StopRule`] is the adaptive-stopping criterion built on top: stop a
//! campaign once every outcome class's Wilson interval is narrower than
//! a target half-width (and a minimum trial floor is met). The paper
//! trades trials for confidence with sparse sampling (Eq. 7); a stop
//! rule makes the same trade inside a single deployment.

use crate::fi::FiResult;
use crate::propagation::PropagationProfile;
use resilim_inject::{OutcomeKind, TestOutcome};
use serde::{Deserialize, Serialize};

/// Incremental aggregation of one deployment's trial outcomes.
///
/// ```
/// use resilim_core::{FiAccumulator, FiResult, TestOutcome};
/// let outcomes = [TestOutcome::success(true, 1, 1), TestOutcome::sdc(4, 1)];
/// let mut acc = FiAccumulator::new(4);
/// for o in &outcomes {
///     acc.record(o);
/// }
/// assert_eq!(*acc.fi(), FiResult::from_outcomes(&outcomes));
/// assert_eq!(acc.by_contam()[3].total(), 1); // the 4-rank SDC
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FiAccumulator {
    procs: usize,
    fi: FiResult,
    prop: PropagationProfile,
    by_contam: Vec<FiResult>,
    uncontaminated: FiResult,
}

impl FiAccumulator {
    /// Empty accumulator for a `procs`-rank deployment.
    pub fn new(procs: usize) -> FiAccumulator {
        FiAccumulator {
            procs,
            fi: FiResult::new(),
            prop: PropagationProfile::new(procs),
            by_contam: vec![FiResult::new(); procs],
            uncontaminated: FiResult::new(),
        }
    }

    /// Fold one trial outcome.
    ///
    /// `by_contam[x-1]` collects the trials that contaminated exactly
    /// `x ∈ [1, procs]` ranks (over-counts clamp down); trials that
    /// contaminated *no* rank go to the separate uncontaminated bucket
    /// so the x=1 class is not polluted by trials where the planned
    /// fault never fired.
    pub fn record(&mut self, outcome: &TestOutcome) {
        self.fi.record(outcome);
        self.prop.record(outcome);
        match outcome.contaminated_ranks {
            0 => self.uncontaminated.record(outcome),
            x => self.by_contam[x.min(self.procs) - 1].record(outcome),
        }
    }

    /// Rank count of the deployment.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// Trials folded so far.
    pub fn total(&self) -> u64 {
        self.fi.total()
    }

    /// The overall statistical summary so far.
    pub fn fi(&self) -> &FiResult {
        &self.fi
    }

    /// The contaminated-rank histogram so far.
    pub fn prop(&self) -> &PropagationProfile {
        &self.prop
    }

    /// Results conditioned on contamination count (`[x-1]` = exactly
    /// `x` ranks).
    pub fn by_contam(&self) -> &[FiResult] {
        &self.by_contam
    }

    /// Trials that contaminated no rank.
    pub fn uncontaminated(&self) -> &FiResult {
        &self.uncontaminated
    }

    /// Consume the accumulator into its four statistics, in the batch
    /// fold's historical order.
    pub fn into_parts(self) -> (FiResult, PropagationProfile, Vec<FiResult>, FiResult) {
        (self.fi, self.prop, self.by_contam, self.uncontaminated)
    }
}

/// Adaptive-stopping criterion: a campaign may stop once every outcome
/// class's Wilson score interval is narrower than `2 × ci_halfwidth`
/// and at least `min_tests` trials have been folded.
///
/// Decisions are monotone under proportional growth: scaling every
/// outcome count by the same factor never widens a Wilson interval, so
/// once a rule is satisfied it stays satisfied (the property test in
/// `resilim-core` pins this).
///
/// ```
/// use resilim_core::{FiResult, StopRule, TestOutcome};
/// let rule = StopRule::new(0.2).with_min_tests(10);
/// let mut fi = FiResult::new();
/// for _ in 0..100 {
///     fi.record(&TestOutcome::success(true, 1, 1));
/// }
/// assert!(rule.satisfied(&fi));
/// assert!(!rule.satisfied(&FiResult::new()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StopRule {
    /// Target half-width of every outcome class's Wilson interval.
    pub ci_halfwidth: f64,
    /// Never stop before this many trials, however narrow the
    /// intervals (tiny campaigns satisfy any width vacuously).
    pub min_tests: u64,
    /// Confidence multiplier of the Wilson interval (1.96 ≈ 95 %).
    pub z: f64,
}

/// Trial floor applied when none is given (`StopRule::new`).
pub const DEFAULT_MIN_TESTS: u64 = 50;

/// Wilson confidence multiplier applied when none is given (95 %).
pub const DEFAULT_Z: f64 = 1.96;

impl StopRule {
    /// Rule targeting `ci_halfwidth` at 95 % confidence with the
    /// default trial floor ([`DEFAULT_MIN_TESTS`]).
    pub fn new(ci_halfwidth: f64) -> StopRule {
        StopRule {
            ci_halfwidth,
            min_tests: DEFAULT_MIN_TESTS,
            z: DEFAULT_Z,
        }
    }

    /// Replace the minimum-trial floor.
    pub fn with_min_tests(mut self, min_tests: u64) -> StopRule {
        self.min_tests = min_tests;
        self
    }

    /// Half-width of the widest outcome class's Wilson interval.
    pub fn widest_halfwidth(&self, fi: &FiResult) -> f64 {
        OutcomeKind::ALL
            .into_iter()
            .map(|kind| {
                let (lo, hi) = fi.wilson_ci(kind, self.z);
                (hi - lo) / 2.0
            })
            .fold(0.0, f64::max)
    }

    /// Whether `fi` has converged enough to stop.
    pub fn satisfied(&self, fi: &FiResult) -> bool {
        fi.total() >= self.min_tests && self.widest_halfwidth(fi) <= self.ci_halfwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilim_inject::FailureKind;

    fn mixed_outcomes(n: usize) -> Vec<TestOutcome> {
        (0..n)
            .map(|i| match i % 4 {
                0 => TestOutcome::success(true, 0, 0),
                1 => TestOutcome::success(false, 1, 1),
                2 => TestOutcome::sdc((i % 7) + 1, 1),
                _ => TestOutcome::failure(FailureKind::Crash, 2, 1),
            })
            .collect()
    }

    /// The batch fold the accumulator must match bitwise (mirrors the
    /// campaign layer's historical aggregation).
    fn batch(
        procs: usize,
        outcomes: &[TestOutcome],
    ) -> (FiResult, PropagationProfile, Vec<FiResult>, FiResult) {
        let mut fi = FiResult::new();
        let mut prop = PropagationProfile::new(procs);
        let mut by_contam = vec![FiResult::new(); procs];
        let mut uncontaminated = FiResult::new();
        for outcome in outcomes {
            fi.record(outcome);
            prop.record(outcome);
            match outcome.contaminated_ranks {
                0 => uncontaminated.record(outcome),
                x => by_contam[x.min(procs) - 1].record(outcome),
            }
        }
        (fi, prop, by_contam, uncontaminated)
    }

    #[test]
    fn accumulator_matches_batch_fold_bitwise() {
        crate::verifies!(INV_MERGE);
        for procs in [1usize, 2, 4, 8] {
            let outcomes = mixed_outcomes(40);
            let mut acc = FiAccumulator::new(procs);
            for o in &outcomes {
                acc.record(o);
            }
            let (fi, prop, by_contam, uncontaminated) = batch(procs, &outcomes);
            assert_eq!(*acc.fi(), fi);
            assert_eq!(acc.prop().counts, prop.counts);
            assert_eq!(acc.by_contam(), by_contam.as_slice());
            assert_eq!(*acc.uncontaminated(), uncontaminated);
            let parts = acc.into_parts();
            assert_eq!(parts.0, fi);
            assert_eq!(parts.3, uncontaminated);
        }
    }

    #[test]
    fn stop_rule_respects_min_tests_floor() {
        crate::verifies!(INV_STOP);
        let rule = StopRule::new(0.9).with_min_tests(10);
        let mut fi = FiResult::new();
        for _ in 0..9 {
            fi.record(&TestOutcome::success(true, 1, 1));
        }
        // Intervals are narrow enough but the floor is not met.
        assert!(rule.widest_halfwidth(&fi) <= 0.9);
        assert!(!rule.satisfied(&fi));
        fi.record(&TestOutcome::success(true, 1, 1));
        assert!(rule.satisfied(&fi));
    }

    #[test]
    fn stop_rule_tracks_widest_class() {
        let mut fi = FiResult::new();
        for i in 0..200 {
            if i % 2 == 0 {
                fi.record(&TestOutcome::success(false, 1, 1));
            } else {
                fi.record(&TestOutcome::sdc(1, 1));
            }
        }
        // A 50/50 split at n=200 has half-width ≈ 0.068.
        let w = StopRule::new(0.05).widest_halfwidth(&fi);
        assert!(w > 0.05 && w < 0.10, "w = {w}");
        assert!(!StopRule::new(0.05).with_min_tests(1).satisfied(&fi));
        assert!(StopRule::new(0.10).with_min_tests(1).satisfied(&fi));
    }

    #[test]
    fn empty_result_never_satisfies_a_sub_half_target() {
        crate::verifies!(INV_STOP);
        // Even with a zero floor, the empty interval is (0, 1): half-width 0.5.
        assert!(!StopRule::new(0.4)
            .with_min_tests(0)
            .satisfied(&FiResult::new()));
    }

    #[test]
    fn stop_rule_serde_round_trip() {
        let rule = StopRule::new(0.02).with_min_tests(77);
        let json = serde_json::to_string(&rule).unwrap();
        let back: StopRule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rule);
    }
}
