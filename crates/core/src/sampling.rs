//! Sparse sampling of the serial multi-error curve (paper §4.2, "Model
//! usage").
//!
//! Measuring `FI_ser_x` for every `x ∈ [1, p]` would need `p` serial
//! deployments; instead the paper measures `S` sample cases and maps every
//! `x` to its bucket's sample. The bucket of `x` is `⌈x·S/p⌉` (the uniform
//! `S`-way split of `[1, p]` that Figure 1c and Eq. 8 use).
//!
//! The paper is internally inconsistent about the sample points
//! themselves: Eq. 7's expansion uses `{1, 2p/S, 3p/S, …, p}`
//! (= bucket upper edges with `x₁ = 1`) while Eq. 8's worked example uses
//! `{1, 16, 32, 64}` for `S = 4, p = 64`. Both are provided; benches
//! compare them (see DESIGN.md).

use serde::{Deserialize, Serialize};

/// Strategy for choosing the `S` serial sample cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SamplePoints {
    /// `{1, 2p/S, 3p/S, …, p}` — Eq. 7's points (bucket upper edges,
    /// anchored at 1). The default.
    #[default]
    BucketUpper,
    /// `{1, p/S, 2p/S, …, (S−2)p/S, p}` — the points of the paper's Eq. 8
    /// worked example (`{1, 16, 32, 64}` for `S = 4, p = 64`).
    PaperEq8,
    /// `{1, mid of bucket 2, …, mid of bucket S}` — bucket midpoints,
    /// anchored at 1 (an ablation alternative).
    BucketMid,
}

/// The 1-based bucket index of `x` under an `S`-way uniform split of
/// `[1, p]`: `⌈x·S/p⌉`.
///
/// ```
/// use resilim_core::bucket_of;
/// assert_eq!(bucket_of(16, 64, 4), 1); // FI_ser_16 ≈ bucket 1's sample
/// assert_eq!(bucket_of(17, 64, 4), 2);
/// ```
#[inline]
pub fn bucket_of(x: usize, p: usize, s: usize) -> usize {
    assert!(x >= 1 && x <= p, "x = {x} out of [1, {p}]");
    assert!(
        s >= 1 && p.is_multiple_of(s),
        "need s | p (s = {s}, p = {p})"
    );
    x.div_ceil(p / s)
}

/// The `S` sample cases of `x` for predicting scale `p` (ascending).
///
/// ```
/// use resilim_core::{sample_cases, SamplePoints};
/// // Eq. 7's points for S = 4, p = 64:
/// assert_eq!(sample_cases(64, 4, SamplePoints::BucketUpper), [1, 32, 48, 64]);
/// ```
pub fn sample_cases(p: usize, s: usize, strategy: SamplePoints) -> Vec<usize> {
    assert!(
        s >= 1 && s <= p && p.is_multiple_of(s),
        "need s | p (s = {s}, p = {p})"
    );
    if s == 1 {
        return vec![1];
    }
    let width = p / s;
    match strategy {
        SamplePoints::BucketUpper => {
            let mut v = vec![1];
            v.extend((2..=s).map(|j| j * width));
            v
        }
        SamplePoints::PaperEq8 => {
            // With one-wide buckets (s = p) the first interior point
            // `1·width` would collide with the anchor at 1; every bucket
            // is a single case, so the only valid sample set is the
            // identity.
            if width == 1 {
                return (1..=p).collect();
            }
            let mut v = vec![1];
            v.extend((1..s - 1).map(|j| j * width));
            v.push(p);
            v
        }
        SamplePoints::BucketMid => {
            let mut v = vec![1];
            v.extend((2..=s).map(|j| (j - 1) * width + width.div_ceil(2)));
            v
        }
    }
}

/// The sample case that stands in for `x` (paper: `FI_ser_x` is
/// approximated by the sample of bucket `⌈x·S/p⌉`).
pub fn sample_for(x: usize, p: usize, s: usize, strategy: SamplePoints) -> usize {
    let cases = sample_cases(p, s, strategy);
    cases[bucket_of(x, p, s) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_uniformly() {
        crate::verifies!(EQ8);
        // p = 64, S = 4: buckets are 1..16, 17..32, 33..48, 49..64.
        assert_eq!(bucket_of(1, 64, 4), 1);
        assert_eq!(bucket_of(16, 64, 4), 1);
        assert_eq!(bucket_of(17, 64, 4), 2);
        assert_eq!(bucket_of(32, 64, 4), 2);
        assert_eq!(bucket_of(33, 64, 4), 3);
        assert_eq!(bucket_of(48, 64, 4), 3);
        assert_eq!(bucket_of(49, 64, 4), 4);
        assert_eq!(bucket_of(64, 64, 4), 4);
    }

    #[test]
    fn eq7_sample_points() {
        crate::verifies!(EQ7);
        assert_eq!(
            sample_cases(64, 4, SamplePoints::BucketUpper),
            vec![1, 32, 48, 64]
        );
        assert_eq!(
            sample_cases(64, 8, SamplePoints::BucketUpper),
            vec![1, 16, 24, 32, 40, 48, 56, 64]
        );
    }

    #[test]
    fn eq8_sample_points() {
        crate::verifies!(EQ7, EQ8);
        assert_eq!(
            sample_cases(64, 4, SamplePoints::PaperEq8),
            vec![1, 16, 32, 64]
        );
        assert_eq!(
            sample_cases(64, 8, SamplePoints::PaperEq8),
            vec![1, 8, 16, 24, 32, 40, 48, 64]
        );
    }

    #[test]
    fn mid_sample_points() {
        assert_eq!(
            sample_cases(64, 4, SamplePoints::BucketMid),
            vec![1, 24, 40, 56]
        );
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(sample_cases(64, 1, SamplePoints::BucketUpper), vec![1]);
        assert_eq!(
            sample_cases(4, 4, SamplePoints::BucketUpper),
            vec![1, 2, 3, 4]
        );
        for x in 1..=4 {
            assert_eq!(bucket_of(x, 4, 4), x);
        }
    }

    #[test]
    fn eq8_one_wide_buckets_degenerate_to_identity() {
        // s = p makes every bucket a single case; Eq. 8's interior
        // points would otherwise start at 1·width = 1 and duplicate the
        // anchor (and skip p−1 entirely).
        assert_eq!(sample_cases(4, 4, SamplePoints::PaperEq8), vec![1, 2, 3, 4]);
        assert_eq!(
            sample_cases(8, 8, SamplePoints::PaperEq8),
            (1..=8).collect::<Vec<_>>()
        );
        for x in 1..=8 {
            assert_eq!(sample_for(x, 8, 8, SamplePoints::PaperEq8), x);
        }
    }

    #[test]
    fn sample_for_matches_paper_example() {
        crate::verifies!(EQ7, EQ8);
        // Paper §4.2: FI_ser_2..16 ≈ FI_ser_1; FI_ser_17..31 ≈ FI_ser_32.
        for x in 1..=16 {
            assert_eq!(sample_for(x, 64, 4, SamplePoints::BucketUpper), 1);
        }
        for x in 17..=32 {
            assert_eq!(sample_for(x, 64, 4, SamplePoints::BucketUpper), 32);
        }
        for x in 49..=64 {
            assert_eq!(sample_for(x, 64, 4, SamplePoints::BucketUpper), 64);
        }
    }

    #[test]
    fn sample_points_are_within_their_buckets_or_anchor() {
        crate::verifies!(EQ7);
        for s in [2usize, 4, 8, 16] {
            for strategy in [
                SamplePoints::BucketUpper,
                SamplePoints::PaperEq8,
                SamplePoints::BucketMid,
            ] {
                let cases = sample_cases(64, s, strategy);
                assert_eq!(cases.len(), s, "{strategy:?} s={s}");
                assert_eq!(cases[0], 1);
                assert!(
                    cases.windows(2).all(|w| w[0] < w[1]),
                    "{strategy:?} {cases:?}"
                );
                assert!(*cases.last().unwrap() <= 64);
                if !matches!(strategy, SamplePoints::BucketMid) {
                    assert_eq!(*cases.last().unwrap(), 64);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn bucket_rejects_zero() {
        bucket_of(0, 64, 4);
    }
}
