//! Fault-injection results: the statistical summary of one deployment.

use resilim_inject::{OutcomeKind, TestOutcome};
use serde::{Deserialize, Serialize};

/// The statistical summary of a fault-injection deployment (paper §2):
/// how many of its tests ended in each outcome class.
///
/// ```
/// use resilim_core::{FiResult, TestOutcome};
/// let mut fi = FiResult::new();
/// fi.record(&TestOutcome::success(true, 1, 1));
/// fi.record(&TestOutcome::sdc(4, 1));
/// assert_eq!(fi.success_rate(), 0.5);
/// assert_eq!(fi.masked, 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FiResult {
    /// Outcome counts, indexed by [`OutcomeKind::index`].
    pub counts: [u64; 3],
    /// How many of the successes were bitwise identical to the fault-free
    /// run (fully masked end-to-end).
    pub masked: u64,
}

impl FiResult {
    /// Empty result (no tests).
    pub fn new() -> FiResult {
        FiResult::default()
    }

    /// Build from raw test outcomes.
    pub fn from_outcomes<'a>(outcomes: impl IntoIterator<Item = &'a TestOutcome>) -> FiResult {
        let mut fi = FiResult::default();
        for o in outcomes {
            fi.record(o);
        }
        fi
    }

    /// Record one test outcome.
    pub fn record(&mut self, o: &TestOutcome) {
        self.counts[o.kind.index()] += 1;
        if o.masked {
            self.masked += 1;
        }
    }

    /// Total number of tests.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of tests with the given outcome — the paper's "fault
    /// injection result for a specific outcome". NaN-free: 0 when empty.
    pub fn rate(&self, kind: OutcomeKind) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.counts[kind.index()] as f64 / total as f64
    }

    /// The success rate (the headline metric of Figures 3 and 5–8).
    pub fn success_rate(&self) -> f64 {
        self.rate(OutcomeKind::Success)
    }

    /// The SDC rate.
    pub fn sdc_rate(&self) -> f64 {
        self.rate(OutcomeKind::Sdc)
    }

    /// The failure (crash/hang) rate.
    pub fn failure_rate(&self) -> f64 {
        self.rate(OutcomeKind::Failure)
    }

    /// Rates for all three outcome classes `[success, sdc, failure]`.
    pub fn rates(&self) -> [f64; 3] {
        [self.success_rate(), self.sdc_rate(), self.failure_rate()]
    }

    /// Merge another deployment's counts into this one.
    pub fn merge(&mut self, other: &FiResult) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.masked += other.masked;
    }

    /// Wilson score interval for an outcome's rate at confidence `z`
    /// (e.g. `z = 1.96` for 95 %). Returns `(lo, hi)`.
    ///
    /// Used to decide whether a deployment has run enough tests: the paper
    /// requires the result to be stable (±10 %) under more tests.
    pub fn wilson_ci(&self, kind: OutcomeKind, z: f64) -> (f64, f64) {
        let n = self.total() as f64;
        if n == 0.0 {
            return (0.0, 1.0);
        }
        let phat = self.rate(kind);
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (phat + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * ((phat * (1.0 - phat) / n + z2 / (4.0 * n * n)).sqrt());
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilim_inject::FailureKind;

    fn sample() -> FiResult {
        let outcomes = vec![
            TestOutcome::success(true, 1, 1),
            TestOutcome::success(false, 2, 1),
            TestOutcome::success(false, 1, 1),
            TestOutcome::sdc(4, 1),
            TestOutcome::failure(FailureKind::Crash, 1, 1),
        ];
        FiResult::from_outcomes(&outcomes)
    }

    #[test]
    fn rates_sum_to_one() {
        crate::verifies!(EQ2, EQ3);
        let fi = sample();
        assert_eq!(fi.total(), 5);
        let sum: f64 = fi.rates().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((fi.success_rate() - 0.6).abs() < 1e-12);
        assert!((fi.sdc_rate() - 0.2).abs() < 1e-12);
        assert!((fi.failure_rate() - 0.2).abs() < 1e-12);
        assert_eq!(fi.masked, 1);
    }

    #[test]
    fn empty_result_is_nan_free() {
        crate::verifies!(EQ3);
        let fi = FiResult::new();
        assert_eq!(fi.total(), 0);
        assert_eq!(fi.success_rate(), 0.0);
        assert_eq!(fi.wilson_ci(OutcomeKind::Success, 1.96), (0.0, 1.0));
    }

    #[test]
    fn merge_accumulates() {
        crate::verifies!(INV_MERGE);
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.total(), 10);
        assert!((a.success_rate() - 0.6).abs() < 1e-12);
        assert_eq!(a.masked, 2);
    }

    #[test]
    fn wilson_ci_contains_point_estimate() {
        crate::verifies!(INV_WILSON);
        let fi = sample();
        let (lo, hi) = fi.wilson_ci(OutcomeKind::Success, 1.96);
        assert!(lo < fi.success_rate() && fi.success_rate() < hi);
        assert!(lo >= 0.0 && hi <= 1.0);
    }

    #[test]
    fn wilson_ci_narrows_with_more_tests() {
        crate::verifies!(INV_WILSON);
        let mut small = FiResult::new();
        let mut large = FiResult::new();
        for i in 0..20 {
            small.record(&TestOutcome::success(false, 1, 1));
            if i % 2 == 0 {
                small.record(&TestOutcome::sdc(1, 1));
            }
        }
        for i in 0..2000 {
            large.record(&TestOutcome::success(false, 1, 1));
            if i % 2 == 0 {
                large.record(&TestOutcome::sdc(1, 1));
            }
        }
        let w = |fi: &FiResult| {
            let (lo, hi) = fi.wilson_ci(OutcomeKind::Success, 1.96);
            hi - lo
        };
        assert!(w(&large) < w(&small) / 5.0);
    }

    #[test]
    fn serde_roundtrip() {
        let fi = sample();
        let s = serde_json::to_string(&fi).unwrap();
        let back: FiResult = serde_json::from_str(&s).unwrap();
        assert_eq!(back, fi);
    }
}
