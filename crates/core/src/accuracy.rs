//! Prediction-accuracy metrics (paper §5).

/// Absolute prediction error on a rate, in percentage points — the
/// quantity the paper reports as "prediction error" (e.g. "average 8 %,
/// 27 % at most" in Figure 5).
pub fn prediction_error(measured: f64, predicted: f64) -> f64 {
    (measured - predicted).abs()
}

/// Root-mean-square error over `(measured, predicted)` pairs — Eq. 9,
/// used for the Figure 8 sensitivity study across benchmarks.
pub fn rmse(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let sum_sq: f64 = pairs
        .iter()
        .map(|&(m, p)| {
            let d = m - p;
            d * d
        })
        .sum();
    (sum_sq / pairs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_symmetric_and_absolute() {
        crate::verifies!(EQ9);
        assert_eq!(prediction_error(0.8, 0.7), prediction_error(0.7, 0.8));
        assert!((prediction_error(0.8, 0.72) - 0.08).abs() < 1e-12);
    }

    #[test]
    fn error_of_exact_prediction_is_zero() {
        crate::verifies!(EQ9);
        for v in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(prediction_error(v, v), 0.0);
        }
    }

    #[test]
    fn rmse_matches_hand_computation() {
        crate::verifies!(EQ9);
        let pairs = [(1.0, 0.0), (0.0, 1.0)];
        assert!((rmse(&pairs) - 1.0).abs() < 1e-12);
        let pairs = [(0.5, 0.5)];
        assert_eq!(rmse(&pairs), 0.0);
        // Mixed magnitudes: sqrt((0.3² + 0.1² + 0²)/3) = sqrt(0.1/3).
        let pairs = [(0.8, 0.5), (0.2, 0.3), (0.4, 0.4)];
        assert!((rmse(&pairs) - (0.1f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rmse_of_exact_match_is_zero() {
        crate::verifies!(EQ9);
        let pairs = [(0.1, 0.1), (0.9, 0.9), (0.5, 0.5)];
        assert_eq!(rmse(&pairs), 0.0);
    }

    #[test]
    fn rmse_of_empty_is_zero() {
        crate::verifies!(EQ9);
        assert_eq!(rmse(&[]), 0.0);
    }

    #[test]
    fn rmse_dominated_by_worst_case() {
        let small_errors = [(0.5, 0.51); 5];
        let with_outlier = [
            (0.5, 0.51),
            (0.5, 0.51),
            (0.5, 0.51),
            (0.5, 0.51),
            (0.9, 0.5),
        ];
        assert!(rmse(&with_outlier) > 5.0 * rmse(&small_errors));
    }
}
