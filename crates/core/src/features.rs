//! Per-trial feature records for the learned predictors.
//!
//! PARIS (Guo et al.) and FlipTracker show that dynamic features the
//! instrumentation already observes for free — operation mix, taint
//! spread, communication position — predict fault-injection outcomes
//! well. [`TrialFeatures`] is the fixed-size record of those features for
//! one trial: the harness extracts it from the per-rank context reports
//! at classification time, streams it through the same reorder buffer as
//! the trial outcome (so extraction is deterministic across worker counts
//! and batch sizes), and persists it in the feature store next to the
//! trial ledger. The learners in [`crate::learn`] consume the flattened
//! [`TrialFeatures::vector`] form.
//!
//! The record is `Copy` on purpose: it rides inside the harness's
//! `TrialRecord` (also `Copy`) through lock-free batch hand-off, so every
//! per-rank quantity is reduced to fixed-size scalars at harvest time.

use resilim_inject::OutcomeKind;
use serde::{Deserialize, Serialize};

/// Version of the feature schema, bumped whenever a field is added,
/// removed, or its meaning changes — mirrors `REPRO_VERSION` in the check
/// crate and `LEDGER_VERSION` in the harness: persisted feature records
/// carry it, and loaders skip records from other versions instead of
/// silently misinterpreting them.
pub const FEATURE_SCHEMA_VERSION: u32 = 1;

/// Number of op-index windows in the contamination trajectory.
pub const SPREAD_WINDOWS: usize = 4;

/// Length of [`TrialFeatures::vector`].
pub const FEATURE_DIM: usize = 19;

/// The dynamic features of one fault-injection trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialFeatures {
    /// Outcome class index (`OutcomeKind::index`): 0 success, 1 SDC,
    /// 2 failure — the training label.
    pub label: u8,
    /// Whether the corruption was detected (DUE kill or replica compare).
    pub detected: bool,
    /// Rank count of the deployment.
    pub procs: u32,
    /// Ranks contaminated by the end of the trial.
    pub contaminated_ranks: u32,
    /// Total tracked operations across all ranks.
    pub total_ops: u64,
    /// Dynamic-op mix by category: fraction of tracked operations that
    /// were add/sub/mul/div/other (`OpKind` order), over all ranks and
    /// regions.
    pub op_mix: [f64; 5],
    /// Share of tracked operations in the parallel-unique region.
    pub unique_frac: f64,
    /// Earliest per-rank operation index at which any rank first became
    /// contaminated; `-1` when no rank was ever contaminated.
    pub first_contam_op: i64,
    /// Contaminated-rank count trajectory: how many ranks became
    /// contaminated in each quarter of the per-rank op-index range
    /// (window `w` covers first-contamination indices in
    /// `[w, w+1) · max_ops/4`).
    pub spread_window: [u32; SPREAD_WINDOWS],
    /// Taint-spread rate: contaminated ranks per tracked op-index between
    /// the earliest and latest first-contamination events (0 when at most
    /// one rank was contaminated).
    pub spread_rate: f64,
    /// Comm-graph position of the injecting rank: its share of the
    /// deployment's golden-run message sends (0.5 = average sender when
    /// uniform; 0 when the deployment sends nothing or the trial has no
    /// single injecting rank).
    pub inject_rank_msg_share: f64,
    /// Messages the earliest-contaminated rank had sent when it first
    /// became contaminated.
    pub msgs_sent_before_contam: u64,
    /// Numeric messages the earliest-contaminated rank had received when
    /// it first became contaminated.
    pub msgs_recvd_before_contam: u64,
    /// Taint crossings stamped by the fabric: numeric messages whose
    /// payload carried significant taint into a receiving rank, summed
    /// over all ranks.
    pub taint_crossings: u64,
}

impl TrialFeatures {
    /// A features record for a trial where nothing fired: all counters
    /// zero, labeled with `label`.
    pub fn quiet(
        label: OutcomeKind,
        procs: u32,
        total_ops: u64,
        op_mix: [f64; 5],
    ) -> TrialFeatures {
        TrialFeatures {
            label: label.index() as u8,
            detected: false,
            procs,
            contaminated_ranks: 0,
            total_ops,
            op_mix,
            unique_frac: 0.0,
            first_contam_op: -1,
            spread_window: [0; SPREAD_WINDOWS],
            spread_rate: 0.0,
            inject_rank_msg_share: 0.0,
            msgs_sent_before_contam: 0,
            msgs_recvd_before_contam: 0,
            taint_crossings: 0,
        }
    }

    /// The training label as an [`OutcomeKind`].
    pub fn outcome(&self) -> OutcomeKind {
        match self.label {
            0 => OutcomeKind::Success,
            1 => OutcomeKind::Sdc,
            _ => OutcomeKind::Failure,
        }
    }

    /// Flatten into the learner's input vector (the label and the
    /// detection flag are *not* features — they are what the learners
    /// predict). Counts enter as `ln(1 + x)` so scale differences across
    /// deployments do not drown the mix fractions.
    pub fn vector(&self) -> [f64; FEATURE_DIM] {
        let ln1p = |x: u64| (1.0 + x as f64).ln();
        let windows = self.spread_window.map(|w| w as f64);
        [
            self.procs as f64,
            self.contaminated_ranks as f64,
            self.contaminated_ranks as f64 / self.procs.max(1) as f64,
            ln1p(self.total_ops),
            self.op_mix[0],
            self.op_mix[1],
            self.op_mix[2],
            self.op_mix[3],
            self.op_mix[4],
            self.unique_frac,
            // Never-contaminated keeps a neutral 0; contaminated trials
            // report the (log-scaled) op index of first contamination.
            if self.first_contam_op < 0 {
                0.0
            } else {
                ln1p(self.first_contam_op as u64)
            },
            windows[0],
            windows[1],
            windows[2],
            windows[3],
            self.spread_rate,
            self.inject_rank_msg_share,
            ln1p(self.msgs_sent_before_contam) + ln1p(self.msgs_recvd_before_contam),
            ln1p(self.taint_crossings),
        ]
    }

    /// Human-readable names for [`TrialFeatures::vector`] components
    /// (reports and model introspection).
    pub fn feature_names() -> [&'static str; FEATURE_DIM] {
        [
            "procs",
            "contaminated_ranks",
            "contaminated_frac",
            "ln_total_ops",
            "mix_add",
            "mix_sub",
            "mix_mul",
            "mix_div",
            "mix_other",
            "unique_frac",
            "ln_first_contam_op",
            "spread_w0",
            "spread_w1",
            "spread_w2",
            "spread_w3",
            "spread_rate",
            "inject_rank_msg_share",
            "ln_msgs_before_contam",
            "ln_taint_crossings",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrialFeatures {
        TrialFeatures {
            label: 1,
            detected: true,
            procs: 4,
            contaminated_ranks: 3,
            total_ops: 4000,
            op_mix: [0.5, 0.1, 0.3, 0.05, 0.05],
            unique_frac: 0.02,
            first_contam_op: 120,
            spread_window: [1, 2, 0, 0],
            spread_rate: 0.01,
            inject_rank_msg_share: 0.25,
            msgs_sent_before_contam: 3,
            msgs_recvd_before_contam: 5,
            taint_crossings: 7,
        }
    }

    #[test]
    fn vector_matches_names_and_dim() {
        let f = sample();
        let v = f.vector();
        assert_eq!(v.len(), FEATURE_DIM);
        assert_eq!(TrialFeatures::feature_names().len(), FEATURE_DIM);
        assert_eq!(v[0], 4.0);
        assert_eq!(v[1], 3.0);
        assert_eq!(v[2], 0.75);
        assert!(v.iter().all(|x| x.is_finite()));
        assert_eq!(f.outcome(), resilim_inject::OutcomeKind::Sdc);
    }

    #[test]
    fn quiet_trial_has_neutral_feature_values() {
        let f = TrialFeatures::quiet(OutcomeKind::Success, 2, 100, [1.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(f.contaminated_ranks, 0);
        assert_eq!(f.first_contam_op, -1);
        // The never-contaminated sentinel maps to a neutral 0 feature.
        assert_eq!(f.vector()[10], 0.0);
        assert_eq!(f.outcome(), OutcomeKind::Success);
    }

    #[test]
    fn features_round_trip_through_serde() {
        let f = sample();
        let json = serde_json::to_string(&f).unwrap();
        let back: TrialFeatures = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }
}
