//! The claims registry: every claim of the source paper that this
//! reproduction is accountable for, as structured data.
//!
//! Coverage of the paper used to be tribal knowledge spread across
//! DESIGN.md and test names; this module makes it machine-checkable.
//! Each [`Claim`] names one verifiable statement — an equation of the
//! model (Eq. 1–9), an empirical observation (O1–O4), a table, a
//! figure, or a repo-level proof obligation (`INV_*`) that the paper's
//! arithmetic silently relies on. Tests, check oracles, and benches
//! attest the claims they verify with the [`verifies!`](crate::verifies) macro:
//!
//! ```
//! # fn some_test_body() {
//! resilim_core::verifies!(EQ8, O3);
//! # }
//! ```
//!
//! The macro expands to a compile-checked reference into this registry
//! (a typo'd id is a build error) and serves as a machine-readable
//! marker: `resilim trace-matrix` scans the workspace source for
//! `verifies!` invocations, joins them against [`ALL`], and fails CI
//! when any claim has no attesting artifact or an attestation names an
//! unknown claim (see `resilim_check::trace` and DESIGN.md §13).

/// What kind of paper artifact a claim is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimKind {
    /// A numbered equation of the model (paper §4).
    Equation,
    /// An empirical observation the model is built on (paper §3).
    Observation,
    /// An evaluation table.
    Table,
    /// An evaluation figure.
    Figure,
    /// A repo-level proof obligation: arithmetic the reproduction's
    /// statistics rest on, proved over exhaustive small domains.
    Invariant,
}

impl ClaimKind {
    /// Stable lower-case name (JSON, matrix rendering).
    pub fn name(self) -> &'static str {
        match self {
            ClaimKind::Equation => "equation",
            ClaimKind::Observation => "observation",
            ClaimKind::Table => "table",
            ClaimKind::Figure => "figure",
            ClaimKind::Invariant => "invariant",
        }
    }
}

/// One claim of the source paper (or a supporting proof obligation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Claim {
    /// Stable upper-case id (`EQ8`, `O3`, `TABLE2`, `FIG3`, `INV_STOP`).
    pub id: &'static str,
    /// Artifact kind.
    pub kind: ClaimKind,
    /// The statement, in this repo's vocabulary.
    pub statement: &'static str,
}

macro_rules! declare_claims {
    ($($(#[$doc:meta])* $id:ident : $kind:ident = $statement:expr;)+) => {
        $(
            $(#[$doc])*
            pub static $id: Claim = Claim {
                id: stringify!($id),
                kind: ClaimKind::$kind,
                statement: $statement,
            };
        )+
        /// Every registered claim, in presentation order.
        pub static ALL: &[&Claim] = &[$(&$id),+];
    };
}

declare_claims! {
    /// Eq. 1 — the mixture.
    EQ1: Equation = "FI_par = prob1 * FI_common + prob2 * FI_unique: the \
        large-scale result is a convex mixture of the common-computation \
        term and the parallel-unique term (`Predictor::predict`).";
    /// Eq. 2 — the mixture weights.
    EQ2: Equation = "prob1 + prob2 = 1: the mixture weights are the \
        common/parallel-unique shares of injectable operations \
        (`ModelInputs::unique_share`), so a distribution in yields a \
        distribution out.";
    /// Eq. 3 — the propagation probabilities.
    EQ3: Equation = "r_x = count(x)/total: the probability that one \
        injected error contaminates exactly x ranks, a probability \
        distribution over x in [1, p] (`PropagationProfile::r`).";
    /// Eq. 4 — serial emulation of contaminated parallel execution.
    EQ4: Equation = "FI_common = sum_x r_x * FI_ser(x): a parallel run \
        with x contaminated ranks is emulated by a serial run with x \
        injected errors, weighted by the propagation profile.";
    /// Eq. 5 — uniform grouping of propagation profiles.
    EQ5: Equation = "Grouping a scale-p propagation profile into S \
        uniform buckets conserves probability mass and is consistent \
        under refinement (`PropagationProfile::group`).";
    /// Eq. 6 — alpha fine-tuning.
    EQ6: Equation = "When serial and small-scale results diverge by more \
        than the threshold (paper: 20%), bucket values are replaced by \
        the small-scale per-contamination results FI'_ser(x_j) = \
        FI_small_par(j) (`Predictor::divergence`, §4.2).";
    /// Eq. 7 — sparse serial sample cases.
    EQ7: Equation = "The S serial sample cases {1, 2p/S, ..., p} are \
        strictly increasing, in range, and cover every bucket of the \
        S-way split exactly once (`sample_cases`).";
    /// Eq. 8 — the sparse closed form.
    EQ8: Equation = "FI_common = sum_j r'_j * FI_ser(x_j) with bucket map \
        ceil(x*S/p): the sparse propagation-weighted sum, degenerating \
        to direct measurement when s = p (`Predictor::predict`).";
    /// Eq. 9 — prediction accuracy.
    EQ9: Equation = "Prediction accuracy is the absolute rate error per \
        deployment and RMSE over (measured, predicted) pairs \
        (`prediction_error`, `rmse`).";
    /// Observation 1 — parallel executes a superset of serial.
    O1: Observation = "Parallel execution executes a superset of the \
        serial computation; the common part is shared across scales \
        (region-marked apps, `table1`).";
    /// Observation 2 — the parallel-unique share is small.
    O2: Observation = "The parallel-unique share of injectable \
        operations is a small fraction for most applications, largest \
        for FT's transpose (`table1`).";
    /// Observation 3 — small-scale propagation predicts large-scale.
    O3: Observation = "The grouped large-scale propagation profile \
        matches the small-scale profile (high cosine similarity), so \
        small-scale r' stands in for the large scale.";
    /// Observation 4 — serial multi-error emulates contamination.
    O4: Observation = "The outcome of a serial run with x errors \
        approximates a parallel run in which x ranks are contaminated, \
        sometimes after the alpha correction (Fig. 3).";
    /// Table 1 — parallel-unique computation shares.
    TABLE1: Table = "Per-app parallel-unique share of injectable \
        operations: FT largest, CG/MiniFE small, MG/LU/PENNANT none \
        (`resilim table1`).";
    /// Table 2 — propagation cosine similarity.
    TABLE2: Table = "Cosine similarity between small-scale and grouped \
        large-scale propagation distributions (4V64, 8V64) is high \
        (`resilim table2`).";
    /// Figure 3 — serial multi-error vs parallel contamination curves.
    FIG3: Figure = "Success rate of a serial run with x errors tracks \
        the parallel run conditioned on x contaminated ranks, x = 1..S \
        (`resilim fig3`).";
    /// Figure 8 — sensitivity to the small scale.
    FIG8: Figure = "As the small scale S grows, prediction RMSE falls \
        while fault-injection time rises (`resilim fig8`).";
    /// FiResult merge algebra.
    INV_MERGE: Invariant = "FiResult::merge is commutative, associative, \
        and has FiResult::new() as identity; FiAccumulator folds are \
        order-invariant over outcome multisets — sharded, streamed, and \
        batch aggregation cannot drift apart.";
    /// Stop-rule monotonicity.
    INV_STOP: Invariant = "StopRule::satisfied is monotone under \
        proportional growth: once a campaign's intervals are narrow \
        enough, scaling every outcome count by the same factor never \
        un-satisfies the rule.";
    /// Wilson interval sanity.
    INV_WILSON: Invariant = "wilson_ci bounds lie in [0, 1], bracket the \
        point estimate, and the interval width is monotone non-increasing \
        in the number of trials at a fixed rate.";
    /// Predictor-registry agreement.
    INV_PREDICT: Invariant = "PaperEq8 routed through the Predictor trait \
        is bitwise identical to the pre-registry implementation, and the \
        learned predictors (logistic, stumps) trained on a campaign's own \
        per-trial features reproduce its outcome rates within a bounded \
        disagreement of PaperEq8 on seeded mini-campaigns (the \
        predictor-divergence oracle's bound).";
}

impl Claim {
    /// Look a claim up by its stable id.
    pub fn by_id(id: &str) -> Option<&'static Claim> {
        ALL.iter().copied().find(|c| c.id == id)
    }
}

/// Attest that the enclosing test, oracle, or bench verifies the named
/// claims.
///
/// Expands to a compile-checked reference into the claims registry, so
/// an id that does not exist in [`ALL`] is a build error. The
/// invocation itself is the machine-readable marker `resilim
/// trace-matrix` scans for; write it on one line, ids separated by
/// commas:
///
/// ```
/// # fn proof_body() {
/// resilim_core::verifies!(INV_MERGE);
/// resilim_core::verifies!(EQ8, O3, TABLE2);
/// # }
/// ```
#[macro_export]
macro_rules! verifies {
    ($($id:ident),+ $(,)?) => {
        {
            let _attested: &[&$crate::claims::Claim] = &[$(&$crate::claims::$id),+];
            let _ = _attested;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_resolvable() {
        let mut seen = std::collections::BTreeSet::new();
        for claim in ALL {
            assert!(seen.insert(claim.id), "duplicate claim id {}", claim.id);
            assert_eq!(Claim::by_id(claim.id), Some(*claim));
            assert!(!claim.statement.is_empty());
        }
        assert_eq!(Claim::by_id("EQ99"), None);
    }

    #[test]
    fn registry_covers_the_issue_scope() {
        // The enumerated scope of ROADMAP item 5: Eq 1-8, O1-O4,
        // Table 1-2, Fig 3, Fig 8 — all present (plus Eq 9 and the
        // proof obligations).
        for id in [
            "EQ1",
            "EQ2",
            "EQ3",
            "EQ4",
            "EQ5",
            "EQ6",
            "EQ7",
            "EQ8",
            "EQ9",
            "O1",
            "O2",
            "O3",
            "O4",
            "TABLE1",
            "TABLE2",
            "FIG3",
            "FIG8",
            "INV_MERGE",
            "INV_STOP",
            "INV_WILSON",
            "INV_PREDICT",
        ] {
            assert!(Claim::by_id(id).is_some(), "missing claim {id}");
        }
    }

    #[test]
    fn macro_accepts_single_and_multiple_ids() {
        crate::verifies!(EQ1);
        crate::verifies!(EQ1, O4, INV_STOP,);
    }

    #[test]
    fn kinds_have_stable_names() {
        assert_eq!(ClaimKind::Equation.name(), "equation");
        assert_eq!(ClaimKind::Invariant.name(), "invariant");
        assert_eq!(EQ8.kind, ClaimKind::Equation);
        assert_eq!(O3.kind, ClaimKind::Observation);
        assert_eq!(TABLE1.kind, ClaimKind::Table);
        assert_eq!(FIG8.kind, ClaimKind::Figure);
    }
}
