//! Resilience predictors: the [`Predictor`] trait, its registry
//! ([`PredictorKind`]), and the paper's closed-form model [`PaperEq8`]
//! (paper §4, Equations 1–8).
//!
//! `FI_par = prob₁ · FI_common + prob₂ · FI_unique` where
//! `FI_common = Σⱼ r'ⱼ · FI_ser(xⱼ)`:
//!
//! * `r'ⱼ` — probability that one injected error contaminates a number of
//!   ranks falling in bucket `j`, measured on the **small-scale**
//!   execution (Observation 3 / Eq. 5 / Eq. 8);
//! * `FI_ser(xⱼ)` — the fault-injection result of a **serial** run with
//!   `xⱼ` errors injected into the common computation (Observation 4),
//!   measured at the `S` sparse sample cases (Eq. 7);
//! * **α fine-tuning** — when serial multi-error injection diverges from
//!   the small-scale results by more than a threshold (paper: 20 %), the
//!   bucket values are replaced by the small-scale per-contamination
//!   results (`FI'_ser(xⱼ) = FI_small_par(j)`, §4.2);
//! * `prob₂` — the probability an error lands in the parallel-unique
//!   computation (its share of injectable operations), with `FI_unique`
//!   measured by region-targeted injection at the small scale.
//!
//! The learned predictors of the registry (logistic regression and
//! gradient-boosted stumps over per-trial [`TrialFeatures`]
//! (crate::TrialFeatures)) live in [`crate::learn`]; they implement the
//! same [`Predictor`] trait, so `resilim model` and the
//! `predictor-divergence` check oracle treat all three uniformly.

use crate::fi::FiResult;
use crate::propagation::PropagationProfile;
use crate::sampling::{sample_cases, SamplePoints};
use resilim_inject::OutcomeKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything the predictor needs, all measured at small scale or serially.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelInputs {
    /// Target (large) scale `p`.
    pub p: usize,
    /// Small scale `S` (also the number of serial sample cases).
    pub s: usize,
    /// Serial sample-point selection strategy.
    pub strategy: SamplePoints,
    /// `FI_ser_x` at (at least) the sample cases: map from `x` (number of
    /// errors injected into a serial run) to the deployment result.
    pub serial: BTreeMap<usize, FiResult>,
    /// Propagation profile of the small-scale 1-error deployment (`r'`).
    pub small_prop: PropagationProfile,
    /// Small-scale results *conditioned on contamination count*:
    /// `small_by_contam[x-1]` = result over tests that contaminated exactly
    /// `x` ranks (`None` when never observed). Used for the α check and
    /// fine-tuning.
    pub small_by_contam: Vec<Option<FiResult>>,
    /// `prob₂`: fraction of injectable operations in parallel-unique code
    /// at the target scale (0 disables the Eq. 1 second term).
    pub unique_share: f64,
    /// Result of the small-scale deployment targeted at parallel-unique
    /// computation (`FI_par_unique`); required when `unique_share > 0`.
    pub fi_unique: Option<FiResult>,
    /// Relative divergence (on the success rate) beyond which α
    /// fine-tuning activates. The paper uses 0.20.
    pub alpha_threshold: f64,
}

/// One bucket's contribution to the prediction (for reporting).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BucketTerm {
    /// 1-based bucket index `j`.
    pub bucket: usize,
    /// The serial sample case `xⱼ` standing in for this bucket.
    pub sample_x: usize,
    /// Bucket weight `r'ⱼ` from the small-scale propagation profile.
    pub weight: f64,
    /// The (possibly fine-tuned) outcome rates used for this bucket
    /// `[success, sdc, failure]`.
    pub rates: [f64; 3],
    /// Whether α fine-tuning replaced the serial value for this bucket.
    pub tuned: bool,
}

/// The model's output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted rates `[success, sdc, failure]` for the target scale.
    pub rates: [f64; 3],
    /// Whether α fine-tuning was active.
    pub used_alpha: bool,
    /// Measured serial-vs-small divergence that drove the α decision.
    pub divergence: f64,
    /// Per-bucket breakdown of the common-computation term.
    pub per_bucket: Vec<BucketTerm>,
    /// The common-computation rates before the Eq. 1 mixture.
    pub common_rates: [f64; 3],
}

impl Prediction {
    /// Predicted success rate (the headline number of Figures 5–7).
    pub fn success(&self) -> f64 {
        self.rates[OutcomeKind::Success.index()]
    }
    /// Predicted SDC rate.
    pub fn sdc(&self) -> f64 {
        self.rates[OutcomeKind::Sdc.index()]
    }
    /// Predicted failure rate.
    pub fn failure(&self) -> f64 {
        self.rates[OutcomeKind::Failure.index()]
    }
}

/// A resilience predictor: anything that can produce the outcome-rate
/// distribution of a deployment.
///
/// [`PaperEq8`] is the paper's closed-form model; the learned models in
/// [`crate::learn`] implement the same trait from per-trial features. The
/// registry ([`PredictorKind`]) enumerates the available implementations
/// so front ends can select one by name.
pub trait Predictor {
    /// Stable registry name (`eq8`, `logistic`, `stumps`).
    fn name(&self) -> &'static str;
    /// Produce the predicted outcome-rate distribution.
    fn predict(&self) -> Prediction;
}

/// The predictor registry: every [`Predictor`] implementation, by stable
/// CLI name. `resilim model --predictor <name>` and the check suite's
/// `predictor-divergence` oracle select implementations through this
/// enum, so adding a predictor means adding a variant here (and the
/// compiler then points at every front end that must learn about it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// The paper's closed-form sparse model ([`PaperEq8`]).
    Eq8,
    /// Multinomial logistic regression over per-trial features
    /// ([`crate::learn::LogisticModel`]).
    Logistic,
    /// Gradient-boosted decision stumps over per-trial features
    /// ([`crate::learn::StumpsModel`]).
    Stumps,
}

impl PredictorKind {
    /// Every registered predictor, in presentation order.
    pub const ALL: [PredictorKind; 3] = [
        PredictorKind::Eq8,
        PredictorKind::Logistic,
        PredictorKind::Stumps,
    ];

    /// Stable CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::Eq8 => "eq8",
            PredictorKind::Logistic => "logistic",
            PredictorKind::Stumps => "stumps",
        }
    }

    /// Parse the CLI spelling.
    pub fn parse(name: &str) -> Result<PredictorKind, String> {
        PredictorKind::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| {
                let names: Vec<&str> = PredictorKind::ALL.iter().map(|k| k.name()).collect();
                format!("unknown predictor '{name}' ({})", names.join("|"))
            })
    }

    /// Whether this predictor trains on a per-trial feature store (the
    /// learned models) rather than on campaign-level model inputs.
    pub fn needs_features(self) -> bool {
        !matches!(self, PredictorKind::Eq8)
    }
}

/// The paper's closed-form predictor (Eq. 1 + Eq. 8): validates inputs
/// once, predicts any number of times.
#[derive(Debug, Clone)]
pub struct PaperEq8 {
    inputs: ModelInputs,
}

impl PaperEq8 {
    /// Wrap validated inputs.
    ///
    /// # Panics
    /// If `s ∤ p`, a serial sample case is missing, the small profile has
    /// the wrong scale, or `unique_share > 0` without `fi_unique`.
    pub fn new(inputs: ModelInputs) -> PaperEq8 {
        assert!(
            inputs.s >= 1 && inputs.p.is_multiple_of(inputs.s),
            "need s | p"
        );
        assert_eq!(
            inputs.small_prop.p, inputs.s,
            "small-scale propagation profile must be at scale s"
        );
        for &x in &sample_cases(inputs.p, inputs.s, inputs.strategy) {
            assert!(
                inputs.serial.contains_key(&x),
                "missing serial sample case FI_ser_{x}"
            );
        }
        assert!(
            inputs.unique_share == 0.0 || inputs.fi_unique.is_some(),
            "unique_share > 0 requires fi_unique"
        );
        assert!(
            (0.0..=1.0).contains(&inputs.unique_share),
            "unique_share must be a probability"
        );
        PaperEq8 { inputs }
    }

    /// The inputs.
    pub fn inputs(&self) -> &ModelInputs {
        &self.inputs
    }

    /// Serial-vs-small-scale divergence: the maximum relative difference,
    /// over the contamination counts `x ≤ S` where both a small-scale
    /// conditional result and an exact serial measurement at `x` exist
    /// (`x = 1` always qualifies), across **all three outcome classes**
    /// (a "fault injection result" in the paper is the full outcome
    /// distribution, not just the success rate).
    ///
    /// Each class's relative difference uses a 5-percentage-point floor in
    /// the denominator so that sampling noise on near-zero rates does not
    /// spuriously trigger fine-tuning.
    pub fn divergence(&self) -> f64 {
        let mut worst = 0.0f64;
        for x in 1..=self.inputs.s {
            let (Some(Some(small)), Some(serial)) = (
                self.inputs.small_by_contam.get(x - 1),
                self.inputs.serial.get(&x),
            ) else {
                continue;
            };
            if small.total() == 0 || serial.total() == 0 {
                continue;
            }
            for (sp, sr) in small.rates().into_iter().zip(serial.rates()) {
                let scale = sp.max(sr).max(0.05);
                worst = worst.max((sp - sr).abs() / scale);
            }
        }
        worst
    }

    /// Run the model (Eq. 1 + Eq. 8).
    pub fn predict(&self) -> Prediction {
        let inp = &self.inputs;
        let cases = sample_cases(inp.p, inp.s, inp.strategy);
        let divergence = self.divergence();
        let used_alpha = divergence > inp.alpha_threshold;

        let weights = inp.small_prop.r_vec(); // r'_j, j = 1..=s
        let mut common = [0.0f64; 3];
        let mut per_bucket = Vec::with_capacity(inp.s);
        for (j, (&x, &w)) in cases.iter().zip(weights.iter()).enumerate() {
            // Fine-tuned bucket value: FI'_ser(x_j) = FI_small_par(j+1)
            // when tuning is active and the class was observed.
            let (rates, tuned) = if used_alpha {
                match inp.small_by_contam.get(j).and_then(|o| o.as_ref()) {
                    Some(small) if small.total() > 0 => (small.rates(), true),
                    _ => (inp.serial[&x].rates(), false),
                }
            } else {
                (inp.serial[&x].rates(), false)
            };
            for k in 0..3 {
                common[k] += w * rates[k];
            }
            per_bucket.push(BucketTerm {
                bucket: j + 1,
                sample_x: x,
                weight: w,
                rates,
                tuned,
            });
        }

        // Eq. 1 mixture with the parallel-unique term.
        let mut rates = common;
        if inp.unique_share > 0.0 {
            let unique = inp
                .fi_unique
                .as_ref()
                .expect("validated at construction")
                .rates();
            for k in 0..3 {
                rates[k] = (1.0 - inp.unique_share) * common[k] + inp.unique_share * unique[k];
            }
        }

        Prediction {
            rates,
            used_alpha,
            divergence,
            per_bucket,
            common_rates: common,
        }
    }
}

impl Predictor for PaperEq8 {
    fn name(&self) -> &'static str {
        PredictorKind::Eq8.name()
    }

    fn predict(&self) -> Prediction {
        PaperEq8::predict(self)
    }
}

/// A [`Prediction`] carrying only an outcome-rate distribution — how the
/// learned predictors (which have no bucket structure or α machinery)
/// report through the shared [`Prediction`] type.
pub fn flat_prediction(rates: [f64; 3]) -> Prediction {
    Prediction {
        rates,
        used_alpha: false,
        divergence: 0.0,
        per_bucket: Vec::new(),
        common_rates: rates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilim_inject::TestOutcome;

    fn fi(success: u64, sdc: u64, failure: u64) -> FiResult {
        let mut f = FiResult::new();
        for _ in 0..success {
            f.record(&TestOutcome::success(false, 1, 1));
        }
        for _ in 0..sdc {
            f.record(&TestOutcome::sdc(1, 1));
        }
        for _ in 0..failure {
            f.record(&TestOutcome::failure(
                resilim_inject::FailureKind::Crash,
                1,
                1,
            ));
        }
        f
    }

    fn base_inputs() -> ModelInputs {
        // Small scale S = 4, target p = 64.
        let mut serial = BTreeMap::new();
        serial.insert(1, fi(90, 10, 0));
        serial.insert(32, fi(60, 40, 0));
        serial.insert(48, fi(50, 50, 0));
        serial.insert(64, fi(40, 60, 0));
        let mut small_prop = PropagationProfile::new(4);
        small_prop.counts = vec![70, 0, 0, 30]; // r'_1 = .7, r'_4 = .3
        ModelInputs {
            p: 64,
            s: 4,
            strategy: SamplePoints::BucketUpper,
            serial,
            small_prop,
            small_by_contam: vec![Some(fi(88, 12, 0)), None, None, Some(fi(42, 58, 0))],
            unique_share: 0.0,
            fi_unique: None,
            alpha_threshold: 0.20,
        }
    }

    #[test]
    fn eq8_weighted_sum() {
        crate::verifies!(EQ4, EQ8);
        let pred = PaperEq8::new(base_inputs()).predict();
        // No tuning (divergence |0.88-0.90|/0.88 ≈ 2 % < 20 %):
        // success = 0.7·0.9 + 0·0.6 + 0·0.5 + 0.3·0.4 = 0.75.
        assert!(!pred.used_alpha);
        assert!((pred.success() - 0.75).abs() < 1e-12, "{}", pred.success());
        assert!((pred.sdc() - 0.25).abs() < 1e-12);
        assert_eq!(pred.per_bucket.len(), 4);
        assert_eq!(pred.per_bucket[1].sample_x, 32);
    }

    #[test]
    fn rates_sum_to_one_when_inputs_do() {
        crate::verifies!(EQ2);
        let pred = PaperEq8::new(base_inputs()).predict();
        let sum: f64 = pred.rates.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_tuning_activates_on_divergence() {
        crate::verifies!(EQ6, O4);
        let mut inputs = base_inputs();
        // Serial says 90 % success at x = 1 but the small scale says 50 %.
        inputs.small_by_contam[0] = Some(fi(50, 50, 0));
        let predictor = PaperEq8::new(inputs);
        assert!(predictor.divergence() > 0.20);
        let pred = predictor.predict();
        assert!(pred.used_alpha);
        // Tuned buckets use small-scale values: 0.7·0.5 + 0.3·0.42 = 0.476.
        assert!((pred.success() - 0.476).abs() < 1e-12, "{}", pred.success());
        assert!(pred.per_bucket[0].tuned);
        // Bucket 2 had no observed class -> serial fallback, not tuned.
        assert!(!pred.per_bucket[1].tuned);
    }

    #[test]
    fn unique_term_mixes_eq1() {
        crate::verifies!(EQ1);
        let mut inputs = base_inputs();
        inputs.unique_share = 0.10;
        inputs.fi_unique = Some(fi(20, 80, 0));
        let pred = PaperEq8::new(inputs).predict();
        // common success = 0.75; mixed = 0.9·0.75 + 0.1·0.2 = 0.695.
        assert!((pred.success() - 0.695).abs() < 1e-12, "{}", pred.success());
        assert!((pred.common_rates[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "missing serial sample case")]
    fn missing_sample_case_rejected() {
        let mut inputs = base_inputs();
        inputs.serial.remove(&48);
        PaperEq8::new(inputs);
    }

    #[test]
    #[should_panic(expected = "requires fi_unique")]
    fn unique_share_without_fi_unique_rejected() {
        let mut inputs = base_inputs();
        inputs.unique_share = 0.1;
        PaperEq8::new(inputs);
    }

    #[test]
    fn s_equals_p_degenerates_to_direct_measurement() {
        crate::verifies!(EQ8);
        // When S = p, the bucket map is identity and the prediction with
        // α tuning equals the small-scale conditional mixture.
        let mut serial = BTreeMap::new();
        for x in 1..=4 {
            serial.insert(x, fi(80, 20, 0));
        }
        let mut small_prop = PropagationProfile::new(4);
        small_prop.counts = vec![50, 20, 20, 10];
        let inputs = ModelInputs {
            p: 4,
            s: 4,
            strategy: SamplePoints::BucketUpper,
            serial,
            small_prop,
            small_by_contam: vec![None; 4],
            unique_share: 0.0,
            fi_unique: None,
            alpha_threshold: 0.20,
        };
        let pred = PaperEq8::new(inputs).predict();
        assert!((pred.success() - 0.8).abs() < 1e-12);
    }

    /// Golden snapshot of the pre-refactor `Predictor` output: routing
    /// `PaperEq8` through the new trait must stay *bitwise* identical.
    /// The expected values are the exact IEEE-754 bit patterns the
    /// concrete pre-trait implementation produced on `base_inputs()`
    /// (with and without α tuning and the Eq. 1 unique term).
    #[test]
    fn paper_eq8_via_trait_is_bitwise_identical_to_snapshot() {
        crate::verifies!(EQ8, INV_PREDICT);
        let snapshot = |inputs: ModelInputs| -> [u64; 3] {
            let p: &dyn Predictor = &PaperEq8::new(inputs);
            let pred = p.predict();
            [
                pred.rates[0].to_bits(),
                pred.rates[1].to_bits(),
                pred.rates[2].to_bits(),
            ]
        };
        // Plain Eq. 8: success = 0.7·0.9 + 0.3·0.4 = 0.75 exactly as the
        // f64 sum evaluates it.
        assert_eq!(
            snapshot(base_inputs()),
            [0.75f64.to_bits(), 0.25f64.to_bits(), 0.0f64.to_bits()]
        );
        // α-tuned: 0.7·0.5 + 0.3·0.42 — committed bit patterns.
        let mut tuned = base_inputs();
        tuned.small_by_contam[0] = Some(fi(50, 50, 0));
        assert_eq!(
            snapshot(tuned),
            [0x3FDE76C8B4395810, 0x3FE0C49BA5E353F8, 0],
            "α-tuned rates drifted from the pre-refactor snapshot"
        );
        // Eq. 1 mixture: 0.9·0.75 + 0.1·0.2 — committed bit patterns.
        let mut mixed = base_inputs();
        mixed.unique_share = 0.10;
        mixed.fi_unique = Some(fi(20, 80, 0));
        assert_eq!(
            snapshot(mixed),
            [0x3FE63D70A3D70A3E, 0x3FD3851EB851EB86, 0],
            "Eq. 1-mixed rates drifted from the pre-refactor snapshot"
        );
    }

    #[test]
    fn registry_names_round_trip() {
        for kind in PredictorKind::ALL {
            assert_eq!(PredictorKind::parse(kind.name()), Ok(kind));
        }
        assert!(PredictorKind::parse("crystal-ball").is_err());
        assert!(!PredictorKind::Eq8.needs_features());
        assert!(PredictorKind::Logistic.needs_features());
        assert!(PredictorKind::Stumps.needs_features());
        let via_trait: &dyn Predictor = &PaperEq8::new(base_inputs());
        assert_eq!(via_trait.name(), "eq8");
    }

    #[test]
    fn flat_prediction_carries_rates_only() {
        let pred = flat_prediction([0.5, 0.3, 0.2]);
        assert_eq!(pred.rates, [0.5, 0.3, 0.2]);
        assert_eq!(pred.common_rates, [0.5, 0.3, 0.2]);
        assert!(!pred.used_alpha);
        assert!(pred.per_bucket.is_empty());
    }
}
