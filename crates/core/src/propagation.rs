//! Error-propagation profiles across MPI ranks (paper §3.2).
//!
//! For a 1-error-per-test deployment at scale `p`, the profile histograms
//! "how many ranks were contaminated by the end of the run" over all
//! tests. Observation 3: grouping a large-scale profile into `S` uniform
//! groups reproduces the small-scale (`S`-rank) profile — quantified by
//! cosine similarity (Table 2, Figures 1–2).

use resilim_inject::TestOutcome;
use serde::{Deserialize, Serialize};

/// Histogram of contaminated-rank counts for a fault-injection deployment
/// at scale `p`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropagationProfile {
    /// Scale of the deployment (number of ranks).
    pub p: usize,
    /// `counts[x-1]` = number of tests that contaminated exactly `x` ranks.
    pub counts: Vec<u64>,
}

impl PropagationProfile {
    /// Empty profile for scale `p`.
    pub fn new(p: usize) -> PropagationProfile {
        PropagationProfile {
            p,
            counts: vec![0; p],
        }
    }

    /// Build from test outcomes; contamination counts are clamped to
    /// `[1, p]` (a fired injection contaminates at least its own rank).
    pub fn from_outcomes<'a>(
        p: usize,
        outcomes: impl IntoIterator<Item = &'a TestOutcome>,
    ) -> PropagationProfile {
        let mut prof = PropagationProfile::new(p);
        for o in outcomes {
            prof.record(o);
        }
        prof
    }

    /// Record one test.
    pub fn record(&mut self, o: &TestOutcome) {
        let x = o.contaminated_ranks.clamp(1, self.p);
        self.counts[x - 1] += 1;
    }

    /// Total number of recorded tests.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `r_x` — the probability that exactly `x` ranks end up contaminated
    /// (Eq. 3). `x` is 1-based.
    pub fn r(&self, x: usize) -> f64 {
        let total = self.total();
        if total == 0 || x == 0 || x > self.p {
            return 0.0;
        }
        self.counts[x - 1] as f64 / total as f64
    }

    /// All `r_x` as a vector (index 0 ↔ x = 1).
    pub fn r_vec(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / total).collect()
    }

    /// Group the profile into `groups` uniform buckets (Figure 1c): bucket
    /// `j` (1-based) aggregates `x ∈ ((j−1)·p/groups, j·p/groups]`.
    /// Returns the per-bucket probability mass.
    pub fn group(&self, groups: usize) -> Vec<f64> {
        assert!(groups >= 1 && groups <= self.p, "need 1 ≤ groups ≤ p");
        assert!(
            self.p.is_multiple_of(groups),
            "uniform grouping needs groups | p ({} into {})",
            self.p,
            groups
        );
        let width = self.p / groups;
        let total = self.total().max(1) as f64;
        (0..groups)
            .map(|j| self.counts[j * width..(j + 1) * width].iter().sum::<u64>() as f64 / total)
            .collect()
    }

    /// Merge another profile (same `p`).
    pub fn merge(&mut self, other: &PropagationProfile) {
        assert_eq!(self.p, other.p, "cannot merge profiles of different scales");
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
    }
}

/// Cosine similarity of two non-negative vectors, in `[0, 1]`
/// (the paper's Table 2 metric). Zero vectors yield 0.
///
/// ```
/// use resilim_core::cosine_similarity;
/// let small = [0.77, 0.0, 0.01, 0.22];          // 4-rank histogram
/// let grouped = [0.75, 0.01, 0.02, 0.22];       // grouped 64-rank histogram
/// assert!(cosine_similarity(&small, &grouped) > 0.99);
/// ```
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine similarity needs equal lengths");
    let dot: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot / (na * nb)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(p: usize, data: &[(usize, u64)]) -> PropagationProfile {
        let mut prof = PropagationProfile::new(p);
        for &(x, n) in data {
            prof.counts[x - 1] = n;
        }
        prof
    }

    #[test]
    fn r_values_normalize() {
        crate::verifies!(EQ3);
        let prof = profile(8, &[(1, 77), (8, 22), (3, 1)]);
        assert_eq!(prof.total(), 100);
        assert!((prof.r(1) - 0.77).abs() < 1e-12);
        assert!((prof.r(8) - 0.22).abs() < 1e-12);
        assert_eq!(prof.r(0), 0.0);
        assert_eq!(prof.r(9), 0.0);
        let sum: f64 = prof.r_vec().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn record_clamps() {
        let mut prof = PropagationProfile::new(4);
        prof.record(&TestOutcome::sdc(0, 1)); // clamped to 1
        prof.record(&TestOutcome::sdc(9, 1)); // clamped to 4
        assert_eq!(prof.counts, vec![1, 0, 0, 1]);
    }

    #[test]
    fn grouping_preserves_mass() {
        crate::verifies!(EQ5);
        let prof = profile(64, &[(1, 70), (2, 5), (33, 3), (64, 22)]);
        let g = prof.group(8);
        assert_eq!(g.len(), 8);
        let sum: f64 = g.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // x = 1, 2 fall in group 1; x = 33 in group 5; x = 64 in group 8.
        assert!((g[0] - 0.75).abs() < 1e-12);
        assert!((g[4] - 0.03).abs() < 1e-12);
        assert!((g[7] - 0.22).abs() < 1e-12);
    }

    #[test]
    fn paper_fig1_grouping_scenario() {
        crate::verifies!(EQ5, O3);
        // CG-style bimodal: the grouped 64-rank profile must match the
        // 8-rank profile almost perfectly.
        let small = profile(8, &[(1, 77), (8, 22), (4, 1)]);
        let large = profile(64, &[(1, 76), (2, 2), (64, 22)]);
        let sim = cosine_similarity(&small.r_vec(), &large.group(8));
        assert!(sim > 0.99, "sim = {sim}");
    }

    #[test]
    fn divergent_profiles_have_low_similarity() {
        crate::verifies!(O3, TABLE2);
        // Paper's CG 4V64 case: 4-rank execution propagates almost always,
        // 64-rank execution mostly does not.
        let small = profile(4, &[(4, 95), (1, 5)]);
        let large = profile(64, &[(1, 75), (64, 25)]);
        let sim = cosine_similarity(&small.r_vec(), &large.group(4));
        assert!(sim < 0.5, "sim = {sim}");
    }

    #[test]
    fn cosine_similarity_properties() {
        let a = [0.5, 0.5];
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn merge_profiles() {
        crate::verifies!(INV_MERGE);
        let mut a = profile(4, &[(1, 10)]);
        let b = profile(4, &[(1, 5), (4, 5)]);
        a.merge(&b);
        assert_eq!(a.counts, vec![15, 0, 0, 5]);
    }

    #[test]
    #[should_panic(expected = "different scales")]
    fn merge_rejects_scale_mismatch() {
        let mut a = PropagationProfile::new(4);
        a.merge(&PropagationProfile::new(8));
    }

    #[test]
    #[should_panic(expected = "uniform grouping")]
    fn group_rejects_non_divisor() {
        profile(64, &[(1, 1)]).group(7);
    }
}
