//! Pool robustness: trials that crash, trip the hang guard, or die on a
//! poisoned fabric must leave the rank-thread pool reusable, and the
//! pooled execution path must match the spawn-per-trial path bitwise.
//!
//! This binary also audits the tracked-op hot path for heap traffic: a
//! counting global allocator (per-thread counters, so concurrent rank
//! threads don't pollute the measurement) asserts that the
//! zero-injection path performs no allocation per op.

use resilim_inject::{ctx, InjectionPlan, Operand, RankCtx, Region, Target, Tf64};
use resilim_simmpi::{PanicKind, ReduceOp, World, WorldConfig, WorldPool};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Duration;

/// Counts this thread's allocations; delegates everything to [`System`].
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// This thread's allocation count so far.
fn allocs_here() -> u64 {
    ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with` so allocation during thread teardown (after the TLS
        // slot is destroyed) still works.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

fn world(procs: usize) -> World {
    World::with_config(
        procs,
        WorldConfig {
            recv_timeout: Duration::from_secs(5),
        },
    )
}

#[test]
fn pool_survives_crash_hang_and_poison_trials() {
    let pool = WorldPool::new();
    let procs = 4;

    // Trial 1: rank 2 crashes; everyone else dies on the poisoned fabric.
    let results = world(procs).run_pooled(
        &pool,
        |_| None,
        |comm| {
            if comm.rank() == 2 {
                panic!("simulated application abort");
            }
            comm.barrier();
        },
    );
    assert_eq!(
        results[2].result.as_ref().unwrap_err().kind,
        PanicKind::Crash
    );
    for rank in [0usize, 1, 3] {
        assert!(matches!(
            results[rank].result.as_ref().unwrap_err().kind,
            PanicKind::FabricDead | PanicKind::RecvTimeout
        ));
    }

    // Trial 2: every rank trips the hang guard.
    let results = world(procs).run_pooled(
        &pool,
        |rank| Some(RankCtx::profiling(rank).with_op_cap(50)),
        |_comm| {
            let mut acc = Tf64::ZERO;
            loop {
                acc += 1.0;
                if acc.value() < 0.0 {
                    break;
                }
            }
        },
    );
    for r in &results {
        assert_eq!(r.result.as_ref().unwrap_err().kind, PanicKind::HangGuard);
        assert!(r.ctx_report.as_ref().unwrap().hang_guard_tripped);
    }

    // Trial 3: a clean collective must still work on the same workers,
    // with no stale contexts or taint leaking in from the failed trials.
    let results = world(procs).run_pooled(
        &pool,
        |rank| Some(RankCtx::profiling(rank)),
        |comm| {
            let mine = [Tf64::new((comm.rank() + 1) as f64)];
            comm.allreduce(ReduceOp::Sum, &mine)[0]
        },
    );
    for r in &results {
        let total = r.result.as_ref().unwrap();
        assert_eq!(total.value(), 10.0);
        assert!(!total.is_tainted());
        assert!(!r.ctx_report.as_ref().unwrap().contaminated);
    }

    // All three trials ran on the same four workers.
    assert_eq!(pool.threads_spawned(), procs);
    assert_eq!(pool.idle_threads(), procs);
    assert_eq!(pool.jobs_dispatched(), 3 * procs);
}

#[test]
fn pooled_matches_spawned_bitwise() {
    let procs = 4;
    let mk_ctx = |rank: usize| {
        let plan = if rank == 1 {
            InjectionPlan::single(Target {
                region: Region::Common,
                op_index: 3,
                bit: 55,
                operand: Operand::A,
            })
        } else {
            InjectionPlan::none()
        };
        Some(RankCtx::new(rank, plan))
    };
    let body = |comm: &resilim_simmpi::Comm| {
        let mut acc = Tf64::new(1.0);
        for i in 0..8 {
            acc = acc * Tf64::new(1.0 + (comm.rank() + i) as f64 * 0.125) + Tf64::new(0.5);
        }
        let total = comm.allreduce_scalar(ReduceOp::Sum, acc);
        (total.value().to_bits(), total.is_tainted())
    };

    let pooled = world(procs).run_pooled(&WorldPool::new(), mk_ctx, body);
    let spawned = world(procs).run_spawned(mk_ctx, body);
    for (a, b) in pooled.iter().zip(&spawned) {
        assert_eq!(a.rank, b.rank);
        assert_eq!(a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        let (ra, rb) = (
            a.ctx_report.as_ref().unwrap(),
            b.ctx_report.as_ref().unwrap(),
        );
        assert_eq!(ra.profile, rb.profile);
        assert_eq!(ra.fired, rb.fired);
        assert_eq!(ra.contaminated, rb.contaminated);
    }
}

/// The zero-injection hot path — context installed, plan empty — must
/// not touch the heap: not per op (cells only), not in `take()`, and not
/// in `into_report()` (`CtxReport.fired` stays an unallocated empty
/// `Vec`, op counters flush into plain arrays).
#[test]
fn zero_injection_hot_path_does_not_allocate() {
    // Warm up the thread-local machinery (first install may lazily
    // initialize TLS) before taking the baseline.
    assert!(ctx::install(RankCtx::profiling(0)).is_none());
    let mut warm = Tf64::new(1.0);
    for _ in 0..16 {
        warm = warm * Tf64::new(0.5) + Tf64::new(0.25);
    }
    drop(ctx::take().unwrap().into_report());

    ctx::install(RankCtx::new(0, InjectionPlan::none()));
    let before = allocs_here();
    let mut acc = Tf64::new(1.0);
    let payload = [Tf64::new(1.0), Tf64::new(2.0)];
    for i in 0..10_000 {
        acc = acc * Tf64::new(0.999) + Tf64::new(i as f64 * 1e-9);
        acc = acc.min(Tf64::new(1e6)) / Tf64::new(1.0000001);
        // The per-message feature hooks (msgs_recvd / taint-crossing stamp,
        // msgs_sent) are part of the audited region: they too must stay on
        // cells only.
        ctx::note_values(&payload);
        let _ = ctx::note_msg_send(&payload);
    }
    let report = ctx::take().unwrap().into_report();
    let during = allocs_here() - before;
    assert!(report.fired.is_empty());
    assert_eq!(report.profile.total(), 40_000);
    assert_eq!(report.msgs_recvd, 10_000);
    assert_eq!(report.profile.msgs_sent, 10_000);
    assert_eq!(report.tainted_msgs_recvd, 0);
    assert_eq!(report.first_contam_op, None);
    assert_eq!(
        during, 0,
        "zero-injection hot path allocated {during} times in 40k ops"
    );
    assert!(acc.value().is_finite());
}

#[test]
fn global_pool_reused_across_runs() {
    let before = WorldPool::global().jobs_dispatched();
    for _ in 0..3 {
        let results = World::new(8).run(|comm| {
            let x = [Tf64::new(1.0)];
            comm.allreduce(ReduceOp::Sum, &x)[0].value()
        });
        assert!(results.iter().all(|r| *r.result.as_ref().unwrap() == 8.0));
    }
    assert_eq!(WorldPool::global().jobs_dispatched(), before + 24);
}
