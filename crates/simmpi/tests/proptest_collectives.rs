//! Property-based tests of the collective algorithms against sequential
//! reference implementations, over random payloads and world sizes.

use proptest::prelude::*;
use resilim_inject::Tf64;
use resilim_simmpi::{ReduceOp, World};

fn world_size() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![1usize, 2, 3, 4, 5, 8])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Allreduce(Sum/Min/Max/Prod) equals the sequential rank-order fold.
    #[test]
    fn allreduce_matches_sequential_fold(
        p in world_size(),
        per_rank in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 3), 8),
    ) {
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max, ReduceOp::Prod] {
            let world = World::new(p);
            let data = per_rank.clone();
            let results = world.run(move |comm| {
                let mine: Vec<Tf64> =
                    data[comm.rank()].iter().map(|&x| Tf64::new(x)).collect();
                comm.allreduce(op, &mine)
                    .into_iter()
                    .map(|x| x.value())
                    .collect::<Vec<f64>>()
            });
            // Sequential fold in rank order.
            let mut expect = per_rank[0][..3].to_vec();
            for contribution in per_rank.iter().take(p).skip(1) {
                for (e, &x) in expect.iter_mut().zip(contribution.iter()) {
                    *e = match op {
                        ReduceOp::Sum => *e + x,
                        ReduceOp::Prod => *e * x,
                        ReduceOp::Min => e.min(x),
                        ReduceOp::Max => e.max(x),
                    };
                }
            }
            for r in results {
                let got = r.result.unwrap();
                for (g, e) in got.iter().zip(expect.iter()) {
                    prop_assert_eq!(g.to_bits(), e.to_bits(), "{:?} p={}", op, p);
                }
            }
        }
    }

    /// Allgather returns every rank's buffer, rank-indexed, on all ranks.
    #[test]
    fn allgather_is_rank_indexed(
        p in world_size(),
        lens in prop::collection::vec(0usize..6, 8),
    ) {
        let world = World::new(p);
        let lens2 = lens.clone();
        let results = world.run(move |comm| {
            let me = comm.rank();
            let mine: Vec<Tf64> = (0..lens2[me])
                .map(|i| Tf64::new((me * 100 + i) as f64))
                .collect();
            comm.allgather(&mine)
                .into_iter()
                .map(|part| part.into_iter().map(|x| x.value() as usize).collect())
                .collect::<Vec<Vec<usize>>>()
        });
        for r in results {
            let all = r.result.unwrap();
            prop_assert_eq!(all.len(), p);
            for (src, part) in all.iter().enumerate() {
                prop_assert_eq!(part.len(), lens[src]);
                for (i, &v) in part.iter().enumerate() {
                    prop_assert_eq!(v, src * 100 + i);
                }
            }
        }
    }

    /// Alltoallv delivers buffer (src -> dst) exactly once, to dst, from src.
    #[test]
    fn alltoallv_is_a_permutation(p in world_size(), salt in 0u64..1000) {
        let world = World::new(p);
        let results = world.run(move |comm| {
            let me = comm.rank();
            let outgoing: Vec<Vec<Tf64>> = (0..p)
                .map(|dst| vec![Tf64::new((salt as usize + me * p + dst) as f64)])
                .collect();
            comm.alltoallv(outgoing)
                .into_iter()
                .map(|b| b[0].value() as usize)
                .collect::<Vec<usize>>()
        });
        for (rank, r) in results.into_iter().enumerate() {
            let incoming = r.result.unwrap();
            for (src, got) in incoming.into_iter().enumerate() {
                prop_assert_eq!(got, salt as usize + src * p + rank);
            }
        }
    }

    /// Scatter delivers chunk i to rank i.
    #[test]
    fn scatter_delivers_by_rank(p in world_size(), root_sel in 0usize..8) {
        let root = root_sel % p;
        let world = World::new(p);
        let results = world.run(move |comm| {
            let chunks: Option<Vec<Vec<Tf64>>> = (comm.rank() == root)
                .then(|| (0..p).map(|i| vec![Tf64::new(i as f64 * 3.0)]).collect());
            comm.scatter(root, chunks.as_deref())[0].value()
        });
        for (rank, r) in results.into_iter().enumerate() {
            prop_assert_eq!(r.result.unwrap(), rank as f64 * 3.0);
        }
    }

    /// bcast replicates the root's buffer everywhere bitwise.
    #[test]
    fn bcast_replicates_bitwise(
        p in world_size(),
        data in prop::collection::vec(prop::num::f64::NORMAL, 0..5),
        root_sel in 0usize..8,
    ) {
        let root = root_sel % p;
        let world = World::new(p);
        let data2 = data.clone();
        let results = world.run(move |comm| {
            let mut buf: Vec<Tf64> = if comm.rank() == root {
                data2.iter().map(|&x| Tf64::new(x)).collect()
            } else {
                Vec::new()
            };
            comm.bcast(root, &mut buf);
            buf.into_iter().map(|x| x.value().to_bits()).collect::<Vec<u64>>()
        });
        let expect: Vec<u64> = data.iter().map(|x| x.to_bits()).collect();
        for r in results {
            prop_assert_eq!(r.result.unwrap(), expect.clone());
        }
    }
}
