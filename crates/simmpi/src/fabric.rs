//! The in-memory message fabric.
//!
//! One mailbox per rank, guarded by a `parking_lot` mutex + condvar pair
//! (see *Rust Atomics and Locks* ch. 5 for the pattern). Sends never
//! block; receives block with a timeout and support `(src, tag)` matching
//! with out-of-order buffering, like MPI's unexpected-message queue.
//!
//! When a rank dies, the fabric is *poisoned*: every pending and future
//! receive fails fast with [`MpiError::FabricDead`], so one rank's crash
//! tears the whole job down instead of hanging it — the behaviour of
//! `MPI_Abort`.

use crate::error::MpiError;
use crate::payload::Payload;
use parking_lot::{Condvar, Mutex};
#[cfg(feature = "obs")]
use resilim_obs as obs;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Count a delivered (matched) message. Taint scanning only happens with
/// the recorder on, so the disabled path never touches the payload.
#[cfg(feature = "obs")]
fn note_recv(payload: &Payload) {
    if obs::enabled() {
        obs::count(obs::Counter::MsgsRecvd, 1);
        obs::count(
            obs::Counter::TaintedElemsRecvd,
            payload.tainted_elems() as u64,
        );
    }
}

/// A message in flight.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: u64,
    /// Payload.
    pub payload: Payload,
}

struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    arrived: Condvar,
}

/// The shared fabric connecting all ranks of one [`World`](crate::World)
/// run.
pub struct Fabric {
    boxes: Vec<Mailbox>,
    dead: AtomicBool,
    timeout: Duration,
}

impl Fabric {
    /// A fabric for `size` ranks with the given receive timeout.
    pub fn new(size: usize, timeout: Duration) -> Fabric {
        Fabric {
            boxes: (0..size)
                .map(|_| Mailbox {
                    queue: Mutex::new(VecDeque::new()),
                    arrived: Condvar::new(),
                })
                .collect(),
            dead: AtomicBool::new(false),
            timeout,
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.boxes.len()
    }

    /// Whether the fabric has been poisoned.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Poison the fabric and wake every waiting receiver.
    pub fn poison(&self) {
        self.dead.store(true, Ordering::Release);
        for mb in &self.boxes {
            // Acquire the lock so a receiver between its dead-check and its
            // wait cannot miss the wake-up.
            let _guard = mb.queue.lock();
            mb.arrived.notify_all();
        }
    }

    /// Deliver a message to `dst`'s mailbox. Never blocks.
    pub fn send(&self, src: usize, dst: usize, tag: u64, payload: Payload) -> Result<(), MpiError> {
        if self.is_dead() {
            return Err(MpiError::FabricDead);
        }
        let mb = self.boxes.get(dst).ok_or(MpiError::InvalidRank {
            rank: dst,
            size: self.size(),
        })?;
        #[cfg(feature = "obs")]
        if obs::enabled() {
            obs::count(obs::Counter::MsgsSent, 1);
            obs::count(obs::Counter::BytesSent, payload.wire_bytes() as u64);
        }
        let mut q = mb.queue.lock();
        q.push_back(Envelope { src, tag, payload });
        mb.arrived.notify_all();
        Ok(())
    }

    /// Blocking receive of the first message matching `(src, tag)` in
    /// `me`'s mailbox. Non-matching messages stay buffered.
    pub fn recv(&self, me: usize, src: usize, tag: u64) -> Result<Payload, MpiError> {
        let mb = self.boxes.get(me).ok_or(MpiError::InvalidRank {
            rank: me,
            size: self.size(),
        })?;
        let deadline = Instant::now() + self.timeout;
        let mut q = mb.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|e| e.src == src && e.tag == tag) {
                let payload = q.remove(pos).expect("position just found").payload;
                #[cfg(feature = "obs")]
                note_recv(&payload);
                return Ok(payload);
            }
            if self.is_dead() {
                return Err(MpiError::FabricDead);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(MpiError::RecvTimeout { rank: me, src, tag });
            }
            if mb.arrived.wait_until(&mut q, deadline).timed_out() {
                // Loop once more: the message may have raced the timeout.
                if let Some(pos) = q.iter().position(|e| e.src == src && e.tag == tag) {
                    return Ok(q.remove(pos).expect("position just found").payload);
                }
                if self.is_dead() {
                    return Err(MpiError::FabricDead);
                }
                return Err(MpiError::RecvTimeout { rank: me, src, tag });
            }
        }
    }

    /// Number of buffered (undelivered) messages across all mailboxes.
    /// Useful for leak checks in tests: a clean SPMD program ends with an
    /// empty fabric.
    pub fn pending_messages(&self) -> usize {
        self.boxes.iter().map(|mb| mb.queue.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilim_inject::Tf64;
    use std::sync::Arc;
    use std::time::Duration;

    fn fabric(n: usize) -> Arc<Fabric> {
        Arc::new(Fabric::new(n, Duration::from_millis(200)))
    }

    #[test]
    fn send_then_recv() {
        let f = fabric(2);
        f.send(0, 1, 7, Payload::F64(vec![Tf64::new(1.5)])).unwrap();
        let p = f.recv(1, 0, 7).unwrap();
        assert_eq!(p.into_f64().unwrap()[0].value(), 1.5);
        assert_eq!(f.pending_messages(), 0);
    }

    #[test]
    fn tag_matching_buffers_out_of_order() {
        let f = fabric(2);
        f.send(0, 1, 1, Payload::Bytes(vec![1])).unwrap();
        f.send(0, 1, 2, Payload::Bytes(vec![2])).unwrap();
        // Receive tag 2 first; tag 1 stays buffered.
        assert_eq!(f.recv(1, 0, 2).unwrap().into_bytes().unwrap(), vec![2]);
        assert_eq!(f.recv(1, 0, 1).unwrap().into_bytes().unwrap(), vec![1]);
    }

    #[test]
    fn src_matching() {
        let f = fabric(3);
        f.send(2, 0, 9, Payload::Bytes(vec![2])).unwrap();
        f.send(1, 0, 9, Payload::Bytes(vec![1])).unwrap();
        assert_eq!(f.recv(0, 1, 9).unwrap().into_bytes().unwrap(), vec![1]);
        assert_eq!(f.recv(0, 2, 9).unwrap().into_bytes().unwrap(), vec![2]);
    }

    #[test]
    fn recv_timeout() {
        let f = Arc::new(Fabric::new(2, Duration::from_millis(30)));
        let err = f.recv(0, 1, 0).unwrap_err();
        assert!(matches!(
            err,
            MpiError::RecvTimeout {
                rank: 0,
                src: 1,
                tag: 0
            }
        ));
    }

    #[test]
    fn recv_across_threads() {
        let f = fabric(2);
        let f2 = Arc::clone(&f);
        let h = std::thread::spawn(move || f2.recv(1, 0, 5));
        std::thread::sleep(Duration::from_millis(20));
        f.send(0, 1, 5, Payload::Bytes(vec![42])).unwrap();
        assert_eq!(h.join().unwrap().unwrap().into_bytes().unwrap(), vec![42]);
    }

    #[test]
    fn poison_wakes_receivers() {
        let f = Arc::new(Fabric::new(2, Duration::from_secs(10)));
        let f2 = Arc::clone(&f);
        let h = std::thread::spawn(move || f2.recv(1, 0, 5));
        std::thread::sleep(Duration::from_millis(20));
        f.poison();
        assert!(matches!(
            h.join().unwrap().unwrap_err(),
            MpiError::FabricDead
        ));
        assert!(f.send(0, 1, 5, Payload::Bytes(vec![])).is_err());
    }

    #[test]
    fn invalid_rank() {
        let f = fabric(2);
        assert!(matches!(
            f.send(0, 5, 0, Payload::Bytes(vec![])),
            Err(MpiError::InvalidRank { rank: 5, size: 2 })
        ));
    }
}
