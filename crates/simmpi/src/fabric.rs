//! The in-memory message fabric.
//!
//! One mailbox per rank, guarded by a `parking_lot` mutex + condvar pair
//! (see *Rust Atomics and Locks* ch. 5 for the pattern). Sends never
//! block; receives block with a timeout and support `(src, tag)` matching
//! with out-of-order buffering, like MPI's unexpected-message queue.
//!
//! When a rank dies, the fabric is *poisoned*: every pending and future
//! receive fails fast with [`MpiError::FabricDead`], so one rank's crash
//! tears the whole job down instead of hanging it — the behaviour of
//! `MPI_Abort`.

use crate::error::MpiError;
use crate::payload::Payload;
use parking_lot::{Condvar, Mutex};
#[cfg(feature = "obs")]
use resilim_obs as obs;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Count a delivered (matched) message. Taint scanning only happens with
/// the recorder on, so the disabled path never touches the payload.
#[cfg(feature = "obs")]
fn note_recv(payload: &Payload) {
    if obs::enabled() {
        obs::count(obs::Counter::MsgsRecvd, 1);
        obs::count(
            obs::Counter::TaintedElemsRecvd,
            payload.tainted_elems() as u64,
        );
    }
}

/// A planned wire fault (`--fault-model msg`): flip `bit` of one element
/// of the `msg_index`-th numeric message sent by rank `src`.
///
/// The corruption happens *on the wire*: the sender's replica compare
/// point ([`resilim_inject::ctx::note_msg_send`]) sees the payload before
/// the flip, so only the receiver can observe it. The element is selected
/// as `elem_sel % len`, so one uniform draw covers payloads of any length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgFault {
    /// Sending rank whose message is corrupted.
    pub src: usize,
    /// Zero-based index among that rank's numeric sends.
    pub msg_index: u64,
    /// Element selector, reduced modulo the payload length.
    pub elem_sel: u64,
    /// Bit to flip in the element's IEEE-754 representation (0..64).
    pub bit: u8,
}

/// A message in flight.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: u64,
    /// Payload.
    pub payload: Payload,
}

struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    arrived: Condvar,
}

/// The shared fabric connecting all ranks of one [`World`](crate::World)
/// run.
pub struct Fabric {
    boxes: Vec<Mailbox>,
    dead: AtomicBool,
    timeout: Duration,
    msg_fault: Option<MsgFault>,
}

impl Fabric {
    /// A fabric for `size` ranks with the given receive timeout.
    pub fn new(size: usize, timeout: Duration) -> Fabric {
        Fabric::with_fault(size, timeout, None)
    }

    /// A fabric with an armed wire fault (see [`MsgFault`]).
    pub fn with_fault(size: usize, timeout: Duration, msg_fault: Option<MsgFault>) -> Fabric {
        Fabric {
            boxes: (0..size)
                .map(|_| Mailbox {
                    queue: Mutex::new(VecDeque::new()),
                    arrived: Condvar::new(),
                })
                .collect(),
            dead: AtomicBool::new(false),
            timeout,
            msg_fault,
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.boxes.len()
    }

    /// Whether the fabric has been poisoned.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Poison the fabric and wake every waiting receiver.
    pub fn poison(&self) {
        self.dead.store(true, Ordering::Release);
        for mb in &self.boxes {
            // Acquire the lock so a receiver between its dead-check and its
            // wait cannot miss the wake-up.
            let _guard = mb.queue.lock();
            mb.arrived.notify_all();
        }
    }

    /// Route an outgoing payload through the sender-side hooks: count the
    /// numeric send into the rank's profile (and replica-compare it), then
    /// apply the armed wire fault if this is its message. Order matters —
    /// the replica compare must see the pre-corruption payload.
    fn outbound(&self, src: usize, payload: Payload) -> Payload {
        match payload {
            Payload::F64(mut values) => {
                let idx = resilim_inject::ctx::note_msg_send(&values);
                if let (Some(idx), Some(fault)) = (idx, self.msg_fault) {
                    if fault.src == src && fault.msg_index == idx && !values.is_empty() {
                        let e = (fault.elem_sel % values.len() as u64) as usize;
                        let v = values[e];
                        let corrupted =
                            f64::from_bits(v.value().to_bits() ^ (1u64 << (fault.bit & 63)));
                        values[e] = resilim_inject::Tf64::from_parts(corrupted, v.shadow());
                        resilim_inject::ctx::note_wire_fired(idx, fault.bit & 63);
                    }
                }
                Payload::F64(values)
            }
            p => p,
        }
    }

    /// Deliver a message to `dst`'s mailbox. Never blocks.
    pub fn send(&self, src: usize, dst: usize, tag: u64, payload: Payload) -> Result<(), MpiError> {
        if self.is_dead() {
            return Err(MpiError::FabricDead);
        }
        let mb = self.boxes.get(dst).ok_or(MpiError::InvalidRank {
            rank: dst,
            size: self.size(),
        })?;
        let payload = self.outbound(src, payload);
        #[cfg(feature = "obs")]
        if obs::enabled() {
            obs::count(obs::Counter::MsgsSent, 1);
            obs::count(obs::Counter::BytesSent, payload.wire_bytes() as u64);
        }
        let mut q = mb.queue.lock();
        q.push_back(Envelope { src, tag, payload });
        mb.arrived.notify_all();
        Ok(())
    }

    /// Blocking receive of the first message matching `(src, tag)` in
    /// `me`'s mailbox. Non-matching messages stay buffered.
    pub fn recv(&self, me: usize, src: usize, tag: u64) -> Result<Payload, MpiError> {
        let mb = self.boxes.get(me).ok_or(MpiError::InvalidRank {
            rank: me,
            size: self.size(),
        })?;
        let deadline = Instant::now() + self.timeout;
        let mut q = mb.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|e| e.src == src && e.tag == tag) {
                let payload = q.remove(pos).expect("position just found").payload;
                #[cfg(feature = "obs")]
                note_recv(&payload);
                return Ok(payload);
            }
            if self.is_dead() {
                return Err(MpiError::FabricDead);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(MpiError::RecvTimeout { rank: me, src, tag });
            }
            if mb.arrived.wait_until(&mut q, deadline).timed_out() {
                // Loop once more: the message may have raced the timeout.
                if let Some(pos) = q.iter().position(|e| e.src == src && e.tag == tag) {
                    return Ok(q.remove(pos).expect("position just found").payload);
                }
                if self.is_dead() {
                    return Err(MpiError::FabricDead);
                }
                return Err(MpiError::RecvTimeout { rank: me, src, tag });
            }
        }
    }

    /// Number of buffered (undelivered) messages across all mailboxes.
    /// Useful for leak checks in tests: a clean SPMD program ends with an
    /// empty fabric.
    pub fn pending_messages(&self) -> usize {
        self.boxes.iter().map(|mb| mb.queue.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilim_inject::Tf64;
    use std::sync::Arc;
    use std::time::Duration;

    fn fabric(n: usize) -> Arc<Fabric> {
        Arc::new(Fabric::new(n, Duration::from_millis(200)))
    }

    #[test]
    fn send_then_recv() {
        let f = fabric(2);
        f.send(0, 1, 7, Payload::F64(vec![Tf64::new(1.5)])).unwrap();
        let p = f.recv(1, 0, 7).unwrap();
        assert_eq!(p.into_f64().unwrap()[0].value(), 1.5);
        assert_eq!(f.pending_messages(), 0);
    }

    #[test]
    fn tag_matching_buffers_out_of_order() {
        let f = fabric(2);
        f.send(0, 1, 1, Payload::Bytes(vec![1])).unwrap();
        f.send(0, 1, 2, Payload::Bytes(vec![2])).unwrap();
        // Receive tag 2 first; tag 1 stays buffered.
        assert_eq!(f.recv(1, 0, 2).unwrap().into_bytes().unwrap(), vec![2]);
        assert_eq!(f.recv(1, 0, 1).unwrap().into_bytes().unwrap(), vec![1]);
    }

    #[test]
    fn src_matching() {
        let f = fabric(3);
        f.send(2, 0, 9, Payload::Bytes(vec![2])).unwrap();
        f.send(1, 0, 9, Payload::Bytes(vec![1])).unwrap();
        assert_eq!(f.recv(0, 1, 9).unwrap().into_bytes().unwrap(), vec![1]);
        assert_eq!(f.recv(0, 2, 9).unwrap().into_bytes().unwrap(), vec![2]);
    }

    #[test]
    fn recv_timeout() {
        let f = Arc::new(Fabric::new(2, Duration::from_millis(30)));
        let err = f.recv(0, 1, 0).unwrap_err();
        assert!(matches!(
            err,
            MpiError::RecvTimeout {
                rank: 0,
                src: 1,
                tag: 0
            }
        ));
    }

    #[test]
    fn recv_across_threads() {
        let f = fabric(2);
        let f2 = Arc::clone(&f);
        let h = std::thread::spawn(move || f2.recv(1, 0, 5));
        std::thread::sleep(Duration::from_millis(20));
        f.send(0, 1, 5, Payload::Bytes(vec![42])).unwrap();
        assert_eq!(h.join().unwrap().unwrap().into_bytes().unwrap(), vec![42]);
    }

    #[test]
    fn poison_wakes_receivers() {
        let f = Arc::new(Fabric::new(2, Duration::from_secs(10)));
        let f2 = Arc::clone(&f);
        let h = std::thread::spawn(move || f2.recv(1, 0, 5));
        std::thread::sleep(Duration::from_millis(20));
        f.poison();
        assert!(matches!(
            h.join().unwrap().unwrap_err(),
            MpiError::FabricDead
        ));
        assert!(f.send(0, 1, 5, Payload::Bytes(vec![])).is_err());
    }

    #[test]
    fn invalid_rank() {
        let f = fabric(2);
        assert!(matches!(
            f.send(0, 5, 0, Payload::Bytes(vec![])),
            Err(MpiError::InvalidRank { rank: 5, size: 2 })
        ));
    }

    #[test]
    fn armed_wire_fault_corrupts_the_indexed_message_only() {
        use resilim_inject::{ctx, RankCtx};
        let fault = MsgFault {
            src: 0,
            msg_index: 1,
            elem_sel: 5,
            bit: 52,
        };
        let f = Arc::new(Fabric::with_fault(
            2,
            Duration::from_millis(200),
            Some(fault),
        ));
        let prev = ctx::install(RankCtx::profiling(0));
        assert!(prev.is_none(), "leaked context from another test");
        let msg = || Payload::F64(vec![Tf64::new(1.0), Tf64::new(2.0)]);
        f.send(0, 1, 0, msg()).unwrap(); // send 0: clean
        f.send(0, 1, 1, msg()).unwrap(); // send 1: corrupted on the wire
        f.send(0, 1, 2, Payload::Bytes(vec![9])).unwrap(); // not numeric: uncounted
        let report = ctx::take().unwrap().into_report();
        assert_eq!(report.profile.msgs_sent, 2);
        assert_eq!(report.wire_fired, 1);
        // The sender never saw the corruption (it happened on the wire).
        assert!(!report.detected);

        let clean = f.recv(1, 0, 0).unwrap().into_f64().unwrap();
        assert!(clean.iter().all(|v| !v.is_tainted()));
        let bad = f.recv(1, 0, 1).unwrap().into_f64().unwrap();
        // elem_sel 5 % len 2 = element 1; shadow keeps the true value.
        assert!(!bad[0].is_tainted());
        assert!(bad[1].is_tainted());
        assert_eq!(bad[1].shadow(), 2.0);
        assert_eq!(bad[1].value(), f64::from_bits(2.0f64.to_bits() ^ (1 << 52)));
    }

    #[test]
    fn wire_fault_without_context_stays_unarmed() {
        // Golden (profiling-free) sends outside a rank context must not
        // consume the fault: there is no message index to match.
        let fault = MsgFault {
            src: 0,
            msg_index: 0,
            elem_sel: 0,
            bit: 52,
        };
        let f = Arc::new(Fabric::with_fault(
            2,
            Duration::from_millis(200),
            Some(fault),
        ));
        f.send(0, 1, 0, Payload::F64(vec![Tf64::new(1.0)])).unwrap();
        let p = f.recv(1, 0, 0).unwrap().into_f64().unwrap();
        assert!(!p[0].is_tainted());
    }
}
