//! The world runner: runs one worker thread per rank, wires them to a
//! shared fabric, installs injection contexts, and collects results,
//! panics, and contamination reports.
//!
//! Rank workers come from a persistent [`WorldPool`] by default (threads
//! are reused across trials); [`World::run_spawned`] keeps the original
//! spawn-per-trial path for comparison and as the determinism oracle.

use crate::comm::Comm;
use crate::error::RankPanic;
use crate::fabric::Fabric;
use crate::pool::WorldPool;
use parking_lot::{Condvar, Mutex};
use resilim_inject::{ctx, CtxReport, RankCtx};
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`World`].
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// How long a receive waits before the job is declared hung.
    pub recv_timeout: Duration,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            recv_timeout: Duration::from_secs(30),
        }
    }
}

/// What one rank produced.
#[derive(Debug)]
pub struct RankOutcome<T> {
    /// Rank id.
    pub rank: usize,
    /// The rank body's return value, or its classified panic.
    pub result: Result<T, RankPanic>,
    /// The injection context report, when a context was installed.
    pub ctx_report: Option<CtxReport>,
}

/// A simulated MPI world: `size` ranks over one fabric.
#[derive(Debug, Clone)]
pub struct World {
    size: usize,
    cfg: WorldConfig,
    msg_fault: Option<crate::fabric::MsgFault>,
}

thread_local! {
    pub(crate) static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Install (once per process) a panic hook that silences panics on rank
/// threads — fault-injection campaigns deliberately panic thousands of
/// times, and the default hook would flood stderr. Panics on all other
/// threads keep the previous behaviour.
pub(crate) fn install_quiet_hook() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

impl World {
    /// A world of `size` ranks with default configuration.
    pub fn new(size: usize) -> World {
        World::with_config(size, WorldConfig::default())
    }

    /// A world of `size` ranks with explicit configuration.
    pub fn with_config(size: usize, cfg: WorldConfig) -> World {
        assert!(size >= 1, "a world needs at least one rank");
        World {
            size,
            cfg,
            msg_fault: None,
        }
    }

    /// Arm a wire fault: every fabric this world creates corrupts the
    /// matching message (see [`crate::fabric::MsgFault`]).
    pub fn with_msg_fault(mut self, fault: Option<crate::fabric::MsgFault>) -> World {
        self.msg_fault = fault;
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `body` on every rank without injection contexts.
    pub fn run<T, F>(&self, body: F) -> Vec<RankOutcome<T>>
    where
        T: Send,
        F: Fn(&Comm) -> T + Send + Sync,
    {
        self.run_with_ctx(|_| None, body)
    }

    /// Run `body` on every rank; `mk_ctx(rank)` supplies an optional
    /// injection context per rank (installed before the body, harvested
    /// after it — even when the body panics).
    ///
    /// If any rank panics the fabric is poisoned, so every other rank fails
    /// fast instead of hanging (MPI-abort semantics). Results come back in
    /// rank order.
    ///
    /// Ranks execute on the process-wide [`WorldPool`]; semantics are
    /// identical to [`World::run_spawned`] (the original spawn-per-trial
    /// path), which tests use as the oracle.
    pub fn run_with_ctx<T, F, M>(&self, mk_ctx: M, body: F) -> Vec<RankOutcome<T>>
    where
        T: Send,
        F: Fn(&Comm) -> T + Send + Sync,
        M: Fn(usize) -> Option<RankCtx> + Send + Sync,
    {
        self.run_pooled(WorldPool::global(), mk_ctx, body)
    }

    /// [`World::run_with_ctx`] with an optional wall-clock deadline: the
    /// trial-watchdog hook campaign runners use to survive wedged
    /// trials. Returns the rank outcomes plus whether the deadline
    /// tripped. See [`World::run_pooled_deadline`].
    pub fn run_with_ctx_deadline<T, F, M>(
        &self,
        mk_ctx: M,
        body: F,
        deadline: Option<Duration>,
    ) -> (Vec<RankOutcome<T>>, bool)
    where
        T: Send,
        F: Fn(&Comm) -> T + Send + Sync,
        M: Fn(usize) -> Option<RankCtx> + Send + Sync,
    {
        self.run_pooled_deadline(WorldPool::global(), mk_ctx, body, deadline)
    }

    /// [`World::run_with_ctx`] on an explicit pool (tests use private
    /// pools to assert thread reuse).
    pub fn run_pooled<T, F, M>(&self, pool: &WorldPool, mk_ctx: M, body: F) -> Vec<RankOutcome<T>>
    where
        T: Send,
        F: Fn(&Comm) -> T + Send + Sync,
        M: Fn(usize) -> Option<RankCtx> + Send + Sync,
    {
        self.run_pooled_deadline(pool, mk_ctx, body, None).0
    }

    /// [`World::run_pooled`] plus an optional wall-clock deadline.
    ///
    /// With `deadline: Some(d)` a watchdog waits alongside the rank
    /// jobs; if they have not all finished after `d` it poisons the
    /// fabric (MPI-abort semantics), which wakes every rank blocked in a
    /// receive or collective, and the run winds down through the normal
    /// panic-classification path. Ranks wedged in pure computation are
    /// reaped by the injection hang guard's op budget instead — between
    /// the two, every rank terminates and the pool's workers come back.
    ///
    /// Returns `(outcomes, tripped)`; `tripped` is true only when the
    /// watchdog itself poisoned the fabric (never for an in-simulation
    /// crash), so callers can distinguish "the trial misbehaved" from
    /// "the trial ran out of wall clock" and retry the latter.
    pub fn run_pooled_deadline<T, F, M>(
        &self,
        pool: &WorldPool,
        mk_ctx: M,
        body: F,
        deadline: Option<Duration>,
    ) -> (Vec<RankOutcome<T>>, bool)
    where
        T: Send,
        F: Fn(&Comm) -> T + Send + Sync,
        M: Fn(usize) -> Option<RankCtx> + Send + Sync,
    {
        install_quiet_hook();
        let fabric = Fabric::with_fault(self.size, self.cfg.recv_timeout, self.msg_fault);
        let slots: Vec<Mutex<Option<RankOutcome<T>>>> =
            (0..self.size).map(|_| Mutex::new(None)).collect();

        let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(self.size);
        for (rank, slot) in slots.iter().enumerate() {
            let fabric = &fabric;
            let body = &body;
            let mk_ctx = &mk_ctx;
            jobs.push(Box::new(move || {
                *slot.lock() = Some(run_rank(rank, fabric, mk_ctx, body));
            }));
        }

        let tripped = AtomicBool::new(false);
        match deadline {
            None => pool.scope_run(jobs),
            Some(d) => {
                // The watchdog borrows the fabric, so it must be a scoped
                // thread; it is signalled (not detached) so a fast trial
                // never leaves a timer thread behind.
                let finished = (Mutex::new(false), Condvar::new());
                std::thread::scope(|scope| {
                    let fabric = &fabric;
                    let finished = &finished;
                    let tripped = &tripped;
                    scope.spawn(move || {
                        let wake = Instant::now() + d;
                        let (lock, cv) = finished;
                        let mut done = lock.lock();
                        while !*done {
                            if cv.wait_until(&mut done, wake).timed_out() {
                                if !*done {
                                    tripped.store(true, Ordering::SeqCst);
                                    fabric.poison();
                                }
                                break;
                            }
                        }
                    });
                    pool.scope_run(jobs);
                    let (lock, cv) = finished;
                    *lock.lock() = true;
                    cv.notify_all();
                });
            }
        }

        let outcomes = slots
            .into_iter()
            .map(|s| s.into_inner().expect("every rank reported"))
            .collect();
        (outcomes, tripped.load(Ordering::SeqCst))
    }

    /// The original execution path: spawn `size` fresh scoped threads for
    /// this run only. Kept as the reference implementation the pooled path
    /// must match bitwise, and for measuring what pooling buys.
    pub fn run_spawned<T, F, M>(&self, mk_ctx: M, body: F) -> Vec<RankOutcome<T>>
    where
        T: Send,
        F: Fn(&Comm) -> T + Send + Sync,
        M: Fn(usize) -> Option<RankCtx> + Send + Sync,
    {
        install_quiet_hook();
        let fabric = Fabric::with_fault(self.size, self.cfg.recv_timeout, self.msg_fault);
        let mut outcomes: Vec<Option<RankOutcome<T>>> = Vec::new();
        for _ in 0..self.size {
            outcomes.push(None);
        }

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.size);
            for rank in 0..self.size {
                let fabric = &fabric;
                let body = &body;
                let mk_ctx = &mk_ctx;
                handles.push(scope.spawn(move || run_rank(rank, fabric, mk_ctx, body)));
            }
            for (rank, handle) in handles.into_iter().enumerate() {
                let outcome = handle.join().expect("rank thread itself never panics");
                outcomes[rank] = Some(outcome);
            }
        });

        outcomes
            .into_iter()
            .map(|o| o.expect("every rank reported"))
            .collect()
    }
}

/// One rank's whole trial: context install, body under `catch_unwind`,
/// context harvest, fabric poison on panic. Shared by the pooled and the
/// spawn-per-trial paths so they cannot diverge.
fn run_rank<T, F, M>(rank: usize, fabric: &Fabric, mk_ctx: &M, body: &F) -> RankOutcome<T>
where
    F: Fn(&Comm) -> T,
    M: Fn(usize) -> Option<RankCtx>,
{
    QUIET_PANICS.with(|q| q.set(true));
    // Pool hygiene: a reused worker must never start a trial with a stale
    // context from an earlier trial that failed to harvest its own.
    drop(ctx::take());
    if let Some(c) = mk_ctx(rank) {
        ctx::install(c);
    }
    let comm = Comm::new(rank, fabric);
    let result = panic::catch_unwind(AssertUnwindSafe(|| body(&comm)));
    let ctx_report = ctx::take().map(RankCtx::into_report);
    let result = match result {
        Ok(v) => Ok(v),
        Err(payload) => {
            fabric.poison();
            Err(RankPanic::from_payload(payload.as_ref()))
        }
    };
    RankOutcome {
        rank,
        result,
        ctx_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::ReduceOp;
    use crate::error::PanicKind;
    use resilim_inject::{InjectionPlan, Operand, Region, Target, Tf64};

    #[test]
    fn serial_world() {
        let world = World::new(1);
        let results = world.run(|comm| {
            assert!(comm.is_serial());
            comm.allreduce_scalar(ReduceOp::Sum, Tf64::new(5.0)).value()
        });
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].result.as_ref().unwrap(), &5.0);
    }

    #[test]
    fn results_in_rank_order() {
        let world = World::new(8);
        let results = world.run(|comm| comm.rank() * 2);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.rank, i);
            assert_eq!(*r.result.as_ref().unwrap(), i * 2);
        }
    }

    #[test]
    fn spawned_and_pooled_backends_agree() {
        // The replay oracle of `resilim check` asserts campaign-level
        // bitwise identity across execution backends; this pins the
        // substrate half of that contract: the same body over the same
        // contexts returns identical rank results whether ranks come
        // from the reusable pool or from freshly spawned threads.
        let world = World::new(4);
        let mk_ctx = |rank| Some(resilim_inject::RankCtx::profiling(rank));
        let body = |comm: &Comm| {
            let local = Tf64::new(comm.rank() as f64 + 1.0);
            comm.allreduce_scalar(ReduceOp::Sum, local).value()
        };
        let pooled = world.run_with_ctx(mk_ctx, body);
        let spawned = world.run_spawned(mk_ctx, body);
        assert_eq!(pooled.len(), spawned.len());
        for (p, s) in pooled.iter().zip(spawned.iter()) {
            assert_eq!(p.rank, s.rank);
            assert_eq!(p.result.as_ref().unwrap(), s.result.as_ref().unwrap());
            let (pr, sr) = (
                p.ctx_report.as_ref().unwrap(),
                s.ctx_report.as_ref().unwrap(),
            );
            assert_eq!(
                pr.profile.injectable(Region::Common),
                sr.profile.injectable(Region::Common),
                "op profiles must match bitwise"
            );
            assert_eq!(pr.contaminated, sr.contaminated);
        }
    }

    #[test]
    fn one_crash_poisons_everyone() {
        let world = World::with_config(
            4,
            WorldConfig {
                recv_timeout: Duration::from_secs(5),
            },
        );
        let results = world.run(|comm| {
            if comm.rank() == 2 {
                panic!("simulated application abort");
            }
            // Everyone else blocks on a collective that can never finish.
            comm.barrier();
        });
        let kinds: Vec<Option<PanicKind>> = results
            .iter()
            .map(|r| r.result.as_ref().err().map(|p| p.kind))
            .collect();
        assert_eq!(kinds[2], Some(PanicKind::Crash));
        for rank in [0usize, 1, 3] {
            assert!(
                matches!(
                    kinds[rank],
                    Some(PanicKind::FabricDead) | Some(PanicKind::RecvTimeout)
                ),
                "rank {rank} got {:?}",
                kinds[rank]
            );
        }
    }

    #[test]
    fn ctx_reports_collected_on_success() {
        let world = World::new(3);
        let results = world.run_with_ctx(
            |rank| Some(resilim_inject::RankCtx::profiling(rank)),
            |comm| {
                let a = Tf64::new(comm.rank() as f64);
                let _ = a * a + a;
                comm.rank()
            },
        );
        for (i, r) in results.iter().enumerate() {
            let report = r.ctx_report.as_ref().unwrap();
            assert_eq!(report.rank, i);
            assert_eq!(report.profile.injectable(Region::Common), 2);
        }
    }

    #[test]
    fn ctx_reports_collected_on_panic() {
        let world = World::new(2);
        let results = world.run_with_ctx(
            |rank| Some(resilim_inject::RankCtx::profiling(rank)),
            |comm| {
                let a = Tf64::new(1.0);
                let _ = a + a;
                if comm.rank() == 0 {
                    panic!("boom");
                }
                comm.barrier();
            },
        );
        let report0 = results[0].ctx_report.as_ref().unwrap();
        assert_eq!(report0.profile.injectable(Region::Common), 1);
        assert!(results[0].result.is_err());
    }

    #[test]
    fn taint_crosses_ranks_via_messages() {
        // Rank 0 gets an injected error that reaches its send buffer; the
        // receiving rank must be flagged contaminated.
        let world = World::new(2);
        let results = world.run_with_ctx(
            |rank| {
                let plan = if rank == 0 {
                    InjectionPlan::single(Target {
                        region: Region::Common,
                        op_index: 0,
                        bit: 55, // exponent bit: never rounded away
                        operand: Operand::A,
                    })
                } else {
                    InjectionPlan::none()
                };
                Some(resilim_inject::RankCtx::new(rank, plan))
            },
            |comm| {
                let mine = Tf64::new(1.0) + Tf64::new(2.0); // op 0: corrupted on rank 0
                let sum = comm.allreduce_scalar(ReduceOp::Sum, mine);
                sum.is_tainted()
            },
        );
        for r in &results {
            assert!(
                r.result.as_ref().unwrap(),
                "allreduce result must be tainted"
            );
            assert!(r.ctx_report.as_ref().unwrap().contaminated);
        }
    }

    #[test]
    fn absorbed_taint_does_not_cross_ranks() {
        // Rank 0's error is multiplied by zero before communication: the
        // other rank must stay clean.
        let world = World::new(2);
        let results = world.run_with_ctx(
            |rank| {
                let plan = if rank == 0 {
                    InjectionPlan::single(Target {
                        region: Region::Common,
                        op_index: 0,
                        bit: 55,
                        operand: Operand::A,
                    })
                } else {
                    InjectionPlan::none()
                };
                Some(resilim_inject::RankCtx::new(rank, plan))
            },
            |comm| {
                let corrupted = Tf64::new(1.0) + Tf64::new(2.0); // corrupted on rank 0
                let masked = corrupted * Tf64::ZERO; // absorbed
                let sum = comm.allreduce_scalar(ReduceOp::Sum, masked);
                sum.is_tainted()
            },
        );
        assert!(!results[0].result.as_ref().unwrap());
        assert!(results[0].ctx_report.as_ref().unwrap().contaminated); // had the error
        assert!(!results[1].ctx_report.as_ref().unwrap().contaminated); // never saw it
    }

    #[test]
    fn hang_guard_classified() {
        let world = World::new(1);
        let results = world.run_with_ctx(
            |rank| Some(resilim_inject::RankCtx::profiling(rank).with_op_cap(100)),
            |_comm| {
                let mut acc = Tf64::ZERO;
                loop {
                    acc += 1.0; // trips the guard long before looping forever
                    if acc.value() < 0.0 {
                        break;
                    }
                }
            },
        );
        let err = results[0].result.as_ref().unwrap_err();
        assert_eq!(err.kind, PanicKind::HangGuard);
        assert!(results[0].ctx_report.as_ref().unwrap().hang_guard_tripped);
    }

    #[test]
    fn deadline_reaps_a_wedged_world() {
        // Both ranks block on receives that can never be satisfied; the
        // long recv timeout would wedge the trial for 60s, but the
        // watchdog poisons the fabric after 50ms and both ranks fail
        // fast with FabricDead.
        let world = World::with_config(
            2,
            WorldConfig {
                recv_timeout: Duration::from_secs(60),
            },
        );
        let start = Instant::now();
        let (results, tripped) = world.run_with_ctx_deadline(
            |_| None,
            |comm| {
                let _ = comm.recv(1 - comm.rank(), 0xdead);
            },
            Some(Duration::from_millis(50)),
        );
        assert!(tripped, "watchdog must have fired");
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "deadline must beat the recv timeout"
        );
        for r in &results {
            assert!(
                matches!(
                    r.result.as_ref().unwrap_err().kind,
                    PanicKind::FabricDead | PanicKind::RecvTimeout
                ),
                "rank {}: {:?}",
                r.rank,
                r.result
            );
        }
    }

    #[test]
    fn deadline_untouched_run_reports_untripped() {
        let world = World::new(2);
        let (results, tripped) = world.run_with_ctx_deadline(
            |_| None,
            |comm| comm.allreduce_scalar(ReduceOp::Sum, Tf64::new(1.0)).value(),
            Some(Duration::from_secs(30)),
        );
        assert!(!tripped);
        assert!(results.iter().all(|r| *r.result.as_ref().unwrap() == 2.0));
    }

    #[test]
    fn large_world_smoke() {
        let world = World::new(64);
        let results = world.run(|comm| {
            let x = [Tf64::new(1.0)];
            comm.allreduce(ReduceOp::Sum, &x)[0].value()
        });
        assert!(results.iter().all(|r| *r.result.as_ref().unwrap() == 64.0));
    }
}
