//! Message payloads.

use resilim_inject::Tf64;

/// The payload of a fabric message.
///
/// Numeric data travels as tracked scalars so that taint crosses rank
/// boundaries; structural data (index lists, sizes) travels as raw bytes
/// and can never carry taint (the paper injects into floating-point
/// computation only).
#[derive(Debug, Clone)]
pub enum Payload {
    /// A buffer of tracked floats.
    F64(Vec<Tf64>),
    /// Raw bytes (metadata, index lists).
    Bytes(Vec<u8>),
}

impl Payload {
    /// Whether any element of a numeric payload is tainted.
    pub fn is_tainted(&self) -> bool {
        match self {
            Payload::F64(v) => v.iter().any(|x| x.is_tainted()),
            Payload::Bytes(_) => false,
        }
    }

    /// Length in elements (floats or bytes).
    pub fn len(&self) -> usize {
        match self {
            Payload::F64(v) => v.len(),
            Payload::Bytes(v) => v.len(),
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate on-the-wire size in bytes (8 per tracked f64 — the
    /// width a real MPI transfer would move; taint shadows are simulation
    /// overhead, not payload).
    pub fn wire_bytes(&self) -> usize {
        match self {
            Payload::F64(v) => v.len() * 8,
            Payload::Bytes(v) => v.len(),
        }
    }

    /// Number of tainted elements in a numeric payload.
    pub fn tainted_elems(&self) -> usize {
        match self {
            Payload::F64(v) => v.iter().filter(|x| x.is_tainted()).count(),
            Payload::Bytes(_) => 0,
        }
    }

    /// Extract a numeric payload.
    pub fn into_f64(self) -> Result<Vec<Tf64>, crate::error::MpiError> {
        match self {
            Payload::F64(v) => Ok(v),
            Payload::Bytes(_) => Err(crate::error::MpiError::PayloadMismatch {
                what: "expected F64 payload, got Bytes",
            }),
        }
    }

    /// Extract a byte payload.
    pub fn into_bytes(self) -> Result<Vec<u8>, crate::error::MpiError> {
        match self {
            Payload::Bytes(v) => Ok(v),
            Payload::F64(_) => Err(crate::error::MpiError::PayloadMismatch {
                what: "expected Bytes payload, got F64",
            }),
        }
    }
}

impl From<Vec<Tf64>> for Payload {
    fn from(v: Vec<Tf64>) -> Payload {
        Payload::F64(v)
    }
}

impl From<&[Tf64]> for Payload {
    fn from(v: &[Tf64]) -> Payload {
        Payload::F64(v.to_vec())
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taint_detection() {
        let clean = Payload::F64(vec![Tf64::new(1.0), Tf64::new(2.0)]);
        assert!(!clean.is_tainted());
        let dirty = Payload::F64(vec![Tf64::new(1.0), Tf64::from_parts(2.0, 3.0)]);
        assert!(dirty.is_tainted());
        let bytes = Payload::Bytes(vec![1, 2, 3]);
        assert!(!bytes.is_tainted());
    }

    #[test]
    fn extraction() {
        let p = Payload::F64(vec![Tf64::new(1.0)]);
        assert_eq!(p.clone().into_f64().unwrap().len(), 1);
        assert!(p.into_bytes().is_err());
        let b = Payload::Bytes(vec![7]);
        assert_eq!(b.clone().into_bytes().unwrap(), vec![7]);
        assert!(b.into_f64().is_err());
    }

    #[test]
    fn lengths() {
        assert_eq!(Payload::F64(vec![]).len(), 0);
        assert!(Payload::F64(vec![]).is_empty());
        assert_eq!(Payload::Bytes(vec![0; 5]).len(), 5);
    }

    #[test]
    fn wire_accounting() {
        let p = Payload::F64(vec![Tf64::new(1.0), Tf64::from_parts(2.0, 3.0)]);
        assert_eq!(p.wire_bytes(), 16);
        assert_eq!(p.tainted_elems(), 1);
        let b = Payload::Bytes(vec![0; 7]);
        assert_eq!(b.wire_bytes(), 7);
        assert_eq!(b.tainted_elems(), 0);
    }
}
