//! Execution backends: *how* a world's ranks get OS threads.
//!
//! The runtime has two ways to execute a trial — on the process-wide
//! reusable rank-thread pool ([`PooledBackend`], the fast path), or by
//! spawning fresh threads per trial ([`SpawnedBackend`], the reference
//! path tests use as an oracle). Campaign runners used to pick between
//! them with an ad-hoc flag; [`ExecBackend`] makes the duality a first-
//! class, object-safe trait so callers can hold a `dyn ExecBackend<T>`
//! and the two paths stay interchangeable by construction.

use crate::world::{RankOutcome, World};
use resilim_inject::RankCtx;
use std::time::Duration;

use crate::comm::Comm;

/// Per-rank context factory passed to a backend (`mk_ctx(rank)`).
pub type CtxFactory<'a> = dyn Fn(usize) -> Option<RankCtx> + Send + Sync + 'a;

/// Rank body passed to a backend.
pub type RankBody<'a, T> = dyn Fn(&Comm) -> T + Send + Sync + 'a;

/// A strategy for executing one world run (one fault-injection trial).
///
/// Implementations must preserve the [`World::run_spawned`] semantics:
/// results in rank order, fabric poisoned on any rank panic, contexts
/// harvested even from panicking ranks. The returned `bool` reports
/// whether a trial watchdog tripped (always `false` for backends with
/// no deadline support).
pub trait ExecBackend<T: Send>: Send + Sync {
    /// Stable human-readable name (shows up in traces and test labels).
    fn name(&self) -> &'static str;

    /// Execute `body` on every rank of `world`.
    fn run(
        &self,
        world: &World,
        mk_ctx: &CtxFactory<'_>,
        body: &RankBody<'_, T>,
    ) -> (Vec<RankOutcome<T>>, bool);
}

/// The process-wide rank-thread pool, with an optional per-trial
/// wall-clock watchdog (see [`World::run_with_ctx_deadline`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct PooledBackend {
    /// Trial deadline; `None` disables the watchdog.
    pub deadline: Option<Duration>,
}

impl PooledBackend {
    /// Pool-backed execution without a watchdog.
    pub fn new() -> PooledBackend {
        PooledBackend::default()
    }

    /// Pool-backed execution that trips after `deadline`.
    pub fn with_deadline(deadline: Option<Duration>) -> PooledBackend {
        PooledBackend { deadline }
    }
}

impl<T: Send> ExecBackend<T> for PooledBackend {
    fn name(&self) -> &'static str {
        "pooled"
    }

    fn run(
        &self,
        world: &World,
        mk_ctx: &CtxFactory<'_>,
        body: &RankBody<'_, T>,
    ) -> (Vec<RankOutcome<T>>, bool) {
        world.run_with_ctx_deadline(mk_ctx, body, self.deadline)
    }
}

/// Fresh OS threads per trial — the original reference path. No
/// watchdog plumbing: the tripped flag is always `false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpawnedBackend;

impl<T: Send> ExecBackend<T> for SpawnedBackend {
    fn name(&self) -> &'static str {
        "spawned"
    }

    fn run(
        &self,
        world: &World,
        mk_ctx: &CtxFactory<'_>,
        body: &RankBody<'_, T>,
    ) -> (Vec<RankOutcome<T>>, bool) {
        (world.run_spawned(mk_ctx, body), false)
    }
}

/// Boxed backends are backends: campaign runners hold
/// `Box<dyn ExecBackend<T>>` and wrappers like [`ReplicatedBackend`] can
/// compose over them without knowing the concrete inner type.
impl<T: Send, B: ExecBackend<T> + ?Sized> ExecBackend<T> for Box<B> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn run(
        &self,
        world: &World,
        mk_ctx: &CtxFactory<'_>,
        body: &RankBody<'_, T>,
    ) -> (Vec<RankOutcome<T>>, bool) {
        (**self).run(world, mk_ctx, body)
    }
}

/// TeaMPI-style rank replication as a backend wrapper: every rank context
/// is armed with replica payload comparison ([`RankCtx::with_replication`]),
/// so the shadow world acts as the clean replica and message payloads are
/// compared between worlds at every send and receive point. Divergence
/// surfaces as the `detected` flag in the rank's context report — the
/// mitigation *detects* corruption, it never alters execution, so outcomes
/// are bitwise identical to the unreplicated run modulo that flag.
pub struct ReplicatedBackend<B> {
    inner: B,
}

impl<B> ReplicatedBackend<B> {
    /// Wrap a backend with replica payload comparison.
    pub fn new(inner: B) -> ReplicatedBackend<B> {
        ReplicatedBackend { inner }
    }
}

impl<T: Send, B: ExecBackend<T>> ExecBackend<T> for ReplicatedBackend<B> {
    fn name(&self) -> &'static str {
        "replicated"
    }

    fn run(
        &self,
        world: &World,
        mk_ctx: &CtxFactory<'_>,
        body: &RankBody<'_, T>,
    ) -> (Vec<RankOutcome<T>>, bool) {
        let replicated = move |rank: usize| mk_ctx(rank).map(|c| c.with_replication(true));
        self.inner.run(world, &replicated, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReduceOp;
    use resilim_inject::Tf64;

    fn sum_under(backend: &dyn ExecBackend<f64>) -> Vec<f64> {
        let world = World::new(4);
        let (outcomes, tripped) = backend.run(&world, &|_| None, &|comm| {
            let mine = [Tf64::new((comm.rank() + 1) as f64)];
            comm.allreduce(ReduceOp::Sum, &mine)[0].value()
        });
        assert!(!tripped);
        outcomes
            .into_iter()
            .map(|o| *o.result.as_ref().unwrap())
            .collect()
    }

    #[test]
    fn backends_agree_through_the_trait_object() {
        let pooled = sum_under(&PooledBackend::new());
        let spawned = sum_under(&SpawnedBackend);
        assert_eq!(pooled, vec![10.0; 4]);
        assert_eq!(pooled, spawned);
        assert_eq!(ExecBackend::<f64>::name(&PooledBackend::new()), "pooled");
        assert_eq!(ExecBackend::<f64>::name(&SpawnedBackend), "spawned");
    }

    #[test]
    fn boxed_backend_delegates() {
        let boxed: Box<dyn ExecBackend<f64>> = Box::new(PooledBackend::new());
        assert_eq!(boxed.name(), "pooled");
        assert_eq!(sum_under(&boxed), vec![10.0; 4]);
    }

    #[test]
    fn replicated_backend_detects_divergent_payloads() {
        use resilim_inject::{InjectionPlan, Operand, Region, Target};
        let world = World::new(2);
        let mk_ctx = |rank: usize| {
            let plan = if rank == 0 {
                InjectionPlan::single(Target {
                    region: Region::Common,
                    op_index: 0,
                    bit: 55,
                    operand: Operand::A,
                })
            } else {
                InjectionPlan::none()
            };
            Some(resilim_inject::RankCtx::new(rank, plan))
        };
        let body = |comm: &Comm| {
            let mine = Tf64::new(1.0) + Tf64::new(2.0); // corrupted on rank 0
            comm.allreduce_scalar(ReduceOp::Sum, mine).value()
        };

        let backend = ReplicatedBackend::new(PooledBackend::new());
        assert_eq!(ExecBackend::<f64>::name(&backend), "replicated");
        let (outcomes, tripped) = backend.run(&world, &mk_ctx, &body);
        assert!(!tripped);
        // The corrupted payload crossed the fabric: both the sender's and
        // the receiver's replica compare points saw the divergence.
        for o in &outcomes {
            assert!(o.ctx_report.as_ref().unwrap().detected, "rank {}", o.rank);
        }

        // Replication only observes: values are identical to the plain run.
        let (plain, _) = PooledBackend::new().run(&world, &mk_ctx, &body);
        for (r, p) in outcomes.iter().zip(plain.iter()) {
            assert_eq!(r.result.as_ref().unwrap(), p.result.as_ref().unwrap());
            assert!(!p.ctx_report.as_ref().unwrap().detected);
        }
    }
}
