//! A persistent pool of rank worker threads.
//!
//! Fault-injection campaigns run thousands of short trials; spawning
//! `procs` fresh OS threads per trial dominates small-problem wall time.
//! [`WorldPool`] keeps rank workers alive across trials and hands a batch
//! of rank bodies to them per run, with scoped-thread semantics: borrows
//! from the caller's stack are allowed because [`WorldPool::scope_run`]
//! does not return until every job has finished (or unwound).
//!
//! Robustness: a job that panics (a crashed trial, a hang-guard trip, a
//! rank failing on a poisoned fabric) unwinds into a `catch_unwind`
//! backstop inside the worker loop, so the worker thread survives and is
//! checked back in for the next trial. The pool never blocks waiting for
//! an idle worker — it spawns instead — so a run of `n` ranks always has
//! `n` workers running concurrently, which blocking collectives require.

use parking_lot::{Condvar, Mutex};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::OnceLock;

/// A lifetime-erased job. Soundness: jobs are only transmuted from
/// `'env` closures inside [`WorldPool::scope_run`], which waits for all
/// of them before returning, so the erased borrows never dangle.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Worker {
    tx: Sender<Job>,
}

/// Counts job completions so `scope_run` can wait for exactly the jobs it
/// dispatched — including on the unwind path, where waiting is what makes
/// the lifetime erasure sound.
struct Latch {
    arrived: Mutex<usize>,
    changed: Condvar,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            arrived: Mutex::new(0),
            changed: Condvar::new(),
        }
    }

    fn arrive(&self) {
        let mut n = self.arrived.lock();
        *n += 1;
        self.changed.notify_all();
    }

    fn wait_for(&self, target: usize) {
        let mut n = self.arrived.lock();
        while *n < target {
            self.changed.wait(&mut n);
        }
    }
}

/// Arrives at the latch when dropped — on normal completion *and* when
/// the job unwinds, and even if an unsent job is destroyed unrun.
struct ArriveOnDrop<'a>(&'a Latch);

impl Drop for ArriveOnDrop<'_> {
    fn drop(&mut self) {
        self.0.arrive();
    }
}

/// Waits (on drop) for every job dispatched so far, so a panic partway
/// through dispatch still joins the jobs already in flight before any
/// borrowed state unwinds away.
struct WaitDispatched<'a> {
    latch: &'a Latch,
    sent: usize,
}

impl Drop for WaitDispatched<'_> {
    fn drop(&mut self) {
        self.latch.wait_for(self.sent);
    }
}

/// A reusable pool of rank worker threads (see module docs).
pub struct WorldPool {
    idle: Mutex<Vec<Worker>>,
    spawned: AtomicUsize,
    dispatched: AtomicUsize,
}

impl Default for WorldPool {
    fn default() -> Self {
        WorldPool::new()
    }
}

impl WorldPool {
    /// An empty pool; workers are spawned on demand and kept forever.
    pub fn new() -> WorldPool {
        WorldPool {
            idle: Mutex::new(Vec::new()),
            spawned: AtomicUsize::new(0),
            dispatched: AtomicUsize::new(0),
        }
    }

    /// The process-wide pool used by
    /// [`World::run_with_ctx`](crate::World::run_with_ctx).
    pub fn global() -> &'static WorldPool {
        static GLOBAL: OnceLock<WorldPool> = OnceLock::new();
        GLOBAL.get_or_init(WorldPool::new)
    }

    /// Total worker threads ever spawned by this pool. A campaign that
    /// reuses workers keeps this at the high-water concurrency mark
    /// instead of `trials * procs`.
    pub fn threads_spawned(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }

    /// Workers currently checked in and waiting for work.
    pub fn idle_threads(&self) -> usize {
        self.idle.lock().len()
    }

    /// Total jobs ever dispatched through this pool.
    pub fn jobs_dispatched(&self) -> usize {
        self.dispatched.load(Ordering::Relaxed)
    }

    fn spawn_worker(&self) -> Worker {
        let (tx, rx) = channel::<Job>();
        let id = self.spawned.fetch_add(1, Ordering::Relaxed);
        std::thread::Builder::new()
            .name(format!("rank-worker-{id}"))
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    // Backstop only: rank bodies already run under their
                    // own catch_unwind. This keeps the worker alive even
                    // if result-delivery machinery itself panics.
                    let _ = panic::catch_unwind(AssertUnwindSafe(job));
                }
            })
            .expect("spawn rank worker");
        Worker { tx }
    }

    fn checkout(&self) -> Worker {
        match self.idle.lock().pop() {
            Some(w) => w,
            None => self.spawn_worker(),
        }
    }

    /// Run every job on its own worker thread, concurrently, and return
    /// once all of them have finished. Jobs may borrow from the caller's
    /// environment (`'env`), exactly like `std::thread::scope`.
    pub fn scope_run<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if jobs.is_empty() {
            return;
        }
        let latch = Latch::new();
        let mut join = WaitDispatched {
            latch: &latch,
            sent: 0,
        };
        let mut leased: Vec<Worker> = Vec::with_capacity(jobs.len());
        for job in jobs {
            let done = ArriveOnDrop(&latch);
            let wrapped: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let _done = done;
                job();
            });
            // SAFETY: `wrapped` may borrow from `'env` and from this
            // stack frame (the latch). It is never invoked or dropped
            // after `scope_run` returns: the `WaitDispatched` guard waits
            // for the job's `ArriveOnDrop` — which fires when the job
            // completes, unwinds, or is destroyed unrun — before this
            // frame is left, on both the normal and the panic path.
            let wrapped: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(wrapped) };
            let worker = self.checkout();
            let worker = match worker.tx.send(wrapped) {
                Ok(()) => worker,
                // The checked-out worker died (its thread panicked outside
                // the backstop or the process is winding down channels);
                // replace it.
                Err(err) => {
                    let fresh = self.spawn_worker();
                    fresh
                        .tx
                        .send(err.0)
                        .expect("freshly spawned worker accepts a job");
                    fresh
                }
            };
            leased.push(worker);
            join.sent += 1;
            self.dispatched.fetch_add(1, Ordering::Relaxed);
        }
        drop(join); // blocks until every dispatched job has arrived
        self.idle.lock().append(&mut leased);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_jobs_concurrently_and_reuses_workers() {
        let pool = WorldPool::new();
        for round in 0..3 {
            let sum = AtomicU64::new(0);
            let barrier = std::sync::Barrier::new(4);
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4u64)
                .map(|i| {
                    let sum = &sum;
                    let barrier = &barrier;
                    Box::new(move || {
                        // All four jobs must be live at once to pass the
                        // barrier — proves distinct concurrent workers.
                        barrier.wait();
                        sum.fetch_add(i + 1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.scope_run(jobs);
            assert_eq!(sum.load(Ordering::Relaxed), 10, "round {round}");
        }
        assert_eq!(pool.threads_spawned(), 4, "workers reused across rounds");
        assert_eq!(pool.idle_threads(), 4);
        assert_eq!(pool.jobs_dispatched(), 12);
    }

    #[test]
    fn panicking_job_leaves_pool_reusable() {
        crate::world::install_quiet_hook();
        let pool = WorldPool::new();
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            Box::new(|| {
                crate::world::QUIET_PANICS.with(|q| q.set(true));
                panic!("job panic")
            }),
            Box::new(|| {}),
        ];
        pool.scope_run(jobs);
        let ran = AtomicU64::new(0);
        pool.scope_run(vec![Box::new(|| {
            ran.fetch_add(1, Ordering::Relaxed);
        }) as Box<dyn FnOnce() + Send + '_>]);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        assert_eq!(pool.threads_spawned(), 2);
    }

    #[test]
    fn empty_run_is_a_no_op() {
        let pool = WorldPool::new();
        pool.scope_run(Vec::new());
        assert_eq!(pool.threads_spawned(), 0);
    }
}
