//! Runtime errors and panic classification.

use serde::{Deserialize, Serialize};

/// Errors surfaced by fabric operations.
///
/// Application code does not handle these: the [`Comm`](crate::Comm)
/// wrappers convert them into panics with recognisable messages so that a
/// single failed rank tears down the whole simulated job, exactly like an
/// MPI abort. The [`World`](crate::World) runner classifies those panics
/// back into [`PanicKind`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// No matching message arrived within the fabric timeout.
    RecvTimeout {
        /// Receiving rank.
        rank: usize,
        /// Expected source rank.
        src: usize,
        /// Expected message tag.
        tag: u64,
    },
    /// The fabric was poisoned because another rank panicked.
    FabricDead,
    /// A payload had the wrong variant or length for the operation.
    PayloadMismatch {
        /// Human-readable description of the mismatch.
        what: &'static str,
    },
    /// A rank index was out of range.
    InvalidRank {
        /// The offending rank index.
        rank: usize,
        /// Number of ranks in the world.
        size: usize,
    },
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::RecvTimeout { rank, src, tag } => write!(
                f,
                "{RECV_TIMEOUT_MSG}: rank {rank} waiting for src {src} tag {tag}"
            ),
            MpiError::FabricDead => write!(f, "{FABRIC_DEAD_MSG}"),
            MpiError::PayloadMismatch { what } => {
                write!(f, "resilim-simmpi: payload mismatch: {what}")
            }
            MpiError::InvalidRank { rank, size } => {
                write!(f, "resilim-simmpi: invalid rank {rank} (world size {size})")
            }
        }
    }
}

impl std::error::Error for MpiError {}

/// Marker message for receive-timeout panics.
pub const RECV_TIMEOUT_MSG: &str = "resilim-simmpi: receive timed out";
/// Marker message for fabric-poisoned panics (secondary failures).
pub const FABRIC_DEAD_MSG: &str = "resilim-simmpi: fabric dead (another rank failed)";

/// Classification of a rank's panic, recovered from the panic payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PanicKind {
    /// The injection hang guard tripped (op budget exceeded) — the run
    /// would not have terminated in a reasonable time.
    HangGuard,
    /// A receive timed out — a communication partner stopped participating.
    RecvTimeout,
    /// Secondary failure: this rank died only because the fabric was
    /// poisoned by another rank's failure.
    FabricDead,
    /// A detected-uncorrectable error killed the rank
    /// (`--fault-model due`).
    Due,
    /// Any other panic: models an application crash.
    Crash,
}

/// A captured rank panic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankPanic {
    /// Classified cause.
    pub kind: PanicKind,
    /// The panic message (best-effort string extraction).
    pub message: String,
}

impl RankPanic {
    /// Classify a panic payload coming out of `catch_unwind`.
    pub fn from_payload(payload: &(dyn std::any::Any + Send)) -> RankPanic {
        let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        let kind = if message.contains(resilim_inject::ctx::HANG_GUARD_MSG) {
            PanicKind::HangGuard
        } else if message.contains(RECV_TIMEOUT_MSG) {
            PanicKind::RecvTimeout
        } else if message.contains(FABRIC_DEAD_MSG) {
            PanicKind::FabricDead
        } else if message.contains(resilim_inject::ctx::DUE_MSG) {
            PanicKind::Due
        } else {
            PanicKind::Crash
        };
        RankPanic { kind, message }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classify(msg: &str) -> PanicKind {
        let boxed: Box<dyn std::any::Any + Send> = Box::new(msg.to_string());
        RankPanic::from_payload(boxed.as_ref()).kind
    }

    #[test]
    fn classify_hang_guard() {
        assert_eq!(
            classify(resilim_inject::ctx::HANG_GUARD_MSG),
            PanicKind::HangGuard
        );
    }

    #[test]
    fn classify_timeout() {
        assert_eq!(
            classify("resilim-simmpi: receive timed out: rank 3 waiting for src 0 tag 7"),
            PanicKind::RecvTimeout
        );
    }

    #[test]
    fn classify_fabric_dead() {
        assert_eq!(classify(FABRIC_DEAD_MSG), PanicKind::FabricDead);
    }

    #[test]
    fn classify_due() {
        assert_eq!(classify(resilim_inject::ctx::DUE_MSG), PanicKind::Due);
    }

    #[test]
    fn classify_other_as_crash() {
        assert_eq!(classify("index out of bounds"), PanicKind::Crash);
    }

    #[test]
    fn static_str_payload() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new("plain crash");
        assert_eq!(
            RankPanic::from_payload(boxed.as_ref()).kind,
            PanicKind::Crash
        );
    }

    #[test]
    fn error_display() {
        let e = MpiError::RecvTimeout {
            rank: 1,
            src: 0,
            tag: 42,
        };
        assert!(e.to_string().contains("rank 1"));
        assert!(MpiError::FabricDead.to_string().contains("fabric dead"));
    }
}
