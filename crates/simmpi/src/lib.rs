#![warn(missing_docs)]
//! # resilim-simmpi
//!
//! An in-process MPI runtime for resilience studies: every rank of a
//! simulated job runs on its own OS thread and communicates through an
//! in-memory fabric. The runtime exists so that the `resilim` workspace
//! can execute the paper's MPI workloads at 1–128 "ranks" on a single
//! machine, with two properties real MPI does not give us:
//!
//! * **Taint-carrying messages** — payloads are
//!   [`Tf64`](resilim_inject::Tf64) buffers, so an error injected in one
//!   rank observably contaminates every rank whose memory it reaches
//!   (paper §3.2, Figures 1–2).
//! * **Deterministic collectives** — reductions fold contributions in rank
//!   order, so a fault-free run is bit-reproducible and "output identical
//!   to the fault-free run" is a meaningful (bitwise) predicate.
//!
//! ## Example
//!
//! ```
//! use resilim_simmpi::{World, ReduceOp};
//! use resilim_inject::Tf64;
//!
//! let world = World::new(4);
//! let results = world.run(|comm| {
//!     let mine = [Tf64::new((comm.rank() + 1) as f64)];
//!     let total = comm.allreduce(ReduceOp::Sum, &mine);
//!     total[0].value()
//! });
//! for r in &results {
//!     assert_eq!(*r.result.as_ref().unwrap(), 10.0);
//! }
//! ```

pub mod backend;
pub mod comm;
pub mod error;
pub mod fabric;
pub mod payload;
pub mod pool;
pub mod world;

pub use backend::{ExecBackend, PooledBackend, ReplicatedBackend, SpawnedBackend};
pub use comm::{Comm, ReduceOp};
pub use error::{MpiError, PanicKind, RankPanic};
pub use fabric::MsgFault;
pub use payload::Payload;
pub use pool::WorldPool;
pub use world::{RankOutcome, World, WorldConfig};
