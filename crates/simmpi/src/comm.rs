//! The per-rank communicator handle.
//!
//! [`Comm`] wraps the shared [`fabric::Fabric`](crate::fabric::Fabric) with an
//! MPI-flavoured API: tagged point-to-point messages plus the collectives
//! the ported applications need (barrier, bcast, reduce, allreduce,
//! gather, allgather, alltoallv, scatter, sendrecv).
//!
//! Design notes:
//!
//! * **Errors abort the job.** Fabric errors become panics with
//!   recognisable messages (see [`crate::error`]); the world runner
//!   classifies them. This mirrors the default `MPI_ERRORS_ARE_FATAL`.
//! * **Collectives are linear and deterministic.** Reductions gather
//!   contributions at the root and fold them in rank order 0,1,…,p−1, so
//!   results are bit-reproducible and independent of thread scheduling.
//!   With ≤128 ranks the O(p) fan-in is not a bottleneck.
//! * **Reduction arithmetic is not instrumented.** The paper injects into
//!   application computation, never into MPI internals, so collective
//!   combines bypass the injection hook (and therefore also keep dynamic
//!   op counts identical across scales). Taint still propagates, because
//!   it is carried by the values themselves.
//! * **Every received numeric payload reports its taint** to the current
//!   rank's injection context — that is how cross-rank contamination
//!   (paper §3.2) becomes observable.

use crate::error::MpiError;
use crate::fabric::Fabric;
use crate::payload::Payload;
use resilim_inject::{ctx, Tf64};
#[cfg(feature = "obs")]
use resilim_obs as obs;
use std::cell::Cell;

/// Reduction operators for [`Comm::reduce`]/[`Comm::allreduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise product.
    Prod,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
}

impl ReduceOp {
    /// Combine two tracked scalars in both worlds, outside the injection
    /// hook (reductions model MPI-internal arithmetic).
    #[inline]
    pub fn combine(self, a: Tf64, b: Tf64) -> Tf64 {
        let f: fn(f64, f64) -> f64 = match self {
            ReduceOp::Sum => |x, y| x + y,
            ReduceOp::Prod => |x, y| x * y,
            ReduceOp::Min => f64::min,
            ReduceOp::Max => f64::max,
        };
        Tf64::from_parts(f(a.value(), b.value()), f(a.shadow(), b.shadow()))
    }
}

/// Report a received payload's (significance-thresholded) taint to the
/// current rank's injection context.
fn note_payload(payload: &Payload) {
    if let Payload::F64(values) = payload {
        ctx::note_values(values);
    }
}

/// Base tag for internal collective messages; user tags must stay below.
const COLL_TAG_BASE: u64 = 1 << 63;

/// Per-rank communicator handle (one per rank thread).
pub struct Comm<'a> {
    rank: usize,
    size: usize,
    fabric: &'a Fabric,
    coll_seq: Cell<u64>,
}

#[allow(clippy::needless_range_loop)] // receives are matched by explicit src rank
impl<'a> Comm<'a> {
    /// Handle for `rank` over a shared fabric.
    pub fn new(rank: usize, fabric: &'a Fabric) -> Comm<'a> {
        Comm {
            rank,
            size: fabric.size(),
            fabric,
            coll_seq: Cell::new(0),
        }
    }

    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size (number of ranks).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether this is a single-rank (serial) world.
    #[inline]
    pub fn is_serial(&self) -> bool {
        self.size == 1
    }

    fn chk<T>(r: Result<T, MpiError>) -> T {
        match r {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    fn next_coll_tag(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        COLL_TAG_BASE | seq
    }

    // ----------------------------------------------------------------
    // Point-to-point
    // ----------------------------------------------------------------

    /// Send tracked floats to `dst` (non-blocking buffered send).
    pub fn send(&self, dst: usize, tag: u64, data: &[Tf64]) {
        debug_assert!(tag < COLL_TAG_BASE, "user tags must be < 2^63");
        Self::chk(self.fabric.send(self.rank, dst, tag, data.into()));
    }

    /// Receive tracked floats from `src`.
    pub fn recv(&self, src: usize, tag: u64) -> Vec<Tf64> {
        let payload = Self::chk(self.fabric.recv(self.rank, src, tag));
        note_payload(&payload);
        Self::chk(payload.into_f64())
    }

    /// Send raw bytes to `dst`.
    pub fn send_bytes(&self, dst: usize, tag: u64, data: Vec<u8>) {
        debug_assert!(tag < COLL_TAG_BASE, "user tags must be < 2^63");
        Self::chk(self.fabric.send(self.rank, dst, tag, data.into()));
    }

    /// Receive raw bytes from `src`.
    pub fn recv_bytes(&self, src: usize, tag: u64) -> Vec<u8> {
        Self::chk(Self::chk(self.fabric.recv(self.rank, src, tag)).into_bytes())
    }

    /// Combined send-to-`dst` + receive-from-`src` (halo-exchange staple;
    /// deadlock-free because sends never block).
    pub fn sendrecv(&self, dst: usize, src: usize, tag: u64, data: &[Tf64]) -> Vec<Tf64> {
        #[cfg(feature = "obs")]
        let _span = obs::span(obs::Hist::SendrecvNs);
        self.send(dst, tag, data);
        self.recv(src, tag)
    }

    // ----------------------------------------------------------------
    // Collectives (all ranks must call, in the same order)
    // ----------------------------------------------------------------

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        #[cfg(feature = "obs")]
        let _span = obs::span(obs::Hist::BarrierNs);
        let tag = self.next_coll_tag();
        if self.size == 1 {
            return;
        }
        if self.rank == 0 {
            for src in 1..self.size {
                let _ = Self::chk(self.fabric.recv(self.rank, src, tag));
            }
            for dst in 1..self.size {
                Self::chk(
                    self.fabric
                        .send(self.rank, dst, tag, Payload::Bytes(Vec::new())),
                );
            }
        } else {
            Self::chk(
                self.fabric
                    .send(self.rank, 0, tag, Payload::Bytes(Vec::new())),
            );
            let _ = Self::chk(self.fabric.recv(self.rank, 0, tag));
        }
    }

    /// Broadcast `data` from `root`; non-root buffers are overwritten.
    pub fn bcast(&self, root: usize, data: &mut Vec<Tf64>) {
        #[cfg(feature = "obs")]
        let _span = obs::span(obs::Hist::BcastNs);
        let tag = self.next_coll_tag();
        if self.size == 1 {
            return;
        }
        if self.rank == root {
            for dst in 0..self.size {
                if dst != root {
                    Self::chk(
                        self.fabric
                            .send(self.rank, dst, tag, data.as_slice().into()),
                    );
                }
            }
        } else {
            let payload = Self::chk(self.fabric.recv(self.rank, root, tag));
            note_payload(&payload);
            *data = Self::chk(payload.into_f64());
        }
    }

    /// Reduce `data` elementwise onto `root`; returns `Some(result)` at the
    /// root and `None` elsewhere. Contributions fold in rank order.
    pub fn reduce(&self, root: usize, op: ReduceOp, data: &[Tf64]) -> Option<Vec<Tf64>> {
        #[cfg(feature = "obs")]
        let _span = obs::span(obs::Hist::ReduceNs);
        let tag = self.next_coll_tag();
        if self.size == 1 {
            return Some(data.to_vec());
        }
        if self.rank == root {
            // Gather all contributions first so folding is in rank order
            // regardless of arrival order.
            let mut parts: Vec<Option<Vec<Tf64>>> = vec![None; self.size];
            parts[root] = Some(data.to_vec());
            for src in 0..self.size {
                if src != root {
                    let payload = Self::chk(self.fabric.recv(self.rank, src, tag));
                    note_payload(&payload);
                    parts[src] = Some(Self::chk(payload.into_f64()));
                }
            }
            let mut iter = parts.into_iter().map(|p| p.expect("all parts gathered"));
            let mut acc = iter.next().expect("size >= 1");
            for part in iter {
                assert_eq!(
                    part.len(),
                    acc.len(),
                    "reduce: length mismatch across ranks"
                );
                for (a, b) in acc.iter_mut().zip(part) {
                    *a = op.combine(*a, b);
                }
            }
            Some(acc)
        } else {
            Self::chk(self.fabric.send(self.rank, root, tag, data.into()));
            None
        }
    }

    /// Allreduce: reduce onto rank 0, then broadcast the result.
    pub fn allreduce(&self, op: ReduceOp, data: &[Tf64]) -> Vec<Tf64> {
        #[cfg(feature = "obs")]
        let _span = obs::span(obs::Hist::AllreduceNs);
        let reduced = self.reduce(0, op, data);
        let mut buf = reduced.unwrap_or_default();
        self.bcast(0, &mut buf);
        buf
    }

    /// Scalar allreduce convenience.
    pub fn allreduce_scalar(&self, op: ReduceOp, x: Tf64) -> Tf64 {
        self.allreduce(op, &[x])[0]
    }

    /// Gather every rank's buffer at `root` (rank-indexed).
    pub fn gather(&self, root: usize, data: &[Tf64]) -> Option<Vec<Vec<Tf64>>> {
        #[cfg(feature = "obs")]
        let _span = obs::span(obs::Hist::GatherNs);
        let tag = self.next_coll_tag();
        if self.size == 1 {
            return Some(vec![data.to_vec()]);
        }
        if self.rank == root {
            let mut out: Vec<Vec<Tf64>> = vec![Vec::new(); self.size];
            out[root] = data.to_vec();
            for src in 0..self.size {
                if src != root {
                    let payload = Self::chk(self.fabric.recv(self.rank, src, tag));
                    note_payload(&payload);
                    out[src] = Self::chk(payload.into_f64());
                }
            }
            Some(out)
        } else {
            Self::chk(self.fabric.send(self.rank, root, tag, data.into()));
            None
        }
    }

    /// Allgather: every rank receives every rank's buffer (rank-indexed).
    /// Buffers may have different lengths (allgatherv semantics).
    pub fn allgather(&self, data: &[Tf64]) -> Vec<Vec<Tf64>> {
        #[cfg(feature = "obs")]
        let _span = obs::span(obs::Hist::AllgatherNs);
        let gathered = self.gather(0, data);
        if self.size == 1 {
            return gathered.expect("serial gather");
        }
        // Broadcast the concatenation plus a length table.
        let tag = self.next_coll_tag();
        if self.rank == 0 {
            let parts = gathered.expect("root gather");
            let lens: Vec<Tf64> = parts.iter().map(|p| Tf64::new(p.len() as f64)).collect();
            let mut flat: Vec<Tf64> = Vec::with_capacity(parts.iter().map(Vec::len).sum());
            for p in &parts {
                flat.extend_from_slice(p);
            }
            for dst in 1..self.size {
                Self::chk(
                    self.fabric
                        .send(self.rank, dst, tag, lens.as_slice().into()),
                );
                Self::chk(
                    self.fabric
                        .send(self.rank, dst, tag, flat.as_slice().into()),
                );
            }
            parts
        } else {
            let lens_payload = Self::chk(self.fabric.recv(self.rank, 0, tag));
            let lens = Self::chk(lens_payload.into_f64());
            let flat_payload = Self::chk(self.fabric.recv(self.rank, 0, tag));
            note_payload(&flat_payload);
            let flat = Self::chk(flat_payload.into_f64());
            let mut out = Vec::with_capacity(self.size);
            let mut off = 0usize;
            for len in lens {
                let n = len.value() as usize;
                out.push(flat[off..off + n].to_vec());
                off += n;
            }
            out
        }
    }

    /// All-to-all with per-destination buffers: `outgoing[d]` goes to rank
    /// `d`; returns `incoming[s]` from each rank `s`. (The FT transpose
    /// backbone.)
    pub fn alltoallv(&self, outgoing: Vec<Vec<Tf64>>) -> Vec<Vec<Tf64>> {
        #[cfg(feature = "obs")]
        let _span = obs::span(obs::Hist::AlltoallvNs);
        assert_eq!(
            outgoing.len(),
            self.size,
            "alltoallv: need one buffer per rank"
        );
        let tag = self.next_coll_tag();
        let mut incoming: Vec<Vec<Tf64>> = vec![Vec::new(); self.size];
        for (dst, buf) in outgoing.into_iter().enumerate() {
            if dst == self.rank {
                incoming[dst] = buf;
            } else {
                Self::chk(self.fabric.send(self.rank, dst, tag, buf.into()));
            }
        }
        for src in 0..self.size {
            if src != self.rank {
                let payload = Self::chk(self.fabric.recv(self.rank, src, tag));
                note_payload(&payload);
                incoming[src] = Self::chk(payload.into_f64());
            }
        }
        incoming
    }

    /// Scatter `chunks` (one per rank, provided at `root`) to all ranks.
    pub fn scatter(&self, root: usize, chunks: Option<&[Vec<Tf64>]>) -> Vec<Tf64> {
        #[cfg(feature = "obs")]
        let _span = obs::span(obs::Hist::ScatterNs);
        let tag = self.next_coll_tag();
        if self.rank == root {
            let chunks = chunks.expect("root must provide chunks");
            assert_eq!(chunks.len(), self.size, "scatter: need one chunk per rank");
            for (dst, chunk) in chunks.iter().enumerate() {
                if dst != root {
                    Self::chk(
                        self.fabric
                            .send(self.rank, dst, tag, chunk.as_slice().into()),
                    );
                }
            }
            chunks[root].clone()
        } else {
            let payload = Self::chk(self.fabric.recv(self.rank, root, tag));
            note_payload(&payload);
            Self::chk(payload.into_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn reduce_op_combine() {
        let a = Tf64::new(3.0);
        let b = Tf64::new(5.0);
        assert_eq!(ReduceOp::Sum.combine(a, b).value(), 8.0);
        assert_eq!(ReduceOp::Prod.combine(a, b).value(), 15.0);
        assert_eq!(ReduceOp::Min.combine(a, b).value(), 3.0);
        assert_eq!(ReduceOp::Max.combine(a, b).value(), 5.0);
    }

    #[test]
    fn combine_preserves_world_separation() {
        let a = Tf64::from_parts(1.0, 10.0);
        let b = Tf64::from_parts(2.0, 20.0);
        let s = ReduceOp::Sum.combine(a, b);
        assert_eq!(s.value(), 3.0);
        assert_eq!(s.shadow(), 30.0);
        assert!(s.is_tainted());
    }

    #[test]
    fn combine_min_can_mask_taint() {
        // Corrupted world picks 1.0 (clean), shadow world picks 1.0 too.
        let corrupt = Tf64::from_parts(50.0, 2.0);
        let clean = Tf64::new(1.0);
        let m = ReduceOp::Min.combine(corrupt, clean);
        assert_eq!(m.value(), 1.0);
        // Shadow: min(2.0, 1.0) = 1.0 -> identical, taint masked.
        assert!(!m.is_tainted());
    }

    // Collective behaviour across real rank threads.

    #[test]
    fn allreduce_sum_all_sizes() {
        for p in [1usize, 2, 3, 4, 8] {
            let world = World::new(p);
            let results = world.run(move |comm| {
                let x = [Tf64::new((comm.rank() + 1) as f64)];
                comm.allreduce(ReduceOp::Sum, &x)[0].value()
            });
            let expect = (p * (p + 1) / 2) as f64;
            for r in results {
                assert_eq!(r.result.unwrap(), expect, "p={p}");
            }
        }
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let world = World::new(4);
        let results = world.run(|comm| {
            let mut data = if comm.rank() == 2 {
                vec![Tf64::new(7.5), Tf64::new(-1.0)]
            } else {
                Vec::new()
            };
            comm.bcast(2, &mut data);
            (data[0].value(), data[1].value())
        });
        for r in results {
            assert_eq!(r.result.unwrap(), (7.5, -1.0));
        }
    }

    #[test]
    fn gather_rank_ordered() {
        let world = World::new(4);
        let results = world.run(|comm| {
            let mine = vec![Tf64::new(comm.rank() as f64); comm.rank() + 1];
            comm.gather(1, &mine)
        });
        for (rank, r) in results.into_iter().enumerate() {
            let g = r.result.unwrap();
            if rank == 1 {
                let g = g.unwrap();
                for (i, part) in g.iter().enumerate() {
                    assert_eq!(part.len(), i + 1);
                    assert!(part.iter().all(|x| x.value() == i as f64));
                }
            } else {
                assert!(g.is_none());
            }
        }
    }

    #[test]
    fn allgather_variable_lengths() {
        let world = World::new(3);
        let results = world.run(|comm| {
            let mine = vec![Tf64::new(comm.rank() as f64); comm.rank() + 1];
            let all = comm.allgather(&mine);
            all.iter().map(|p| p.len()).collect::<Vec<_>>()
        });
        for r in results {
            assert_eq!(r.result.unwrap(), vec![1, 2, 3]);
        }
    }

    #[test]
    fn alltoallv_transpose() {
        let p = 4;
        let world = World::new(p);
        let results = world.run(move |comm| {
            let me = comm.rank();
            // Send value me*10+dst to each dst.
            let outgoing: Vec<Vec<Tf64>> = (0..p)
                .map(|dst| vec![Tf64::new((me * 10 + dst) as f64)])
                .collect();
            let incoming = comm.alltoallv(outgoing);
            incoming
                .iter()
                .map(|b| b[0].value() as usize)
                .collect::<Vec<_>>()
        });
        for (rank, r) in results.into_iter().enumerate() {
            let inc = r.result.unwrap();
            let expect: Vec<usize> = (0..p).map(|src| src * 10 + rank).collect();
            assert_eq!(inc, expect);
        }
    }

    #[test]
    fn scatter_chunks() {
        let world = World::new(3);
        let results = world.run(|comm| {
            let chunks: Option<Vec<Vec<Tf64>>> = (comm.rank() == 0)
                .then(|| (0..3).map(|i| vec![Tf64::new(i as f64 * 2.0)]).collect());
            comm.scatter(0, chunks.as_deref())[0].value()
        });
        for (rank, r) in results.into_iter().enumerate() {
            assert_eq!(r.result.unwrap(), rank as f64 * 2.0);
        }
    }

    #[test]
    fn sendrecv_ring() {
        let p = 5;
        let world = World::new(p);
        let results = world.run(move |comm| {
            let me = comm.rank();
            let right = (me + 1) % p;
            let left = (me + p - 1) % p;
            let got = comm.sendrecv(right, left, 3, &[Tf64::new(me as f64)]);
            got[0].value() as usize
        });
        for (rank, r) in results.into_iter().enumerate() {
            assert_eq!(r.result.unwrap(), (rank + p - 1) % p);
        }
    }

    #[test]
    fn barrier_completes() {
        let world = World::new(6);
        let results = world.run(|comm| {
            for _ in 0..10 {
                comm.barrier();
            }
            true
        });
        assert!(results.into_iter().all(|r| r.result.unwrap()));
    }

    #[test]
    fn deterministic_reduction_order() {
        // Sum of values whose FP addition is order-sensitive; two runs must
        // agree bitwise.
        let run_once = || {
            let world = World::new(8);
            let results = world.run(|comm| {
                let x = [Tf64::new(0.1 * (comm.rank() as f64 + 1.0))];
                comm.allreduce(ReduceOp::Sum, &x)[0].value().to_bits()
            });
            results
                .into_iter()
                .map(|r| r.result.unwrap())
                .collect::<Vec<u64>>()
        };
        assert_eq!(run_once(), run_once());
    }
}
