//! Structured trace events and their JSONL encoding.
//!
//! Events are hand-encoded (this crate depends on nothing) as one JSON
//! object per line with a `"ev"` discriminator — the format `resilim
//! metrics` reads back and anything downstream (jq, pandas) can consume.

use std::time::Duration;

/// One structured observation from the campaign pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A campaign began executing (cache misses only).
    CampaignStart {
        /// Process-unique campaign sequence number (joins trial events).
        campaign: u64,
        /// Application name.
        app: String,
        /// Rank count.
        procs: usize,
        /// Number of trials the campaign will run.
        tests: usize,
        /// Debug rendering of the fault pattern.
        errors: String,
    },
    /// One fault-injection trial finished.
    Trial {
        /// Owning campaign.
        campaign: u64,
        /// Trial index within the campaign.
        test: usize,
        /// Outcome class: `"success"`, `"sdc"`, or `"failure"`.
        kind: &'static str,
        /// Whether the output was bitwise identical to the golden run.
        masked: bool,
        /// Contaminated ranks at end of run.
        contaminated: usize,
        /// Planned faults that actually fired.
        fired: usize,
        /// Wall-clock latency of the trial, microseconds.
        latency_us: u64,
    },
    /// A planned fault reached its target dynamic operation.
    InjectionFired {
        /// Rank that executed the faulted op.
        rank: usize,
        /// Region name (`"common"` / `"parallel_unique"`).
        region: &'static str,
        /// Dynamic op index within the region.
        op_index: u64,
        /// Bit flipped.
        bit: u8,
    },
    /// A rank transitioned to contaminated for the first time.
    TaintBorn {
        /// The newly-contaminated rank.
        rank: usize,
    },
    /// The injection hang guard tripped (op budget exceeded).
    HangGuardTrip {
        /// Rank whose budget ran out.
        rank: usize,
    },
    /// A golden-run or campaign cache lookup.
    CacheLookup {
        /// Which cache: `"golden"` or `"campaign"`.
        cache: &'static str,
        /// Whether the lookup hit.
        hit: bool,
    },
    /// A watchdog-tripped trial is being retried.
    TrialRetry {
        /// Owning campaign.
        campaign: u64,
        /// Trial index within the campaign.
        test: usize,
        /// Retry number (1 = first retry).
        attempt: u32,
    },
    /// An adaptive stop rule ended a campaign before its trial ceiling.
    CampaignEarlyStop {
        /// Owning campaign.
        campaign: u64,
        /// Trials delivered when the rule was satisfied.
        at_trial: usize,
        /// The campaign's `tests` ceiling.
        planned: usize,
    },
    /// A campaign finished.
    CampaignEnd {
        /// Owning campaign.
        campaign: u64,
        /// Total wall clock, microseconds.
        wall_us: u64,
        /// Trials executed.
        trials: usize,
    },
    /// One differential-check case finished (`resilim check`).
    CheckCase {
        /// Case index within the check run.
        case: u64,
        /// Case seed (replays the case exactly).
        seed: u64,
        /// Application name.
        app: String,
        /// Rank count.
        procs: usize,
        /// Trials in the measured mini-campaign.
        tests: usize,
        /// Whether every oracle passed.
        ok: bool,
        /// Name of the first violated oracle (empty when `ok`).
        oracle: String,
    },
    /// The service daemon accepted a campaign submission.
    ServeSubmit {
        /// Daemon-assigned campaign id.
        id: u64,
        /// Application name.
        app: String,
        /// Rank count.
        procs: usize,
        /// Trial ceiling.
        tests: usize,
        /// Whether the submission joined an already-registered campaign
        /// with the same identity instead of scheduling new trials.
        deduped: bool,
    },
    /// A daemon-hosted campaign reached a terminal state.
    ServeCampaignDone {
        /// Daemon-assigned campaign id.
        id: u64,
        /// Trials delivered before the terminal state.
        trials: usize,
        /// Terminal state: `"done"` or `"cancelled"`.
        state: &'static str,
    },
    /// A message-payload fault was applied on the wire
    /// (`--fault-model msg`).
    WireFaultFired {
        /// Sending rank whose payload was corrupted.
        rank: usize,
        /// The sender's numeric-message index that was hit.
        msg_index: u64,
        /// Bit flipped in the chosen element.
        bit: u8,
    },
    /// A rank was killed by a detected-uncorrectable error
    /// (`--fault-model due`).
    DueKill {
        /// The killed rank.
        rank: usize,
    },
    /// A replica payload comparison flagged a divergence
    /// (`--replicate` detection).
    ReplicaDetection {
        /// Rank on which the comparison fired.
        rank: usize,
    },
    /// One shrink attempt while minimizing a failing check case.
    CheckShrink {
        /// Case index of the original failing case.
        case: u64,
        /// Shrink attempt number (1-based).
        attempt: u64,
        /// Whether the reduced case still violates the oracle
        /// (accepted = the shrinker keeps it).
        accepted: bool,
        /// Rank count of the candidate case.
        procs: usize,
        /// Trial count of the candidate case.
        tests: usize,
    },
}

impl Event {
    /// The `"ev"` discriminator.
    pub fn name(&self) -> &'static str {
        match self {
            Event::CampaignStart { .. } => "campaign_start",
            Event::Trial { .. } => "trial",
            Event::InjectionFired { .. } => "injection_fired",
            Event::TaintBorn { .. } => "taint_born",
            Event::HangGuardTrip { .. } => "hang_guard_trip",
            Event::CacheLookup { .. } => "cache_lookup",
            Event::TrialRetry { .. } => "trial_retry",
            Event::CampaignEarlyStop { .. } => "campaign_early_stop",
            Event::CampaignEnd { .. } => "campaign_end",
            Event::CheckCase { .. } => "check_case",
            Event::ServeSubmit { .. } => "serve_submit",
            Event::ServeCampaignDone { .. } => "serve_campaign_done",
            Event::WireFaultFired { .. } => "wire_fault_fired",
            Event::DueKill { .. } => "due_kill",
            Event::ReplicaDetection { .. } => "replica_detection",
            Event::CheckShrink { .. } => "check_shrink",
        }
    }

    /// Encode as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut line = JsonLine::new(self.name());
        match self {
            Event::CampaignStart {
                campaign,
                app,
                procs,
                tests,
                errors,
            } => {
                line.num("campaign", *campaign);
                line.str("app", app);
                line.num("procs", *procs as u64);
                line.num("tests", *tests as u64);
                line.str("errors", errors);
            }
            Event::Trial {
                campaign,
                test,
                kind,
                masked,
                contaminated,
                fired,
                latency_us,
            } => {
                line.num("campaign", *campaign);
                line.num("test", *test as u64);
                line.str("kind", kind);
                line.bool("masked", *masked);
                line.num("contaminated", *contaminated as u64);
                line.num("fired", *fired as u64);
                line.num("latency_us", *latency_us);
            }
            Event::InjectionFired {
                rank,
                region,
                op_index,
                bit,
            } => {
                line.num("rank", *rank as u64);
                line.str("region", region);
                line.num("op_index", *op_index);
                line.num("bit", *bit as u64);
            }
            Event::TaintBorn { rank }
            | Event::HangGuardTrip { rank }
            | Event::DueKill { rank }
            | Event::ReplicaDetection { rank } => {
                line.num("rank", *rank as u64);
            }
            Event::WireFaultFired {
                rank,
                msg_index,
                bit,
            } => {
                line.num("rank", *rank as u64);
                line.num("msg_index", *msg_index);
                line.num("bit", *bit as u64);
            }
            Event::CacheLookup { cache, hit } => {
                line.str("cache", cache);
                line.bool("hit", *hit);
            }
            Event::TrialRetry {
                campaign,
                test,
                attempt,
            } => {
                line.num("campaign", *campaign);
                line.num("test", *test as u64);
                line.num("attempt", *attempt as u64);
            }
            Event::CampaignEarlyStop {
                campaign,
                at_trial,
                planned,
            } => {
                line.num("campaign", *campaign);
                line.num("at_trial", *at_trial as u64);
                line.num("planned", *planned as u64);
            }
            Event::CampaignEnd {
                campaign,
                wall_us,
                trials,
            } => {
                line.num("campaign", *campaign);
                line.num("wall_us", *wall_us);
                line.num("trials", *trials as u64);
            }
            Event::CheckCase {
                case,
                seed,
                app,
                procs,
                tests,
                ok,
                oracle,
            } => {
                line.num("case", *case);
                line.num("seed", *seed);
                line.str("app", app);
                line.num("procs", *procs as u64);
                line.num("tests", *tests as u64);
                line.bool("ok", *ok);
                line.str("oracle", oracle);
            }
            Event::ServeSubmit {
                id,
                app,
                procs,
                tests,
                deduped,
            } => {
                line.num("id", *id);
                line.str("app", app);
                line.num("procs", *procs as u64);
                line.num("tests", *tests as u64);
                line.bool("deduped", *deduped);
            }
            Event::ServeCampaignDone { id, trials, state } => {
                line.num("id", *id);
                line.num("trials", *trials as u64);
                line.str("state", state);
            }
            Event::CheckShrink {
                case,
                attempt,
                accepted,
                procs,
                tests,
            } => {
                line.num("case", *case);
                line.num("attempt", *attempt);
                line.bool("accepted", *accepted);
                line.num("procs", *procs as u64);
                line.num("tests", *tests as u64);
            }
        }
        line.finish()
    }
}

/// Microseconds helper for event fields.
pub fn as_micros(d: Duration) -> u64 {
    d.as_micros().min(u64::MAX as u128) as u64
}

struct JsonLine {
    buf: String,
}

impl JsonLine {
    fn new(ev: &str) -> JsonLine {
        let mut line = JsonLine {
            buf: String::with_capacity(96),
        };
        line.buf.push_str("{\"ev\":");
        push_json_string(&mut line.buf, ev);
        line
    }

    fn num(&mut self, key: &str, value: u64) {
        self.key(key);
        self.buf.push_str(&value.to_string());
    }

    fn bool(&mut self, key: &str, value: bool) {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    fn str(&mut self, key: &str, value: &str) {
        self.key(key);
        push_json_string(&mut self.buf, value);
    }

    fn key(&mut self, key: &str) {
        self.buf.push(',');
        push_json_string(&mut self.buf, key);
        self.buf.push(':');
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn push_json_string(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => buf.push_str(&format!("\\u{:04x}", c as u32)),
            c => buf.push(c),
        }
    }
    buf.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_event_encodes_all_fields() {
        let e = Event::Trial {
            campaign: 7,
            test: 12,
            kind: "sdc",
            masked: false,
            contaminated: 3,
            fired: 1,
            latency_us: 420,
        };
        assert_eq!(
            e.to_json(),
            "{\"ev\":\"trial\",\"campaign\":7,\"test\":12,\"kind\":\"sdc\",\
             \"masked\":false,\"contaminated\":3,\"fired\":1,\"latency_us\":420}"
        );
    }

    #[test]
    fn check_events_encode_all_fields() {
        let e = Event::CheckCase {
            case: 3,
            seed: 99,
            app: "cg".to_string(),
            procs: 4,
            tests: 8,
            ok: false,
            oracle: "bucket-cover".to_string(),
        };
        assert_eq!(
            e.to_json(),
            "{\"ev\":\"check_case\",\"case\":3,\"seed\":99,\"app\":\"cg\",\
             \"procs\":4,\"tests\":8,\"ok\":false,\"oracle\":\"bucket-cover\"}"
        );
        let s = Event::CheckShrink {
            case: 3,
            attempt: 2,
            accepted: true,
            procs: 2,
            tests: 4,
        };
        assert_eq!(
            s.to_json(),
            "{\"ev\":\"check_shrink\",\"case\":3,\"attempt\":2,\
             \"accepted\":true,\"procs\":2,\"tests\":4}"
        );
    }

    #[test]
    fn serve_events_encode_all_fields() {
        let e = Event::ServeSubmit {
            id: 4,
            app: "jacobi".to_string(),
            procs: 2,
            tests: 16,
            deduped: true,
        };
        assert_eq!(
            e.to_json(),
            "{\"ev\":\"serve_submit\",\"id\":4,\"app\":\"jacobi\",\
             \"procs\":2,\"tests\":16,\"deduped\":true}"
        );
        let d = Event::ServeCampaignDone {
            id: 4,
            trials: 16,
            state: "done",
        };
        assert_eq!(
            d.to_json(),
            "{\"ev\":\"serve_campaign_done\",\"id\":4,\"trials\":16,\"state\":\"done\"}"
        );
    }

    #[test]
    fn fault_model_events_encode_all_fields() {
        let w = Event::WireFaultFired {
            rank: 1,
            msg_index: 42,
            bit: 55,
        };
        assert_eq!(
            w.to_json(),
            "{\"ev\":\"wire_fault_fired\",\"rank\":1,\"msg_index\":42,\"bit\":55}"
        );
        let d = Event::DueKill { rank: 3 };
        assert_eq!(d.to_json(), "{\"ev\":\"due_kill\",\"rank\":3}");
        let r = Event::ReplicaDetection { rank: 0 };
        assert_eq!(r.to_json(), "{\"ev\":\"replica_detection\",\"rank\":0}");
    }

    #[test]
    fn strings_are_escaped() {
        let e = Event::CampaignStart {
            campaign: 1,
            app: "cg\"x\\y\n".to_string(),
            procs: 4,
            tests: 10,
            errors: "OneParallel".to_string(),
        };
        assert!(e.to_json().contains("cg\\\"x\\\\y\\n"));
    }
}
