//! Event sinks: where structured events go when the recorder is on.
//!
//! Sinks are process-global. Emission walks the registry under a mutex,
//! which is fine at trial granularity (events are per-trial/per-fire,
//! never per-FP-op).

use crate::event::Event;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A consumer of structured events. Implementations must tolerate
/// concurrent calls (rank threads and campaign workers emit in parallel).
pub trait EventSink: Send + Sync {
    /// Observe one event.
    fn event(&self, event: &Event);
    /// Flush buffered output (end of a CLI run).
    fn flush(&self) {}
}

static SINKS: Mutex<Vec<Arc<dyn EventSink>>> = Mutex::new(Vec::new());

/// Register a sink. Sinks only see events while [`crate::enabled`].
pub fn add_sink(sink: Arc<dyn EventSink>) {
    SINKS.lock().expect("sink registry").push(sink);
}

/// Remove every registered sink (tests; CLI shutdown).
pub fn clear_sinks() {
    SINKS.lock().expect("sink registry").clear();
}

/// Flush every registered sink.
pub fn flush_sinks() {
    for sink in SINKS.lock().expect("sink registry").iter() {
        sink.flush();
    }
}

/// Deliver an event to every sink. No-op while the recorder is disabled.
pub fn emit(event: &Event) {
    if !crate::enabled() {
        return;
    }
    for sink in SINKS.lock().expect("sink registry").iter() {
        sink.event(event);
    }
}

/// Writes one JSON object per line to a file (the `--trace` sink).
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create/truncate the trace file.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl EventSink for JsonlSink {
    fn event(&self, event: &Event) {
        let mut out = self.out.lock().expect("trace writer");
        let _ = writeln!(out, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("trace writer").flush();
    }
}

/// Keeps every event in memory (tests; reconciliation checks).
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Copy of everything seen so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink").clone()
    }
}

impl EventSink for MemorySink {
    fn event(&self, event: &Event) {
        self.events.lock().expect("memory sink").push(event.clone());
    }
}

/// Live one-line progress display on stderr: trial counts per running
/// campaign, rewritten in place with `\r`.
#[derive(Default)]
pub struct ProgressSink {
    state: Mutex<HashMap<u64, Progress>>,
}

struct Progress {
    app: String,
    tests: usize,
    done: usize,
    started: std::time::Instant,
    /// Set when an adaptive stop rule ended the campaign early: the
    /// display shows the stop point instead of a misleading ETA to the
    /// never-run ceiling.
    stopped: bool,
}

impl Progress {
    /// `" eta 12s"` once at least one trial landed, empty otherwise.
    fn eta(&self) -> String {
        if self.stopped || self.done == 0 || self.done >= self.tests {
            return String::new();
        }
        let per_trial = self.started.elapsed().as_secs_f64() / self.done as f64;
        let remaining = per_trial * (self.tests - self.done) as f64;
        format!(" eta {}s", remaining.ceil() as u64)
    }
}

impl ProgressSink {
    /// New progress display.
    pub fn new() -> ProgressSink {
        ProgressSink::default()
    }

    fn redraw(state: &HashMap<u64, Progress>, newline: bool) {
        let mut parts: Vec<String> = state
            .values()
            .map(|p| {
                if p.stopped {
                    format!("{} {}/{} (stopped early)", p.app, p.done, p.tests)
                } else {
                    format!("{} {}/{}{}", p.app, p.done, p.tests, p.eta())
                }
            })
            .collect();
        parts.sort();
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r\x1b[2K[campaign] {}", parts.join("  "));
        if newline {
            let _ = writeln!(err);
        }
        let _ = err.flush();
    }
}

impl EventSink for ProgressSink {
    fn event(&self, event: &Event) {
        let mut state = self.state.lock().expect("progress state");
        match event {
            Event::CampaignStart {
                campaign,
                app,
                tests,
                ..
            } => {
                state.insert(
                    *campaign,
                    Progress {
                        app: app.clone(),
                        tests: *tests,
                        done: 0,
                        started: std::time::Instant::now(),
                        stopped: false,
                    },
                );
                Self::redraw(&state, false);
            }
            Event::Trial { campaign, .. } => {
                if let Some(p) = state.get_mut(campaign) {
                    p.done += 1;
                    // Redraw at ~1% granularity to keep stderr cheap.
                    let stride = (p.tests / 100).max(1);
                    if p.done % stride == 0 || p.done == p.tests {
                        Self::redraw(&state, false);
                    }
                }
            }
            Event::CampaignEarlyStop {
                campaign, at_trial, ..
            } => {
                if let Some(p) = state.get_mut(campaign) {
                    p.done = *at_trial;
                    p.stopped = true;
                    Self::redraw(&state, false);
                }
            }
            Event::CampaignEnd { campaign, .. }
                if state.remove(campaign).is_some() && state.is_empty() =>
            {
                Self::redraw(&state, true);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_respects_enabled_flag_and_fans_out() {
        let _guard = crate::test_lock();
        clear_sinks();
        let sink = Arc::new(MemorySink::new());
        add_sink(sink.clone());

        crate::set_enabled(false);
        emit(&Event::TaintBorn { rank: 0 });
        assert!(sink.events().is_empty());

        crate::set_enabled(true);
        emit(&Event::TaintBorn { rank: 3 });
        emit(&Event::HangGuardTrip { rank: 1 });
        crate::set_enabled(false);
        clear_sinks();

        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], Event::TaintBorn { rank: 3 });
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let _guard = crate::test_lock();
        let dir = std::env::temp_dir().join("resilim-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace-{}.jsonl", std::process::id()));

        clear_sinks();
        let sink = Arc::new(JsonlSink::create(&path).unwrap());
        add_sink(sink);
        crate::set_enabled(true);
        emit(&Event::CampaignEnd {
            campaign: 1,
            wall_us: 99,
            trials: 4,
        });
        crate::set_enabled(false);
        flush_sinks();
        clear_sinks();

        let raw = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            raw,
            "{\"ev\":\"campaign_end\",\"campaign\":1,\"wall_us\":99,\"trials\":4}\n"
        );
        let _ = std::fs::remove_file(&path);
    }
}
