//! Process-global counters and log-bucketed histograms.
//!
//! Everything here is lock-free (`Relaxed` atomics) and gated on
//! [`crate::enabled`]: a disabled recorder costs one predictable branch.
//! Values are observations only — nothing in the campaign pipeline reads
//! them back, so enabling metrics cannot alter a campaign statistic.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Faults that actually fired (reached their target dynamic op).
    InjectionsFired,
    /// Rank contamination transitions (a rank first becoming tainted).
    TaintBorn,
    /// Injectable ops executed in the common region (flushed per rank).
    OpsCommon,
    /// Injectable ops executed in the parallel-unique region.
    OpsParallelUnique,
    /// Point-to-point + collective messages sent through the fabric.
    MsgsSent,
    /// Messages received.
    MsgsRecvd,
    /// Approximate payload bytes sent (8 per tracked f64).
    BytesSent,
    /// Tainted f64 elements observed in received payloads.
    TaintedElemsRecvd,
    /// Injection hang-guard trips (op budget exceeded).
    HangGuardTrips,
    /// Golden-run cache hits.
    GoldenCacheHits,
    /// Golden-run cache misses (a fault-free execution was run).
    GoldenCacheMisses,
    /// Campaign-level result cache hits.
    CampaignCacheHits,
    /// Campaign-level result cache misses.
    CampaignCacheMisses,
    /// Fault-injection trials executed.
    TrialsRun,
    /// Nanoseconds campaign workers spent executing trials.
    WorkerBusyNanos,
    /// Nanoseconds of wall-clock × worker-count while a parallel
    /// campaign section was open (busy/wall = utilization).
    WorkerWallNanos,
    /// Trials skipped because their ledgered outcome was reloaded
    /// (`--resume`).
    TrialsResumed,
    /// Watchdog-tripped trials that were retried.
    TrialRetries,
    /// Trial-watchdog deadline trips (wall clock exceeded).
    TrialDeadlineTrips,
    /// Trials excluded by the shard filter (`--shard i/N`).
    ShardTrialsSkipped,
    /// Campaigns an adaptive stop rule ended before their trial ceiling.
    CampaignsStoppedEarly,
    /// Planned trials never delivered because a stop rule fired first
    /// (the adaptive-stopping saving, in trials).
    TrialsSavedByStopping,
    /// Differential-check cases executed (`resilim check`).
    CheckCasesRun,
    /// Differential-check oracle violations detected.
    CheckViolations,
    /// Shrink attempts made while minimizing a failing check case.
    CheckShrinkAttempts,
    /// Campaign submissions accepted by the service daemon
    /// (`resilim serve`), including deduplicated resubmissions.
    ServeSubmits,
    /// Submissions answered from an already-registered campaign with
    /// the same identity (idempotent resubmission).
    ServeDedupHits,
    /// Campaigns the service daemon ran to completion.
    ServeCampaignsDone,
    /// Campaigns cancelled by a client before completion.
    ServeCampaignsCancelled,
    /// Message-payload faults applied on the wire (`--fault-model msg`).
    MsgFaultsFired,
    /// Ranks killed by a detected-uncorrectable error
    /// (`--fault-model due`).
    DueKills,
    /// Replica payload comparisons that flagged a divergence
    /// (`--replicate` detection events, one per rank per trial).
    ReplicaDetections,
}

impl Counter {
    /// Every counter, in stable report order.
    pub const ALL: [Counter; 32] = [
        Counter::InjectionsFired,
        Counter::TaintBorn,
        Counter::OpsCommon,
        Counter::OpsParallelUnique,
        Counter::MsgsSent,
        Counter::MsgsRecvd,
        Counter::BytesSent,
        Counter::TaintedElemsRecvd,
        Counter::HangGuardTrips,
        Counter::GoldenCacheHits,
        Counter::GoldenCacheMisses,
        Counter::CampaignCacheHits,
        Counter::CampaignCacheMisses,
        Counter::TrialsRun,
        Counter::WorkerBusyNanos,
        Counter::WorkerWallNanos,
        Counter::TrialsResumed,
        Counter::TrialRetries,
        Counter::TrialDeadlineTrips,
        Counter::ShardTrialsSkipped,
        Counter::CampaignsStoppedEarly,
        Counter::TrialsSavedByStopping,
        Counter::CheckCasesRun,
        Counter::CheckViolations,
        Counter::CheckShrinkAttempts,
        Counter::ServeSubmits,
        Counter::ServeDedupHits,
        Counter::ServeCampaignsDone,
        Counter::ServeCampaignsCancelled,
        Counter::MsgFaultsFired,
        Counter::DueKills,
        Counter::ReplicaDetections,
    ];

    /// Stable snake_case name (used in reports and traces).
    pub fn name(self) -> &'static str {
        match self {
            Counter::InjectionsFired => "injections_fired",
            Counter::TaintBorn => "taint_born",
            Counter::OpsCommon => "ops_common",
            Counter::OpsParallelUnique => "ops_parallel_unique",
            Counter::MsgsSent => "msgs_sent",
            Counter::MsgsRecvd => "msgs_recvd",
            Counter::BytesSent => "bytes_sent",
            Counter::TaintedElemsRecvd => "tainted_elems_recvd",
            Counter::HangGuardTrips => "hang_guard_trips",
            Counter::GoldenCacheHits => "golden_cache_hits",
            Counter::GoldenCacheMisses => "golden_cache_misses",
            Counter::CampaignCacheHits => "campaign_cache_hits",
            Counter::CampaignCacheMisses => "campaign_cache_misses",
            Counter::TrialsRun => "trials_run",
            Counter::WorkerBusyNanos => "worker_busy_nanos",
            Counter::WorkerWallNanos => "worker_wall_nanos",
            Counter::TrialsResumed => "trials_resumed",
            Counter::TrialRetries => "trial_retries",
            Counter::TrialDeadlineTrips => "trial_deadline_trips",
            Counter::ShardTrialsSkipped => "shard_trials_skipped",
            Counter::CampaignsStoppedEarly => "campaigns_stopped_early",
            Counter::TrialsSavedByStopping => "trials_saved_by_stopping",
            Counter::CheckCasesRun => "check_cases_run",
            Counter::CheckViolations => "check_violations",
            Counter::CheckShrinkAttempts => "check_shrink_attempts",
            Counter::ServeSubmits => "serve_submits",
            Counter::ServeDedupHits => "serve_dedup_hits",
            Counter::ServeCampaignsDone => "serve_campaigns_done",
            Counter::ServeCampaignsCancelled => "serve_campaigns_cancelled",
            Counter::MsgFaultsFired => "msg_faults_fired",
            Counter::DueKills => "due_kills",
            Counter::ReplicaDetections => "replica_detections",
        }
    }
}

/// Point-in-time level gauges (counters go up; gauges go up *and*
/// down). The only consumer so far is the service daemon's
/// active-campaign level; kept in the same recorder so `--metrics`
/// reports and tests read them uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Campaigns currently registered and not yet finished in a
    /// `resilim serve` daemon.
    ServeActiveCampaigns,
}

impl Gauge {
    /// Every gauge, in stable report order.
    pub const ALL: [Gauge; 1] = [Gauge::ServeActiveCampaigns];

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::ServeActiveCampaigns => "serve_active_campaigns",
        }
    }
}

const NUM_GAUGES: usize = Gauge::ALL.len();

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_I64: AtomicI64 = AtomicI64::new(0);

static GAUGES: [AtomicI64; NUM_GAUGES] = [ZERO_I64; NUM_GAUGES];

/// Move a gauge by `delta` (negative = down). Unlike counters, gauges
/// are *state*, not observations: they track live service levels and
/// are therefore recorded even while the event recorder is disabled —
/// a daemon that enables tracing mid-flight must not see a skewed
/// level.
#[inline]
pub fn gauge_add(g: Gauge, delta: i64) {
    GAUGES[g as usize].fetch_add(delta, Ordering::Relaxed);
}

/// A gauge's current level.
#[inline]
pub fn gauge(g: Gauge) -> i64 {
    GAUGES[g as usize].load(Ordering::Relaxed)
}

/// Log₂-bucketed histograms (bucket `i ≥ 1` covers `[2^(i−1), 2^i)`;
/// bucket 0 holds zeros).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Wall-clock latency of one fault-injection trial, microseconds.
    TrialLatencyUs,
    /// Injectable ops executed by one rank in one trial.
    OpsPerRank,
    /// Latency of `barrier`, nanoseconds.
    BarrierNs,
    /// Latency of `bcast`, nanoseconds.
    BcastNs,
    /// Latency of `reduce`, nanoseconds.
    ReduceNs,
    /// Latency of `allreduce` (vector and scalar), nanoseconds.
    AllreduceNs,
    /// Latency of `gather`, nanoseconds.
    GatherNs,
    /// Latency of `allgather`, nanoseconds.
    AllgatherNs,
    /// Latency of `alltoallv`, nanoseconds.
    AlltoallvNs,
    /// Latency of `scatter`, nanoseconds.
    ScatterNs,
    /// Latency of `sendrecv`, nanoseconds.
    SendrecvNs,
}

/// Number of buckets per histogram: zeros + one per power of two.
pub const HIST_BUCKETS: usize = 65;

impl Hist {
    /// Every histogram, in stable report order.
    pub const ALL: [Hist; 11] = [
        Hist::TrialLatencyUs,
        Hist::OpsPerRank,
        Hist::BarrierNs,
        Hist::BcastNs,
        Hist::ReduceNs,
        Hist::AllreduceNs,
        Hist::GatherNs,
        Hist::AllgatherNs,
        Hist::AlltoallvNs,
        Hist::ScatterNs,
        Hist::SendrecvNs,
    ];

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            Hist::TrialLatencyUs => "trial_latency_us",
            Hist::OpsPerRank => "ops_per_rank",
            Hist::BarrierNs => "barrier_ns",
            Hist::BcastNs => "bcast_ns",
            Hist::ReduceNs => "reduce_ns",
            Hist::AllreduceNs => "allreduce_ns",
            Hist::GatherNs => "gather_ns",
            Hist::AllgatherNs => "allgather_ns",
            Hist::AlltoallvNs => "alltoallv_ns",
            Hist::ScatterNs => "scatter_ns",
            Hist::SendrecvNs => "sendrecv_ns",
        }
    }
}

const NUM_COUNTERS: usize = Counter::ALL.len();
const NUM_HISTS: usize = Hist::ALL.len();

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_ROW: [AtomicU64; HIST_BUCKETS] = [ZERO; HIST_BUCKETS];

static COUNTERS: [AtomicU64; NUM_COUNTERS] = [ZERO; NUM_COUNTERS];
static HISTS: [[AtomicU64; HIST_BUCKETS]; NUM_HISTS] = [ZERO_ROW; NUM_HISTS];

/// Add `n` to a counter. No-op while the recorder is disabled.
#[inline]
pub fn count(c: Counter, n: u64) {
    if crate::enabled() {
        COUNTERS[c as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Record one observation into a histogram. No-op while disabled.
#[inline]
pub fn observe(h: Hist, value: u64) {
    if crate::enabled() {
        let bucket = (64 - value.leading_zeros()) as usize;
        HISTS[h as usize][bucket].fetch_add(1, Ordering::Relaxed);
    }
}

/// Start a span timer; `None` while disabled, so the disabled path never
/// touches the clock.
#[inline]
pub fn timer() -> Option<Instant> {
    if crate::enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Record a span's elapsed time in nanoseconds.
#[inline]
pub fn observe_elapsed_ns(h: Hist, start: Option<Instant>) {
    if let Some(start) = start {
        observe(h, start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
}

/// RAII span: records elapsed nanoseconds into its histogram when
/// dropped. Created while the recorder is disabled it never touches the
/// clock and its drop is free.
pub struct Span {
    hist: Hist,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        observe_elapsed_ns(self.hist, self.start.take());
    }
}

/// Start a drop-timed span for `h`.
#[inline]
pub fn span(h: Hist) -> Span {
    Span {
        hist: h,
        start: timer(),
    }
}

/// Record a span's elapsed time in microseconds.
#[inline]
pub fn observe_elapsed_us(h: Hist, start: Option<Instant>) {
    if let Some(start) = start {
        observe(h, start.elapsed().as_micros().min(u64::MAX as u128) as u64);
    }
}

/// Point-in-time copy of every counter and histogram.
///
/// Metrics are process-global; a campaign's own contribution is the
/// [`delta`](MetricsSnapshot::delta) between a snapshot taken before it
/// started and one taken after it finished (exact when campaigns don't
/// overlap in one process).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: [u64; NUM_COUNTERS],
    hists: [[u64; HIST_BUCKETS]; NUM_HISTS],
}

impl Default for MetricsSnapshot {
    fn default() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: [0; NUM_COUNTERS],
            hists: [[0; HIST_BUCKETS]; NUM_HISTS],
        }
    }
}

impl MetricsSnapshot {
    /// Snapshot the current totals.
    pub fn capture() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for (slot, counter) in snap.counters.iter_mut().zip(COUNTERS.iter()) {
            *slot = counter.load(Ordering::Relaxed);
        }
        for (row, src) in snap.hists.iter_mut().zip(HISTS.iter()) {
            for (slot, bucket) in row.iter_mut().zip(src.iter()) {
                *slot = bucket.load(Ordering::Relaxed);
            }
        }
        snap
    }

    /// Counters/buckets accumulated since `earlier` (saturating).
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (slot, prev) in out.counters.iter_mut().zip(earlier.counters.iter()) {
            *slot = slot.saturating_sub(*prev);
        }
        for (row, prev_row) in out.hists.iter_mut().zip(earlier.hists.iter()) {
            for (slot, prev) in row.iter_mut().zip(prev_row.iter()) {
                *slot = slot.saturating_sub(*prev);
            }
        }
        out
    }

    /// A counter's value.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// A histogram's buckets.
    pub fn hist(&self, h: Hist) -> &[u64; HIST_BUCKETS] {
        &self.hists[h as usize]
    }

    /// Observations recorded into a histogram.
    pub fn hist_total(&self, h: Hist) -> u64 {
        self.hists[h as usize].iter().sum()
    }

    /// Approximate `q`-quantile (`0 ≤ q ≤ 1`) of a histogram: the
    /// geometric bucket midpoint where the cumulative count crosses
    /// `q · total`. `None` when empty.
    pub fn percentile(&self, h: Hist, q: f64) -> Option<f64> {
        let buckets = &self.hists[h as usize];
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_mid(i));
            }
        }
        Some(bucket_mid(HIST_BUCKETS - 1))
    }

    /// Cache hit rate over both caches, `None` when no lookups happened.
    pub fn cache_hit_rate(&self, hits: Counter, misses: Counter) -> Option<f64> {
        let h = self.counter(hits);
        let m = self.counter(misses);
        if h + m == 0 {
            None
        } else {
            Some(h as f64 / (h + m) as f64)
        }
    }

    /// Human-readable aggregate report (the CLI's `--metrics` output).
    pub fn render(&self) -> String {
        let mut out = String::from("metrics\n");
        out.push_str("  counters:\n");
        for c in Counter::ALL {
            let v = self.counter(c);
            if v > 0 {
                out.push_str(&format!("    {:<24} {v}\n", c.name()));
            }
        }
        for (hits, misses, label) in [
            (
                Counter::GoldenCacheHits,
                Counter::GoldenCacheMisses,
                "golden cache",
            ),
            (
                Counter::CampaignCacheHits,
                Counter::CampaignCacheMisses,
                "campaign cache",
            ),
        ] {
            if let Some(rate) = self.cache_hit_rate(hits, misses) {
                out.push_str(&format!("  {label} hit rate: {:.1}%\n", rate * 100.0));
            }
        }
        let busy = self.counter(Counter::WorkerBusyNanos);
        let wall = self.counter(Counter::WorkerWallNanos);
        if wall > 0 {
            out.push_str(&format!(
                "  worker utilization: {:.1}%\n",
                100.0 * busy as f64 / wall as f64
            ));
        }
        out.push_str("  histograms (p50 / p90 / p99, log2-bucket midpoints):\n");
        for h in Hist::ALL {
            if self.hist_total(h) > 0 {
                let p = |q| {
                    self.percentile(h, q)
                        .map_or_else(|| "-".to_string(), |x| format!("{x:.0}"))
                };
                out.push_str(&format!(
                    "    {:<20} {} / {} / {}  (n={})\n",
                    h.name(),
                    p(0.5),
                    p(0.9),
                    p(0.99),
                    self.hist_total(h),
                ));
            }
        }
        out
    }
}

/// Per-measurement tolerance for comparing accumulated busy time against
/// accumulated wall time, in nanoseconds.
///
/// `WorkerBusyNanos` and `WorkerWallNanos` are built from *independent*
/// `Instant` reads: each trial's busy span and each parallel section's
/// wall span start and stop on different clock samples. On coarse-tick
/// platforms (and under clock slew between CPUs) every individual span
/// can over-count by up to one tick, so the invariant `busy ≤ wall` only
/// holds up to one tick per timed measurement. 1 ms comfortably exceeds
/// any tick granularity we run on (Linux CLOCK_MONOTONIC is ns-resolution
/// but Windows/macOS CI runners have been observed near 15 ms / 41 µs
/// scheduling jitter per sample — the bound is per *measurement*, so the
/// slack scales with how many spans were recorded, not with runtime).
pub const CLOCK_EPSILON_NS: u64 = 1_000_000;

/// Tolerant form of the `busy ≤ wall` worker-accounting invariant.
///
/// Returns `true` when `busy` does not exceed `wall` by more than
/// [`CLOCK_EPSILON_NS`] per timed measurement that contributed to the
/// two totals. Pass the number of busy spans recorded (e.g. the
/// `TrialsRun` delta); callers that cannot count spans may pass an upper
/// bound.
pub fn busy_within_wall(busy_ns: u64, wall_ns: u64, measurements: u64) -> bool {
    busy_ns <= wall_ns.saturating_add(measurements.saturating_mul(CLOCK_EPSILON_NS))
}

/// Midpoint of log₂ bucket `i` (0 for the zero bucket).
fn bucket_mid(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        1.5 * 2f64.powi(i as i32 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_stays_silent() {
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        let before = MetricsSnapshot::capture();
        count(Counter::TrialsRun, 5);
        observe(Hist::TrialLatencyUs, 123);
        assert!(timer().is_none());
        let after = MetricsSnapshot::capture();
        assert_eq!(after.delta(&before).counter(Counter::TrialsRun), 0);
        assert_eq!(after.delta(&before).hist_total(Hist::TrialLatencyUs), 0);
    }

    #[test]
    fn counts_and_buckets_accumulate_when_enabled() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        let before = MetricsSnapshot::capture();
        count(Counter::MsgsSent, 3);
        observe(Hist::OpsPerRank, 0); // bucket 0
        observe(Hist::OpsPerRank, 1); // bucket 1: [1, 2)
        observe(Hist::OpsPerRank, 1000); // bucket 10: [512, 1024)
        crate::set_enabled(false);
        let d = MetricsSnapshot::capture().delta(&before);
        assert_eq!(d.counter(Counter::MsgsSent), 3);
        assert_eq!(d.hist(Hist::OpsPerRank)[0], 1);
        assert_eq!(d.hist(Hist::OpsPerRank)[1], 1);
        assert_eq!(d.hist(Hist::OpsPerRank)[10], 1);
        assert_eq!(d.hist_total(Hist::OpsPerRank), 3);
    }

    #[test]
    fn busy_within_wall_allows_clock_granularity() {
        // Exact accounting passes.
        assert!(busy_within_wall(1_000, 1_000, 0));
        assert!(busy_within_wall(999, 1_000, 0));
        // Without slack, busy > wall fails even by 1 ns.
        assert!(!busy_within_wall(1_001, 1_000, 0));
        // One measurement buys one epsilon of slack …
        assert!(busy_within_wall(1_000 + CLOCK_EPSILON_NS, 1_000, 1));
        assert!(!busy_within_wall(1_001 + CLOCK_EPSILON_NS, 1_000, 1));
        // … and the slack scales linearly with measurement count.
        assert!(busy_within_wall(5 * CLOCK_EPSILON_NS, 0, 5));
        assert!(!busy_within_wall(5 * CLOCK_EPSILON_NS + 1, 0, 5));
        // Saturating arithmetic: huge measurement counts never wrap.
        assert!(busy_within_wall(u64::MAX, u64::MAX, u64::MAX));
    }

    #[test]
    fn percentiles_track_bucket_midpoints() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        let before = MetricsSnapshot::capture();
        for _ in 0..90 {
            observe(Hist::TrialLatencyUs, 100); // bucket 7: [64, 128)
        }
        for _ in 0..10 {
            observe(Hist::TrialLatencyUs, 5000); // bucket 13: [4096, 8192)
        }
        crate::set_enabled(false);
        let d = MetricsSnapshot::capture().delta(&before);
        assert_eq!(d.percentile(Hist::TrialLatencyUs, 0.5), Some(96.0));
        assert_eq!(d.percentile(Hist::TrialLatencyUs, 0.99), Some(6144.0));
        assert_eq!(d.percentile(Hist::BarrierNs, 0.5), None);
        let report = d.render();
        assert!(report.contains("trial_latency_us"));
    }
}
