//! `resilim-obs` — campaign observability: structured events, counters,
//! log-bucketed histograms, and pluggable sinks.
//!
//! Design constraints (see DESIGN.md):
//!
//! * **Zero dependencies** — this crate sits below every `resilim-*`
//!   crate and uses only `std`, so `inject`/`simmpi` can instrument their
//!   hot paths without a dependency cycle or an external crate.
//! * **No-op when disabled** — every entry point first checks
//!   [`enabled`], a single relaxed atomic load. The default is *off*;
//!   nothing is measured, timed, or allocated until a front-end (the CLI,
//!   a test) opts in.
//! * **Deterministic-safe** — instrumentation is strictly observational.
//!   No code path reads a counter, histogram, or sink back into campaign
//!   logic, so enabling the recorder cannot change a campaign statistic.
//!
//! The expensive granularity rule: events and spans are per-trial,
//! per-collective, or per-fire — never per floating-point operation.
//! Per-op data (ops per region) is aggregated by the existing
//! `OpProfile` counters and flushed once per rank.

mod event;
mod metrics;
mod sink;

pub use event::{as_micros, Event};
pub use metrics::{
    busy_within_wall, count, gauge, gauge_add, observe, observe_elapsed_ns, observe_elapsed_us,
    span, timer, Counter, Gauge, Hist, MetricsSnapshot, Span, CLOCK_EPSILON_NS, HIST_BUCKETS,
};
pub use sink::{
    add_sink, clear_sinks, emit, flush_sinks, EventSink, JsonlSink, MemorySink, ProgressSink,
};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAMPAIGN_SEQ: AtomicU64 = AtomicU64::new(1);

/// Whether the recorder is on. The disabled fast path everywhere is this
/// one relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the recorder on or off (process-global).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Allocate a process-unique campaign id for tagging trace events.
pub fn next_campaign_id() -> u64 {
    CAMPAIGN_SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Serializes unit tests that flip the global [`enabled`] flag.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_ids_are_unique_and_nonzero() {
        let a = next_campaign_id();
        let b = next_campaign_id();
        assert!(a > 0);
        assert_ne!(a, b);
    }

    #[test]
    fn enabled_flag_toggles() {
        let _guard = test_lock();
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
