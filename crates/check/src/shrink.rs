//! Greedy minimization of a failing case.
//!
//! Given a case that violates an oracle, repeatedly propose a strictly
//! smaller candidate (fewer trials → fewer ranks → coarser model →
//! cheaper app → simpler strategy → simpler injection plan), keep it if
//! the *same oracle* still fails, and stop when no reduction survives
//! (or the attempt cap is hit). Only the violated oracle is re-run per
//! attempt, so shrinking a campaign-level failure stays cheap.

use crate::case::CaseSpec;
use crate::ops::SamplingOps;
use crate::oracles::{run_oracle, Violation};
use resilim_apps::App;
use resilim_core::SamplePoints;
use resilim_harness::ErrorSpec;
use resilim_inject::FaultModelSpec;
use resilim_obs as obs;

/// Hard cap on shrink attempts — a safety net against a pathological
/// oracle that fails on everything (each attempt may run campaigns).
pub const MAX_SHRINK_ATTEMPTS: u64 = 40;

/// The outcome of shrinking: the smallest still-failing case found.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimal failing case.
    pub case: CaseSpec,
    /// The violation as observed on the minimal case.
    pub violation: Violation,
    /// How many candidate reductions were tried (accepted + rejected).
    pub attempts: u64,
}

/// Strictly smaller candidates derived from `case`, most aggressive
/// first within each dimension. Every candidate passes
/// [`CaseSpec::validate`].
fn candidates(case: &CaseSpec) -> Vec<CaseSpec> {
    let mut out = Vec::new();
    let mut fewer_tests = vec![case.tests / 2, 4];
    fewer_tests.retain(|&t| t >= 4 && t < case.tests);
    fewer_tests.dedup();
    for tests in fewer_tests {
        out.push(CaseSpec {
            tests,
            ..case.clone()
        });
    }
    if case.procs / 2 >= 2 {
        out.push(CaseSpec {
            procs: case.procs / 2,
            s: case.s.min(case.procs / 2),
            ..case.clone()
        });
    }
    if case.s / 2 >= 2 {
        out.push(CaseSpec {
            s: case.s / 2,
            ..case.clone()
        });
    }
    if let Some(app) = App::parse(&case.app) {
        let idx = App::ALL.iter().position(|a| *a == app).unwrap_or(0);
        for cheaper in &App::ALL[..idx] {
            out.push(CaseSpec {
                app: cheaper.name().to_string(),
                ..case.clone()
            });
        }
    }
    if case.strategy != SamplePoints::BucketUpper {
        out.push(CaseSpec {
            strategy: SamplePoints::BucketUpper,
            ..case.clone()
        });
    }
    if case.errors != ErrorSpec::OneParallel {
        out.push(CaseSpec {
            errors: ErrorSpec::OneParallel,
            ..case.clone()
        });
    }
    if !case.fault_model.is_default() {
        out.push(CaseSpec {
            fault_model: FaultModelSpec::default(),
            ..case.clone()
        });
    }
    if case.replicate {
        out.push(CaseSpec {
            replicate: false,
            ..case.clone()
        });
    }
    out.retain(|c| c.validate().is_ok());
    out
}

/// Greedily minimize `case` while `violation.oracle` keeps failing.
pub fn shrink(case: &CaseSpec, violation: &Violation, ops: &dyn SamplingOps) -> ShrinkResult {
    let mut best = case.clone();
    let mut best_violation = violation.clone();
    let mut attempts = 0u64;
    'passes: loop {
        for candidate in candidates(&best) {
            if attempts >= MAX_SHRINK_ATTEMPTS {
                break 'passes;
            }
            attempts += 1;
            obs::count(obs::Counter::CheckShrinkAttempts, 1);
            let still_fails = run_oracle(&candidate, violation.oracle, ops);
            let accepted = still_fails.is_err();
            obs::emit(&obs::Event::CheckShrink {
                case: case.id,
                attempt: attempts,
                accepted,
                procs: candidate.procs,
                tests: candidate.tests,
            });
            if let Err(v) = still_fails {
                best = candidate;
                best_violation = v;
                // Restart the pass from the new (smaller) case so the
                // most aggressive reductions get first try again.
                continue 'passes;
            }
        }
        // A full pass with no accepted reduction: `best` is minimal.
        break;
    }
    ShrinkResult {
        case: best,
        violation: best_violation,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{CoreOps, OffByOneBucket};
    use crate::oracles::check_case;

    #[test]
    fn candidates_are_strictly_smaller_and_valid() {
        let case = CaseSpec {
            id: 0,
            seed: 9,
            app: "pennant".into(),
            procs: 4,
            s: 4,
            tests: 16,
            errors: ErrorSpec::OneParallelMultiBit(2),
            strategy: SamplePoints::PaperEq8,
            fault_model: FaultModelSpec::Due,
            replicate: true,
        };
        let cands = candidates(&case);
        assert!(!cands.is_empty());
        for c in &cands {
            c.validate().unwrap();
            assert_ne!(*c, case, "candidate must differ from its parent");
        }
        // Every reduction dimension is represented.
        assert!(cands.iter().any(|c| c.tests < case.tests));
        assert!(cands.iter().any(|c| c.procs < case.procs));
        assert!(cands
            .iter()
            .any(|c| c.strategy == SamplePoints::BucketUpper));
        assert!(cands.iter().any(|c| c.errors == ErrorSpec::OneParallel));
        assert!(cands.iter().any(|c| c.fault_model.is_default()));
        assert!(cands.iter().any(|c| !c.replicate));
    }

    #[test]
    fn shrinks_injected_bug_to_minimal_case() {
        // A deliberately large case; the injected bucket bug fails the
        // (pure, cheap) bucket-cover oracle at every size, so the
        // shrinker must drive everything to its floor.
        let case = CaseSpec {
            id: 3,
            seed: 77,
            app: "pennant".into(),
            procs: 4,
            s: 4,
            tests: 16,
            errors: ErrorSpec::OneParallelMultiBit(2),
            strategy: SamplePoints::PaperEq8,
            fault_model: FaultModelSpec::Due,
            replicate: true,
        };
        let violation = check_case(&case, &OffByOneBucket).unwrap_err();
        let shrunk = shrink(&case, &violation, &OffByOneBucket);
        assert_eq!(shrunk.violation.oracle, violation.oracle);
        assert_eq!(shrunk.case.tests, 4, "tests at floor");
        assert_eq!(shrunk.case.procs, 2, "procs at floor");
        assert_eq!(shrunk.case.s, 2, "s clamped with procs");
        assert_eq!(shrunk.case.app, App::ALL[0].name(), "cheapest app");
        assert_eq!(shrunk.case.strategy, SamplePoints::BucketUpper);
        assert_eq!(shrunk.case.errors, ErrorSpec::OneParallel);
        assert!(shrunk.case.fault_model.is_default(), "model at floor");
        assert!(!shrunk.case.replicate, "replication shed");
        assert!(shrunk.attempts > 0 && shrunk.attempts <= MAX_SHRINK_ATTEMPTS);
        // The minimal case still fails under the bug and passes clean.
        run_oracle(&shrunk.case, violation.oracle, &OffByOneBucket).unwrap_err();
        run_oracle(&shrunk.case, violation.oracle, &CoreOps).unwrap();
    }
}
