//! The check engine: the case loop, repro records, and replay.
//!
//! `run_check` drives randomized (or smoke-roster) cases through the
//! oracle library, emits `check_case` obs events and counters as it
//! goes, and on the first violation shrinks the case and writes a
//! self-contained JSON repro record. `replay` is the other direction:
//! re-run exactly the recorded case + oracle from such a record.

use crate::case::CaseSpec;
use crate::ops::SamplingOps;
use crate::oracles::{check_case, run_oracle, Oracle, Violation};
use crate::shrink::shrink;
use resilim_inject::FaultModelSpec;
use resilim_obs as obs;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Repro-record format version; bump on incompatible schema change.
/// Version 2: [`CaseSpec`] gained `fault_model` and `replicate`.
pub const REPRO_VERSION: u32 = 2;

/// A self-contained failing-case record: everything needed to replay
/// the violation deterministically (`resilim check --replay FILE`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReproRecord {
    /// Schema version ([`REPRO_VERSION`]).
    pub version: u32,
    /// Violated oracle ([`Oracle::name`] spelling).
    pub oracle: String,
    /// The violation message, as observed on the minimal case.
    pub message: String,
    /// The minimal (shrunk) failing case.
    pub case: CaseSpec,
    /// The originally generated case the minimum was shrunk from
    /// (`None` when shrinking could not reduce it).
    pub original: Option<CaseSpec>,
}

impl ReproRecord {
    /// Deterministic file name for this record.
    pub fn file_name(&self) -> String {
        format!("repro-case{}-{}.json", self.case.id, self.oracle)
    }
}

/// What to run: how many cases, under which seed, within which budget.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Number of randomized cases (ignored in smoke mode; a budget,
    /// when set, may stop the run earlier or extend it).
    pub cases: u64,
    /// Wall-clock budget: keep generating cases until it is spent.
    pub budget: Option<Duration>,
    /// Master seed for case generation.
    pub master_seed: u64,
    /// Run the fixed smoke roster instead of randomized cases.
    pub smoke: bool,
    /// Where to write repro records (skipped when `None`).
    pub repro_dir: Option<PathBuf>,
    /// Pin every case's fault model (`check --fault-model`, the nightly
    /// sweep). `None` keeps the generator's randomized model dimension.
    pub fault_model: Option<FaultModelSpec>,
    /// Force every case to run replicated (`check --replicate`).
    pub replicate: bool,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            cases: 25,
            budget: None,
            master_seed: 0xC0FFEE,
            smoke: false,
            repro_dir: None,
            fault_model: None,
            replicate: false,
        }
    }
}

/// What a check run found.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Cases fully checked (including the failing one, if any).
    pub cases_run: u64,
    /// The first violation, shrunk to a minimal repro (`None` = clean).
    pub violation: Option<ReproRecord>,
    /// Shrink attempts spent minimizing the violation.
    pub shrink_attempts: u64,
    /// Where the repro record was written, if anywhere.
    pub repro_path: Option<PathBuf>,
}

impl CheckReport {
    /// True when every case passed every oracle.
    pub fn clean(&self) -> bool {
        self.violation.is_none()
    }
}

/// Run the check loop. Stops at the first violation (after shrinking
/// and recording it) or when the case count / budget is exhausted.
pub fn run_check(cfg: &CheckConfig, ops: &dyn SamplingOps) -> CheckReport {
    let started = Instant::now();
    let roster = if cfg.smoke {
        Some(CaseSpec::smoke_roster())
    } else {
        None
    };
    let mut report = CheckReport {
        cases_run: 0,
        violation: None,
        shrink_attempts: 0,
        repro_path: None,
    };
    let mut index = 0u64;
    loop {
        let mut case = match &roster {
            Some(r) => {
                if index as usize >= r.len() {
                    break;
                }
                r[index as usize].clone()
            }
            None => {
                let keep_going = match cfg.budget {
                    Some(b) => started.elapsed() < b,
                    None => index < cfg.cases,
                };
                if !keep_going {
                    break;
                }
                CaseSpec::generate(cfg.master_seed, index)
            }
        };
        index += 1;
        if let Some(model) = cfg.fault_model {
            case.fault_model = model;
            // burst/msg are only defined for `par` errors; pinning a
            // model narrows the error dimension rather than generating
            // invalid cases.
            if !matches!(model, FaultModelSpec::BitFlip | FaultModelSpec::Due) {
                case.errors = resilim_harness::ErrorSpec::OneParallel;
            }
        }
        if cfg.replicate {
            case.replicate = true;
        }
        let outcome = check_case(&case, ops);
        report.cases_run += 1;
        obs::count(obs::Counter::CheckCasesRun, 1);
        obs::emit(&obs::Event::CheckCase {
            case: case.id,
            seed: case.seed,
            app: case.app.clone(),
            procs: case.procs,
            tests: case.tests,
            ok: outcome.is_ok(),
            oracle: outcome
                .as_ref()
                .err()
                .map_or(String::new(), |v| v.oracle.name().to_string()),
        });
        if let Err(violation) = outcome {
            obs::count(obs::Counter::CheckViolations, 1);
            let shrunk = shrink(&case, &violation, ops);
            report.shrink_attempts = shrunk.attempts;
            let record = ReproRecord {
                version: REPRO_VERSION,
                oracle: shrunk.violation.oracle.name().to_string(),
                message: shrunk.violation.message.clone(),
                original: (shrunk.case != case).then(|| case.clone()),
                case: shrunk.case,
            };
            if let Some(dir) = &cfg.repro_dir {
                if std::fs::create_dir_all(dir).is_ok() {
                    let path = dir.join(record.file_name());
                    let json =
                        serde_json::to_string(&record).expect("repro records are plain data");
                    if std::fs::write(&path, json).is_ok() {
                        report.repro_path = Some(path);
                    }
                }
            }
            report.violation = Some(record);
            break;
        }
    }
    report
}

/// Replay a repro record: re-run exactly the recorded case against the
/// recorded oracle.
///
/// * `Err(_)` — the record itself is unusable (unknown oracle, invalid
///   case spec); nothing was run.
/// * `Ok(Some(v))` — the violation reproduced (the expected outcome
///   when replaying against the same code that produced the record).
/// * `Ok(None)` — the case now passes (the bug is fixed, or the record
///   was produced under `--inject-bug` and replayed without it).
pub fn replay(record: &ReproRecord, ops: &dyn SamplingOps) -> Result<Option<Violation>, String> {
    if record.version != REPRO_VERSION {
        return Err(format!(
            "repro record version {} (this binary speaks {REPRO_VERSION})",
            record.version
        ));
    }
    let oracle = Oracle::parse(&record.oracle)
        .ok_or_else(|| format!("unknown oracle '{}' in repro record", record.oracle))?;
    record
        .case
        .validate()
        .map_err(|e| format!("invalid case in repro record: {e}"))?;
    Ok(run_oracle(&record.case, oracle, ops).err())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{CoreOps, OffByOneBucket};

    #[test]
    fn counted_run_is_deterministic_and_clean_on_core() {
        let cfg = CheckConfig {
            cases: 2,
            ..CheckConfig::default()
        };
        let a = run_check(&cfg, &CoreOps);
        assert!(a.clean(), "core violated an oracle: {:?}", a.violation);
        assert_eq!(a.cases_run, 2);
    }

    #[test]
    fn injected_bug_is_caught_shrunk_and_recorded() {
        let dir = std::env::temp_dir().join(format!("resilim-check-repro-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CheckConfig {
            cases: 5,
            repro_dir: Some(dir.clone()),
            ..CheckConfig::default()
        };
        let report = run_check(&cfg, &OffByOneBucket);
        let record = report.violation.expect("bug must be caught");
        // The pure bucket-cover oracle fires on the very first case.
        assert_eq!(report.cases_run, 1);
        assert_eq!(record.oracle, "bucket-cover");
        assert_eq!(record.version, REPRO_VERSION);
        // Shrunk to the floor of every dimension.
        assert_eq!(record.case.procs, 2);
        assert_eq!(record.case.tests, 4);
        // The record round-trips through its on-disk JSON form.
        let path = report.repro_path.expect("repro file written");
        let loaded: ReproRecord =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(loaded, record);
        // Replay reproduces under the bug and passes on the real code.
        assert!(replay(&loaded, &OffByOneBucket).unwrap().is_some());
        assert!(replay(&loaded, &CoreOps).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_rejects_broken_records() {
        let mut record = ReproRecord {
            version: REPRO_VERSION,
            oracle: "bucket-cover".into(),
            message: String::new(),
            case: CaseSpec::smoke_roster().remove(0),
            original: None,
        };
        record.oracle = "no-such-oracle".into();
        assert!(replay(&record, &CoreOps).is_err());
        record.oracle = "bucket-cover".into();
        record.version = REPRO_VERSION + 1;
        assert!(replay(&record, &CoreOps).is_err());
        record.version = REPRO_VERSION;
        record.case.app = "no-such-app".into();
        assert!(replay(&record, &CoreOps).is_err());
    }
}
