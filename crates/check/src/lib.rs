#![warn(missing_docs)]
//! # resilim-check
//!
//! Differential & metamorphic validation of the resilience model: the
//! paper's whole claim is that a cheap serial/small-scale model predicts
//! expensive large-scale fault-injection outcomes, so this crate
//! continuously cross-validates `resilim_core::Predictor` (and the
//! campaign machinery underneath it) against measured ground truth on
//! randomized mini-campaigns.
//!
//! The pieces (DESIGN.md §8):
//!
//! * [`CaseSpec`] — one randomized mini-campaign (app, rank count,
//!   sampling resolution, injection plan), generated deterministically
//!   from a master seed so every case is replayable from its record.
//! * [`SamplingOps`] — the seam between the oracles and the sampling
//!   layer under test; [`CoreOps`] delegates to `resilim_core`,
//!   [`OffByOneBucket`] deliberately mis-buckets (the acceptance test
//!   that the engine *catches, shrinks, and replays* a model bug).
//! * [`oracles`] — the oracle library: distribution/partition
//!   invariants, bucket-cover, grouping conservation & refinement
//!   consistency, bitwise replay identity across execution backends,
//!   predicted-vs-measured divergence, learned-vs-closed-form
//!   predictor divergence, and ledger round-trip.
//! * [`engine`] — the case loop (budgeted or counted), obs events
//!   (`check_case` / `check_shrink`) and counters, repro-record
//!   emission, and deterministic replay.
//! * [`mod@shrink`] — greedy minimization of a failing case (fewer trials →
//!   fewer ranks → smaller app → simpler plan), re-checking only the
//!   violated oracle.
//!
//! * [`trace`] — the claims-to-oracle traceability matrix: scans the
//!   workspace for `verifies!` attestations, joins them against the
//!   claims registry (`resilim_core::claims`), and renders the matrix
//!   `resilim trace-matrix` commits as `docs/TRACEABILITY.md`.
//!
//! The CLI front-end is `resilim check` (`--smoke`, `--budget`,
//! `--replay FILE`).

pub mod case;
pub mod engine;
pub mod ops;
pub mod oracles;
pub mod shrink;
pub mod trace;

pub use case::CaseSpec;
pub use engine::{replay, run_check, CheckConfig, CheckReport, ReproRecord, REPRO_VERSION};
pub use ops::{CoreOps, OffByOneBucket, SamplingOps};
pub use oracles::{check_case, run_oracle, Oracle, Violation};
pub use shrink::{shrink, ShrinkResult, MAX_SHRINK_ATTEMPTS};
pub use trace::{build_matrix, scan_attestations, ArtifactKind, Attestation, Matrix};
