//! Claims-to-oracle traceability: scan the workspace for `verifies!`
//! attestations and join them against the claims registry
//! (`resilim_core::claims`, DESIGN.md §13).
//!
//! The contract: every registered claim must be attested by at least
//! one artifact (a test, a check oracle, or a bench), and every
//! attestation must name a registered claim. `resilim trace-matrix`
//! renders the join as a Markdown matrix (committed as
//! `docs/TRACEABILITY.md`) or JSON, and exits non-zero when the
//! contract is broken — so deleting a proof, renaming a claim, or
//! fat-fingering an id fails CI instead of silently eroding coverage.
//!
//! The scan is purely textual and deterministic: one line per
//! invocation, comment lines ignored, files visited in sorted order.
//! The registry source itself (`crates/core/src/claims.rs`) is
//! excluded — its macro-smoke tests exercise the macro, they do not
//! verify paper claims.

use resilim_core::claims::{self, Claim};
use serde_json::{json, Value};
use std::fmt::Write as _;
use std::path::Path;

/// The textual marker the scanner looks for. Split so this file's own
/// source never matches it.
const MARKER: &str = concat!("verifies", "!(");

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &[".git", "target", "shims", "docs", ".github"];

/// Files excluded from the scan (repo-relative, `/`-separated): the
/// registry itself, whose macro-smoke tests are not attestations.
const SKIP_FILES: &[&str] = &["crates/core/src/claims.rs"];

/// What kind of artifact attests a claim, inferred from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A unit, integration, or property test.
    Test,
    /// A `resilim check` oracle (`crates/check/src`).
    Oracle,
    /// A regeneration bench (`benches/`).
    Bench,
}

impl ArtifactKind {
    /// Stable lower-case name (matrix rendering, JSON).
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::Test => "test",
            ArtifactKind::Oracle => "oracle",
            ArtifactKind::Bench => "bench",
        }
    }

    fn of_path(rel: &str) -> ArtifactKind {
        if rel.contains("benches/") {
            ArtifactKind::Bench
        } else if rel.starts_with("crates/check/src") {
            ArtifactKind::Oracle
        } else {
            ArtifactKind::Test
        }
    }
}

/// One `verifies!` invocation found in the source tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attestation {
    /// The claim id named by the invocation (may be unregistered —
    /// that is exactly what the matrix flags as dangling).
    pub claim_id: String,
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line of the invocation.
    pub line: usize,
    /// Name of the enclosing `fn` (`?` if none found).
    pub function: String,
    /// Artifact kind, inferred from the path.
    pub kind: ArtifactKind,
}

/// One row of the traceability matrix: a registered claim and the
/// artifacts attesting it (deduplicated per enclosing function,
/// ordered by path).
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// The claim.
    pub claim: &'static Claim,
    /// Its attestations (empty = the claim is unverified).
    pub attestations: Vec<Attestation>,
}

/// The claims-to-artifacts join.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// One row per registered claim, in registry order.
    pub rows: Vec<MatrixRow>,
    /// Attestations naming an id absent from the registry.
    pub dangling: Vec<Attestation>,
}

/// Scan `root` (a workspace checkout) for `verifies!` attestations.
///
/// Deterministic: directories are visited in sorted order and every
/// attestation records its file, line, and enclosing function. Lines
/// whose first token is a comment are ignored, so prose *about* the
/// macro never registers as an attestation.
pub fn scan_attestations(root: &Path) -> std::io::Result<Vec<Attestation>> {
    let mut files = Vec::new();
    collect_rust_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        if SKIP_FILES.contains(&rel.as_str()) {
            continue;
        }
        let text = std::fs::read_to_string(root.join(&rel))?;
        scan_file(&rel, &text, &mut out);
    }
    Ok(out)
}

fn collect_rust_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rust_files(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

fn scan_file(rel: &str, text: &str, out: &mut Vec<Attestation>) {
    let lines: Vec<&str> = text.lines().collect();
    let kind = ArtifactKind::of_path(rel);
    for (i, line) in lines.iter().enumerate() {
        if line.trim_start().starts_with("//") {
            continue;
        }
        let Some(pos) = line.find(MARKER) else {
            continue;
        };
        let after = &line[pos + MARKER.len()..];
        let Some(close) = after.find(')') else {
            continue; // multi-line invocation: not a supported marker
        };
        let function = enclosing_fn(&lines[..i]);
        for id in after[..close].split(',') {
            let id = id.trim();
            if !id.is_empty() && is_ident(id) {
                out.push(Attestation {
                    claim_id: id.to_string(),
                    file: rel.to_string(),
                    line: i + 1,
                    function: function.clone(),
                    kind,
                });
            }
        }
    }
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// The name of the nearest `fn` declared above the invocation.
fn enclosing_fn(lines_above: &[&str]) -> String {
    for line in lines_above.iter().rev() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue;
        }
        if let Some(pos) = trimmed.find("fn ") {
            // Reject e.g. a stray "fn " inside a string by requiring the
            // preceding text to be declaration-ish (empty or modifiers).
            let before = &trimmed[..pos];
            if !before.is_empty() && !before.trim_end().ends_with(|c: char| c.is_alphanumeric()) {
                continue;
            }
            let name: String = trimmed[pos + 3..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return name;
            }
        }
    }
    "?".to_string()
}

/// Join attestations against the claims registry.
pub fn build_matrix(attestations: Vec<Attestation>) -> Matrix {
    let mut rows: Vec<MatrixRow> = claims::ALL
        .iter()
        .map(|claim| MatrixRow {
            claim,
            attestations: Vec::new(),
        })
        .collect();
    let mut dangling = Vec::new();
    for att in attestations {
        match rows.iter_mut().find(|r| r.claim.id == att.claim_id) {
            Some(row) => row.attestations.push(att),
            None => dangling.push(att),
        }
    }
    for row in &mut rows {
        row.attestations
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        // One entry per attesting function: the matrix traces artifacts,
        // not invocation sites, so line churn cannot cause drift.
        row.attestations
            .dedup_by(|a, b| a.file == b.file && a.function == b.function);
    }
    dangling.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Matrix { rows, dangling }
}

impl Matrix {
    /// Claims with no attesting artifact.
    pub fn unverified(&self) -> Vec<&'static Claim> {
        self.rows
            .iter()
            .filter(|r| r.attestations.is_empty())
            .map(|r| r.claim)
            .collect()
    }

    /// Whether every claim is attested and no attestation dangles.
    pub fn is_clean(&self) -> bool {
        self.unverified().is_empty() && self.dangling.is_empty()
    }

    /// Total attestations kept in the matrix (post-dedup).
    pub fn attestation_count(&self) -> usize {
        self.rows.iter().map(|r| r.attestations.len()).sum()
    }

    /// Render the committed Markdown matrix (`docs/TRACEABILITY.md`).
    ///
    /// Byte-deterministic for a given source tree; intentionally free
    /// of line numbers so moving code within a file cannot cause drift.
    pub fn render_markdown(&self) -> String {
        let mut md = String::new();
        md.push_str("# Traceability matrix\n\n");
        md.push_str(
            "Every claim in the claims registry (`crates/core/src/claims.rs`) \
             mapped to the artifacts that attest it with the `verifies!` macro.\n\n\
             Generated by `resilim trace-matrix --write docs/TRACEABILITY.md`. \
             Do not edit by hand: CI regenerates this file and fails on drift, \
             on any unverified claim, and on any attestation naming an \
             unregistered claim.\n\n",
        );
        let _ = writeln!(
            md,
            "{} claims, {} attesting artifacts.\n",
            self.rows.len(),
            self.attestation_count()
        );
        md.push_str("| claim | kind | attested by |\n|---|---|---|\n");
        for row in &self.rows {
            let attested: Vec<String> = row
                .attestations
                .iter()
                .map(|a| format!("`{}::{}` ({})", a.file, a.function, a.kind.name()))
                .collect();
            let cell = if attested.is_empty() {
                "**UNVERIFIED**".to_string()
            } else {
                attested.join("<br>")
            };
            let _ = writeln!(
                md,
                "| {} | {} | {} |",
                row.claim.id,
                row.claim.kind.name(),
                cell
            );
        }
        md.push_str("\n## Claim statements\n\n");
        for row in &self.rows {
            let _ = writeln!(md, "- **{}** — {}", row.claim.id, row.claim.statement);
        }
        if !self.dangling.is_empty() {
            md.push_str("\n## Dangling attestations\n\n");
            for att in &self.dangling {
                let _ = writeln!(
                    md,
                    "- `{}` named by `{}::{}` is not a registered claim",
                    att.claim_id, att.file, att.function
                );
            }
        }
        md
    }

    /// Render the matrix as a JSON document (`--json`).
    pub fn render_json(&self) -> String {
        let rows: Vec<Value> = self
            .rows
            .iter()
            .map(|row| {
                let atts: Vec<Value> = row
                    .attestations
                    .iter()
                    .map(|a| {
                        json!({
                            "file": a.file.as_str(),
                            "function": a.function.as_str(),
                            "kind": a.kind.name(),
                        })
                    })
                    .collect();
                json!({
                    "id": row.claim.id,
                    "kind": row.claim.kind.name(),
                    "statement": row.claim.statement,
                    "verified": !row.attestations.is_empty(),
                    "attested_by": Value::Array(atts),
                })
            })
            .collect();
        let dangling: Vec<Value> = self
            .dangling
            .iter()
            .map(|a| {
                json!({
                    "claim_id": a.claim_id.as_str(),
                    "file": a.file.as_str(),
                    "function": a.function.as_str(),
                })
            })
            .collect();
        let doc = json!({
            "claims": Value::Array(rows),
            "dangling": Value::Array(dangling),
            "clean": self.is_clean(),
        });
        let mut s = serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".to_string());
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf()
    }

    fn live_scan() -> Vec<Attestation> {
        scan_attestations(&workspace_root()).expect("scan")
    }

    #[test]
    fn scan_finds_attestations_across_layers() {
        let atts = live_scan();
        let has = |file: &str, id: &str, kind: ArtifactKind| {
            atts.iter()
                .any(|a| a.file == file && a.claim_id == id && a.kind == kind)
        };
        assert!(has(
            "crates/core/src/sampling.rs",
            "EQ7",
            ArtifactKind::Test
        ));
        assert!(has(
            "crates/core/tests/proofs.rs",
            "INV_MERGE",
            ArtifactKind::Test
        ));
        assert!(has(
            "crates/check/src/oracles.rs",
            "EQ7",
            ArtifactKind::Oracle
        ));
        assert!(has(
            "crates/bench/benches/tables.rs",
            "TABLE1",
            ArtifactKind::Bench
        ));
        // The registry's own macro-smoke tests are excluded.
        assert!(!atts.iter().any(|a| a.file == "crates/core/src/claims.rs"));
        // Every attestation carries a real enclosing function.
        assert!(atts.iter().all(|a| a.function != "?"));
    }

    #[test]
    fn live_tree_matrix_is_clean() {
        let matrix = build_matrix(live_scan());
        assert_eq!(
            matrix.unverified(),
            Vec::<&Claim>::new(),
            "unverified claims"
        );
        assert_eq!(matrix.dangling, Vec::new(), "dangling attestations");
        assert!(matrix.is_clean());
        for row in &matrix.rows {
            assert!(
                !row.attestations.is_empty(),
                "claim {} has no attestation",
                row.claim.id
            );
        }
    }

    #[test]
    fn deleting_a_claims_attestations_breaks_the_matrix() {
        // The acceptance criterion: remove every artifact attesting one
        // claim and the matrix must flag it.
        let pruned: Vec<Attestation> = live_scan()
            .into_iter()
            .filter(|a| a.claim_id != "FIG8")
            .collect();
        let matrix = build_matrix(pruned);
        let unverified = matrix.unverified();
        assert_eq!(unverified.len(), 1);
        assert_eq!(unverified[0].id, "FIG8");
        assert!(!matrix.is_clean());
        assert!(matrix.render_markdown().contains("**UNVERIFIED**"));
    }

    #[test]
    fn dangling_attestation_is_detected() {
        let mut atts = live_scan();
        atts.push(Attestation {
            claim_id: "EQ99".to_string(),
            file: "crates/fake/src/lib.rs".to_string(),
            line: 1,
            function: "bogus".to_string(),
            kind: ArtifactKind::Test,
        });
        let matrix = build_matrix(atts);
        assert!(!matrix.is_clean());
        assert_eq!(matrix.dangling.len(), 1);
        assert_eq!(matrix.dangling[0].claim_id, "EQ99");
        assert!(matrix.render_markdown().contains("Dangling attestations"));
    }

    #[test]
    fn scanner_parses_lists_and_skips_comments() {
        let src = format!(
            "fn covers_two() {{\n    {m}A1, B2);\n}}\n\
             // {m}NOPE);\nfn other() {{\n    let x = 1;\n    {m}C3,);\n}}\n",
            m = MARKER
        );
        let mut out = Vec::new();
        scan_file("crates/foo/src/lib.rs", &src, &mut out);
        let ids: Vec<(&str, &str)> = out
            .iter()
            .map(|a| (a.claim_id.as_str(), a.function.as_str()))
            .collect();
        assert_eq!(
            ids,
            vec![("A1", "covers_two"), ("B2", "covers_two"), ("C3", "other")]
        );
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn markdown_and_json_are_deterministic_and_complete() {
        let matrix = build_matrix(live_scan());
        let md = matrix.render_markdown();
        let md2 = build_matrix(live_scan()).render_markdown();
        assert_eq!(md, md2);
        for claim in claims::ALL {
            assert!(md.contains(&format!("| {} |", claim.id)), "{}", claim.id);
        }
        let j = matrix.render_json();
        assert!(j.contains("\"clean\": true"));
        let parsed: serde_json::Value = serde_json::from_str(&j).expect("valid json");
        drop(parsed);
    }

    #[test]
    fn dedup_is_per_function_not_per_line() {
        let atts = vec![
            Attestation {
                claim_id: "EQ1".into(),
                file: "a.rs".into(),
                line: 3,
                function: "f".into(),
                kind: ArtifactKind::Test,
            },
            Attestation {
                claim_id: "EQ1".into(),
                file: "a.rs".into(),
                line: 9,
                function: "f".into(),
                kind: ArtifactKind::Test,
            },
            Attestation {
                claim_id: "EQ1".into(),
                file: "a.rs".into(),
                line: 20,
                function: "g".into(),
                kind: ArtifactKind::Test,
            },
        ];
        let matrix = build_matrix(atts);
        let row = matrix.rows.iter().find(|r| r.claim.id == "EQ1").unwrap();
        assert_eq!(row.attestations.len(), 2);
    }
}
