//! Randomized mini-campaign specifications.
//!
//! A [`CaseSpec`] is the *entire* identity of one differential-check
//! case: which app kernel, at how many ranks, under which injection
//! plan, sampled at which model resolution, with which seed. Every
//! field is plain serde data, so a failing case round-trips through a
//! JSON repro record and replays bitwise (`resilim check --replay`).
//!
//! Generation is deterministic: case `i` of master seed `m` is a pure
//! function of `(m, i)` — the same draw the campaign layer uses for its
//! trials (`splitmix64`-keyed `SmallRng`), so a check run is itself a
//! reproducible campaign of campaigns.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use resilim_apps::App;
use resilim_core::SamplePoints;
use resilim_harness::{CampaignSpec, ErrorSpec};
use resilim_inject::FaultModelSpec;
use serde::{Deserialize, Serialize};

/// One randomized differential-check case (a mini-campaign).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseSpec {
    /// Case index within its check run (trace correlation only).
    pub id: u64,
    /// The case's seed: campaign seed of every campaign the oracles run.
    pub seed: u64,
    /// Application name (CLI spelling, [`App::name`]).
    pub app: String,
    /// Rank count of the measured ("large-scale") campaign. Power of
    /// two, ≥ 2.
    pub procs: usize,
    /// Model sampling resolution: bucket count and small-scale rank
    /// count (`s | procs`).
    pub s: usize,
    /// Trials per campaign.
    pub tests: usize,
    /// Fault pattern of the measured campaign.
    pub errors: ErrorSpec,
    /// Serial sample-point strategy the model side uses.
    pub strategy: SamplePoints,
    /// Fault model of the measured campaign (the model-input campaigns
    /// always measure the baseline single-bit flip).
    pub fault_model: FaultModelSpec,
    /// Run the measured campaign under TeaMPI-style rank replication.
    pub replicate: bool,
}

impl CaseSpec {
    /// Deterministically generate case `index` of `master_seed`.
    pub fn generate(master_seed: u64, index: u64) -> CaseSpec {
        let mut rng = SmallRng::seed_from_u64(resilim_apps::util::splitmix64(
            master_seed ^ (index.wrapping_mul(0x9e37_79b9)),
        ));
        let app = App::ALL[rng.gen_range(0..App::ALL.len())];
        let procs = if rng.gen_bool(0.5) { 2 } else { 4 };
        let s = if procs == 4 && rng.gen_bool(0.5) {
            4
        } else {
            2
        };
        let tests = [8usize, 12, 16][rng.gen_range(0..3usize)];
        let errors = if rng.gen_bool(0.7) {
            ErrorSpec::OneParallel
        } else {
            ErrorSpec::OneParallelMultiBit(2)
        };
        let strategy = [
            SamplePoints::BucketUpper,
            SamplePoints::PaperEq8,
            SamplePoints::BucketMid,
        ][rng.gen_range(0..3usize)];
        let seed = rng.gen_range(0..u64::MAX / 2);
        // The fault-model dimensions are drawn after every legacy field,
        // so adding them did not reshuffle the cases older master seeds
        // generate. Burst and msg are only defined for `par` errors.
        let fault_model = match rng.gen_range(0..10u32) {
            0 => FaultModelSpec::Due,
            1 | 2 if errors == ErrorSpec::OneParallel => {
                FaultModelSpec::Burst([2u8, 3, 4][rng.gen_range(0..3usize)])
            }
            3 | 4 if errors == ErrorSpec::OneParallel => FaultModelSpec::Msg,
            _ => FaultModelSpec::BitFlip,
        };
        let replicate = rng.gen_bool(0.25);
        CaseSpec {
            id: index,
            seed,
            app: app.name().to_string(),
            procs,
            s,
            tests,
            errors,
            strategy,
            fault_model,
            replicate,
        }
    }

    /// The fixed smoke roster: one small case per shipped app, cycling
    /// rank counts and strategies — the fast PR gate (`check --smoke`).
    pub fn smoke_roster() -> Vec<CaseSpec> {
        App::ALL
            .iter()
            .enumerate()
            .map(|(i, app)| {
                let procs = if i % 2 == 0 { 2 } else { 4 };
                CaseSpec {
                    id: i as u64,
                    seed: 1000 + i as u64,
                    app: app.name().to_string(),
                    procs,
                    s: 2,
                    tests: 8,
                    errors: ErrorSpec::OneParallel,
                    strategy: [
                        SamplePoints::BucketUpper,
                        SamplePoints::PaperEq8,
                        SamplePoints::BucketMid,
                    ][i % 3],
                    fault_model: FaultModelSpec::default(),
                    replicate: false,
                }
            })
            .collect()
    }

    /// The app this case runs, or an error naming the unknown spelling
    /// (repro records are hand-editable; fail helpfully).
    pub fn resolve_app(&self) -> Result<App, String> {
        App::parse(&self.app).ok_or_else(|| format!("unknown app '{}' in case spec", self.app))
    }

    /// The single builder every campaign of this case goes through: the
    /// case's app, trial count, and seed are fixed; only the scale and
    /// fault pattern vary per derived campaign. Keeping the
    /// [`CampaignSpec`] field list in one place means a new spec field
    /// cannot silently diverge between the measured, small-scale, and
    /// serial campaigns.
    fn campaign(&self, procs: usize, errors: ErrorSpec) -> Result<CampaignSpec, String> {
        let app = self.resolve_app()?;
        Ok(CampaignSpec::new(
            app.default_spec(),
            procs,
            errors,
            self.tests,
            self.seed,
        ))
    }

    /// The measured ("ground truth") campaign this case checks against.
    /// Only the measured side carries the case's fault model and
    /// replication: the model-input campaigns below measure the baseline
    /// process the paper's predictor is defined over.
    pub fn measured_campaign(&self) -> Result<CampaignSpec, String> {
        Ok(self
            .campaign(self.procs, self.errors)?
            .with_fault_model(self.fault_model)
            .with_replication(self.replicate))
    }

    /// The small-scale (s-rank, 1-error) campaign the model side uses.
    pub fn small_campaign(&self) -> Result<CampaignSpec, String> {
        self.campaign(self.s, ErrorSpec::OneParallel)
    }

    /// The serial campaign measuring `FI_ser_x`.
    pub fn serial_campaign(&self, x: usize) -> Result<CampaignSpec, String> {
        self.campaign(1, ErrorSpec::SerialErrors(x))
    }

    /// Structural validity: the invariants generation and shrinking must
    /// preserve (and hand-edited repro records must satisfy).
    pub fn validate(&self) -> Result<(), String> {
        self.resolve_app()?;
        if !self.procs.is_power_of_two() || self.procs < 2 {
            return Err(format!("procs = {} must be a power of two ≥ 2", self.procs));
        }
        if self.s < 2 || !self.procs.is_multiple_of(self.s) {
            return Err(format!("s = {} must divide procs = {}", self.s, self.procs));
        }
        if self.tests == 0 {
            return Err("tests must be ≥ 1".into());
        }
        if let ErrorSpec::SerialErrors(_) = self.errors {
            return Err("check cases measure parallel deployments".into());
        }
        resilim_harness::validate_fault_model(self.fault_model, self.errors, self.procs)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        for i in 0..50 {
            let a = CaseSpec::generate(7, i);
            let b = CaseSpec::generate(7, i);
            assert_eq!(a, b);
            a.validate().unwrap();
        }
        // Different master seeds give different rosters.
        assert_ne!(CaseSpec::generate(7, 0), CaseSpec::generate(8, 0));
    }

    #[test]
    fn generation_covers_the_space() {
        let cases: Vec<CaseSpec> = (0..60).map(|i| CaseSpec::generate(42, i)).collect();
        let apps: std::collections::BTreeSet<&str> = cases.iter().map(|c| c.app.as_str()).collect();
        assert!(apps.len() >= 4, "60 cases should hit most apps: {apps:?}");
        assert!(cases.iter().any(|c| c.procs == 2));
        assert!(cases.iter().any(|c| c.procs == 4));
        assert!(cases.iter().any(|c| c.s == 4));
        assert!(cases
            .iter()
            .any(|c| matches!(c.errors, ErrorSpec::OneParallelMultiBit(_))));
        // The fault-model dimensions are exercised too.
        assert!(cases.iter().any(|c| c.fault_model == FaultModelSpec::Due));
        assert!(cases
            .iter()
            .any(|c| matches!(c.fault_model, FaultModelSpec::Burst(_))));
        assert!(cases.iter().any(|c| c.fault_model == FaultModelSpec::Msg));
        assert!(cases.iter().any(|c| c.replicate));
        assert!(cases
            .iter()
            .any(|c| c.fault_model.is_default() && !c.replicate));
    }

    #[test]
    fn smoke_roster_covers_every_app() {
        let roster = CaseSpec::smoke_roster();
        assert_eq!(roster.len(), App::ALL.len());
        for (case, app) in roster.iter().zip(App::ALL) {
            assert_eq!(case.app, app.name());
            case.validate().unwrap();
        }
    }

    #[test]
    fn case_round_trips_through_json() {
        let case = CaseSpec::generate(3, 14);
        let json = serde_json::to_string(&case).unwrap();
        let back: CaseSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(case, back);
    }
}
