//! The oracle library: what "the model and the measurement agree" means,
//! decomposed into independently checkable invariants.
//!
//! Each oracle is a pure function of a [`CaseSpec`] (plus the
//! [`SamplingOps`] seam): it re-derives everything it needs from the
//! case's seed, so a violated oracle replays from the repro record
//! alone. Oracles are ordered cheap-first in [`Oracle::ALL`]; the
//! engine stops at the first violation and hands it to the shrinker.

use crate::case::CaseSpec;
use crate::ops::SamplingOps;
use resilim_core::{
    cosine_similarity, fit_predictor, ModelInputs, PaperEq8, PredictorKind, SamplePoints,
};
use resilim_harness::{
    aggregate_outcomes, CampaignResult, CampaignRunner, CampaignSummary, ErrorSpec,
};
use resilim_inject::{FailureKind, FaultModelSpec};
use resilim_serve::{Client, Daemon, ServeConfig, SubmitSpec};
use std::collections::BTreeMap;

/// The oracles `resilim check` runs, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// Sampling layer: `bucket_of` total/monotone/uniform,
    /// `sample_cases` strictly increasing, in range, covering every
    /// bucket exactly once; `sample_for` bucket-consistent. Pure math —
    /// no campaign runs.
    BucketCover,
    /// Measured campaign: outcome counts form a probability
    /// distribution, conditional results partition the totals, the
    /// propagation histogram conserves trials, and uncontaminated
    /// trials never fired an injection.
    Distribution,
    /// Propagation grouping: mass conservation at every divisor
    /// grouping, refinement consistency (group p→coarse equals group
    /// p→fine refolded), cosine self-similarity exactly 1.
    Grouping,
    /// Bitwise replay identity: jobs=1, jobs=4, jobs=auto, and the
    /// spawn-per-trial backend produce identical outcome vectors.
    Replay,
    /// Streaming aggregation identity: every campaign's online
    /// aggregates (FiResult, propagation profile, conditional splits)
    /// are bitwise equal to batch re-aggregation of its outcome vector,
    /// across jobs=1, jobs=4, jobs=auto, and the spawn-per-trial
    /// backend.
    StreamingIdentity,
    /// Durable-ledger round trip: a ledgered run merged back from disk
    /// equals the live result bitwise.
    LedgerRoundtrip,
    /// Service identity: the same campaign submitted over a daemon's
    /// unix socket (`resilim serve`) yields a summary bitwise equal to
    /// the one-shot CLI path — concurrency, the wire protocol, and the
    /// scheduler's delivery pipeline introduce no divergence.
    ServeIdentity,
    /// Fault-model laws, on model campaigns derived from the case: DUE
    /// is all-or-nothing (fired ⇒ detected rank-kill failure, not fired
    /// ⇒ anything but), message corruption always finds a wire to
    /// corrupt, burst outcomes stay causally consistent, and TeaMPI
    /// replication observes without perturbing (outcomes identical to
    /// the unreplicated run modulo the `detected` bit, which it may only
    /// ever add).
    FaultModels,
    /// Predicted vs measured: the closed-form prediction from
    /// serial + small-scale inputs is a probability distribution and
    /// stays within a (generous, documented) divergence bound of the
    /// measured large-scale result.
    ModelDivergence,
    /// Learned vs closed-form: the registry's learned predictors
    /// (logistic, stumps), trained on the measured campaign's own
    /// per-trial features, emit probability distributions whose
    /// campaign-level rates track the measured rates in-sample and stay
    /// within a documented bound of the PaperEq8 prediction built from
    /// the same case.
    PredictorDivergence,
}

impl Oracle {
    /// Every oracle, cheap-first.
    pub const ALL: [Oracle; 10] = [
        Oracle::BucketCover,
        Oracle::Distribution,
        Oracle::Grouping,
        Oracle::Replay,
        Oracle::StreamingIdentity,
        Oracle::LedgerRoundtrip,
        Oracle::ServeIdentity,
        Oracle::FaultModels,
        Oracle::ModelDivergence,
        Oracle::PredictorDivergence,
    ];

    /// Stable kebab-case name (traces, repro records, CLI).
    pub fn name(self) -> &'static str {
        match self {
            Oracle::BucketCover => "bucket-cover",
            Oracle::Distribution => "distribution",
            Oracle::Grouping => "grouping",
            Oracle::Replay => "replay",
            Oracle::StreamingIdentity => "streaming-identity",
            Oracle::LedgerRoundtrip => "ledger-roundtrip",
            Oracle::ServeIdentity => "serve-identity",
            Oracle::FaultModels => "fault-models",
            Oracle::ModelDivergence => "model-divergence",
            Oracle::PredictorDivergence => "predictor-divergence",
        }
    }

    /// Parse a kebab-case spelling.
    pub fn parse(s: &str) -> Option<Oracle> {
        Oracle::ALL.into_iter().find(|o| o.name() == s)
    }
}

/// One oracle violation: which invariant broke and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated oracle.
    pub oracle: Oracle,
    /// What disagreed (shown to the user; stored in the repro record).
    pub message: String,
}

impl Violation {
    fn new(oracle: Oracle, message: impl Into<String>) -> Violation {
        Violation {
            oracle,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle.name(), self.message)
    }
}

macro_rules! ensure {
    ($oracle:expr, $cond:expr, $($msg:tt)+) => {
        if !$cond {
            return Err(Violation::new($oracle, format!($($msg)+)));
        }
    };
}

/// Run every oracle against `case`, cheapest first, sharing one
/// measured ground-truth campaign. `Ok(())` = the case is clean.
pub fn check_case(case: &CaseSpec, ops: &dyn SamplingOps) -> Result<(), Violation> {
    case.validate()
        .map_err(|e| Violation::new(Oracle::Distribution, e))?;
    bucket_cover(case, ops)?;
    let measured = run_measured(case)?;
    distribution(case, &measured)?;
    grouping(case, &measured)?;
    replay_identity(case, &measured)?;
    streaming_identity(case, &measured)?;
    ledger_roundtrip(case, &measured)?;
    serve_identity(case, &measured)?;
    fault_models(case, &measured)?;
    model_divergence(case, &measured)?;
    predictor_divergence(case, &measured)?;
    Ok(())
}

/// Run exactly one oracle against `case` (the shrinker's and replay's
/// entry point: re-checks only the violated invariant).
pub fn run_oracle(case: &CaseSpec, oracle: Oracle, ops: &dyn SamplingOps) -> Result<(), Violation> {
    case.validate().map_err(|e| Violation::new(oracle, e))?;
    match oracle {
        Oracle::BucketCover => bucket_cover(case, ops),
        Oracle::Distribution => distribution(case, &run_measured(case)?),
        Oracle::Grouping => grouping(case, &run_measured(case)?),
        Oracle::Replay => replay_identity(case, &run_measured(case)?),
        Oracle::StreamingIdentity => streaming_identity(case, &run_measured(case)?),
        Oracle::LedgerRoundtrip => ledger_roundtrip(case, &run_measured(case)?),
        Oracle::ServeIdentity => serve_identity(case, &run_measured(case)?),
        Oracle::FaultModels => fault_models(case, &run_measured(case)?),
        Oracle::ModelDivergence => model_divergence(case, &run_measured(case)?),
        Oracle::PredictorDivergence => predictor_divergence(case, &run_measured(case)?),
    }
}

/// The measured ground-truth campaign, jobs = 1.
fn run_measured(case: &CaseSpec) -> Result<CampaignResult, Violation> {
    let spec = case
        .measured_campaign()
        .map_err(|e| Violation::new(Oracle::Distribution, e))?;
    Ok(CampaignRunner::new().run_uncached(&spec))
}

/// Sampling-layer invariants, checked through the [`SamplingOps`] seam
/// at the case's own scale and at a larger virtual scale (pure math —
/// a mis-bucketing bug is caught without running a single campaign).
fn bucket_cover(case: &CaseSpec, ops: &dyn SamplingOps) -> Result<(), Violation> {
    resilim_core::verifies!(EQ7, EQ8);
    let o = Oracle::BucketCover;
    let virtual_p = (case.procs * 16).max(64);
    for (p, s) in [(case.procs, case.s), (virtual_p, case.s), (64, 8)] {
        // bucket_of: total, in range, monotone, exactly p/s values per
        // bucket.
        let mut counts = vec![0usize; s];
        let mut prev = 1usize;
        for x in 1..=p {
            let b = ops.bucket_of(x, p, s);
            ensure!(
                o,
                (1..=s).contains(&b),
                "bucket_of({x}, {p}, {s}) = {b} out of [1, {s}]"
            );
            ensure!(
                o,
                b >= prev,
                "bucket_of not monotone at x = {x} (p={p}, s={s}): {b} < {prev}"
            );
            prev = b;
            counts[b - 1] += 1;
        }
        for (j, &n) in counts.iter().enumerate() {
            ensure!(
                o,
                n == p / s,
                "bucket {} of (p={p}, s={s}) holds {n} values of x, expected {}",
                j + 1,
                p / s
            );
        }
        for strategy in [
            SamplePoints::BucketUpper,
            SamplePoints::PaperEq8,
            SamplePoints::BucketMid,
        ] {
            let cases = ops.sample_cases(p, s, strategy);
            ensure!(
                o,
                cases.len() == s,
                "{strategy:?}(p={p}, s={s}) returned {} points, expected {s}",
                cases.len()
            );
            ensure!(
                o,
                cases.windows(2).all(|w| w[0] < w[1]),
                "{strategy:?}(p={p}, s={s}) not strictly increasing: {cases:?}"
            );
            ensure!(
                o,
                cases.iter().all(|&c| (1..=p).contains(&c)),
                "{strategy:?}(p={p}, s={s}) out of range: {cases:?}"
            );
            // Coverage: the j-th point stands in for bucket j. The
            // bucket-anchored strategies land exactly in bucket j;
            // PaperEq8's interior points are lower edges and may land
            // one bucket early (the paper's own Eq. 8 convention).
            for (i, &c) in cases.iter().enumerate() {
                let j = i + 1;
                let b = ops.bucket_of(c, p, s);
                let ok = match strategy {
                    SamplePoints::PaperEq8 => b == j || b + 1 == j,
                    _ => b == j,
                };
                ensure!(
                    o,
                    ok,
                    "{strategy:?}(p={p}, s={s}): point {c} (index {j}) lands in bucket {b}"
                );
            }
            // sample_for consistency with the bucket map.
            for x in 1..=p {
                let sx = ops.sample_for(x, p, s, strategy);
                ensure!(
                    o,
                    cases.contains(&sx),
                    "sample_for({x}) = {sx} not a sample point"
                );
                let bx = ops.bucket_of(x, p, s);
                let bs = ops.bucket_of(sx, p, s);
                let ok = match strategy {
                    SamplePoints::PaperEq8 => bs == bx || bs + 1 == bx,
                    _ => bs == bx,
                };
                ensure!(
                    o,
                    ok,
                    "{strategy:?}(p={p}, s={s}): x = {x} (bucket {bx}) maps to sample {sx} (bucket {bs})"
                );
            }
        }
    }
    Ok(())
}

/// Distribution-sum and partition invariants of the measured campaign.
fn distribution(case: &CaseSpec, m: &CampaignResult) -> Result<(), Violation> {
    resilim_core::verifies!(EQ2, EQ3);
    let o = Oracle::Distribution;
    let n = case.tests as u64;
    ensure!(
        o,
        m.outcomes.len() as u64 == n,
        "{} outcomes for {} trials",
        m.outcomes.len(),
        n
    );
    ensure!(
        o,
        m.fi.total() == n,
        "fi.total() = {} for {} trials",
        m.fi.total(),
        n
    );
    let rates = m.fi.rates();
    let sum: f64 = rates.iter().sum();
    ensure!(
        o,
        (sum - 1.0).abs() < 1e-9,
        "outcome rates sum to {sum}: {rates:?}"
    );
    ensure!(
        o,
        rates.iter().all(|r| (0.0..=1.0).contains(r)),
        "outcome rate outside [0, 1]: {rates:?}"
    );
    // Conditional results partition the totals, per outcome class.
    let bucket_total: u64 = m.by_contam.iter().map(|fi| fi.total()).sum();
    ensure!(
        o,
        bucket_total + m.uncontaminated.total() == m.fi.total(),
        "by_contam ({bucket_total}) + uncontaminated ({}) != fi ({})",
        m.uncontaminated.total(),
        m.fi.total()
    );
    for k in 0..3 {
        let split: u64 =
            m.by_contam.iter().map(|fi| fi.counts[k]).sum::<u64>() + m.uncontaminated.counts[k];
        ensure!(
            o,
            split == m.fi.counts[k],
            "outcome class {k}: conditional counts sum to {split}, campaign says {}",
            m.fi.counts[k]
        );
    }
    ensure!(
        o,
        m.prop.total() == n,
        "propagation histogram holds {} trials, expected {n}",
        m.prop.total()
    );
    // Per-trial causality: no contamination without a fired fault, and
    // failure details accompany exactly the Failure kind.
    for (i, out) in m.outcomes.iter().enumerate() {
        ensure!(
            o,
            out.is_causally_consistent(),
            "trial {i} is causally inconsistent: {out:?}"
        );
    }
    Ok(())
}

/// Grouping conservation and refinement consistency on the *measured*
/// propagation profile (metamorphic: real data, relations that must
/// hold regardless of its values).
fn grouping(case: &CaseSpec, m: &CampaignResult) -> Result<(), Violation> {
    resilim_core::verifies!(EQ5, O3, TABLE2);
    let o = Oracle::Grouping;
    let r = m.prop.r_vec();
    let sum: f64 = r.iter().sum();
    ensure!(o, (sum - 1.0).abs() < 1e-9, "r_vec sums to {sum}");
    // Divisor groupings conserve mass.
    let divisors: Vec<usize> = (1..=case.procs)
        .filter(|g| case.procs.is_multiple_of(*g))
        .collect();
    for &g in &divisors {
        let grouped = m.prop.group(g);
        let mass: f64 = grouped.iter().sum();
        ensure!(o, (mass - 1.0).abs() < 1e-9, "group({g}) mass = {mass}");
        ensure!(
            o,
            grouped.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)),
            "group({g}) entry outside [0, 1]: {grouped:?}"
        );
        ensure!(
            o,
            (cosine_similarity(&grouped, &grouped) - 1.0).abs() < 1e-9,
            "cosine self-similarity of group({g}) != 1"
        );
    }
    // Refinement consistency: folding a fine grouping must equal the
    // direct coarse grouping — refining the profile never changes the
    // mass a coarse bucket sees (the relation behind the paper's
    // cosine-similarity scaling argument, Table 2).
    for &fine in &divisors {
        for &coarse in &divisors {
            if coarse > fine || !fine.is_multiple_of(coarse) {
                continue;
            }
            let direct = m.prop.group(coarse);
            let via = m.prop.group(fine);
            let ratio = fine / coarse;
            let refolded: Vec<f64> = (0..coarse)
                .map(|j| via[j * ratio..(j + 1) * ratio].iter().sum())
                .collect();
            for (j, (&d, &f)) in direct.iter().zip(refolded.iter()).enumerate() {
                ensure!(
                    o,
                    (d - f).abs() < 1e-9,
                    "refold {fine}->{coarse} bucket {j}: direct {d} vs refolded {f}"
                );
            }
            ensure!(
                o,
                (cosine_similarity(&direct, &refolded) - 1.0).abs() < 1e-9,
                "cosine(direct, refolded) != 1 for {fine}->{coarse}"
            );
        }
    }
    Ok(())
}

/// Bitwise replay identity across every execution backend.
fn replay_identity(case: &CaseSpec, m: &CampaignResult) -> Result<(), Violation> {
    let o = Oracle::Replay;
    let spec = case.measured_campaign().map_err(|e| Violation::new(o, e))?;
    let backends: [(&str, CampaignRunner); 3] = [
        ("jobs=4", CampaignRunner::new().with_test_parallelism(4)),
        ("jobs=auto", CampaignRunner::new().with_auto_parallelism()),
        (
            "spawn-per-trial",
            CampaignRunner::new().with_spawn_per_trial(),
        ),
    ];
    for (name, runner) in backends {
        let other = runner.run_uncached(&spec);
        ensure!(
            o,
            other.outcomes == m.outcomes,
            "{name} diverges from jobs=1: first mismatch at trial {}",
            m.outcomes
                .iter()
                .zip(other.outcomes.iter())
                .position(|(a, b)| a != b)
                .map_or_else(|| "<length>".to_string(), |i| i.to_string())
        );
        ensure!(o, other.fi == m.fi, "{name}: aggregated FiResult diverges");
        ensure!(
            o,
            other.prop.counts == m.prop.counts,
            "{name}: propagation histogram diverges"
        );
    }
    Ok(())
}

/// Streaming aggregation identity: the campaign's online aggregates
/// (built trial-by-trial through the reorder buffer) must be bitwise
/// equal to batch re-aggregation of its final outcome vector, for every
/// execution backend. This is the differential oracle for the streaming
/// pipeline: a reordering bug, a dropped record, or a divergent
/// accumulator shows up as streamed ≠ batch.
fn streaming_identity(case: &CaseSpec, m: &CampaignResult) -> Result<(), Violation> {
    resilim_core::verifies!(INV_MERGE);
    let o = Oracle::StreamingIdentity;
    let spec = case.measured_campaign().map_err(|e| Violation::new(o, e))?;
    let compare = |name: &str, r: &CampaignResult| -> Result<(), Violation> {
        let (fi, prop, by_contam, uncontaminated) = aggregate_outcomes(spec.procs, &r.outcomes);
        ensure!(o, r.fi == fi, "{name}: streamed FiResult != batch");
        ensure!(
            o,
            r.prop.counts == prop.counts,
            "{name}: streamed propagation profile != batch"
        );
        ensure!(
            o,
            r.by_contam == by_contam,
            "{name}: streamed by-contamination split != batch"
        );
        ensure!(
            o,
            r.uncontaminated == uncontaminated,
            "{name}: streamed uncontaminated split != batch"
        );
        Ok(())
    };
    compare("jobs=1", m)?;
    // Batched admission (`--batch`) must be observationally invisible:
    // the reorder buffer delivers in owned-index order whatever the push
    // granularity, so every batch size must reproduce the jobs=1 result
    // bitwise. 7 (odd, not a divisor of typical test counts) and 64 (the
    // reorder-window size) are the adversarial choices.
    let backends: [(&str, CampaignRunner); 6] = [
        ("jobs=4", CampaignRunner::new().with_test_parallelism(4)),
        ("jobs=auto", CampaignRunner::new().with_auto_parallelism()),
        (
            "spawn-per-trial",
            CampaignRunner::new().with_spawn_per_trial(),
        ),
        ("batch=7", CampaignRunner::new().with_trial_batch(7)),
        (
            "batch=7 jobs=4",
            CampaignRunner::new()
                .with_test_parallelism(4)
                .with_trial_batch(7),
        ),
        (
            "batch=64 jobs=4",
            CampaignRunner::new()
                .with_test_parallelism(4)
                .with_trial_batch(64),
        ),
    ];
    for (name, runner) in backends {
        compare(name, &runner.run_uncached(&spec))?;
    }
    Ok(())
}

/// Durable-ledger round trip: run with a ledger, merge from disk,
/// compare bitwise against the live result.
fn ledger_roundtrip(case: &CaseSpec, m: &CampaignResult) -> Result<(), Violation> {
    let o = Oracle::LedgerRoundtrip;
    let spec = case.measured_campaign().map_err(|e| Violation::new(o, e))?;
    let dir = std::env::temp_dir().join(format!(
        "resilim-check-ledger-{}-{}-{}",
        std::process::id(),
        case.id,
        case.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let runner = CampaignRunner::new().with_ledger_dir(&dir);
    runner.run_uncached(&spec);
    let merged = runner.merged_from_ledger(&spec);
    let result = (|| {
        let merged = merged.map_err(|e| Violation::new(o, format!("merge failed: {e}")))?;
        ensure!(
            o,
            merged.outcomes == m.outcomes,
            "ledger round trip diverges from the live run"
        );
        ensure!(o, merged.fi == m.fi, "merged FiResult diverges");
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Service identity: submit the measured campaign through a real
/// daemon socket and require the summary a client receives to be
/// bitwise equal (modulo wall clock) to the one-shot run. Exercises
/// the whole serving stack — wire protocol, scheduler admission,
/// reorder delivery, finalization — against the same ground truth.
fn serve_identity(case: &CaseSpec, m: &CampaignResult) -> Result<(), Violation> {
    let o = Oracle::ServeIdentity;
    let spec = case.measured_campaign().map_err(|e| Violation::new(o, e))?;
    let want = CampaignSummary::of(&spec, m);
    let dir = std::env::temp_dir().join(format!(
        "resilim-check-serve-{}-{}-{}",
        std::process::id(),
        case.id,
        case.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| Violation::new(o, format!("tmp dir: {e}")))?;
    let socket = dir.join("check.sock");
    let result = (|| {
        let daemon = Daemon::spawn(ServeConfig {
            socket: socket.clone(),
            store: None,
            workers: 2,
            // Batched claims through the scheduler must not change the
            // summary either.
            batch: 7,
        })
        .map_err(|e| Violation::new(o, format!("daemon spawn: {e}")))?;
        let mut client = Client::connect_retry(&socket, std::time::Duration::from_secs(10))
            .map_err(|e| Violation::new(o, format!("connect: {e}")))?;
        let (_id, summary) = client
            .submit_and_wait(SubmitSpec::of_campaign(&spec))
            .map_err(|e| Violation::new(o, format!("submit: {e}")))?;
        daemon.stop();
        let mut got =
            summary.ok_or_else(|| Violation::new(o, "campaign finished without a summary"))?;
        got.wall_secs = want.wall_secs;
        ensure!(
            o,
            got == want,
            "daemon-served summary diverges from the one-shot run"
        );
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Fault-model laws (DESIGN.md §12), checked on mini-campaigns derived
/// from the case (same app, scale, trial count, and seed; `par` errors,
/// which every non-default model is defined for).
///
/// * **Replication is observation**: toggling `--replicate` on the
///   measured campaign must reproduce every outcome bitwise except the
///   `detected` bit, and replication may only ever *add* detection.
/// * **DUE is all-or-nothing**: a trial that fired its fault died as a
///   detected rank kill; a trial that never fired cannot report one.
/// * **Message corruption always lands**: every trial of the `msg`
///   model corrupts exactly one wire payload, so every trial fires.
/// * **Burst stays causal**: multi-bit corruption obeys the same
///   per-trial causality the single-bit model does.
fn fault_models(case: &CaseSpec, m: &CampaignResult) -> Result<(), Violation> {
    let o = Oracle::FaultModels;
    let runner = CampaignRunner::new();
    let spec = case.measured_campaign().map_err(|e| Violation::new(o, e))?;

    // Replication metamorphic, against the measured run itself.
    let mut flipped_spec = spec.clone();
    flipped_spec.replicate = !spec.replicate;
    let flipped = runner.run_uncached(&flipped_spec);
    let (plain, repl) = if spec.replicate {
        (&flipped, m)
    } else {
        (m, &flipped)
    };
    ensure!(
        o,
        plain.outcomes.len() == repl.outcomes.len(),
        "replication changed the trial count"
    );
    for (i, (p, r)) in plain.outcomes.iter().zip(repl.outcomes.iter()).enumerate() {
        ensure!(
            o,
            p.clone().with_detected(false) == r.clone().with_detected(false),
            "replication perturbed trial {i}: {p:?} vs {r:?}"
        );
        ensure!(
            o,
            !p.detected || r.detected,
            "replication lost a detection at trial {i}"
        );
    }

    // The model laws, on a baseline-shaped derivation of the case.
    let mut base = spec;
    base.errors = ErrorSpec::OneParallel;
    base.replicate = false;

    let mut due_spec = base.clone();
    due_spec.fault_model = FaultModelSpec::Due;
    let due = runner.run_uncached(&due_spec);
    for (i, out) in due.outcomes.iter().enumerate() {
        if out.injections_fired > 0 {
            ensure!(
                o,
                out.failure == Some(FailureKind::Due) && out.detected,
                "due trial {i} fired but did not die detected: {out:?}"
            );
        } else {
            ensure!(
                o,
                out.failure != Some(FailureKind::Due),
                "due trial {i} reported a DUE without firing: {out:?}"
            );
        }
    }

    let mut msg_spec = base.clone();
    msg_spec.fault_model = FaultModelSpec::Msg;
    let msg = runner.run_uncached(&msg_spec);
    for (i, out) in msg.outcomes.iter().enumerate() {
        ensure!(
            o,
            out.injections_fired >= 1,
            "msg trial {i} never corrupted a wire payload: {out:?}"
        );
        ensure!(o, out.is_causally_consistent(), "msg trial {i}: {out:?}");
    }

    let mut burst_spec = base;
    burst_spec.fault_model = FaultModelSpec::Burst(3);
    let burst = runner.run_uncached(&burst_spec);
    for (i, out) in burst.outcomes.iter().enumerate() {
        ensure!(o, out.is_causally_consistent(), "burst trial {i}: {out:?}");
    }
    Ok(())
}

/// Maximum tolerated |predicted − measured| success-rate gap.
///
/// The paper reports worst-case divergences around 30% (Figure 7's
/// CoMD outlier); on top of that the mini-campaigns here estimate both
/// sides from a handful of trials, so half a binomial 3σ of sampling
/// noise is added. This oracle is an alarm for *gross* disagreement
/// (a broken bucket map, inverted rates, mass loss) — model accuracy
/// itself is evaluated by the repro pipeline's tables, not here.
pub fn divergence_bound(tests: usize) -> f64 {
    0.35 + 1.5 * (0.25 / tests as f64).sqrt()
}

/// Build the closed-form model's inputs from the case's serial +
/// small-scale campaigns (cached across oracles through the runner's
/// campaign cache). Shared by the two divergence oracles.
fn eq8_inputs(case: &CaseSpec, o: Oracle) -> Result<ModelInputs, Violation> {
    let runner = CampaignRunner::new();
    let mut serial = BTreeMap::new();
    let mut needed: Vec<usize> = resilim_core::sample_cases(case.procs, case.s, case.strategy);
    needed.extend(1..=case.s);
    for x in needed {
        let spec = case.serial_campaign(x).map_err(|e| Violation::new(o, e))?;
        serial.entry(x).or_insert_with(|| runner.run(&spec).fi);
    }
    let small_spec = case.small_campaign().map_err(|e| Violation::new(o, e))?;
    let small = runner.run(&small_spec);
    Ok(ModelInputs {
        p: case.procs,
        s: case.s,
        strategy: case.strategy,
        serial,
        small_prop: small.prop.clone(),
        small_by_contam: small.by_contam_optional(),
        unique_share: 0.0,
        fi_unique: None,
        alpha_threshold: 0.20,
    })
}

/// Predicted-vs-measured divergence plus predictor distribution
/// invariants, using the case's serial + small-scale campaigns as model
/// inputs — the end-to-end differential test of the paper's pipeline.
fn model_divergence(case: &CaseSpec, m: &CampaignResult) -> Result<(), Violation> {
    resilim_core::verifies!(EQ1, EQ4, EQ6, O4);
    let o = Oracle::ModelDivergence;
    // Eq. 8 models the baseline single-bit-flip process; a measured
    // campaign under another fault model (or with a detector deployed)
    // is a different experiment, so the divergence bound does not apply.
    if !case.fault_model.is_default() || case.replicate {
        return Ok(());
    }
    let pred = PaperEq8::new(eq8_inputs(case, o)?).predict();
    let sum: f64 = pred.rates.iter().sum();
    ensure!(o, (sum - 1.0).abs() < 1e-9, "predicted rates sum to {sum}");
    ensure!(
        o,
        pred.rates
            .iter()
            .all(|r| (-1e-12..=1.0 + 1e-12).contains(r)),
        "predicted rate outside [0, 1]: {:?}",
        pred.rates
    );
    let gap = (pred.success() - m.fi.success_rate()).abs();
    let bound = divergence_bound(case.tests);
    ensure!(
        o,
        gap <= bound,
        "predicted success {:.3} vs measured {:.3}: gap {gap:.3} exceeds bound {bound:.3}",
        pred.success(),
        m.fi.success_rate()
    );
    Ok(())
}

/// Maximum tolerated gap between a learned predictor's in-sample rates
/// and the measured campaign rates it trained on.
///
/// Both learners' campaign-level prediction is the mean of their
/// per-trial probabilities over the training set, which at the optimum
/// matches the empirical class rates exactly (the softmax bias
/// condition / the Newton leaf condition). The slack covers a fixed,
/// finite optimization budget on small and near-degenerate training
/// sets — a larger gap means the feature pipeline or a learner broke,
/// not that optimization was unlucky.
pub const IN_SAMPLE_BOUND: f64 = 0.15;

/// Learned-predictor laws, on the measured campaign's own features:
///
/// * **Features are per-trial**: the feature stream carries exactly one
///   record per trial, label-consistent with the outcome vector (both
///   flow through the same reorder buffer).
/// * **Distributions stay lawful**: each learned predictor's rates are
///   a probability distribution.
/// * **In-sample fidelity**: trained on the campaign's features, the
///   learned rates track the measured rates within [`IN_SAMPLE_BOUND`].
/// * **Bounded disagreement with eq8**: the learned prediction stays
///   within [`divergence_bound`]` + `[`IN_SAMPLE_BOUND`] of the
///   closed-form prediction built from the same case — by the triangle
///   inequality through the measured rates, gross disagreement means
///   one of the two predictors is broken.
fn predictor_divergence(case: &CaseSpec, m: &CampaignResult) -> Result<(), Violation> {
    resilim_core::verifies!(INV_PREDICT);
    let o = Oracle::PredictorDivergence;
    // Like model_divergence: eq8 models the baseline single-bit-flip
    // process, so other fault models are a different experiment.
    if !case.fault_model.is_default() || case.replicate {
        return Ok(());
    }
    ensure!(
        o,
        m.features.len() == m.outcomes.len(),
        "feature pipeline produced {} records for {} trials",
        m.features.len(),
        m.outcomes.len()
    );
    for (i, (f, out)) in m.features.iter().zip(m.outcomes.iter()).enumerate() {
        ensure!(
            o,
            f.outcome() == out.kind,
            "trial {i}: feature label {:?} disagrees with outcome {:?}",
            f.outcome(),
            out.kind
        );
    }
    if m.features.len() < 2 {
        return Ok(()); // nothing to train on
    }
    let measured = m.fi.rates();
    let eq8 = PaperEq8::new(eq8_inputs(case, o)?).predict();
    let bound = divergence_bound(case.tests) + IN_SAMPLE_BOUND;
    for kind in [PredictorKind::Logistic, PredictorKind::Stumps] {
        let model = fit_predictor(kind, &m.features)
            .map_err(|e| Violation::new(o, format!("{} failed to fit: {e}", kind.name())))?;
        let pred = model.predict();
        let sum: f64 = pred.rates.iter().sum();
        ensure!(
            o,
            (sum - 1.0).abs() < 1e-6,
            "{} rates sum to {sum}",
            kind.name()
        );
        ensure!(
            o,
            pred.rates
                .iter()
                .all(|r| (-1e-12..=1.0 + 1e-12).contains(r)),
            "{} rate outside [0, 1]: {:?}",
            kind.name(),
            pred.rates
        );
        for k in 0..3 {
            let gap = (pred.rates[k] - measured[k]).abs();
            ensure!(
                o,
                gap <= IN_SAMPLE_BOUND,
                "{} class {k}: learned {:.3} vs measured {:.3} (in-sample gap {gap:.3} > {IN_SAMPLE_BOUND})",
                kind.name(),
                pred.rates[k],
                measured[k]
            );
        }
        let gap = (pred.success() - eq8.success()).abs();
        ensure!(
            o,
            gap <= bound,
            "{} success {:.3} vs eq8 {:.3}: gap {gap:.3} exceeds bound {bound:.3}",
            kind.name(),
            pred.success(),
            eq8.success()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{CoreOps, OffByOneBucket};

    #[test]
    fn oracle_names_round_trip() {
        for o in Oracle::ALL {
            assert_eq!(Oracle::parse(o.name()), Some(o));
        }
        assert_eq!(Oracle::parse("nope"), None);
    }

    #[test]
    fn bucket_cover_passes_on_core_and_fails_on_bug() {
        let case = CaseSpec::smoke_roster().remove(0);
        bucket_cover(&case, &CoreOps).unwrap();
        let v = bucket_cover(&case, &OffByOneBucket).unwrap_err();
        assert_eq!(v.oracle, Oracle::BucketCover);
    }

    #[test]
    fn divergence_bound_is_generous_but_not_vacuous() {
        assert!(divergence_bound(8) < 1.0);
        assert!(divergence_bound(8) > divergence_bound(1000));
        assert!(divergence_bound(1000) > 0.35);
    }

    #[test]
    fn predictor_divergence_passes_on_a_smoke_case() {
        resilim_core::verifies!(INV_PREDICT);
        let case = CaseSpec::smoke_roster().remove(0);
        let measured = run_measured(&case).unwrap();
        assert_eq!(measured.features.len(), measured.outcomes.len());
        predictor_divergence(&case, &measured).unwrap();
    }

    #[test]
    fn predictor_divergence_catches_a_dropped_feature_stream() {
        let case = CaseSpec::smoke_roster().remove(0);
        let mut measured = run_measured(&case).unwrap();
        measured.features.pop();
        let v = predictor_divergence(&case, &measured).unwrap_err();
        assert_eq!(v.oracle, Oracle::PredictorDivergence);
        assert!(v.message.contains("feature pipeline"), "{}", v.message);
    }
}
