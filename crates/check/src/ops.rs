//! The seam between the oracles and the sampling layer under test.
//!
//! Every oracle reaches `bucket_of` / `sample_cases` / `sample_for`
//! through [`SamplingOps`] instead of calling `resilim_core` directly.
//! In production ([`CoreOps`]) that is a zero-cost indirection; in the
//! engine's own acceptance tests a deliberately broken implementation
//! ([`OffByOneBucket`]) is swapped in to prove the oracles *detect* a
//! model bug, the shrinker *minimizes* it, and `resilim check --replay`
//! *reproduces* it deterministically.

use resilim_core::SamplePoints;

/// The sampling-layer operations the oracles exercise.
pub trait SamplingOps: Sync {
    /// Stable name for traces and repro records.
    fn name(&self) -> &'static str;

    /// The 1-based bucket index of `x` under an `s`-way split of `[1, p]`.
    fn bucket_of(&self, x: usize, p: usize, s: usize) -> usize;

    /// The `s` sample cases for predicting scale `p`.
    fn sample_cases(&self, p: usize, s: usize, strategy: SamplePoints) -> Vec<usize>;

    /// The sample case that stands in for `x`.
    fn sample_for(&self, x: usize, p: usize, s: usize, strategy: SamplePoints) -> usize {
        let cases = self.sample_cases(p, s, strategy);
        cases[self.bucket_of(x, p, s) - 1]
    }
}

/// The production sampling layer: delegates to `resilim_core`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreOps;

impl SamplingOps for CoreOps {
    fn name(&self) -> &'static str {
        "core"
    }

    fn bucket_of(&self, x: usize, p: usize, s: usize) -> usize {
        resilim_core::bucket_of(x, p, s)
    }

    fn sample_cases(&self, p: usize, s: usize, strategy: SamplePoints) -> Vec<usize> {
        resilim_core::sample_cases(p, s, strategy)
    }

    fn sample_for(&self, x: usize, p: usize, s: usize, strategy: SamplePoints) -> usize {
        resilim_core::sample_for(x, p, s, strategy)
    }
}

/// A deliberately buggy bucket map: `x/width + 1` instead of
/// `⌈x/width⌉`, which pushes every bucket's upper edge into the next
/// bucket (e.g. `x = 16, p = 64, s = 4` lands in bucket 2 instead of 1).
///
/// Exists only so tests and `resilim check --inject-bug` can prove the
/// pipeline catches a real modeling off-by-one — never use in analysis.
#[derive(Debug, Clone, Copy, Default)]
pub struct OffByOneBucket;

impl SamplingOps for OffByOneBucket {
    fn name(&self) -> &'static str {
        "bucket-off-by-one"
    }

    fn bucket_of(&self, x: usize, p: usize, s: usize) -> usize {
        assert!(x >= 1 && x <= p, "x = {x} out of [1, {p}]");
        assert!(
            s >= 1 && p.is_multiple_of(s),
            "need s | p (s = {s}, p = {p})"
        );
        (x / (p / s) + 1).min(s)
    }

    fn sample_cases(&self, p: usize, s: usize, strategy: SamplePoints) -> Vec<usize> {
        resilim_core::sample_cases(p, s, strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_ops_agree_with_core() {
        let ops = CoreOps;
        assert_eq!(ops.bucket_of(16, 64, 4), 1);
        assert_eq!(ops.bucket_of(17, 64, 4), 2);
        assert_eq!(
            ops.sample_cases(64, 4, SamplePoints::BucketUpper),
            vec![1, 32, 48, 64]
        );
        assert_eq!(ops.sample_for(20, 64, 4, SamplePoints::BucketUpper), 32);
    }

    #[test]
    fn off_by_one_misbuckets_upper_edges() {
        let bug = OffByOneBucket;
        // Correct: 16 is the top of bucket 1. Bug: lands in bucket 2.
        assert_eq!(bug.bucket_of(16, 64, 4), 2);
        assert_eq!(CoreOps.bucket_of(16, 64, 4), 1);
        // Interior values agree, so the bug is a genuine edge case.
        assert_eq!(bug.bucket_of(20, 64, 4), CoreOps.bucket_of(20, 64, 4));
    }
}
