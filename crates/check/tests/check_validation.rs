//! Acceptance tests for the check subsystem (ISSUE 4):
//! the smoke roster is clean on the shipped model, and an injected
//! model bug is caught, shrunk to a minimal repro, and replayed
//! deterministically — all through the public crate API.

use resilim_check::{
    replay, run_check, CheckConfig, CoreOps, OffByOneBucket, ReproRecord, Violation,
};

/// `resilim check --smoke` equivalent: every shipped app passes every
/// oracle at the fixed smoke roster.
#[test]
fn smoke_roster_finds_zero_violations_on_shipped_apps() {
    let cfg = CheckConfig {
        smoke: true,
        ..CheckConfig::default()
    };
    let report = run_check(&cfg, &CoreOps);
    assert!(
        report.clean(),
        "smoke roster violated an oracle: {:?}",
        report.violation
    );
    assert_eq!(report.cases_run, resilim_apps::App::ALL.len() as u64);
    assert_eq!(report.shrink_attempts, 0);
}

/// The full pipeline on a deliberately broken bucket map: catch,
/// shrink to the minimal case, record, and replay — twice, bitwise
/// identically.
#[test]
fn injected_bucket_bug_is_caught_shrunk_and_replays_deterministically() {
    let run = || {
        let cfg = CheckConfig {
            smoke: true,
            ..CheckConfig::default()
        };
        run_check(&cfg, &OffByOneBucket)
    };
    let first = run();
    let second = run();
    let a: ReproRecord = first.violation.expect("bug must be caught");
    let b: ReproRecord = second.violation.expect("bug must be caught again");
    assert_eq!(a, b, "check runs are deterministic");
    assert_eq!(a.oracle, "bucket-cover");
    // Minimal along every shrinkable dimension reachable for the
    // smoke roster's first case.
    assert_eq!(a.case.procs, 2);
    assert_eq!(a.case.tests, 4);
    assert!(a.original.is_some(), "shrinking reduced the case");
    // Replay under the bug reproduces the same oracle verdict; replay
    // on the real model passes (the record outlives the bug).
    let v: Violation = replay(&a, &OffByOneBucket)
        .expect("record is well-formed")
        .expect("violation reproduces under the bug");
    assert_eq!(v.oracle.name(), a.oracle);
    assert!(replay(&a, &CoreOps)
        .expect("record is well-formed")
        .is_none());
}
