//! Determinism acceptance suite for the fault-model library (ISSUE 8):
//! every non-default model — burst, DUE, message corruption — and the
//! replicated backend must produce bitwise-identical outcome vectors
//! whatever the execution shape: jobs=1 vs jobs=auto, batched admission
//! at 1/7/64, and a daemon-served run vs the one-shot path.

use resilim_apps::App;
use resilim_check::CaseSpec;
use resilim_harness::{CampaignRunner, CampaignSummary};
use resilim_inject::FaultModelSpec;
use resilim_serve::{Client, Daemon, ServeConfig, SubmitSpec};

/// One deployment per model, built through the same [`CaseSpec`] path
/// the check engine uses so the suite and the fuzzer agree on shape.
fn deployments() -> Vec<(&'static str, resilim_harness::CampaignSpec)> {
    let mut case = CaseSpec::smoke_roster().remove(0);
    case.procs = 2;
    case.s = 2;
    case.tests = 10;
    case.seed = 4242;
    case.app = App::ALL[0].name().to_string();
    let mut out = Vec::new();
    for (name, model, replicate) in [
        ("burst", FaultModelSpec::Burst(3), false),
        ("due", FaultModelSpec::Due, false),
        ("msg", FaultModelSpec::Msg, false),
        ("msg+replicate", FaultModelSpec::Msg, true),
    ] {
        case.fault_model = model;
        case.replicate = replicate;
        case.validate().expect("suite deployments are valid");
        out.push((name, case.measured_campaign().unwrap()));
    }
    out
}

#[test]
fn fault_models_are_bitwise_deterministic_across_execution_shapes() {
    for (name, spec) in deployments() {
        let baseline = CampaignRunner::new().run_uncached(&spec);
        let variants: [(&str, CampaignRunner); 5] = [
            ("jobs=auto", CampaignRunner::new().with_auto_parallelism()),
            ("jobs=4", CampaignRunner::new().with_test_parallelism(4)),
            ("batch=7", CampaignRunner::new().with_trial_batch(7)),
            (
                "batch=64 jobs=4",
                CampaignRunner::new()
                    .with_test_parallelism(4)
                    .with_trial_batch(64),
            ),
            (
                "spawn-per-trial",
                CampaignRunner::new().with_spawn_per_trial(),
            ),
        ];
        for (variant, runner) in variants {
            let other = runner.run_uncached(&spec);
            assert_eq!(
                other.outcomes, baseline.outcomes,
                "{name}: {variant} diverges from jobs=1"
            );
            assert_eq!(other.fi, baseline.fi, "{name}: {variant} FiResult");
        }
        // Reruns of the same shape are bitwise identical too.
        let again = CampaignRunner::new().run_uncached(&spec);
        assert_eq!(again.outcomes, baseline.outcomes, "{name}: rerun");
    }
}

#[test]
fn fault_models_served_summary_matches_one_shot() {
    let dir = std::env::temp_dir().join(format!("resilim-check-fm-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("fm.sock");
    let daemon = Daemon::spawn(ServeConfig {
        socket: socket.clone(),
        store: None,
        workers: 2,
        batch: 7,
    })
    .expect("daemon spawns");
    let mut client =
        Client::connect_retry(&socket, std::time::Duration::from_secs(10)).expect("connect");
    for (name, spec) in deployments() {
        let want = CampaignSummary::of(&spec, &CampaignRunner::new().run_uncached(&spec));
        let (_id, summary) = client
            .submit_and_wait(SubmitSpec::of_campaign(&spec))
            .unwrap_or_else(|e| panic!("{name}: submit failed: {e}"));
        let mut got = summary.unwrap_or_else(|| panic!("{name}: no summary"));
        got.wall_secs = want.wall_secs;
        assert_eq!(got, want, "{name}: served summary diverges from one-shot");
    }
    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
