//! Trial-throughput snapshot: runs a fixed CG p=4 deployment at `jobs=1`
//! and `jobs=auto` and writes the trials/sec numbers as JSON
//! (`BENCH_campaign.json` at the repo root seeds the perf trajectory;
//! the CI bench-smoke step regenerates one per build).
//!
//! The two runs are also asserted bitwise identical, so every snapshot
//! doubles as a determinism check of the parallel execution engine.
//!
//! With `--baseline FILE` the snapshot doubles as a regression gate: it
//! compares the fresh `jobs=1` throughput against the baseline's and
//! exits non-zero when the fresh number falls more than `--tolerance`
//! (default 0.35 — CI runners are noisy) below it. The baseline may be
//! a flat snapshot or a multi-entry file (`{"entries": [...]}` with the
//! newest last) recording before/after measurements across PRs.
//!
//! `--require-speedup` additionally fails the run when the host has
//! more than one core but `jobs=auto` is not faster than `jobs=1` —
//! the multi-core scaling demonstration, enforced on CI runners
//! because single-core hosts cannot measure it.
//!
//! ```text
//! campaign_snapshot [--tests N] [--out FILE] [--baseline FILE] [--tolerance T]
//!                   [--require-speedup]
//! ```

use resilim_apps::App;
use resilim_harness::{CampaignResult, CampaignRunner, CampaignSpec, ErrorSpec};
use std::time::Instant;

fn measure(runner: &CampaignRunner, spec: &CampaignSpec) -> (f64, CampaignResult) {
    // Warm the golden store first: the snapshot times trial execution,
    // not the one-off profiling run.
    runner.golden().get(&spec.spec, spec.procs);
    let start = Instant::now();
    let result = runner.run_uncached(spec);
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (spec.tests as f64 / secs, result)
}

/// The baseline's `trials_per_sec_jobs1`, read from a previous snapshot —
/// either a flat one or the newest entry of a multi-entry baseline file.
fn baseline_tps(path: &str) -> f64 {
    let raw = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("--baseline {path}: {e}"));
    let snapshot: serde_json::Value =
        serde_json::from_str(&raw).unwrap_or_else(|e| panic!("--baseline {path}: {e}"));
    snapshot
        .get("trials_per_sec_jobs1")
        .or_else(|| {
            snapshot
                .get("entries")
                .and_then(|e| e.as_array())
                .and_then(|e| e.last())
                .and_then(|e| e.get("trials_per_sec_jobs1"))
        })
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("--baseline {path}: no trials_per_sec_jobs1 number"))
}

fn main() {
    let mut tests = 200usize;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut tolerance = 0.35f64;
    let mut require_speedup = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--tests" => tests = value("--tests").parse().expect("--tests: integer"),
            "--out" => out = Some(value("--out")),
            "--baseline" => baseline = Some(value("--baseline")),
            "--tolerance" => tolerance = value("--tolerance").parse().expect("--tolerance: number"),
            "--require-speedup" => require_speedup = true,
            other => panic!(
                "unknown flag '{other}' \
                 (campaign_snapshot [--tests N] [--out FILE] [--baseline FILE] [--tolerance T] \
                 [--require-speedup])"
            ),
        }
    }
    assert!(
        (0.0..1.0).contains(&tolerance),
        "--tolerance must be in [0, 1)"
    );

    let procs = 4usize;
    let spec = CampaignSpec::new(
        App::Cg.default_spec(),
        procs,
        ErrorSpec::OneParallel,
        tests,
        2018,
    );
    let sequential = CampaignRunner::new();
    let auto = CampaignRunner::new().with_auto_parallelism();
    let jobs_auto = auto.effective_parallelism(procs);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!("campaign_snapshot: cg p={procs} tests={tests} (host cores: {host_cores})");
    let (tps_jobs1, r1) = measure(&sequential, &spec);
    eprintln!("  jobs=1:    {tps_jobs1:.2} trials/sec");
    let (tps_auto, r2) = measure(&auto, &spec);
    eprintln!("  jobs=auto ({jobs_auto}): {tps_auto:.2} trials/sec");

    assert_eq!(
        r1.outcomes, r2.outcomes,
        "jobs=auto diverged from jobs=1 — determinism bug"
    );

    if let Some(path) = &baseline {
        let base = baseline_tps(path);
        let floor = base * (1.0 - tolerance);
        eprintln!(
            "  baseline jobs=1: {base:.2} trials/sec (floor {floor:.2} at tolerance {tolerance})"
        );
        if tps_jobs1 < floor {
            eprintln!(
                "regression: fresh jobs=1 throughput {tps_jobs1:.2} < {floor:.2} \
                 ({:.0}% below baseline {base:.2})",
                100.0 * (1.0 - tps_jobs1 / base)
            );
            std::process::exit(1);
        }
    }

    if require_speedup {
        if host_cores <= 1 {
            eprintln!("  --require-speedup: single-core host, nothing to demonstrate");
        } else if tps_auto <= tps_jobs1 {
            eprintln!(
                "no multi-core speedup: jobs=auto ({jobs_auto}) ran {tps_auto:.2} trials/sec \
                 vs {tps_jobs1:.2} at jobs=1 on a {host_cores}-core host"
            );
            std::process::exit(1);
        } else {
            eprintln!(
                "  speedup_auto_vs_jobs1 = {:.2} on {host_cores} cores",
                tps_auto / tps_jobs1
            );
        }
    }

    let snapshot = serde_json::json!({
        "bench": "campaign_throughput",
        "app": "cg",
        "procs": procs,
        "tests": tests,
        "errors": "OneParallel",
        "seed": 2018,
        "host_cores": host_cores,
        "jobs_auto_resolved": jobs_auto,
        "trials_per_sec_jobs1": tps_jobs1,
        "trials_per_sec_jobs_auto": tps_auto,
        "speedup_auto_vs_jobs1": tps_auto / tps_jobs1.max(1e-9),
    });
    let body = serde_json::to_string_pretty(&snapshot).expect("serialize snapshot");
    match out {
        Some(path) => {
            std::fs::write(&path, format!("{body}\n")).expect("write snapshot");
            eprintln!("wrote {path}");
        }
        None => println!("{body}"),
    }
}
