//! Op-throughput snapshot: directly measures the `hook_binop` hot path
//! (tracked arithmetic ops/sec) in the configurations that matter —
//! context absent, profiling context installed, context with a pending
//! (never-firing) injection target — against raw `f64` as the ceiling.
//!
//! The campaign bench measures trials/sec end-to-end; this bin isolates
//! the per-op cost the Tf64 fast path optimizes, so a hook regression is
//! visible directly instead of hiding inside end-to-end noise.
//!
//! ```text
//! op_throughput [--ops N] [--quick] [--out FILE]
//! ```
//!
//! `--quick` shrinks the op count to a CI-smoke size (the numbers are
//! then only good for catching order-of-magnitude regressions).

use resilim_inject::{ctx, InjectionPlan, Operand, RankCtx, Region, Target, Tf64};
use std::time::Instant;

/// One measured configuration: mega-ops/sec over a mul+add chain.
fn mops<F: FnMut() -> f64>(ops: u64, mut run: F) -> f64 {
    // One warmup pass, then the timed pass.
    std::hint::black_box(run());
    let start = Instant::now();
    std::hint::black_box(run());
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    ops as f64 / secs / 1e6
}

fn main() {
    let mut ops: u64 = 8_000_000;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--ops" => ops = value("--ops").parse().expect("--ops: integer"),
            "--quick" => ops = 400_000,
            "--out" => out = Some(value("--out")),
            other => {
                panic!("unknown flag '{other}' (op_throughput [--ops N] [--quick] [--out FILE])")
            }
        }
    }
    let n = ops / 2; // two tracked ops (mul + add) per loop iteration

    let raw = mops(ops, || {
        let mut acc = 0.0f64;
        for i in 0..n {
            acc = acc * 0.999 + (i as f64);
        }
        acc
    });

    let no_ctx = mops(ops, || {
        let mut acc = Tf64::ZERO;
        for i in 0..n {
            acc = acc * 0.999 + (i as f64);
        }
        acc.value()
    });

    let with_ctx = mops(ops, || {
        ctx::install(RankCtx::profiling(0));
        let mut acc = Tf64::ZERO;
        for i in 0..n {
            acc = acc * 0.999 + (i as f64);
        }
        ctx::take();
        acc.value()
    });

    let pending = mops(ops, || {
        // A target that never fires: the common case during a trial.
        ctx::install(RankCtx::new(
            0,
            InjectionPlan::single(Target {
                region: Region::Common,
                op_index: u64::MAX,
                bit: 3,
                operand: Operand::A,
            }),
        ));
        let mut acc = Tf64::ZERO;
        for i in 0..n {
            acc = acc * 0.999 + (i as f64);
        }
        ctx::take();
        acc.value()
    });

    // Tainted operand, context installed: every op re-checks divergence.
    let tainted = mops(ops, || {
        ctx::install(RankCtx::profiling(0));
        let mut acc = Tf64::from_parts(1.0, 1.0 + 1e-12);
        for i in 0..n {
            acc = acc * 0.999 + (i as f64);
        }
        ctx::take();
        acc.value()
    });

    let snapshot = serde_json::json!({
        "bench": "op_throughput",
        "ops": ops,
        "mops_raw_f64": raw,
        "mops_tracked_no_ctx": no_ctx,
        "mops_tracked_with_ctx": with_ctx,
        "mops_tracked_pending_target": pending,
        "mops_tracked_tainted": tainted,
        "slowdown_with_ctx_vs_raw": raw / with_ctx.max(1e-9),
    });
    let body = serde_json::to_string_pretty(&snapshot).expect("serialize snapshot");
    match out {
        Some(path) => {
            std::fs::write(&path, format!("{body}\n")).expect("write snapshot");
            eprintln!("wrote {path}");
        }
        None => println!("{body}"),
    }
}
