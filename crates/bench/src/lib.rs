//! Shared helpers for the bench targets.

use resilim_harness::experiments::ExperimentConfig;

/// Tests per deployment for the regeneration benches, overridable with
/// `RESILIM_BENCH_TESTS` (the paper uses 4000; defaults here keep
/// `cargo bench` single-core-laptop friendly).
pub fn bench_config() -> ExperimentConfig {
    let tests = std::env::var("RESILIM_BENCH_TESTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(80);
    ExperimentConfig {
        tests,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_config_is_small() {
        // (Env-dependent override is exercised by the bench targets.)
        assert!(super::bench_config().tests >= 10);
    }
}
