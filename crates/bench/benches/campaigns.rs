//! Campaign-throughput benchmarks: fault-injection tests per second for
//! the deployment shapes the experiments use. This is the §1 motivation
//! quantified on this implementation — how much more expensive large-scale
//! fault injection is than serial injection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use resilim_apps::App;
use resilim_harness::{CampaignRunner, CampaignSpec, ErrorSpec};
use std::time::Duration;

fn bench_campaigns(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    let tests = 10usize;
    group.throughput(Throughput::Elements(tests as u64));

    let runner = CampaignRunner::new();
    for app in [App::Cg, App::Ft, App::Lu] {
        // Warm the golden cache outside the timed region.
        runner.golden().get(&app.default_spec(), 1);
        runner.golden().get(&app.default_spec(), 4);
        runner.golden().get(&app.default_spec(), 64);

        group.bench_with_input(
            BenchmarkId::new("serial_1err", app.name()),
            &app,
            |b, &app| {
                b.iter(|| {
                    runner.run_uncached(&CampaignSpec::new(
                        app.default_spec(),
                        1,
                        ErrorSpec::SerialErrors(1),
                        tests,
                        7,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("par4_1err", app.name()),
            &app,
            |b, &app| {
                b.iter(|| {
                    runner.run_uncached(&CampaignSpec::new(
                        app.default_spec(),
                        4,
                        ErrorSpec::OneParallel,
                        tests,
                        7,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("par64_1err", app.name()),
            &app,
            |b, &app| {
                b.iter(|| {
                    runner.run_uncached(&CampaignSpec::new(
                        app.default_spec(),
                        64,
                        ErrorSpec::OneParallel,
                        tests,
                        7,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_campaigns);
criterion_main!(benches);
